// Schedule-exploration runtime (see sched.h and docs/schedule_checker.md).
//
// One Runner instance executes one Explore() call. Per schedule it spawns
// the scenario threads as real std::threads but serialises them: a thread
// runs only while it holds the grant, and hands control back to the
// controller at every instrumented operation. The controller picks the
// next thread per the exploration strategy (DFS prefix, random walk, PCT
// priorities, or an explicit replay list).
//
// The runtime's own synchronisation deliberately uses raw std primitives
// (std::mutex / std::condition_variable / std::unique_lock): the
// annotated project wrappers are exactly the types being *modelled*, so
// routing the model through them would recurse. pd2gl_lint exempts this
// file for that reason.
#include "schedcheck/sched.h"

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/random.h"

namespace platod2gl::sched {

// Lets the runtime (anonymous-namespace Runner) reach Test's registration
// lists without widening Test's public API.
struct TestAccess {
  static std::vector<Test::Entry>& Threads(Test& t) { return t.threads_; }
  static std::vector<std::function<void()>>& Checks(Test& t) {
    return t.checks_;
  }
};

namespace {

/// Thrown by hooks when a schedule is being torn down; caught by the
/// worker wrapper. Never escapes the runtime.
struct SchedAbortException {};

/// Thrown by Check / race detection; carries the failure message.
struct SchedFailureException {
  std::string msg;
};

struct Pending {
  OpKind kind = OpKind::kThreadStart;
  const void* obj = nullptr;
  const char* what = "";
};

class Runner;
thread_local Runner* tl_runner = nullptr;
thread_local int tl_idx = -1;

std::atomic<bool> g_cuckoo_race{false};

class Runner {
 public:
  explicit Runner(const Options& opts) : opts_(opts) {}

  bool aborting() const { return aborting_.load(std::memory_order_acquire); }

  // --- hook implementations (called on scenario threads) -------------------

  void Point(OpKind kind, const void* obj, const char* what) {
    std::unique_lock<std::mutex> lk(m_);
    YieldLocked(lk, kind, obj, what);
  }

  void LockAcquire(const void* obj, const char* what) {
    for (;;) {
      Point(OpKind::kLockAcquire, obj, what);
      {
        std::lock_guard<std::mutex> lk(m_);
        if (lock_owner_.find(obj) == lock_owner_.end()) {
          lock_owner_[obj] = tl_idx;
          return;
        }
      }
      Block(obj);
    }
  }

  bool LockTryAcquire(const void* obj, const char* what) {
    Point(OpKind::kLockAcquire, obj, what);
    std::lock_guard<std::mutex> lk(m_);
    if (lock_owner_.find(obj) != lock_owner_.end()) return false;
    lock_owner_[obj] = tl_idx;
    return true;
  }

  void LockRelease(const void* obj, const char* what) {
    Point(OpKind::kLockRelease, obj, what);
    std::lock_guard<std::mutex> lk(m_);
    auto it = lock_owner_.find(obj);
    if (it == lock_owner_.end() || it->second != tl_idx) {
      // A genuine bug in the code under test, not in the model.
      throw SchedFailureException{
          std::string("unlock of a virtual lock not held by this thread (") +
          what + ")"};
    }
    lock_owner_.erase(it);
    UnblockAllLocked(obj);
  }

  void CondPrepareWait(const void* cv, const char* what) {
    // Registered BEFORE the caller releases the lock, so a notify landing
    // between release and block is not lost — this models the atomic
    // release-and-wait of a real condition variable.
    Point(OpKind::kCondWait, cv, what);
    std::lock_guard<std::mutex> lk(m_);
    cond_waiting_[cv].push_back(tl_idx);
    signalled_[tl_idx] = false;
  }

  void CondCommitWait(const void* cv) {
    {
      std::unique_lock<std::mutex> lk(m_);
      if (signalled_[tl_idx]) {
        signalled_[tl_idx] = false;
        return;  // notified while we were releasing the lock
      }
      BlockLocked(lk, cv);
    }
  }

  void CondNotify(const void* cv, const char* what, bool all) {
    Point(OpKind::kCondNotify, cv, what);
    std::lock_guard<std::mutex> lk(m_);
    auto it = cond_waiting_.find(cv);
    if (it == cond_waiting_.end() || it->second.empty()) return;  // lost
    const std::size_t n = all ? it->second.size() : 1;
    for (std::size_t i = 0; i < n; ++i) {
      const int w = it->second[i];
      signalled_[w] = true;
      if (threads_[w].state == St::kBlocked && threads_[w].blocked_on == cv) {
        threads_[w].state = St::kRunnable;
        threads_[w].blocked_on = nullptr;
      }
    }
    it->second.erase(it->second.begin(),
                     it->second.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void PlainBegin(const void* obj, bool is_write, const char* what) {
    Point(is_write ? OpKind::kPlainStore : OpKind::kPlainLoad, obj, what);
    std::lock_guard<std::mutex> lk(m_);
    auto& open = open_[obj];
    for (const auto& [thread, write] : open) {
      if (thread != tl_idx && (is_write || write)) {
        throw SchedFailureException{
            "data race on " + ObjNameLocked(obj, what) + ": plain " +
            (is_write ? std::string("store") : std::string("load")) + " by " +
            ThreadName(tl_idx) + " overlaps plain " +
            (write ? std::string("store") : std::string("load")) + " by " +
            ThreadName(thread)};
      }
    }
    open[tl_idx] = is_write;
  }

  void PlainEnd(const void* obj) {
    Point(OpKind::kPlainEnd, obj, "plain");
    std::lock_guard<std::mutex> lk(m_);
    auto it = open_.find(obj);
    if (it != open_.end()) it->second.erase(tl_idx);
  }

  // --- exploration ----------------------------------------------------------

  Result Explore(const std::function<void(Test&)>& build) {
    Result res;
    res.seed = opts_.seed;
    if (!opts_.replay.empty()) {
      RunReplaySchedule(build, res);
      return res;
    }
    switch (opts_.mode) {
      case Mode::kExhaustive:
        RunDfs(build, res);
        break;
      case Mode::kRandomWalk:
      case Mode::kPct:
        RunRandomFamily(build, res);
        break;
    }
    return res;
  }

 private:
  enum class St { kNew, kRunnable, kBlocked, kFinished };

  struct ThreadRec {
    std::string name;
    std::function<void()> body;
    std::thread thread;
    St state = St::kNew;
    const void* blocked_on = nullptr;
    bool granted = false;
  };

  struct Decision {
    std::vector<int> order;  // candidates, exploration order (default first)
    int pos = 0;             // index into `order` actually taken
    int preempt_before = 0;  // preemptions used before this decision
    bool has_last = false;   // order[0] continues the previous thread
  };

  // Strategy callback: given the decision about to be made (step index,
  // candidate order, preemptions used), return the position to take.
  using Chooser = std::function<int(std::size_t step, const Decision& d)>;

  // --- worker side ----------------------------------------------------------

  void WorkerMain(int idx) {
    tl_runner = this;
    tl_idx = idx;
    bool skip_body = false;
    {
      std::unique_lock<std::mutex> lk(m_);
      threads_[idx].state = St::kRunnable;
      pending_[idx] =
          Pending{OpKind::kThreadStart, nullptr, threads_[idx].name.c_str()};
      ++started_;
      cv_.notify_all();
      cv_.wait(lk, [&] { return threads_[idx].granted; });
      threads_[idx].granted = false;
      skip_body = aborting();
    }
    if (!skip_body) {
      try {
        threads_[idx].body();
      } catch (const SchedAbortException&) {
      } catch (const SchedFailureException& f) {
        FailFromWorker(f.msg);
      } catch (const std::exception& e) {
        FailFromWorker(std::string("uncaught exception in ") +
                       ThreadName(idx) + ": " + e.what());
      }
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      threads_[idx].state = St::kFinished;
      control_with_worker_ = false;
      cv_.notify_all();
    }
    tl_runner = nullptr;
    tl_idx = -1;
  }

  /// Record the op this thread is about to perform and hand control back.
  void YieldLocked(std::unique_lock<std::mutex>& lk, OpKind kind,
                   const void* obj, const char* what) {
    pending_[tl_idx] = Pending{kind, obj, what};
    control_with_worker_ = false;
    cv_.notify_all();
    cv_.wait(lk, [&] { return threads_[tl_idx].granted; });
    threads_[tl_idx].granted = false;
    if (aborting()) throw SchedAbortException{};
  }

  void Block(const void* obj) {
    std::unique_lock<std::mutex> lk(m_);
    BlockLocked(lk, obj);
  }

  void BlockLocked(std::unique_lock<std::mutex>& lk, const void* obj) {
    threads_[tl_idx].state = St::kBlocked;
    threads_[tl_idx].blocked_on = obj;
    control_with_worker_ = false;
    cv_.notify_all();
    cv_.wait(lk, [&] { return threads_[tl_idx].granted; });
    threads_[tl_idx].granted = false;
    if (aborting()) throw SchedAbortException{};
  }

  void UnblockAllLocked(const void* obj) {
    for (auto& t : threads_) {
      if (t.state == St::kBlocked && t.blocked_on == obj) {
        t.state = St::kRunnable;
        t.blocked_on = nullptr;
      }
    }
  }

  void FailFromWorker(const std::string& msg) {
    std::lock_guard<std::mutex> lk(m_);
    if (!failed_) {
      failed_ = true;
      failure_ = msg;
    }
    BeginAbortLocked();
  }

  void BeginAbortLocked() {
    aborting_.store(true, std::memory_order_release);
    // Everything blocked becomes grantable so it can observe the abort,
    // unwind (hooks no-op while aborting) and finish.
    for (auto& t : threads_) {
      if (t.state == St::kBlocked) {
        t.state = St::kRunnable;
        t.blocked_on = nullptr;
      }
    }
  }

  // --- controller side ------------------------------------------------------

  std::string ThreadName(int idx) const {
    return "T" + std::to_string(idx) + "<" + threads_[idx].name + ">";
  }

  /// Stable per-schedule object naming: ids are assigned in first-trace
  /// order, so two runs of the same schedule print identical traces (no
  /// raw pointers — they would differ across processes under ASLR).
  std::string ObjNameLocked(const void* obj, const char* what) {
    if (obj == nullptr) return what;
    auto [it, inserted] = obj_ids_.emplace(
        obj, std::make_pair(static_cast<int>(obj_ids_.size()), what));
    (void)inserted;
    return "obj#" + std::to_string(it->second.first) + "<" +
           it->second.second + ">";
  }

  void AppendTraceLocked(std::size_t step, int thread, const Pending& op) {
    std::ostringstream line;
    line << "  step " << step << ": " << ThreadName(thread) << " "
         << OpKindName(op.kind);
    if (op.obj != nullptr) {
      line << " " << ObjNameLocked(op.obj, op.what);
    } else if (op.kind != OpKind::kThreadStart) {
      line << " (" << op.what << ")";
    }
    trace_lines_.push_back(line.str());
  }

  std::string DescribeStuckLocked() const {
    std::string out;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i].state == St::kFinished) continue;
      if (!out.empty()) out += ", ";
      out += ThreadName(static_cast<int>(i));
      out += threads_[i].state == St::kBlocked ? " blocked at " : " parked at ";
      out += OpKindName(pending_[i].kind);
    }
    return out;
  }

  /// Execute one schedule: fresh scenario state, threads serialised, the
  /// chooser consulted at every decision. Returns true when the schedule
  /// (and its AfterRun checks) passed.
  bool RunSchedule(const std::function<void(Test&)>& build,
                  const Chooser& choose) {
    // Fresh per-schedule state.
    Test test;
    build(test);
    auto& entries = TestAccess::Threads(test);
    threads_.clear();
    threads_.resize(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      threads_[i].name = entries[i].name;
      threads_[i].body = std::move(entries[i].body);
    }
    pending_.assign(threads_.size(), Pending{});
    signalled_.assign(threads_.size(), false);
    decisions_.clear();
    trace_lines_.clear();
    obj_ids_.clear();
    lock_owner_.clear();
    cond_waiting_.clear();
    open_.clear();
    failed_ = false;
    failure_.clear();
    choices_.clear();
    aborting_.store(false, std::memory_order_release);
    started_ = 0;
    control_with_worker_ = false;

    for (std::size_t i = 0; i < threads_.size(); ++i) {
      threads_[i].thread =
          std::thread([this, i] { WorkerMain(static_cast<int>(i)); });
    }

    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return started_ == threads_.size(); });

      int last_running = -1;
      int preemptions = 0;
      std::size_t step = 0;
      for (;;) {
        std::vector<int> cand;
        bool all_finished = true;
        for (std::size_t i = 0; i < threads_.size(); ++i) {
          if (threads_[i].state == St::kRunnable) {
            cand.push_back(static_cast<int>(i));
          }
          if (threads_[i].state != St::kFinished) all_finished = false;
        }
        if (cand.empty()) {
          if (all_finished) break;
          if (!failed_) {
            failed_ = true;
            failure_ = "deadlock: no enabled thread (" +
                       DescribeStuckLocked() + ")";
          }
          BeginAbortLocked();
          continue;
        }

        Decision d;
        d.order = cand;
        d.has_last = false;
        if (last_running >= 0) {
          auto it = std::find(d.order.begin(), d.order.end(), last_running);
          if (it != d.order.end()) {
            std::rotate(d.order.begin(), it, it + 1);
            d.has_last = true;
          }
        }
        d.preempt_before = preemptions;
        d.pos = aborting() ? 0 : choose(step, d);
        if (d.pos < 0 || d.pos >= static_cast<int>(d.order.size())) d.pos = 0;
        const int chosen = d.order[static_cast<std::size_t>(d.pos)];
        if (d.has_last && chosen != last_running) ++preemptions;
        if (!aborting()) {
          decisions_.push_back(d);
          if (!choices_.empty()) choices_ += ",";
          choices_ += std::to_string(chosen);
          AppendTraceLocked(step, chosen, pending_[chosen]);
        }

        threads_[chosen].granted = true;
        control_with_worker_ = true;
        cv_.notify_all();
        cv_.wait(lk, [&] { return !control_with_worker_; });
        last_running = chosen;
        ++step;
        if (step > opts_.max_steps && !aborting()) {
          failed_ = true;
          failure_ = "livelock: schedule exceeded max_steps=" +
                     std::to_string(opts_.max_steps);
          BeginAbortLocked();
        }
      }
    }

    for (auto& t : threads_) t.thread.join();

    if (!failed_) {
      try {
        for (const auto& check : TestAccess::Checks(test)) check();
      } catch (const SchedFailureException& f) {
        failed_ = true;
        failure_ = f.msg;
      }
    }
    return !failed_;
  }

  void FillFailure(Result& res, std::uint64_t index) {
    res.ok = false;
    res.failing_index = index;
    res.failure = failure_;
    res.choices = choices_;
    std::string t;
    for (const auto& line : trace_lines_) {
      t += line;
      t += "\n";
    }
    res.trace = t;
  }

  // --- strategies -----------------------------------------------------------

  bool DfsAllowed(const Decision& d, int pos) const {
    if (pos == 0) return true;
    if (!d.has_last) return true;  // forced or free switch
    return d.preempt_before < opts_.preemption_bound;
  }

  void RunDfs(const std::function<void(Test&)>& build, Result& res) {
    std::vector<int> prefix;
    for (std::uint64_t index = 0;; ++index) {
      const Chooser choose = [&](std::size_t step, const Decision& d) -> int {
        if (step < prefix.size()) return prefix[step];
        return 0;  // default: continue the running thread (non-preemptive)
      };
      const bool ok = RunSchedule(build, choose);
      ++res.schedules;
      if (!ok) {
        FillFailure(res, index);
        return;
      }
      if (opts_.max_schedules > 0 && res.schedules >= opts_.max_schedules) {
        return;
      }
      // Backtrack: deepest decision with an untried, bound-respecting
      // alternative becomes the next prefix.
      bool advanced = false;
      for (std::size_t i = decisions_.size(); i-- > 0;) {
        const Decision& d = decisions_[i];
        for (int pos = d.pos + 1; pos < static_cast<int>(d.order.size());
             ++pos) {
          if (!DfsAllowed(d, pos)) continue;
          prefix.clear();
          for (std::size_t j = 0; j < i; ++j) {
            prefix.push_back(decisions_[j].pos);
          }
          prefix.push_back(pos);
          advanced = true;
          break;
        }
        if (advanced) break;
      }
      if (!advanced) return;  // enumeration complete
    }
  }

  void RunRandomFamily(const std::function<void(Test&)>& build, Result& res) {
    const std::uint64_t n =
        opts_.max_schedules == 0 ? 1000 : opts_.max_schedules;
    std::size_t length_estimate = 128;  // PCT change-point range, adapted
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t index = opts_.start_index + k;
      // Schedule `index` is a pure function of (seed, index).
      Xoshiro256 rng(opts_.seed + 0x9E3779B97F4A7C15ULL * (index + 1));
      Chooser choose;
      std::vector<int> prio;
      std::vector<std::size_t> change_points;
      if (opts_.mode == Mode::kPct) {
        prio.resize(16);
        for (std::size_t i = 0; i < prio.size(); ++i) {
          prio[i] = static_cast<int>(i) + 1;
        }
        for (std::size_t i = prio.size(); i-- > 1;) {
          std::swap(prio[i], prio[rng.NextUint64(i + 1)]);
        }
        for (int i = 0; i < opts_.pct_depth; ++i) {
          change_points.push_back(
              1 + rng.NextUint64(std::max<std::size_t>(1, length_estimate)));
        }
        int next_demoted = 0;
        choose = [this, prio, change_points, next_demoted,
                  &rng](std::size_t step, const Decision& d) mutable -> int {
          (void)this;
          int best_pos = 0;
          for (int pos = 1; pos < static_cast<int>(d.order.size()); ++pos) {
            if (prio[static_cast<std::size_t>(d.order[pos])] >
                prio[static_cast<std::size_t>(d.order[best_pos])]) {
              best_pos = pos;
            }
          }
          if (std::find(change_points.begin(), change_points.end(), step) !=
              change_points.end()) {
            // Demote the thread we are about to run below every other.
            prio[static_cast<std::size_t>(d.order[best_pos])] = --next_demoted;
          }
          return best_pos;
        };
      } else {
        choose = [&rng](std::size_t, const Decision& d) -> int {
          return static_cast<int>(rng.NextUint64(d.order.size()));
        };
      }
      const bool ok = RunSchedule(build, choose);
      ++res.schedules;
      length_estimate = std::max<std::size_t>(decisions_.size(), 16);
      if (!ok) {
        FillFailure(res, index);
        return;
      }
    }
  }

  void RunReplaySchedule(const std::function<void(Test&)>& build,
                         Result& res) {
    std::vector<int> want;
    std::stringstream ss(opts_.replay);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) want.push_back(std::stoi(tok));
    }
    const Chooser choose = [&](std::size_t step, const Decision& d) -> int {
      if (step < want.size()) {
        auto it = std::find(d.order.begin(), d.order.end(), want[step]);
        if (it != d.order.end()) {
          return static_cast<int>(it - d.order.begin());
        }
      }
      return 0;
    };
    const bool ok = RunSchedule(build, choose);
    res.schedules = 1;
    if (!ok) FillFailure(res, 0);
  }

  const Options opts_;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<ThreadRec> threads_;
  std::vector<Pending> pending_;
  std::vector<bool> signalled_;  // condvar notify landed pre-block
  std::size_t started_ = 0;
  bool control_with_worker_ = false;
  std::atomic<bool> aborting_{false};

  std::map<const void*, int> lock_owner_;
  std::map<const void*, std::vector<int>> cond_waiting_;
  std::map<const void*, std::map<int, bool>> open_;  // racy-cell intervals

  std::vector<Decision> decisions_;
  std::vector<std::string> trace_lines_;
  std::map<const void*, std::pair<int, const char*>> obj_ids_;
  std::string choices_;
  bool failed_ = false;
  std::string failure_;
};

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kThreadStart:
      return "thread-start";
    case OpKind::kAtomicLoad:
      return "atomic-load";
    case OpKind::kAtomicStore:
      return "atomic-store";
    case OpKind::kAtomicRmw:
      return "atomic-rmw";
    case OpKind::kLockAcquire:
      return "lock-acquire";
    case OpKind::kLockRelease:
      return "lock-release";
    case OpKind::kCondWait:
      return "cond-wait";
    case OpKind::kCondNotify:
      return "cond-notify";
    case OpKind::kPlainLoad:
      return "plain-load";
    case OpKind::kPlainStore:
      return "plain-store";
    case OpKind::kPlainEnd:
      return "plain-end";
    case OpKind::kYield:
      return "yield";
  }
  return "?";
}

bool ModelActive() { return tl_runner != nullptr; }

void Point(OpKind kind, const void* obj, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->Point(kind, obj, what);
}

void LockAcquire(const void* obj, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->LockAcquire(obj, what);
}

bool LockTryAcquire(const void* obj, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return true;
  return r->LockTryAcquire(obj, what);
}

void LockRelease(const void* obj, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->LockRelease(obj, what);
}

void CondBlock(const void* cv, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->CondPrepareWait(cv, what);
  r->CondCommitWait(cv);
}

void CondNotify(const void* cv, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->CondNotify(cv, what, /*all=*/true);
}

void CondNotifyOne(const void* cv, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->CondNotify(cv, what, /*all=*/false);
}

void CondPrepareWait(const void* cv, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->CondPrepareWait(cv, what);
}

void CondCommitWait(const void* cv) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->CondCommitWait(cv);
}

void PlainBegin(const void* obj, bool is_write, const char* what) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->PlainBegin(obj, is_write, what);
}

void PlainEnd(const void* obj) {
  Runner* r = tl_runner;
  if (r == nullptr || r->aborting()) return;
  r->PlainEnd(obj);
}

void SetCuckooShardSizeRace(bool reintroduce) {
  g_cuckoo_race.store(reintroduce, std::memory_order_release);
}

bool CuckooShardSizeRace() {
  return g_cuckoo_race.load(std::memory_order_acquire);
}

void Check(bool ok, const std::string& msg) {
  if (ok) return;
  Runner* r = tl_runner;
  if (r != nullptr && r->aborting()) return;  // schedule already torn down
  throw SchedFailureException{msg};
}

void Test::Spawn(std::string name, std::function<void()> body) {
  threads_.push_back(Entry{std::move(name), std::move(body)});
}

void Test::AfterRun(std::function<void()> check) {
  checks_.push_back(std::move(check));
}

Result Explore(const Options& opts, const std::function<void(Test&)>& build) {
  Runner runner(opts);
  return runner.Explore(build);
}

struct TestMutex::Impl {
  std::mutex mu;
};

TestMutex::TestMutex() : impl_(new Impl) {}
TestMutex::~TestMutex() { delete impl_; }

void TestMutex::lock() {
  if (ModelActive()) {
    LockAcquire(this, "TestMutex");
    return;
  }
  impl_->mu.lock();
}

bool TestMutex::try_lock() {
  if (ModelActive()) return LockTryAcquire(this, "TestMutex");
  return impl_->mu.try_lock();
}

void TestMutex::unlock() {
  if (ModelActive()) {
    LockRelease(this, "TestMutex");
    return;
  }
  impl_->mu.unlock();
}

}  // namespace platod2gl::sched
