#pragma once
// Deterministic schedule exploration for small concurrent scenarios
// (model-checker-lite in the loom / CHESS / PCT tradition; see
// docs/schedule_checker.md).
//
// TSan stress runs observe whichever interleavings the OS happens to
// schedule; this harness *controls* the interleaving instead. A scenario
// registers 2..8 thread bodies; the runner serialises them — exactly one
// scenario thread executes at any moment — and decides, at every
// instrumented operation (sched::Atomic access, virtual lock acquire/
// release, condvar wait/notify, racy-cell access), which thread runs
// next. Exploration modes:
//
//  * kExhaustive — depth-first enumeration of every schedule whose number
//    of preemptions (switching away from a thread that could have
//    continued) is <= preemption_bound. Small bounds find most real
//    concurrency bugs (CHESS's empirical result) while keeping the
//    schedule count tractable for 2-3 thread scenarios.
//  * kRandomWalk — at each decision, pick uniformly among enabled
//    threads, seeded; schedule i of a run is a pure function of
//    (seed, i), so any failure replays from (seed, index).
//  * kPct — probabilistic concurrency testing: each schedule assigns
//    random thread priorities and demotes the running thread at d
//    random change points; finds depth-d bugs with known probability.
//
// Every run is reproducible: scenarios must be deterministic apart from
// scheduling (seeded RNGs only, no wall-clock, no thread pools), and a
// failing schedule reports a replayable trace (step x thread x operation
// x object) plus the decision list that reproduces it exactly.
//
// What the checker reports as failures:
//  * a sched::Check(...) that evaluates false (scenario invariant);
//  * a data race: two threads' plain (NonAtomic) access intervals to the
//    same cell overlap with at least one write;
//  * deadlock: no thread is enabled but some have not finished (this is
//    also how lost wakeups surface, since notifies are not sticky);
//  * livelock: a single schedule exceeding max_steps.
//
// The model explores *interleavings* under sequential consistency; it
// does not model C++ weak-memory reorderings (that is TSan's and the
// `// order:` lint rule's job).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sched_hooks.h"

namespace platod2gl::sched {

enum class Mode {
  kExhaustive,
  kRandomWalk,
  kPct,
};

struct Options {
  Mode mode = Mode::kExhaustive;
  /// Exhaustive mode: max context switches away from a runnable thread.
  int preemption_bound = 2;
  /// Schedules to run. 0 = no cap for exhaustive (enumerate fully);
  /// random modes treat 0 as 1000.
  std::uint64_t max_schedules = 0;
  /// Seed for the random modes; schedule i derives its own generator from
  /// (seed, start_index + i).
  std::uint64_t seed = 1;
  /// First schedule index (random modes) — set to a failing index to
  /// replay exactly that schedule.
  std::uint64_t start_index = 0;
  /// PCT: number of priority-change points per schedule.
  int pct_depth = 3;
  /// Livelock guard: a single schedule exceeding this many granted steps
  /// fails.
  std::size_t max_steps = 50000;
  /// Replay an explicit decision list (comma-separated thread indices, as
  /// reported in Result::choices). When non-empty, exactly one schedule
  /// runs and mode/seed are ignored.
  std::string replay;
};

struct Result {
  bool ok = true;
  /// Schedules fully executed (including the failing one).
  std::uint64_t schedules = 0;
  /// Index of the failing schedule (mode-relative; for random modes this
  /// is the absolute index usable as Options::start_index).
  std::uint64_t failing_index = 0;
  std::uint64_t seed = 0;
  /// Human-readable failure cause; empty when ok.
  std::string failure;
  /// Replayable trace of the failing schedule (step x thread x op x obj).
  std::string trace;
  /// Decision list of the failing schedule for Options::replay.
  std::string choices;
};

/// Per-schedule scenario builder handle. The builder callback passed to
/// Explore runs once per schedule and must create *fresh* state (capture
/// it in shared_ptrs inside the thread closures).
class Test {
 public:
  /// Register a scenario thread. Bodies run serialised under the model;
  /// they may use sched::Check and any instrumented structure, but must
  /// not spawn further threads or use thread pools.
  void Spawn(std::string name, std::function<void()> body);

  /// Register a check that runs single-threaded after all scenario
  /// threads joined (postcondition checks via sched::Check).
  void AfterRun(std::function<void()> check);

 private:
  friend struct TestAccess;  // runtime-internal accessor (sched.cc)
  struct Entry {
    std::string name;
    std::function<void()> body;
  };
  std::vector<Entry> threads_;
  std::vector<std::function<void()>> checks_;
};

/// Run the scenario under every schedule the options call for. Stops at
/// the first failing schedule and reports it; otherwise returns ok with
/// the number of schedules explored.
Result Explore(const Options& opts, const std::function<void(Test&)>& build);

/// Scenario assertion: records the failure, aborts the current schedule
/// cleanly and surfaces `msg` (plus the trace) through Result. Usable
/// from scenario threads and AfterRun checks.
void Check(bool ok, const std::string& msg);

/// A lock routed through the virtual-lock model when one is active and
/// through a real mutex otherwise. This is exactly the shim Spinlock and
/// Mutex compile to under PD2GL_SCHEDCHECK, exposed unconditionally so
/// the harness self-tests (tests/test_schedcheck.cc) exercise the model
/// in every build.
class TestMutex {
 public:
  TestMutex();
  ~TestMutex();
  TestMutex(const TestMutex&) = delete;
  TestMutex& operator=(const TestMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  struct Impl;
  Impl* impl_;  // raw fallback mutex, unused while a model is active
};

}  // namespace platod2gl::sched
