// AdmissionController: the serving layer's bounded in-flight window.
//
// A serving front end must bound the work it holds — queued plus
// executing — or a burst converts into unbounded memory and collapsed
// tail latency for everyone. This controller enforces two limits with
// counted outcomes, mirroring UpdateIngestor's backpressure design
// (src/pipeline/update_ingestor.h):
//
//  * a global window: at most `max_in_flight` requests admitted and not
//    yet released, and
//  * a per-tenant quota: at most `tenant_quota` of those per tenant, so
//    one hot tenant cannot starve the rest of the window.
//
// What a submitter experiences at a full window is the policy matrix the
// GraphServer drives (serve/server.h): kBlock waits here on a condvar
// until Release()/Close(); kReject fails fast via TryAdmit(); kShedOldest
// lets the server evict the oldest queued request and retry the probe.
// Every outcome is a counter, and shed decisions are made by the
// single-threaded server pump from arrival order alone, so admission
// outcomes are a pure function of (seed, arrival order) — pinned in
// tests/test_serve.cc.
//
// Synchronisation uses the instrumented Mutex/CondVar/sched::Atomic so
// the deterministic schedule checker can interleave submitters against
// Release()/Close() (tests/test_schedcheck_scenarios.cc: the notify in
// both MUST happen under the lock, or a kBlock submitter's
// check-then-wait window loses the wakeup — the same bug class the
// checker found in UpdateIngestor::Close()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/sched_hooks.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace platod2gl::serve {

/// What a submitter experiences when the window (or its quota) is full.
enum class AdmissionPolicy : std::uint8_t {
  kBlock,      ///< wait for a Release (lossless, may stall the submitter)
  kReject,     ///< fail fast (caller sheds/retries)
  kShedOldest  ///< evict the oldest queued request, admit the new one
};

struct AdmissionConfig {
  std::size_t max_in_flight = 256;  ///< global window bound
  std::size_t tenant_quota = 64;    ///< per-tenant share of the window
  AdmissionPolicy policy = AdmissionPolicy::kReject;
};

/// Monotonic counters + a point-in-time window snapshot.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t window_rejects = 0;  ///< probes refused: window full
  std::uint64_t quota_rejects = 0;   ///< probes refused: tenant over quota
  std::uint64_t closed_rejects = 0;  ///< probes after Close()
  std::uint64_t blocked_waits = 0;   ///< kBlock submitters that had to wait
  std::size_t in_flight = 0;         ///< admitted - released right now
};

class AdmissionController {
 public:
  enum class Verdict : std::uint8_t {
    kAdmitted = 0,
    kWindowFull = 1,
    kQuotaFull = 2,
    kClosed = 3,
  };

  /// `metrics` hosts the pd2gl_admission_* series; the GraphServer passes
  /// its own registry so one snapshot covers the whole serving stack. A
  /// standalone controller (tests) owns a private registry instead.
  explicit AdmissionController(AdmissionConfig config = {},
                               obs::MetricRegistry* metrics = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Non-blocking probe: admit `tenant` if both the window and its quota
  /// have room. `count_reject` suppresses the reject counters when the
  /// caller is probing inside its own shed loop (the shed itself is the
  /// counted outcome there).
  Verdict TryAdmit(std::uint32_t tenant, bool count_reject = true);

  /// Blocking admit (the kBlock policy): waits on the window/quota until
  /// admitted or closed. Never returns kWindowFull/kQuotaFull.
  Verdict Admit(std::uint32_t tenant);

  /// Return one admitted slot (request completed, shed, or failed).
  void Release(std::uint32_t tenant);

  /// Stop admitting: every subsequent (and currently blocked) Admit
  /// returns kClosed. Released slots still drain normally.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t in_flight() const {
    return in_flight_snapshot_.load(std::memory_order_acquire);
  }

  AdmissionStats Stats() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  bool HasRoom(std::uint32_t tenant) const REQUIRES(mu_);
  void AdmitLocked(std::uint32_t tenant) REQUIRES(mu_);

  /// Registry-backed monotone tallies (pd2gl_admission_*); Stats() reads
  /// them back through the shared binding fill loop.
  struct Counters {
    obs::Counter* admitted = nullptr;
    obs::Counter* window_rejects = nullptr;
    obs::Counter* quota_rejects = nullptr;
    obs::Counter* closed_rejects = nullptr;
    obs::Counter* blocked_waits = nullptr;
  };

  AdmissionConfig config_;
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::StatsBinding<AdmissionStats> binding_;
  Counters counters_;
  mutable Mutex mu_;
  CondVar space_cv_;  // kBlock submitters wait here for Release or Close
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  std::vector<std::size_t> tenant_in_flight_ GUARDED_BY(mu_);

  // STATE atomics stay sched::Atomic (== std::atomic in production;
  // schedule points under PD2GL_SCHEDCHECK so the checker can interleave
  // submitters, the pump's releases, and shutdown around them). Pure
  // tallies live in the registry counters above.
  sched::Atomic<bool> closed_{false};
  sched::Atomic<std::size_t> in_flight_snapshot_{0};
};

}  // namespace platod2gl::serve
