#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

namespace platod2gl::serve {

RequestBatcher::RequestBatcher(BatcherConfig config) : config_(config) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
}

Status RequestBatcher::Enqueue(PendingRequest req, std::uint64_t now_us) {
  // The closed check and the push must be one critical section: an
  // unlocked check-then-lock lets a concurrent Close() land in between
  // and strand the request in a queue nothing will drain (pinned by
  // BatcherCloseScenario in tests/test_schedcheck_scenarios.cc).
  MutexLock lock(mu_);
  if (closed()) {
    // order: stat tallies, snapshot for reporting only
    closed_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("batcher closed");
  }
  req.enqueue_us = now_us;
  queue_.push_back(std::move(req));
  depth_snapshot_.store(queue_.size(), std::memory_order_release);
  // order: stat tallies, snapshot for reporting only
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool RequestBatcher::Due(std::uint64_t now_us) const {
  MutexLock lock(mu_);
  if (queue_.empty()) return false;
  if (queue_.size() >= config_.max_batch) return true;
  return now_us >= queue_.front().enqueue_us + config_.window_us;
}

std::vector<PendingRequest> RequestBatcher::FormBatch(std::uint64_t now_us,
                                                      bool force) {
  std::vector<PendingRequest> batch;
  MutexLock lock(mu_);
  if (queue_.empty()) return batch;
  const bool size_trigger = queue_.size() >= config_.max_batch;
  const bool deadline_trigger =
      now_us >= queue_.front().enqueue_us + config_.window_us;
  if (!size_trigger && !deadline_trigger && !force) return batch;
  const std::size_t n = std::min(config_.max_batch, queue_.size());
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_snapshot_.store(queue_.size(), std::memory_order_release);
  // order: stat tallies, snapshot for reporting only
  dispatched_.fetch_add(n, std::memory_order_relaxed);
  // order: stat tallies, snapshot for reporting only
  batches_.fetch_add(1, std::memory_order_relaxed);
  return batch;
}

std::optional<PendingRequest> RequestBatcher::ShedOldest(
    std::optional<std::uint32_t> tenant) {
  MutexLock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (tenant.has_value() && it->request.tenant != *tenant) continue;
    PendingRequest victim = std::move(*it);
    queue_.erase(it);
    depth_snapshot_.store(queue_.size(), std::memory_order_release);
    // order: stat tallies, snapshot for reporting only
    shed_.fetch_add(1, std::memory_order_relaxed);
    return victim;
  }
  return std::nullopt;
}

std::uint64_t RequestBatcher::NextDeadline() const {
  MutexLock lock(mu_);
  if (queue_.empty()) return ~0ULL;
  return queue_.front().enqueue_us + config_.window_us;
}

void RequestBatcher::Close() {
  // Under the lock so the flag cannot flip inside a concurrent Enqueue's
  // check-then-push window (see Enqueue).
  MutexLock lock(mu_);
  closed_.store(true, std::memory_order_release);
}

BatcherStats RequestBatcher::Stats() const {
  BatcherStats s;
  // order: stat tallies, snapshot for reporting only
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.dispatched = dispatched_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.closed_rejects = closed_rejects_.load(std::memory_order_relaxed);
  s.queued = Depth();
  return s;
}

}  // namespace platod2gl::serve
