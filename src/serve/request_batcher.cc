#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

namespace platod2gl::serve {

RequestBatcher::RequestBatcher(BatcherConfig config,
                               obs::MetricRegistry* metrics)
    : config_(config) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  using S = BatcherStats;
  counters_.enqueued =
      metrics_->BindCounter(&binding_, &S::enqueued, "pd2gl_batcher_enqueued");
  counters_.dispatched = metrics_->BindCounter(&binding_, &S::dispatched,
                                               "pd2gl_batcher_dispatched");
  counters_.batches =
      metrics_->BindCounter(&binding_, &S::batches, "pd2gl_batcher_batches");
  counters_.shed =
      metrics_->BindCounter(&binding_, &S::shed, "pd2gl_batcher_shed");
  counters_.closed_rejects = metrics_->BindCounter(
      &binding_, &S::closed_rejects, "pd2gl_batcher_closed_rejects");
}

Status RequestBatcher::Enqueue(PendingRequest req, std::uint64_t now_us) {
  // The closed check and the push must be one critical section: an
  // unlocked check-then-lock lets a concurrent Close() land in between
  // and strand the request in a queue nothing will drain (pinned by
  // BatcherCloseScenario in tests/test_schedcheck_scenarios.cc).
  MutexLock lock(mu_);
  if (closed()) {
    counters_.closed_rejects->Add(1);
    return Status::Unavailable("batcher closed");
  }
  req.enqueue_us = now_us;
  queue_.push_back(std::move(req));
  depth_snapshot_.store(queue_.size(), std::memory_order_release);
  counters_.enqueued->Add(1);
  return Status::Ok();
}

bool RequestBatcher::Due(std::uint64_t now_us) const {
  MutexLock lock(mu_);
  if (queue_.empty()) return false;
  if (queue_.size() >= config_.max_batch) return true;
  return now_us >= queue_.front().enqueue_us + config_.window_us;
}

std::vector<PendingRequest> RequestBatcher::FormBatch(std::uint64_t now_us,
                                                      bool force) {
  std::vector<PendingRequest> batch;
  MutexLock lock(mu_);
  if (queue_.empty()) return batch;
  const bool size_trigger = queue_.size() >= config_.max_batch;
  const bool deadline_trigger =
      now_us >= queue_.front().enqueue_us + config_.window_us;
  if (!size_trigger && !deadline_trigger && !force) return batch;
  const std::size_t n = std::min(config_.max_batch, queue_.size());
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_snapshot_.store(queue_.size(), std::memory_order_release);
  counters_.dispatched->Add(n);
  counters_.batches->Add(1);
  return batch;
}

std::optional<PendingRequest> RequestBatcher::ShedOldest(
    std::optional<std::uint32_t> tenant) {
  MutexLock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (tenant.has_value() && it->request.tenant != *tenant) continue;
    PendingRequest victim = std::move(*it);
    queue_.erase(it);
    depth_snapshot_.store(queue_.size(), std::memory_order_release);
    counters_.shed->Add(1);
    return victim;
  }
  return std::nullopt;
}

std::uint64_t RequestBatcher::NextDeadline() const {
  MutexLock lock(mu_);
  if (queue_.empty()) return ~0ULL;
  return queue_.front().enqueue_us + config_.window_us;
}

void RequestBatcher::Close() {
  // Under the lock so the flag cannot flip inside a concurrent Enqueue's
  // check-then-push window (see Enqueue).
  MutexLock lock(mu_);
  closed_.store(true, std::memory_order_release);
}

BatcherStats RequestBatcher::Stats() const {
  BatcherStats s = binding_.Read();
  s.queued = Depth();
  return s;
}

}  // namespace platod2gl::serve
