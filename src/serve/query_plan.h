// QueryPlan: the serving layer's composable sampling-query language.
//
// Online GNN serving systems expose a small graph-sampling language (GSL
// in AliGraph, similar surfaces in GLISP) instead of raw point lookups: a
// request names seed vertices and a short pipeline of operators —
// traverse, sample(fanout, weighted|uniform), negative-sample, gather
// attributes — and the server executes the pipeline against one
// consistent snapshot of the evolving graph. This header defines the
// plan, the request/response value types, and the planner that validates
// a plan and lowers it into the executable step list the PlanExecutor
// drives (src/serve/executor.h).
//
// A plan is a DAG expressed as a topologically-ordered op list: each op
// consumes either the request's seeds (kPlanInputSeeds) or the vertex
// frontier produced by an EARLIER op (input < own index). Gather is a
// sink (it produces feature rows, not vertices), so it can never be an
// input. Validation is conservative: op count, fanouts, seed counts,
// negative-sample ranges, edge types, and the worst-case frontier growth
// along every chain are all bounded before a request is admitted, so a
// hostile plan cannot drive an unbounded execution.
//
// Determinism: every random operator of request r draws from
// OpSeed(r.rng_seed, op_index) — a pure function, independent of
// batching, admission order, and retries. tests/test_serve.cc pins that a
// served sample stage is bit-identical to a direct
// GraphCluster::SampleNeighborsChecked call with the same derived seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/trace.h"

namespace platod2gl::serve {

/// Sentinel `input`: the op consumes the request's seed vertices.
inline constexpr std::uint32_t kPlanInputSeeds = 0xFFFFFFFFu;

enum class OpKind : std::uint8_t {
  kTraverse = 0,        ///< up to `fanout` neighbours, store order, RNG-free
  kSample = 1,          ///< `fanout` draws per vertex, weighted or uniform
  kNegativeSample = 2,  ///< `count` uniform draws from [range_lo, range_hi)
                        ///< avoiding the input frontier
  kGather = 3,          ///< feature rows of the input frontier (sink)
};

struct PlanOp {
  OpKind kind = OpKind::kSample;
  std::uint32_t input = kPlanInputSeeds;  ///< producing op index or seeds
  EdgeType edge_type = 0;                 ///< traverse / sample
  std::uint32_t fanout = 0;               ///< traverse cap / sample fanout
  bool weighted = true;                   ///< sample only
  std::uint32_t count = 0;                ///< negative-sample draws
  VertexId range_lo = 0;                  ///< negative-sample range
  VertexId range_hi = 0;

  friend bool operator==(const PlanOp&, const PlanOp&) = default;
};

/// Builder-style plan. Ops execute in index order; `input` defaults to
/// the request seeds so a linear pipeline reads naturally:
///   QueryPlan p;
///   p.Sample(10).Sample(5, /*weighted=*/false, /*input=*/0).Gather(1);
struct QueryPlan {
  std::vector<PlanOp> ops;

  QueryPlan& Traverse(std::uint32_t cap, EdgeType type = 0,
                      std::uint32_t input = kPlanInputSeeds) {
    PlanOp op;
    op.kind = OpKind::kTraverse;
    op.input = input;
    op.edge_type = type;
    op.fanout = cap;
    ops.push_back(op);
    return *this;
  }
  QueryPlan& Sample(std::uint32_t fanout, bool weighted = true,
                    std::uint32_t input = kPlanInputSeeds,
                    EdgeType type = 0) {
    PlanOp op;
    op.kind = OpKind::kSample;
    op.input = input;
    op.edge_type = type;
    op.fanout = fanout;
    op.weighted = weighted;
    ops.push_back(op);
    return *this;
  }
  QueryPlan& NegativeSample(std::uint32_t count, VertexId range_lo,
                            VertexId range_hi,
                            std::uint32_t input = kPlanInputSeeds) {
    PlanOp op;
    op.kind = OpKind::kNegativeSample;
    op.input = input;
    op.count = count;
    op.range_lo = range_lo;
    op.range_hi = range_hi;
    ops.push_back(op);
    return *this;
  }
  QueryPlan& Gather(std::uint32_t input = kPlanInputSeeds) {
    PlanOp op;
    op.kind = OpKind::kGather;
    op.input = input;
    ops.push_back(op);
    return *this;
  }

  friend bool operator==(const QueryPlan&, const QueryPlan&) = default;
};

/// Planner bounds; also the admission-time resource limits a hostile
/// plan is checked against.
struct PlannerLimits {
  std::size_t max_ops = 8;
  std::size_t max_seeds = 4096;
  std::uint32_t max_fanout = 1024;
  std::uint32_t max_negatives = 4096;
  /// Worst-case vertices any single frontier may reach (seeds x fanout
  /// products along the chain).
  std::size_t max_frontier = 1u << 18;
  /// Edge types must be < num_relations (the cluster's store config).
  std::size_t num_relations = 1;
};

/// One executable step: the op plus its resolved input slot — slot 0 is
/// the request seeds, slot i + 1 is op i's output frontier.
struct LoweredStep {
  PlanOp op;
  std::size_t input_slot = 0;
};

/// A validated plan lowered into the executor's step list, with the
/// planner's cost estimates (used by admission accounting and tests).
struct LoweredPlan {
  std::vector<LoweredStep> steps;
  std::size_t rpc_rounds = 0;    ///< steps that touch shards (not negatives)
  std::size_t max_frontier = 0;  ///< worst-case vertices in any one slot
};

/// Validate `plan` for a request with `num_seeds` seeds against `limits`
/// and lower it. Non-OK (kInvalidArgument) names the offending op; `out`
/// is only written on success.
Status ValidateAndLower(const QueryPlan& plan, std::size_t num_seeds,
                        const PlannerLimits& limits, LoweredPlan* out);

/// Per-op RNG seed derivation: pure in (request seed, op index), so an
/// op's draw stream is independent of batching and of every other op.
inline std::uint64_t OpSeed(std::uint64_t rng_seed, std::size_t op_index) {
  SplitMix64 mix(rng_seed ^
                 (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                             op_index + 1)));
  return mix.Next();
}

/// One serving request: who is asking (tenant), the seeds, the plan, and
/// the RNG seed that makes every random draw reproducible.
struct QueryRequest {
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  std::uint64_t rng_seed = 0;
  /// Propagated trace identity (wire v2). Left unset (all zero), the
  /// server derives a deterministic sampled context at the door; a caller
  /// that already has a trace passes it through here.
  obs::TraceContext trace;
  std::vector<VertexId> seeds;
  QueryPlan plan;

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

enum class RequestStatus : std::uint8_t {
  kOk = 0,
  kDegraded = 1,  ///< served, but some frontier came back degraded/stale
  kShed = 2,      ///< dropped by admission's shed-oldest policy
};

/// One op's output: vertex frontiers carry `ids` + per-input `offsets`
/// (NeighborBatch layout); gather stages carry dense feature rows
/// instead.
struct StageOutput {
  std::vector<VertexId> ids;
  std::vector<std::uint64_t> offsets;
  std::uint32_t feature_dim = 0;
  std::vector<float> features;

  friend bool operator==(const StageOutput&, const StageOutput&) = default;
};

struct QueryResponse {
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kOk;
  /// The EpochCoordinator epoch this request's snapshot was pinned at.
  std::uint64_t epoch = 0;
  /// The trace this request was served under (0 = untraced); the handle
  /// a client quotes to `pd2gl trace` / TraceSink::Find.
  std::uint64_t trace_id = 0;
  std::vector<StageOutput> stages;  ///< one per plan op (empty when shed)
  /// Virtual-time latency (arrival -> completion); server-side metadata,
  /// not part of the wire format.
  std::uint64_t latency_us = 0;

  friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

}  // namespace platod2gl::serve
