#include "serve/query_plan.h"

#include <string>
#include <utility>
#include <vector>

namespace platod2gl::serve {

namespace {
std::string OpName(OpKind kind) {
  switch (kind) {
    case OpKind::kTraverse:
      return "traverse";
    case OpKind::kSample:
      return "sample";
    case OpKind::kNegativeSample:
      return "negative-sample";
    case OpKind::kGather:
      return "gather";
  }
  return "unknown";
}
}  // namespace

Status ValidateAndLower(const QueryPlan& plan, std::size_t num_seeds,
                        const PlannerLimits& limits, LoweredPlan* out) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("plan has no ops");
  }
  if (plan.ops.size() > limits.max_ops) {
    return Status::InvalidArgument("plan has " +
                                   std::to_string(plan.ops.size()) +
                                   " ops, limit " +
                                   std::to_string(limits.max_ops));
  }
  if (num_seeds == 0 || num_seeds > limits.max_seeds) {
    return Status::InvalidArgument("request has " + std::to_string(num_seeds) +
                                   " seeds, limit 1.." +
                                   std::to_string(limits.max_seeds));
  }

  LoweredPlan lowered;
  lowered.steps.reserve(plan.ops.size());
  // bound[slot] = worst-case vertices that slot can hold; slot 0 = seeds.
  std::vector<std::size_t> bound(plan.ops.size() + 1, 0);
  bound[0] = num_seeds;
  lowered.max_frontier = num_seeds;

  for (std::size_t j = 0; j < plan.ops.size(); ++j) {
    const PlanOp& op = plan.ops[j];
    const std::string where = "op " + std::to_string(j) + " (" +
                              OpName(op.kind) + ")";
    // Resolve the input slot: the request seeds, or an earlier
    // vertex-producing op.
    std::size_t input_slot = 0;
    if (op.input != kPlanInputSeeds) {
      if (op.input >= j) {
        return Status::InvalidArgument(
            where + ": input " + std::to_string(op.input) +
            " does not reference an earlier op");
      }
      if (plan.ops[op.input].kind == OpKind::kGather) {
        return Status::InvalidArgument(
            where + ": input " + std::to_string(op.input) +
            " is a gather sink, which produces feature rows, not vertices");
      }
      input_slot = static_cast<std::size_t>(op.input) + 1;
    }

    std::size_t produced = 0;
    switch (op.kind) {
      case OpKind::kTraverse:
      case OpKind::kSample:
        if (op.fanout == 0 || op.fanout > limits.max_fanout) {
          return Status::InvalidArgument(
              where + ": fanout " + std::to_string(op.fanout) +
              " outside 1.." + std::to_string(limits.max_fanout));
        }
        if (op.edge_type >= limits.num_relations) {
          return Status::InvalidArgument(
              where + ": edge type " + std::to_string(op.edge_type) +
              " >= num_relations " + std::to_string(limits.num_relations));
        }
        produced = bound[input_slot] * op.fanout;
        ++lowered.rpc_rounds;
        break;
      case OpKind::kNegativeSample:
        if (op.count == 0 || op.count > limits.max_negatives) {
          return Status::InvalidArgument(
              where + ": count " + std::to_string(op.count) + " outside 1.." +
              std::to_string(limits.max_negatives));
        }
        if (op.range_hi <= op.range_lo) {
          return Status::InvalidArgument(where + ": empty candidate range");
        }
        produced = op.count;
        break;
      case OpKind::kGather:
        produced = 0;  // sink: feature rows, not a frontier
        ++lowered.rpc_rounds;
        break;
      default:
        return Status::InvalidArgument(where + ": unknown op kind");
    }
    if (produced > limits.max_frontier) {
      return Status::InvalidArgument(
          where + ": worst-case frontier " + std::to_string(produced) +
          " exceeds limit " + std::to_string(limits.max_frontier));
    }
    bound[j + 1] = produced;
    if (produced > lowered.max_frontier) lowered.max_frontier = produced;

    LoweredStep step;
    step.op = op;
    step.input_slot = input_slot;
    lowered.steps.push_back(step);
  }

  *out = std::move(lowered);
  return Status::Ok();
}

}  // namespace platod2gl::serve
