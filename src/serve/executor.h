// PlanExecutor: lowered-plan execution over the GraphCluster.
//
// Executes a BATCH of lowered plans step-synchronously: at step j, every
// request in the batch that has a j-th op contributes its work to one
// cross-request cluster round per op kind — one SampleMany /
// TraverseMany / GatherMany call, i.e. one RPC per touched shard for the
// WHOLE batch (the cross-request coalescing the serving layer exists
// for). Negative sampling is pure client-side computation and costs no
// round.
//
// Consistency: the whole batch executes under ONE EpochCoordinator
// ReadGuard, so every request in it reads the same G^(t) snapshot while
// the MicroBatcher applies updates between batches; the pinned epoch is
// stamped into each response.
//
// Determinism: request r's op j draws from OpSeed(r.rng_seed, j)
// regardless of which batch it rode in — SampleMany re-derives each
// item's per-shard RNG exactly as a solo SampleNeighborsChecked call
// would, so batched results are bit-identical to per-request execution
// (pinned in tests/test_serve.cc).
//
// Cost model: the returned virtual_us sums each round's virtual wall
// time (the slowest shard RPC of the round, retries included) — the
// batch's service time on the server's virtual clock (serve/server.h).
//
// Tracing: for every request carrying a sampled TraceBuilder, each plan
// step emits one span (kind by op) under the request's root, and each
// RPC-backed step emits one kRpcShard child per shard its OWN frontier
// routes to (partitioner order). Span structure is therefore a pure
// function of the request's plan and frontiers — identical batched or
// solo (pinned in tests/test_trace.cc); timestamps advance on the
// batch's virtual clock from `start_us`, round by round.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/cluster.h"
#include "pipeline/epoch_coordinator.h"
#include "serve/query_plan.h"
#include "serve/request_batcher.h"

namespace platod2gl::serve {

struct ExecOutcome {
  /// One response per batch request, in batch order. latency_us is left 0
  /// (the server stamps it from the virtual completion time).
  std::vector<QueryResponse> responses;
  std::uint64_t virtual_us = 0;  ///< batch service time (summed rounds)
  std::uint64_t rounds = 0;      ///< cluster rounds issued
};

class PlanExecutor {
 public:
  PlanExecutor(GraphCluster* cluster, EpochCoordinator* epochs)
      : cluster_(cluster), epochs_(epochs) {}

  /// Execute every request in `batch` against one pinned epoch. The batch
  /// is mutable only for its TraceBuilders (span emission); `start_us` is
  /// the batch's virtual start time, the base for span timestamps.
  ExecOutcome ExecuteBatch(std::vector<PendingRequest>& batch,
                           std::uint64_t start_us = 0);

 private:
  GraphCluster* cluster_;
  EpochCoordinator* epochs_;
};

}  // namespace platod2gl::serve
