// RequestBatcher: deadline-bounded cross-request batch formation.
//
// The single biggest lever an online sampling tier has is amortising the
// per-RPC cost across concurrent requests: ten requests each wanting a
// fanout-10 descent cost ten RPCs per shard served one by one, but one
// RPC per shard when coalesced into a single batched descent
// (GraphCluster::SampleMany -> Samtree::Sample*Batch, PR 5's vectorized
// hot path). The batcher holds admitted requests in arrival order and
// releases them as a batch when either
//
//  * the batch is full (`max_batch` requests), or
//  * the OLDEST waiting request has waited `window_us` of virtual time —
//    the batch-formation deadline that bounds how much latency batching
//    itself may add.
//
// Time here is the server's virtual clock (see serve/server.h), so batch
// formation is deterministic given the arrival sequence. ShedOldest() is
// the admission shed-policy hook: it evicts the request that has waited
// longest (optionally scoped to one tenant, to relieve a quota) so the
// server can admit fresher work — freshness-over-completeness, exactly
// like the ingestor's kDropOldest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/sched_hooks.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_plan.h"

namespace platod2gl::serve {

/// An admitted request waiting for (or riding in) a batch: the request,
/// its validated lowered plan, and its virtual timestamps.
struct PendingRequest {
  QueryRequest request;
  LoweredPlan plan;
  std::uint64_t arrival_us = 0;  ///< when the client submitted
  std::uint64_t enqueue_us = 0;  ///< when admission let it into the queue
  /// Span builder when the request's trace context is sampled (null
  /// otherwise). Rides the request through queue -> batch -> retirement;
  /// the server finishes it into the TraceSink, and the shed path closes
  /// every open span so an evicted request never leaks one.
  std::unique_ptr<obs::TraceBuilder> trace;
  std::uint32_t root_span = 0;  ///< the kServeRequest span's id
};

struct BatcherConfig {
  std::size_t max_batch = 32;      ///< release when this many are waiting
  std::uint64_t window_us = 200;   ///< batch-formation deadline (virtual)
};

/// Monotonic counters + a point-in-time queue snapshot.
struct BatcherStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dispatched = 0;      ///< requests released into batches
  std::uint64_t batches = 0;         ///< batches formed
  std::uint64_t shed = 0;            ///< requests evicted by ShedOldest
  std::uint64_t closed_rejects = 0;  ///< enqueues after Close()
  std::size_t queued = 0;
};

class RequestBatcher {
 public:
  /// `metrics` hosts the pd2gl_batcher_* series; the GraphServer passes
  /// its own registry. A standalone batcher (tests) owns a private one.
  explicit RequestBatcher(BatcherConfig config = {},
                          obs::MetricRegistry* metrics = nullptr);

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Queue one admitted request at virtual time `now_us`. kUnavailable
  /// after Close().
  Status Enqueue(PendingRequest req, std::uint64_t now_us);

  /// Would FormBatch release a batch at `now_us`?
  bool Due(std::uint64_t now_us) const;

  /// Release the next batch: up to max_batch requests in arrival order,
  /// if the size or deadline trigger fired (or `force`, the drain path).
  /// Empty when nothing is due.
  std::vector<PendingRequest> FormBatch(std::uint64_t now_us,
                                        bool force = false);

  /// Evict the longest-waiting request (optionally of one tenant) so the
  /// server can admit fresher work; the server completes it as kShed.
  std::optional<PendingRequest> ShedOldest(
      std::optional<std::uint32_t> tenant = std::nullopt);

  /// Virtual time at which the oldest waiting request hits the formation
  /// deadline; ~0 when the queue is empty.
  std::uint64_t NextDeadline() const;

  /// Stop admitting into the queue; queued requests remain drainable via
  /// FormBatch(force) — Close() then a forced drain is clean shutdown.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t Depth() const {
    return depth_snapshot_.load(std::memory_order_acquire);
  }

  BatcherStats Stats() const;

  const BatcherConfig& config() const { return config_; }

 private:
  /// Registry-backed monotone tallies (pd2gl_batcher_*).
  struct Counters {
    obs::Counter* enqueued = nullptr;
    obs::Counter* dispatched = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* closed_rejects = nullptr;
  };

  BatcherConfig config_;
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::StatsBinding<BatcherStats> binding_;
  Counters counters_;
  mutable Mutex mu_;
  std::deque<PendingRequest> queue_ GUARDED_BY(mu_);

  // STATE atomics stay sched::Atomic (schedule points under
  // PD2GL_SCHEDCHECK — close-vs-enqueue scenario); tallies live in the
  // registry counters above.
  sched::Atomic<bool> closed_{false};
  sched::Atomic<std::size_t> depth_snapshot_{0};
};

}  // namespace platod2gl::serve
