#include "serve/server.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

namespace platod2gl::serve {

GraphServer::GraphServer(GraphCluster* cluster, EpochCoordinator* epochs,
                         ServeConfig config)
    : config_(config),
      executor_(cluster, epochs),
      admission_(config.admission),
      batcher_(config.batcher) {
  config_.num_tenants = std::max<std::size_t>(1, config_.num_tenants);
  config_.limits.num_relations =
      std::max<std::size_t>(1, config_.limits.num_relations);
  tenant_latency_.reserve(config_.num_tenants);
  for (std::size_t t = 0; t < config_.num_tenants; ++t) {
    tenant_latency_.push_back(std::make_unique<LatencyHistogram>());
  }
}

void GraphServer::RetireLocked(std::uint64_t now_us, bool all) {
  while (!in_flight_.empty() &&
         (all || in_flight_.top().completion_us <= now_us)) {
    // priority_queue::top is const; the move is safe because we pop
    // immediately and never touch the moved-from top again.
    InFlightBatch batch =
        std::move(const_cast<InFlightBatch&>(in_flight_.top()));
    in_flight_.pop();
    for (std::size_t i = 0; i < batch.responses.size(); ++i) {
      QueryResponse& resp = batch.responses[i];
      admission_.Release(batch.tenants[i]);
      const std::uint64_t nanos = resp.latency_us * 1000;
      latency_.Record(nanos);
      if (resp.tenant < tenant_latency_.size()) {
        tenant_latency_[resp.tenant]->Record(nanos);
      }
      // order: stat tallies, snapshot for reporting only
      completed_count_.fetch_add(1, std::memory_order_relaxed);
      if (resp.status == RequestStatus::kDegraded) {
        // order: stat tallies, snapshot for reporting only
        degraded_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // order: stat tallies, snapshot for reporting only
        ok_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.push_back(std::move(resp));
    }
  }
}

void GraphServer::CompleteShedLocked(PendingRequest victim,
                                     std::uint64_t now_us) {
  admission_.Release(victim.request.tenant);
  QueryResponse resp;
  resp.tenant = victim.request.tenant;
  resp.request_id = victim.request.request_id;
  resp.status = RequestStatus::kShed;
  resp.latency_us = now_us - victim.arrival_us;
  // Shed latencies are intentionally NOT recorded into the SLO
  // histograms: a shed is its own counted outcome, not a served latency.
  // order: stat tallies, snapshot for reporting only
  shed_.fetch_add(1, std::memory_order_relaxed);
  // order: stat tallies, snapshot for reporting only
  completed_count_.fetch_add(1, std::memory_order_relaxed);
  completed_.push_back(std::move(resp));
}

Status GraphServer::Submit(QueryRequest req, std::uint64_t now_us) {
  // order: stat tallies, snapshot for reporting only
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    // Free any window slots whose virtual completion the clock passed —
    // admission pressure must reflect "now", not the last Pump.
    MutexLock lock(mu_);
    RetireLocked(now_us, /*all=*/false);
  }
  if (req.tenant >= config_.num_tenants) {
    // order: stat tallies, snapshot for reporting only
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("tenant " + std::to_string(req.tenant) +
                                   " >= num_tenants " +
                                   std::to_string(config_.num_tenants));
  }
  PendingRequest pending;
  Status valid = ValidateAndLower(req.plan, req.seeds.size(), config_.limits,
                                  &pending.plan);
  if (!valid.ok()) {
    // order: stat tallies, snapshot for reporting only
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }

  // Admission: the policy matrix decides what a full window means.
  switch (config_.admission.policy) {
    case AdmissionPolicy::kBlock: {
      const AdmissionController::Verdict v = admission_.Admit(req.tenant);
      if (v != AdmissionController::Verdict::kAdmitted) {
        return Status::Unavailable("server closed");
      }
      break;
    }
    case AdmissionPolicy::kReject: {
      const AdmissionController::Verdict v = admission_.TryAdmit(req.tenant);
      if (v == AdmissionController::Verdict::kClosed) {
        return Status::Unavailable("server closed");
      }
      if (v != AdmissionController::Verdict::kAdmitted) {
        // order: stat tallies, snapshot for reporting only
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            v == AdmissionController::Verdict::kWindowFull
                ? "admission window full"
                : "tenant quota exhausted");
      }
      break;
    }
    case AdmissionPolicy::kShedOldest: {
      // Shed-oldest: evict the longest-waiting queued request (same
      // tenant when it is the quota that is full) until the probe
      // succeeds. Probes don't count as rejects — the shed is the
      // counted outcome. Deterministic: driven purely by arrival order.
      while (true) {
        const AdmissionController::Verdict v =
            admission_.TryAdmit(req.tenant, /*count_reject=*/false);
        if (v == AdmissionController::Verdict::kAdmitted) break;
        if (v == AdmissionController::Verdict::kClosed) {
          return Status::Unavailable("server closed");
        }
        std::optional<PendingRequest> victim = batcher_.ShedOldest(
            v == AdmissionController::Verdict::kQuotaFull
                ? std::optional<std::uint32_t>(req.tenant)
                : std::nullopt);
        if (!victim.has_value()) {
          // Nothing sheddable (the window is held by executing batches):
          // fall back to a counted reject.
          // order: stat tallies, snapshot for reporting only
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return Status::ResourceExhausted(
              "admission window full of in-flight work");
        }
        MutexLock lock(mu_);
        CompleteShedLocked(std::move(*victim), now_us);
      }
      break;
    }
  }

  const std::uint32_t tenant = req.tenant;
  pending.request = std::move(req);
  pending.arrival_us = now_us;
  Status queued = batcher_.Enqueue(std::move(pending), now_us);
  if (!queued.ok()) {
    // Closed between admission and enqueue: hand the slot back.
    admission_.Release(tenant);
    return queued;
  }
  return Status::Ok();
}

std::size_t GraphServer::DispatchLocked(std::uint64_t now_us, bool force) {
  std::size_t dispatched = 0;
  while (true) {
    std::vector<PendingRequest> batch = batcher_.FormBatch(now_us, force);
    if (batch.empty()) break;
    const std::uint64_t start = std::max(now_us, busy_until_us_);
    ExecOutcome exec = executor_.ExecuteBatch(batch);
    const std::uint64_t completion = start + exec.virtual_us;
    busy_until_us_ = completion;
    busy_until_snapshot_.store(completion, std::memory_order_release);

    InFlightBatch in_flight;
    in_flight.completion_us = completion;
    in_flight.seq = next_batch_seq_++;
    in_flight.tenants.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      exec.responses[i].latency_us = completion - batch[i].arrival_us;
      in_flight.tenants.push_back(batch[i].request.tenant);
    }
    in_flight.responses = std::move(exec.responses);
    in_flight_.push(std::move(in_flight));

    dispatched += batch.size();
    // order: stat tallies, snapshot for reporting only
    batches_.fetch_add(1, std::memory_order_relaxed);
    // order: stat tallies, snapshot for reporting only
    batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    // order: stat tallies, snapshot for reporting only
    rpc_rounds_.fetch_add(exec.rounds, std::memory_order_relaxed);
    // order: stat tallies, snapshot for reporting only
    virtual_busy_us_.fetch_add(exec.virtual_us, std::memory_order_relaxed);
  }
  return dispatched;
}

std::size_t GraphServer::Pump(std::uint64_t now_us) {
  MutexLock lock(mu_);
  RetireLocked(now_us, /*all=*/false);
  const std::size_t dispatched = DispatchLocked(now_us, /*force=*/false);
  RetireLocked(now_us, /*all=*/false);
  return dispatched;
}

std::size_t GraphServer::Drain(std::uint64_t now_us) {
  MutexLock lock(mu_);
  const std::size_t dispatched = DispatchLocked(now_us, /*force=*/true);
  RetireLocked(now_us, /*all=*/true);
  return dispatched;
}

void GraphServer::Close() {
  admission_.Close();
  batcher_.Close();
}

std::vector<QueryResponse> GraphServer::TakeCompleted() {
  MutexLock lock(mu_);
  std::vector<QueryResponse> out = std::move(completed_);
  completed_.clear();
  return out;
}

SloReport GraphServer::EndSloWindow() {
  MutexLock lock(mu_);
  const HistogramSnapshot snap = latency_.Snapshot();
  const HistogramSnapshot window = snap.DeltaSince(slo_window_base_);
  slo_window_base_ = snap;
  SloReport report;
  report.count = window.Count();
  report.p50_us = window.PercentileMicros(50.0);
  report.p99_us = window.PercentileMicros(99.0);
  report.violated = config_.slo_target_p99_us > 0 && report.count > 0 &&
                    report.p99_us >
                        static_cast<double>(config_.slo_target_p99_us);
  // order: stat tallies, snapshot for reporting only
  slo_windows_.fetch_add(1, std::memory_order_relaxed);
  if (report.violated) {
    // order: stat tallies, snapshot for reporting only
    slo_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  return report;
}

ServeStats GraphServer::Stats() const {
  ServeStats s;
  // order: stat tallies, snapshot for reporting only
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_count_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.rpc_rounds = rpc_rounds_.load(std::memory_order_relaxed);
  s.virtual_busy_us = virtual_busy_us_.load(std::memory_order_relaxed);
  s.slo_windows = slo_windows_.load(std::memory_order_relaxed);
  s.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  s.admission = admission_.Stats();
  s.batcher = batcher_.Stats();
  return s;
}

}  // namespace platod2gl::serve
