#include "serve/server.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

namespace platod2gl::serve {

GraphServer::GraphServer(GraphCluster* cluster, EpochCoordinator* epochs,
                         ServeConfig config)
    : config_(config),
      executor_(cluster, epochs),
      admission_(config.admission, &metrics_),
      batcher_(config.batcher, &metrics_),
      trace_sink_(std::max<std::size_t>(1, config.trace_capacity)) {
  config_.num_tenants = std::max<std::size_t>(1, config_.num_tenants);
  config_.limits.num_relations =
      std::max<std::size_t>(1, config_.limits.num_relations);
  tenant_latency_.reserve(config_.num_tenants);
  for (std::size_t t = 0; t < config_.num_tenants; ++t) {
    tenant_latency_.push_back(std::make_unique<LatencyHistogram>());
    metrics_.RegisterExternalHistogram("pd2gl_serve_tenant_latency_nanos",
                                       {{"tenant", std::to_string(t)}},
                                       tenant_latency_.back().get());
  }
  metrics_.RegisterExternalHistogram("pd2gl_serve_latency_nanos", {},
                                     &latency_);
  using S = ServeStats;
  counters_.submitted =
      metrics_.BindCounter(&binding_, &S::submitted, "pd2gl_serve_submitted");
  counters_.completed =
      metrics_.BindCounter(&binding_, &S::completed, "pd2gl_serve_completed");
  counters_.ok = metrics_.BindCounter(&binding_, &S::ok, "pd2gl_serve_ok");
  counters_.degraded =
      metrics_.BindCounter(&binding_, &S::degraded, "pd2gl_serve_degraded");
  counters_.shed =
      metrics_.BindCounter(&binding_, &S::shed, "pd2gl_serve_shed");
  counters_.invalid =
      metrics_.BindCounter(&binding_, &S::invalid, "pd2gl_serve_invalid");
  counters_.rejected =
      metrics_.BindCounter(&binding_, &S::rejected, "pd2gl_serve_rejected");
  counters_.batches =
      metrics_.BindCounter(&binding_, &S::batches, "pd2gl_serve_batches");
  counters_.batched_requests = metrics_.BindCounter(
      &binding_, &S::batched_requests, "pd2gl_serve_batched_requests");
  counters_.rpc_rounds =
      metrics_.BindCounter(&binding_, &S::rpc_rounds, "pd2gl_serve_rpc_rounds");
  counters_.virtual_busy_us = metrics_.BindCounter(
      &binding_, &S::virtual_busy_us, "pd2gl_serve_virtual_busy_us");
  counters_.slo_windows = metrics_.BindCounter(&binding_, &S::slo_windows,
                                               "pd2gl_serve_slo_windows");
  counters_.slo_violations = metrics_.BindCounter(
      &binding_, &S::slo_violations, "pd2gl_serve_slo_violations");
}

void GraphServer::RetireLocked(std::uint64_t now_us, bool all) {
  while (!in_flight_.empty() &&
         (all || in_flight_.top().completion_us <= now_us)) {
    // priority_queue::top is const; the move is safe because we pop
    // immediately and never touch the moved-from top again.
    InFlightBatch batch =
        std::move(const_cast<InFlightBatch&>(in_flight_.top()));
    in_flight_.pop();
    for (std::size_t i = 0; i < batch.responses.size(); ++i) {
      QueryResponse& resp = batch.responses[i];
      admission_.Release(batch.tenants[i]);
      const std::uint64_t nanos = resp.latency_us * 1000;
      latency_.Record(nanos);
      if (resp.tenant < tenant_latency_.size()) {
        tenant_latency_[resp.tenant]->Record(nanos);
      }
      counters_.completed->Add(1);
      if (resp.status == RequestStatus::kDegraded) {
        counters_.degraded->Add(1);
      } else {
        counters_.ok->Add(1);
      }
      if (batch.traces[i]) {
        obs::TraceBuilder& tb = *batch.traces[i];
        tb.EndSpan(batch.root_spans[i], batch.completion_us);
        // SLO-exemplar candidate: keep the worst sampled latency of the
        // current window. ">" takes the first-retired among ties, which
        // is deterministic under the single-driver pump.
        if (resp.latency_us > window_worst_us_ ||
            window_exemplar_trace_ == 0) {
          window_worst_us_ = resp.latency_us;
          window_exemplar_trace_ = tb.trace_id();
        }
        trace_sink_.Publish(std::move(tb).Finish(
            resp.tenant, resp.request_id,
            static_cast<std::uint8_t>(resp.status)));
      }
      completed_.push_back(std::move(resp));
    }
  }
}

void GraphServer::CompleteShedLocked(PendingRequest victim,
                                     std::uint64_t now_us) {
  admission_.Release(victim.request.tenant);
  QueryResponse resp;
  resp.tenant = victim.request.tenant;
  resp.request_id = victim.request.request_id;
  resp.status = RequestStatus::kShed;
  resp.trace_id = victim.request.trace.trace_id;
  resp.latency_us = now_us - victim.arrival_us;
  // Shed latencies are intentionally NOT recorded into the SLO
  // histograms: a shed is its own counted outcome, not a served latency.
  counters_.shed->Add(1);
  counters_.completed->Add(1);
  if (victim.trace) {
    // The victim never executed; CloseAll ends its root (and anything
    // else still open) so the published trace leaks no open spans.
    victim.trace->CloseAll(now_us);
    trace_sink_.Publish(std::move(*victim.trace)
                            .Finish(resp.tenant, resp.request_id,
                                    static_cast<std::uint8_t>(resp.status)));
  }
  completed_.push_back(std::move(resp));
}

Status GraphServer::Submit(QueryRequest req, std::uint64_t now_us) {
  counters_.submitted->Add(1);
  {
    // Free any window slots whose virtual completion the clock passed —
    // admission pressure must reflect "now", not the last Pump.
    MutexLock lock(mu_);
    RetireLocked(now_us, /*all=*/false);
  }
  if (req.tenant >= config_.num_tenants) {
    counters_.invalid->Add(1);
    return Status::InvalidArgument("tenant " + std::to_string(req.tenant) +
                                   " >= num_tenants " +
                                   std::to_string(config_.num_tenants));
  }
  PendingRequest pending;
  Status valid = ValidateAndLower(req.plan, req.seeds.size(), config_.limits,
                                  &pending.plan);
  if (!valid.ok()) {
    counters_.invalid->Add(1);
    return valid;
  }

  // Admission: the policy matrix decides what a full window means.
  switch (config_.admission.policy) {
    case AdmissionPolicy::kBlock: {
      const AdmissionController::Verdict v = admission_.Admit(req.tenant);
      if (v != AdmissionController::Verdict::kAdmitted) {
        return Status::Unavailable("server closed");
      }
      break;
    }
    case AdmissionPolicy::kReject: {
      const AdmissionController::Verdict v = admission_.TryAdmit(req.tenant);
      if (v == AdmissionController::Verdict::kClosed) {
        return Status::Unavailable("server closed");
      }
      if (v != AdmissionController::Verdict::kAdmitted) {
        counters_.rejected->Add(1);
        return Status::ResourceExhausted(
            v == AdmissionController::Verdict::kWindowFull
                ? "admission window full"
                : "tenant quota exhausted");
      }
      break;
    }
    case AdmissionPolicy::kShedOldest: {
      // Shed-oldest: evict the longest-waiting queued request (same
      // tenant when it is the quota that is full) until the probe
      // succeeds. Probes don't count as rejects — the shed is the
      // counted outcome. Deterministic: driven purely by arrival order.
      while (true) {
        const AdmissionController::Verdict v =
            admission_.TryAdmit(req.tenant, /*count_reject=*/false);
        if (v == AdmissionController::Verdict::kAdmitted) break;
        if (v == AdmissionController::Verdict::kClosed) {
          return Status::Unavailable("server closed");
        }
        std::optional<PendingRequest> victim = batcher_.ShedOldest(
            v == AdmissionController::Verdict::kQuotaFull
                ? std::optional<std::uint32_t>(req.tenant)
                : std::nullopt);
        if (!victim.has_value()) {
          // Nothing sheddable (the window is held by executing batches):
          // fall back to a counted reject.
          counters_.rejected->Add(1);
          return Status::ResourceExhausted(
              "admission window full of in-flight work");
        }
        MutexLock lock(mu_);
        CompleteShedLocked(std::move(*victim), now_us);
      }
      break;
    }
  }

  const std::uint32_t tenant = req.tenant;
  // Trace identity: derive a deterministic sampled context at the door
  // when the caller didn't bring one over wire v2. The id is pure in the
  // request identity (tenant, request_id, rng_seed) — no global sequence,
  // no wall clock — so batched/solo/retried executions agree.
  obs::TraceContext ctx = req.trace;
  std::uint32_t root_parent = obs::kNoParentSpan;
  if (ctx.unset()) {
    ctx.trace_id =
        obs::DeriveTraceId(req.tenant, req.request_id, req.rng_seed);
    ctx.flags = obs::TraceContext::kSampled;
  } else {
    root_parent = ctx.parent_span;
  }
  req.trace = ctx;
  pending.request = std::move(req);
  pending.arrival_us = now_us;
  if (ctx.sampled()) {
    pending.trace = std::make_unique<obs::TraceBuilder>(ctx.trace_id);
    pending.root_span = pending.trace->StartSpan(
        obs::SpanKind::kServeRequest, root_parent, now_us, 0, 0,
        pending.request.seeds.size());
  }
  Status queued = batcher_.Enqueue(std::move(pending), now_us);
  if (!queued.ok()) {
    // Closed between admission and enqueue: hand the slot back.
    admission_.Release(tenant);
    return queued;
  }
  return Status::Ok();
}

std::size_t GraphServer::DispatchLocked(std::uint64_t now_us, bool force) {
  std::size_t dispatched = 0;
  while (true) {
    std::vector<PendingRequest> batch = batcher_.FormBatch(now_us, force);
    if (batch.empty()) break;
    const std::uint64_t start = std::max(now_us, busy_until_us_);
    ExecOutcome exec = executor_.ExecuteBatch(batch, start);
    const std::uint64_t completion = start + exec.virtual_us;
    busy_until_us_ = completion;
    busy_until_snapshot_.store(completion, std::memory_order_release);

    InFlightBatch in_flight;
    in_flight.completion_us = completion;
    in_flight.seq = next_batch_seq_++;
    in_flight.tenants.reserve(batch.size());
    in_flight.traces.reserve(batch.size());
    in_flight.root_spans.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      exec.responses[i].latency_us = completion - batch[i].arrival_us;
      exec.responses[i].trace_id = batch[i].request.trace.trace_id;
      in_flight.tenants.push_back(batch[i].request.tenant);
      in_flight.traces.push_back(std::move(batch[i].trace));
      in_flight.root_spans.push_back(batch[i].root_span);
    }
    in_flight.responses = std::move(exec.responses);
    in_flight_.push(std::move(in_flight));

    dispatched += batch.size();
    counters_.batches->Add(1);
    counters_.batched_requests->Add(batch.size());
    counters_.rpc_rounds->Add(exec.rounds);
    counters_.virtual_busy_us->Add(exec.virtual_us);
  }
  return dispatched;
}

std::size_t GraphServer::Pump(std::uint64_t now_us) {
  MutexLock lock(mu_);
  RetireLocked(now_us, /*all=*/false);
  const std::size_t dispatched = DispatchLocked(now_us, /*force=*/false);
  RetireLocked(now_us, /*all=*/false);
  return dispatched;
}

std::size_t GraphServer::Drain(std::uint64_t now_us) {
  MutexLock lock(mu_);
  const std::size_t dispatched = DispatchLocked(now_us, /*force=*/true);
  RetireLocked(now_us, /*all=*/true);
  return dispatched;
}

void GraphServer::Close() {
  admission_.Close();
  batcher_.Close();
}

std::vector<QueryResponse> GraphServer::TakeCompleted() {
  MutexLock lock(mu_);
  std::vector<QueryResponse> out = std::move(completed_);
  completed_.clear();
  return out;
}

SloReport GraphServer::EndSloWindow() {
  MutexLock lock(mu_);
  const HistogramSnapshot snap = latency_.Snapshot();
  const HistogramSnapshot window = snap.DeltaSince(slo_window_base_);
  slo_window_base_ = snap;
  SloReport report;
  report.count = window.Count();
  report.p50_us = window.PercentileMicros(50.0);
  report.p99_us = window.PercentileMicros(99.0);
  report.violated = config_.slo_target_p99_us > 0 && report.count > 0 &&
                    report.p99_us >
                        static_cast<double>(config_.slo_target_p99_us);
  if (report.violated) {
    report.exemplar_trace_id = window_exemplar_trace_;
  }
  // The exemplar trackers are per-window: reset at every cut.
  window_worst_us_ = 0;
  window_exemplar_trace_ = 0;
  counters_.slo_windows->Add(1);
  if (report.violated) {
    counters_.slo_violations->Add(1);
  }
  return report;
}

ServeStats GraphServer::Stats() const {
  ServeStats s = binding_.Read();
  s.admission = admission_.Stats();
  s.batcher = batcher_.Stats();
  return s;
}

}  // namespace platod2gl::serve
