#include "serve/admission.h"

#include <algorithm>

namespace platod2gl::serve {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricRegistry* metrics)
    : config_(config) {
  config_.max_in_flight = std::max<std::size_t>(1, config_.max_in_flight);
  config_.tenant_quota =
      std::min(std::max<std::size_t>(1, config_.tenant_quota),
               config_.max_in_flight);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  using S = AdmissionStats;
  counters_.admitted =
      metrics_->BindCounter(&binding_, &S::admitted, "pd2gl_admission_admitted");
  counters_.window_rejects = metrics_->BindCounter(
      &binding_, &S::window_rejects, "pd2gl_admission_window_rejects");
  counters_.quota_rejects = metrics_->BindCounter(
      &binding_, &S::quota_rejects, "pd2gl_admission_quota_rejects");
  counters_.closed_rejects = metrics_->BindCounter(
      &binding_, &S::closed_rejects, "pd2gl_admission_closed_rejects");
  counters_.blocked_waits = metrics_->BindCounter(
      &binding_, &S::blocked_waits, "pd2gl_admission_blocked_waits");
}

bool AdmissionController::HasRoom(std::uint32_t tenant) const {
  if (in_flight_ >= config_.max_in_flight) return false;
  return tenant >= tenant_in_flight_.size() ||
         tenant_in_flight_[tenant] < config_.tenant_quota;
}

void AdmissionController::AdmitLocked(std::uint32_t tenant) {
  ++in_flight_;
  if (tenant >= tenant_in_flight_.size()) {
    tenant_in_flight_.resize(static_cast<std::size_t>(tenant) + 1, 0);
  }
  ++tenant_in_flight_[tenant];
  in_flight_snapshot_.store(in_flight_, std::memory_order_release);
  counters_.admitted->Add(1);
}

AdmissionController::Verdict AdmissionController::TryAdmit(
    std::uint32_t tenant, bool count_reject) {
  if (closed()) {
    counters_.closed_rejects->Add(1);
    return Verdict::kClosed;
  }
  MutexLock lock(mu_);
  if (in_flight_ >= config_.max_in_flight) {
    if (count_reject) {
      counters_.window_rejects->Add(1);
    }
    return Verdict::kWindowFull;
  }
  if (tenant < tenant_in_flight_.size() &&
      tenant_in_flight_[tenant] >= config_.tenant_quota) {
    if (count_reject) {
      counters_.quota_rejects->Add(1);
    }
    return Verdict::kQuotaFull;
  }
  AdmitLocked(tenant);
  return Verdict::kAdmitted;
}

AdmissionController::Verdict AdmissionController::Admit(std::uint32_t tenant) {
  if (closed()) {
    counters_.closed_rejects->Add(1);
    return Verdict::kClosed;
  }
  MutexLock lock(mu_);
  bool waited = false;
  while (!HasRoom(tenant) && !closed()) {
    if (!waited) {
      waited = true;
      counters_.blocked_waits->Add(1);
    }
    space_cv_.wait(mu_);
  }
  if (closed()) {
    counters_.closed_rejects->Add(1);
    return Verdict::kClosed;
  }
  AdmitLocked(tenant);
  return Verdict::kAdmitted;
}

void AdmissionController::Release(std::uint32_t tenant) {
  MutexLock lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (tenant < tenant_in_flight_.size() && tenant_in_flight_[tenant] > 0) {
    --tenant_in_flight_[tenant];
  }
  in_flight_snapshot_.store(in_flight_, std::memory_order_release);
  // The notify must happen under the lock: a kBlock submitter evaluates
  // HasRoom() and calls wait() inside its critical section, so an
  // unlocked notify can land in the gap between its check and its wait
  // and be lost — the submitter then sleeps forever because nothing else
  // signals space_cv (same bug class the schedule checker found in
  // UpdateIngestor::Close(); pinned by AdmissionWindowScenario in
  // tests/test_schedcheck_scenarios.cc).
  space_cv_.notify_all();
}

void AdmissionController::Close() {
  closed_.store(true, std::memory_order_release);
  // Wake every blocked submitter so it can observe the close; under the
  // lock for the same lost-wakeup reason as Release().
  MutexLock lock(mu_);
  space_cv_.notify_all();
}

AdmissionStats AdmissionController::Stats() const {
  AdmissionStats s = binding_.Read();
  s.in_flight = in_flight();
  return s;
}

}  // namespace platod2gl::serve
