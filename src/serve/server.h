// GraphServer: the asynchronous serving front end over GraphCluster.
//
// Ties the serving layer together (docs/serving.md):
//
//   Submit(req, now)  -> planner validation -> admission (policy matrix)
//                        -> RequestBatcher queue
//   Pump(now)         -> retire virtually-complete batches (free window
//                        slots, record latencies) -> form due batches ->
//                        PlanExecutor::ExecuteBatch under one pinned
//                        epoch -> schedule completion on the virtual
//                        clock
//
// Time is VIRTUAL, like the cluster's RPC accounting: the server models a
// single execution pipeline that is busy until `busy_until_us_`. A batch
// formed at time t starts at max(t, busy_until), runs for the executor's
// virtual service time, and completes at start + service; each request's
// latency is completion - arrival. Under offered load beyond the
// pipeline's capacity, busy_until runs ahead of arrivals, queues grow,
// the admission window fills, and the configured policy (block / reject /
// shed-oldest) decides who pays — exactly the dynamics an SLO bench needs
// (bench/bench_serve_slo.cc), with none of the wall-clock nondeterminism.
//
// Latencies feed one global and per-tenant LatencyHistograms; SLO windows
// are cut race-free with HistogramSnapshot::DeltaSince (never Reset()).
//
// Observability: the server owns an obs::MetricRegistry covering its own
// counters plus the admission and batcher series, and an obs::TraceSink
// of completed request traces. Every request gets a deterministic trace
// context at the door (unless the caller propagated one over wire v2);
// spans open at Submit, fan out through the executor per plan step and
// shard, and close at retirement — all on the virtual clock. EndSloWindow
// attaches the window's worst-latency trace id to a violated report.
//
// Threading: Submit may be called from many client threads; Pump/Drain
// from one driver. Everything deterministic in the tests/bench runs on a
// single driver thread, which makes admission and shed outcomes a pure
// function of (seed, arrival order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/sched_hooks.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/epoch_coordinator.h"
#include "serve/admission.h"
#include "serve/executor.h"
#include "serve/query_plan.h"
#include "serve/request_batcher.h"

namespace platod2gl::serve {

struct ServeConfig {
  AdmissionConfig admission;
  BatcherConfig batcher;
  PlannerLimits limits;
  std::size_t num_tenants = 4;
  /// p99 target per SLO window in virtual microseconds; 0 = untracked.
  std::uint64_t slo_target_p99_us = 0;
  /// Completed traces retained in the server's TraceSink ring.
  std::size_t trace_capacity = 128;
};

/// One SLO window cut by EndSloWindow(): interval percentiles over the
/// requests that completed since the previous cut.
struct SloReport {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool violated = false;  ///< count > 0 and p99 above the configured target
  /// Attached iff `violated`: the worst-latency sampled trace retired in
  /// this window — the execution record of (one of) the requests that
  /// blew the tail. Look it up via traces().Find or `pd2gl trace`.
  std::uint64_t exemplar_trace_id = 0;
};

/// Monotonic counters + point-in-time queue/window snapshots; admission
/// and batcher counters ride along so one call tells the whole story.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;       ///< responses retired (incl. shed)
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;            ///< completed as kShed
  std::uint64_t invalid = 0;         ///< bad tenant / plan validation failures
  std::uint64_t rejected = 0;        ///< refused by admission (reject policy)
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t rpc_rounds = 0;
  std::uint64_t virtual_busy_us = 0;  ///< summed batch service time
  std::uint64_t slo_windows = 0;
  std::uint64_t slo_violations = 0;
  AdmissionStats admission;
  BatcherStats batcher;
};

class GraphServer {
 public:
  GraphServer(GraphCluster* cluster, EpochCoordinator* epochs,
              ServeConfig config = {});

  GraphServer(const GraphServer&) = delete;
  GraphServer& operator=(const GraphServer&) = delete;

  /// Submit one request at virtual time `now_us`: validate, admit, queue.
  /// Non-OK: kInvalidArgument (tenant/plan), kResourceExhausted (reject
  /// policy, window/quota full and nothing sheddable), kUnavailable
  /// (closed). Under the kBlock policy this waits until a slot frees (a
  /// concurrent Pump retires work) or the server closes.
  Status Submit(QueryRequest req, std::uint64_t now_us);

  /// Advance the virtual clock: retire virtually-complete batches, then
  /// form and execute every batch due at `now_us`. Returns the number of
  /// requests dispatched into batches.
  std::size_t Pump(std::uint64_t now_us);

  /// Shutdown flush: force-form every queued request into batches,
  /// execute them, and retire everything regardless of the clock.
  /// Returns the number of requests dispatched.
  std::size_t Drain(std::uint64_t now_us);

  /// Stop admitting (admission + batcher close; blocked submitters wake).
  /// Queued work remains drainable: Close() then Drain() is clean
  /// shutdown, mirroring the ingestor.
  void Close();

  /// Move out every response retired so far (completion <= the last
  /// retire point), in completion order.
  std::vector<QueryResponse> TakeCompleted();

  /// Cut an SLO window: interval p50/p99 over completions since the last
  /// cut, via racefree snapshot deltas.
  SloReport EndSloWindow();

  ServeStats Stats() const;

  const LatencyHistogram& latency() const { return latency_; }
  /// Per-tenant latency distribution; nullptr for tenant >= num_tenants.
  const LatencyHistogram* tenant_latency(std::uint32_t tenant) const {
    return tenant < tenant_latency_.size() ? tenant_latency_[tenant].get()
                                           : nullptr;
  }

  std::uint64_t busy_until_us() const {
    return busy_until_snapshot_.load(std::memory_order_acquire);
  }

  const ServeConfig& config() const { return config_; }
  AdmissionController& admission() { return admission_; }
  RequestBatcher& batcher() { return batcher_; }

  /// The serving stack's registry: pd2gl_serve_* counters, the latency
  /// histograms (global + {tenant="t"}), and the admission/batcher series
  /// (registered here, not in private registries).
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  /// Completed traces, newest-`trace_capacity` retained.
  obs::TraceSink& traces() { return trace_sink_; }
  const obs::TraceSink& traces() const { return trace_sink_; }

 private:
  /// A batch whose virtual execution is still in flight: it holds its
  /// admission slots until the clock passes `completion_us`.
  struct InFlightBatch {
    std::uint64_t completion_us = 0;
    std::uint64_t seq = 0;  ///< dispatch order, the deterministic tiebreak
    std::vector<QueryResponse> responses;
    std::vector<std::uint32_t> tenants;
    /// Parallel to `responses`: the still-open trace of each request
    /// (null when untraced) and its root span, closed at retirement.
    std::vector<std::unique_ptr<obs::TraceBuilder>> traces;
    std::vector<std::uint32_t> root_spans;
  };
  struct LaterCompletion {
    bool operator()(const InFlightBatch& a, const InFlightBatch& b) const {
      if (a.completion_us != b.completion_us) {
        return a.completion_us > b.completion_us;
      }
      return a.seq > b.seq;
    }
  };

  /// Retire every in-flight batch with completion_us <= now (or all of
  /// them when `all`): free admission slots, record latencies, publish
  /// responses.
  void RetireLocked(std::uint64_t now_us, bool all) REQUIRES(mu_);
  /// Form/execute due batches at now_us (force = drain path).
  std::size_t DispatchLocked(std::uint64_t now_us, bool force) REQUIRES(mu_);
  /// Complete one shed victim without executing it.
  void CompleteShedLocked(PendingRequest victim, std::uint64_t now_us)
      REQUIRES(mu_);

  /// Registry-backed monotone tallies (pd2gl_serve_*).
  struct Counters {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* invalid = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batched_requests = nullptr;
    obs::Counter* rpc_rounds = nullptr;
    obs::Counter* virtual_busy_us = nullptr;
    obs::Counter* slo_windows = nullptr;
    obs::Counter* slo_violations = nullptr;
  };

  ServeConfig config_;
  // Declared before admission_/batcher_ so the registry outlives every
  // series they register into it.
  obs::MetricRegistry metrics_;
  PlanExecutor executor_;
  AdmissionController admission_;
  RequestBatcher batcher_;
  obs::TraceSink trace_sink_;
  obs::StatsBinding<ServeStats> binding_;
  Counters counters_;

  mutable Mutex mu_;
  std::uint64_t busy_until_us_ GUARDED_BY(mu_) = 0;
  std::uint64_t next_batch_seq_ GUARDED_BY(mu_) = 0;
  std::priority_queue<InFlightBatch, std::vector<InFlightBatch>,
                      LaterCompletion>
      in_flight_ GUARDED_BY(mu_);
  std::vector<QueryResponse> completed_ GUARDED_BY(mu_);
  HistogramSnapshot slo_window_base_ GUARDED_BY(mu_);
  /// SLO-exemplar tracking, reset every EndSloWindow cut: the worst
  /// retired latency this window and the trace that recorded it.
  std::uint64_t window_worst_us_ GUARDED_BY(mu_) = 0;
  std::uint64_t window_exemplar_trace_ GUARDED_BY(mu_) = 0;

  LatencyHistogram latency_;
  std::vector<std::unique_ptr<LatencyHistogram>> tenant_latency_;

  // STATE atomic (schedule point under PD2GL_SCHEDCHECK); the former
  // tally atomics live in the registry counters above.
  sched::Atomic<std::uint64_t> busy_until_snapshot_{0};
};

}  // namespace platod2gl::serve
