#include "serve/executor.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/random.h"

namespace platod2gl::serve {

namespace {

/// Fill a vertex-frontier stage from a cluster SampleReport and expose
/// the frontier for downstream slots. Returns whether anything degraded.
bool FillVertexStage(SampleReport&& report, StageOutput* stage,
                     std::vector<VertexId>* next_slot) {
  stage->ids = std::move(report.batch.neighbors);
  stage->offsets.assign(report.batch.offsets.begin(),
                        report.batch.offsets.end());
  *next_slot = stage->ids;
  return report.degraded_seeds > 0;
}

}  // namespace

ExecOutcome PlanExecutor::ExecuteBatch(std::vector<PendingRequest>& batch,
                                       std::uint64_t start_us) {
  ExecOutcome out;
  out.responses.resize(batch.size());
  if (batch.empty()) return out;

  // One consistent snapshot for the whole batch: the MicroBatcher's
  // write barrier waits this guard out, never interleaves with it.
  EpochCoordinator::ReadGuard guard = epochs_->PinRead();

  // The batch's virtual clock: rounds serialize, so each round occupies
  // [now_us, now_us + round_virtual_us). Span timestamps live on it.
  std::uint64_t now_us = start_us;
  const Partitioner& part = cluster_->partitioner();

  // Emit request r's span for step j: the step span under the root, plus
  // (for RPC-backed kinds) one kRpcShard child per shard r's own input
  // frontier routes to, in shard order. Everything here is a pure
  // function of r's plan and frontiers, so batched and solo executions
  // of the same request build identical trees.
  auto emit_step_span = [&](std::size_t r, obs::SpanKind kind, std::size_t j,
                            const std::vector<VertexId>* shard_input,
                            std::uint64_t items, std::uint64_t span_start,
                            std::uint64_t span_end) {
    PendingRequest& req = batch[r];
    if (!req.trace) return;
    const std::uint32_t step_span =
        req.trace->StartSpan(kind, req.root_span, span_start,
                             static_cast<std::uint32_t>(j), 0, items);
    if (shard_input != nullptr) {
      std::vector<std::uint64_t> per_shard(part.num_shards(), 0);
      for (const VertexId v : *shard_input) ++per_shard[part.ShardOf(v)];
      for (std::size_t s = 0; s < per_shard.size(); ++s) {
        if (per_shard[s] == 0) continue;
        const std::uint32_t rpc = req.trace->StartSpan(
            obs::SpanKind::kRpcShard, step_span, span_start,
            static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(s),
            per_shard[s]);
        req.trace->EndSpan(rpc, span_end);
      }
    }
    req.trace->EndSpan(step_span, span_end);
  };

  std::size_t max_steps = 0;
  // slots[r][0] = request seeds; slots[r][j + 1] = op j's frontier.
  // Pre-sized so in-flight pointers into inner vectors stay stable.
  std::vector<std::vector<std::vector<VertexId>>> slots(batch.size());
  std::vector<bool> degraded(batch.size(), false);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const PendingRequest& req = batch[r];
    max_steps = std::max(max_steps, req.plan.steps.size());
    slots[r].resize(req.plan.steps.size() + 1);
    slots[r][0] = req.request.seeds;
    out.responses[r].tenant = req.request.tenant;
    out.responses[r].request_id = req.request.request_id;
    out.responses[r].epoch = guard.epoch();
    out.responses[r].stages.resize(req.plan.steps.size());
  }

  for (std::size_t j = 0; j < max_steps; ++j) {
    // Partition this step's work by op kind; each kind forms one
    // cross-request cluster round. Batch order within a round is the
    // batch's (arrival) order, but results are order-independent anyway:
    // every item's RNG is derived from its own request seed.
    std::vector<std::size_t> sample_reqs;
    std::vector<SampleWorkItem> sample_items;
    std::vector<std::size_t> traverse_reqs;
    std::vector<TraverseWorkItem> traverse_items;
    std::vector<std::size_t> gather_reqs;
    std::vector<GatherWorkItem> gather_items;

    for (std::size_t r = 0; r < batch.size(); ++r) {
      const PendingRequest& req = batch[r];
      if (j >= req.plan.steps.size()) continue;
      const LoweredStep& step = req.plan.steps[j];
      const std::vector<VertexId>& input = slots[r][step.input_slot];
      switch (step.op.kind) {
        case OpKind::kSample: {
          SampleWorkItem item;
          item.seeds = &input;
          item.fanout = step.op.fanout;
          item.weighted = step.op.weighted;
          item.rng_seed = OpSeed(req.request.rng_seed, j);
          item.type = step.op.edge_type;
          sample_reqs.push_back(r);
          sample_items.push_back(item);
          break;
        }
        case OpKind::kTraverse: {
          TraverseWorkItem item;
          item.seeds = &input;
          item.cap = step.op.fanout;
          item.type = step.op.edge_type;
          traverse_reqs.push_back(r);
          traverse_items.push_back(item);
          break;
        }
        case OpKind::kGather: {
          GatherWorkItem item;
          item.ids = &input;
          gather_reqs.push_back(r);
          gather_items.push_back(item);
          break;
        }
        case OpKind::kNegativeSample: {
          // Pure client-side: uniform draws over [range_lo, range_hi)
          // rejecting the input frontier (the positives), from this op's
          // own derived stream. Bounded rejection attempts so a hostile
          // range that mostly overlaps the positives cannot spin; the
          // tail fill after the budget may then contain positives.
          const PlanOp& op = step.op;
          std::unordered_set<VertexId> positives(input.begin(), input.end());
          Xoshiro256 rng(OpSeed(req.request.rng_seed, j));
          const std::uint64_t span = op.range_hi - op.range_lo;
          std::vector<VertexId> negatives;
          negatives.reserve(op.count);
          std::size_t attempts_left =
              static_cast<std::size_t>(op.count) * 4 + 64;
          while (negatives.size() < op.count) {
            const VertexId v = op.range_lo + rng.NextUint64(span);
            if (positives.find(v) == positives.end() || attempts_left == 0) {
              negatives.push_back(v);
            }
            if (attempts_left > 0) --attempts_left;
          }
          StageOutput& stage = out.responses[r].stages[j];
          stage.offsets = {0, negatives.size()};
          stage.ids = std::move(negatives);
          slots[r][j + 1] = stage.ids;
          // Client-side: no RPC round, zero virtual duration.
          emit_step_span(r, obs::SpanKind::kPlanNegative, j,
                         /*shard_input=*/nullptr, stage.ids.size(), now_us,
                         now_us);
          break;
        }
      }
    }

    if (!traverse_items.empty()) {
      MultiSampleReport multi = cluster_->TraverseMany(traverse_items);
      const std::uint64_t round_start = now_us;
      now_us += multi.round_virtual_us;
      out.virtual_us += multi.round_virtual_us;
      ++out.rounds;
      for (std::size_t k = 0; k < traverse_reqs.size(); ++k) {
        const std::size_t r = traverse_reqs[k];
        emit_step_span(r, obs::SpanKind::kPlanTraverse, j,
                       traverse_items[k].seeds, traverse_items[k].seeds->size(),
                       round_start, now_us);
        if (FillVertexStage(std::move(multi.reports[k]),
                            &out.responses[r].stages[j], &slots[r][j + 1])) {
          degraded[r] = true;
        }
      }
    }
    if (!sample_items.empty()) {
      MultiSampleReport multi = cluster_->SampleMany(sample_items);
      const std::uint64_t round_start = now_us;
      now_us += multi.round_virtual_us;
      out.virtual_us += multi.round_virtual_us;
      ++out.rounds;
      for (std::size_t k = 0; k < sample_reqs.size(); ++k) {
        const std::size_t r = sample_reqs[k];
        emit_step_span(r, obs::SpanKind::kPlanSample, j,
                       sample_items[k].seeds, sample_items[k].seeds->size(),
                       round_start, now_us);
        if (FillVertexStage(std::move(multi.reports[k]),
                            &out.responses[r].stages[j], &slots[r][j + 1])) {
          degraded[r] = true;
        }
      }
    }
    if (!gather_items.empty()) {
      MultiGatherReport multi = cluster_->GatherMany(gather_items);
      const std::uint64_t round_start = now_us;
      now_us += multi.round_virtual_us;
      out.virtual_us += multi.round_virtual_us;
      ++out.rounds;
      for (std::size_t k = 0; k < gather_reqs.size(); ++k) {
        const std::size_t r = gather_reqs[k];
        emit_step_span(r, obs::SpanKind::kPlanGather, j, gather_items[k].ids,
                       gather_items[k].ids->size(), round_start, now_us);
        StageOutput& stage = out.responses[r].stages[j];
        stage.feature_dim = multi.dim;
        stage.features = std::move(multi.reports[k].features);
        if (multi.reports[k].degraded_rows > 0) degraded[r] = true;
      }
    }
  }

  for (std::size_t r = 0; r < batch.size(); ++r) {
    out.responses[r].status =
        degraded[r] ? RequestStatus::kDegraded : RequestStatus::kOk;
  }
  return out;
}

}  // namespace platod2gl::serve
