#include "dist/shard.h"

#include <utility>

#include "io/checkpoint.h"

namespace platod2gl {

GraphShard::GraphShard(GraphStoreConfig config)
    : config_(config), store_(std::make_unique<GraphStore>(config)) {}

void GraphShard::Apply(const EdgeUpdate& update) {
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  // WAL first: the sequence number is strictly increasing, so Append can
  // never hit a time regression here.
  wal_.Append(++wal_seq_, update);
  if (!crashed_) store_->Apply(update);
}

bool GraphShard::SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                                 Xoshiro256& rng, std::vector<VertexId>* out,
                                 EdgeType type) const {
  if (crashed_) return false;
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  return store_->SampleNeighbors(src, k, weighted, rng, out, type);
}

void GraphShard::Crash() {
  crashed_ = true;
  // The serving process is gone: release the volatile store. Recover()
  // rebuilds it; until then sampling is refused while the WAL (durable)
  // keeps accepting writes.
  store_ = std::make_unique<GraphStore>(config_);
}

Status GraphShard::Checkpoint(const std::string& path) {
  if (crashed_) {
    return Status::Unavailable("cannot checkpoint a crashed shard");
  }
  Status s = SaveGraph(*store_, path);
  if (!s.ok()) return s;
  checkpoint_path_ = path;
  checkpoint_seq_ = wal_seq_;
  wal_.TruncateThrough(checkpoint_seq_);
  return Status::Ok();
}

Status GraphShard::Recover(std::size_t* replayed) {
  auto fresh = std::make_unique<GraphStore>(config_);
  if (!checkpoint_path_.empty()) {
    Status s = LoadGraph(checkpoint_path_, fresh.get());
    if (!s.ok()) return s;
  }
  const std::size_t n = wal_.ReplayInto(fresh.get(), checkpoint_seq_, wal_seq_);
  if (replayed != nullptr) *replayed = n;
  store_ = std::move(fresh);
  crashed_ = false;
  return Status::Ok();
}

}  // namespace platod2gl
