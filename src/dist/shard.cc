#include "dist/shard.h"

namespace platod2gl {

GraphShard::GraphShard(GraphStoreConfig config) : store_(config) {}

void GraphShard::Apply(const EdgeUpdate& update) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  store_.Apply(update);
}

bool GraphShard::SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                                 Xoshiro256& rng, std::vector<VertexId>* out,
                                 EdgeType type) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  return store_.SampleNeighbors(src, k, weighted, rng, out, type);
}

}  // namespace platod2gl
