#include "dist/shard.h"

#include <algorithm>
#include <utility>

#include "io/checkpoint.h"

namespace platod2gl {

GraphShard::GraphShard(GraphStoreConfig config)
    : config_(config), store_(std::make_unique<GraphStore>(config)) {}

void GraphShard::Apply(const EdgeUpdate& update) {
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    // WAL first: the sequence number is strictly increasing, so Append can
    // never hit a time regression here. Locked because a replication pump
    // may be reading a window concurrently (docs/replication.md).
    SpinlockGuard g(wal_mu_);
    wal_.Append(++wal_seq_, update);
  }
  if (!crashed()) store_->Apply(update);
}

bool GraphShard::SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                                 Xoshiro256& rng, std::vector<VertexId>* out,
                                 EdgeType type) const {
  if (crashed()) return false;
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  return store_->SampleNeighbors(src, k, weighted, rng, out, type);
}

bool GraphShard::Traverse(VertexId src, std::size_t cap,
                          std::vector<VertexId>* out, EdgeType type) const {
  if (crashed()) return false;
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::pair<VertexId, Weight>> nbrs =
      store_->Neighbors(src, type);
  const std::size_t n = std::min(cap, nbrs.size());
  out->reserve(out->size() + n);
  for (std::size_t i = 0; i < n; ++i) out->push_back(nbrs[i].first);
  return true;
}

bool GraphShard::GatherFeatures(VertexId v, std::vector<float>* out,
                                bool* served) const {
  if (crashed()) {
    if (served != nullptr) *served = false;
    return false;
  }
  if (served != nullptr) *served = true;
  // order: stat tally, read for reporting only
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<float>* f = store_->attributes().GetFeatures(v);
  if (f == nullptr) {
    out->clear();
    return false;
  }
  *out = *f;
  return true;
}

void GraphShard::Crash() {
  crashed_.store(true, std::memory_order_release);
  // The serving process is gone: release the volatile store. Recover()
  // rebuilds it; until then sampling is refused while the WAL (durable)
  // keeps accepting writes.
  store_ = std::make_unique<GraphStore>(config_);
}

Status GraphShard::Checkpoint(const std::string& path) {
  if (crashed()) {
    return Status::Unavailable("cannot checkpoint a crashed shard");
  }
  Status s = SaveGraph(*store_, path);
  if (!s.ok()) return s;
  SpinlockGuard g(wal_mu_);
  checkpoint_path_ = path;
  checkpoint_seq_ = wal_seq_;
  wal_.TruncateThrough(checkpoint_seq_);
  return Status::Ok();
}

Status GraphShard::Recover(std::size_t* replayed) {
  auto fresh = std::make_unique<GraphStore>(config_);
  std::string ckpt_path;
  std::uint64_t ckpt_seq = 0;
  {
    SpinlockGuard g(wal_mu_);
    ckpt_path = checkpoint_path_;
    ckpt_seq = checkpoint_seq_;
  }
  if (!ckpt_path.empty()) {
    Status s = LoadGraph(ckpt_path, fresh.get());
    if (!s.ok()) return s;
  }
  {
    SpinlockGuard g(wal_mu_);
    // Checked replay: the checkpoint must cover the truncated prefix
    // exactly — a gap here means the durable state is unrecoverable and
    // must be reported, never silently skipped (tests/test_temporal.cc
    // pins the boundary).
    Status s =
        wal_.CheckedReplayInto(fresh.get(), ckpt_seq, wal_seq_, replayed);
    if (!s.ok()) return s;
  }
  store_ = std::move(fresh);
  crashed_.store(false, std::memory_order_release);
  return Status::Ok();
}

void GraphShard::Promote(std::unique_ptr<GraphStore> store) {
  store_ = std::move(store);
  crashed_.store(false, std::memory_order_release);
}

}  // namespace platod2gl
