// Graph partitioning for the distributed storage simulation.
//
// The paper stores the graph across "graph servers"; PlatoD2GL (like
// PlatoGL and AliGraph's default mode) partitions hash-by-source, which is
// the only strategy that keeps single-edge updates local — METIS-style
// offline partitioning would force a re-partition on every insert
// (paper Section I). A contiguous range partitioner is included as the
// static-baseline comparison point.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace platod2gl {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::size_t ShardOf(VertexId v) const = 0;
  virtual std::size_t num_shards() const = 0;
};

/// shard = hash(src) mod S: uniform load, update-local, no re-partitioning.
class HashBySourcePartitioner : public Partitioner {
 public:
  explicit HashBySourcePartitioner(std::size_t num_shards);
  std::size_t ShardOf(VertexId v) const override;
  std::size_t num_shards() const override { return num_shards_; }

 private:
  std::size_t num_shards_;
};

/// shard = v / range_size over a fixed ID universe: preserves ID locality
/// (good for CP-IDs compression) but skews load on clustered workloads.
class RangePartitioner : public Partitioner {
 public:
  RangePartitioner(std::size_t num_shards, VertexId max_id);
  std::size_t ShardOf(VertexId v) const override;
  std::size_t num_shards() const override { return num_shards_; }

 private:
  std::size_t num_shards_;
  VertexId range_size_;
};

}  // namespace platod2gl
