#include "dist/cluster.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/timer.h"
#include "dist/wire.h"

namespace platod2gl {

namespace {
/// Salt deriving the per-shard sampling RNG stream from the caller's seed.
/// Retries re-derive the same stream, so fault runs sample identically to
/// fault-free runs (tested in test_fault_tolerance.cc).
constexpr std::uint64_t kShardSeedSalt = 0xD1B54A32D192ED03ULL;
}  // namespace

GraphCluster::GraphCluster(ClusterConfig config)
    : config_(config),
      partitioner_(config.num_shards),
      pool_(config.num_client_threads),
      injector_(config.fault, config.num_shards) {
  shards_.reserve(partitioner_.num_shards());
  for (std::size_t i = 0; i < partitioner_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<GraphShard>(config_.shard_config));
  }
  if (config_.replication.num_replicas > 0) {
    std::vector<GraphShard*> primaries;
    primaries.reserve(shards_.size());
    for (auto& s : shards_) primaries.push_back(s.get());
    replication_ = std::make_unique<ReplicationManager>(
        config_.replication, config_.shard_config, std::move(primaries),
        &injector_, &cutover_);
  }
}

void GraphCluster::ReplicationHealthCheck() {
  if (!replication_) return;
  const ReplicationManager::HealthReport health =
      replication_->AdvanceTime(stats_.virtual_network_us);
  stats_.failovers += health.failovers;
  stats_.failover_replayed += health.replayed_entries;
}

void GraphCluster::PumpReplication() {
  if (!replication_) return;
  replication_->Kick();
  ReplicationHealthCheck();
}

void GraphCluster::AdvanceVirtualTime(std::uint64_t us) {
  stats_.virtual_network_us += us;
  ReplicationHealthCheck();
}

Status GraphCluster::FlushReplication() {
  if (!replication_) return Status::Ok();
  return replication_->Flush();
}

ReplicationManager::AntiEntropyReport GraphCluster::RunAntiEntropy() {
  if (!replication_) return {};
  const ReplicationManager::AntiEntropyReport r =
      replication_->RunAntiEntropyAll();
  stats_.digest_rounds += r.digest_rounds;
  stats_.digest_mismatches += r.digest_mismatches;
  stats_.antientropy_repairs += r.repaired_replicas;
  stats_.antientropy_edges += r.repaired_edges;
  return r;
}

void GraphCluster::CrashReplica(std::size_t s, std::size_t r) {
  injector_.CrashReplica(s, r);
  // The replica process died: its volatile store is gone with it.
  if (replication_) replication_->WipeReplica(s, r);
}

void GraphCluster::RecoverReplica(std::size_t s, std::size_t r) {
  // Rejoin empty; the next ship round replays the log (or bootstraps a
  // snapshot when the log was truncated past seq 0).
  injector_.RestoreReplica(s, r);
}

void GraphCluster::PartitionReplica(std::size_t s, std::size_t r) {
  injector_.PartitionReplica(s, r);
}

void GraphCluster::HealReplica(std::size_t s, std::size_t r) {
  injector_.HealReplica(s, r);
}

template <typename Body>
GraphCluster::RpcOutcome GraphCluster::RunRpc(std::size_t s, Body&& body) {
  const RetryPolicy& retry = config_.retry;
  const std::size_t max_attempts =
      std::max<std::size_t>(std::size_t{1}, retry.max_attempts);
  RpcOutcome out;
  std::uint64_t backoff = retry.initial_backoff_us;
  // Deterministic backoff jitter, drawn from a stream unrelated to both
  // the fault decisions and the sampling RNGs.
  SplitMix64 jitter(config_.fault.seed ^ (0xBF58476D1CE4E5B9ULL * (s + 1)));
  while (true) {
    ++out.attempts;
    if (injector_.IsCrashed(s)) {
      // Connection refused: the serving process is dead. Probing still
      // costs a round trip in virtual time.
      ++out.crash_rejections;
      out.virtual_us += config_.rpc_latency_us;
    } else {
      switch (injector_.NextFault(s)) {
        case FaultInjector::Fault::kNone:
          out.virtual_us += config_.rpc_latency_us;
          if (body(/*corrupt=*/false, out)) out.delivered = true;
          break;
        case FaultInjector::Fault::kSlow:
          out.virtual_us +=
              config_.rpc_latency_us + config_.fault.slow_extra_us;
          if (body(/*corrupt=*/false, out)) out.delivered = true;
          break;
        case FaultInjector::Fault::kFail:  // request lost in flight
          out.virtual_us += config_.rpc_latency_us;
          ++out.transient_faults;
          break;
        case FaultInjector::Fault::kTimeout:  // response never arrives
          out.virtual_us += std::max(config_.rpc_latency_us, retry.timeout_us);
          ++out.transient_faults;
          break;
        case FaultInjector::Fault::kCorrupt:  // response damaged in flight
          out.virtual_us += config_.rpc_latency_us;
          ++out.transient_faults;
          ++out.corrupt;
          if (body(/*corrupt=*/true, out)) out.delivered = true;
          break;
      }
    }
    if (out.delivered) break;
    if (out.virtual_us >= retry.deadline_us) {
      out.deadline_hit = true;
      break;
    }
    if (out.attempts >= max_attempts) break;
    // Exponential backoff with ±25% jitter — virtual time, never slept.
    std::uint64_t wait = backoff;
    const std::uint64_t j = backoff / 4;
    if (j > 0) wait = backoff - j + jitter.Next() % (2 * j + 1);
    if (out.virtual_us + wait >= retry.deadline_us) {
      out.deadline_hit = true;
      break;
    }
    out.virtual_us += wait;
    backoff = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                   retry.backoff_multiplier),
        retry.max_backoff_us);
  }
  return out;
}

GraphCluster::RpcOutcome GraphCluster::DeliverUpdates(
    std::size_t s, const std::vector<EdgeUpdate>& group) {
  if (injector_.IsCrashed(s)) {
    // Hinted handoff: the durable log service outlives the serving
    // process (GNNFlow-style — the update log is the recovery substrate).
    // Write the updates straight to the shard's WAL; RecoverShard replays
    // them. One virtual RPC to the log.
    RpcOutcome out;
    out.attempts = 1;
    out.virtual_us = config_.rpc_latency_us;
    for (const EdgeUpdate& u : group) shards_[s]->Apply(u);
    out.delivered = true;
    out.resp_bytes = 1;  // ack
    return out;
  }
  return RunRpc(s, [&](bool corrupt, RpcOutcome& out) {
    if (corrupt) {
      // A damaged ack is indistinguishable from a lost request; the
      // attempt is modelled as not applied, preserving exactly-once
      // delivery across the retry.
      return false;
    }
    Timer rpc;
    for (const EdgeUpdate& u : group) shards_[s]->Apply(u);
    rpc_latency_.RecordMicros(rpc.ElapsedMicros());
    out.resp_bytes += 1;  // ack
    return true;
  });
}

void GraphCluster::MergeOutcome(const RpcOutcome& out) {
  stats_.rpcs += out.attempts;
  stats_.virtual_network_us += out.virtual_us;
  stats_.retries += out.attempts - 1;
  stats_.transient_faults += out.transient_faults;
  stats_.corrupt_responses += out.corrupt;
  stats_.crash_rejections += out.crash_rejections;
  if (out.deadline_hit) ++stats_.deadline_hits;
}

Status GraphCluster::Apply(const EdgeUpdate& update) {
  const std::size_t s = partitioner_.ShardOf(update.edge.src);
  const bool handoff = injector_.IsCrashed(s);
  const RpcOutcome out = DeliverUpdates(s, {update});
  MergeOutcome(out);
  // UpdateBatch wire size (dist/wire.h): tag + count + 29 B per update.
  stats_.bytes_sent += out.attempts * (5 + 29);
  stats_.bytes_received += out.resp_bytes;
  if (handoff) ++stats_.wal_handoffs;
  PumpReplication();
  if (!out.delivered) {
    ++stats_.lost_updates;
    return Status::DeadlineExceeded("update lost: shard " +
                                    std::to_string(s) +
                                    " unreachable past the retry budget");
  }
  return Status::Ok();
}

Status GraphCluster::ApplyBatch(const std::vector<EdgeUpdate>& batch) {
  std::vector<std::vector<EdgeUpdate>> per_shard(shards_.size());
  for (const EdgeUpdate& u : batch) {
    per_shard[partitioner_.ShardOf(u.edge.src)].push_back(u);
  }
  std::vector<RpcOutcome> outcomes(shards_.size());
  std::vector<std::uint8_t> handoff(shards_.size(), 0);
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    handoff[s] = injector_.IsCrashed(s) ? 1 : 0;
    outcomes[s] = DeliverUpdates(s, per_shard[s]);
  });
  Status result = Status::Ok();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& group = per_shard[s];
    if (group.empty()) continue;
    const RpcOutcome& out = outcomes[s];
    MergeOutcome(out);
    // UpdateBatch wire size (dist/wire.h): tag + count + 29 B per update.
    stats_.bytes_sent += out.attempts * (5 + group.size() * 29);
    stats_.bytes_received += out.resp_bytes;
    if (handoff[s]) stats_.wal_handoffs += group.size();
    if (!out.delivered) {
      stats_.lost_updates += group.size();
      if (result.ok()) {
        result = Status::DeadlineExceeded(
            std::to_string(group.size()) + " updates lost: shard " +
            std::to_string(s) + " unreachable past the retry budget");
      }
    }
  }
  PumpReplication();
  return result;
}

SampleReport GraphCluster::SampleNeighborsChecked(
    const std::vector<VertexId>& seeds, std::size_t fanout, bool weighted,
    std::uint64_t seed, EdgeType type) {
  // Group seed positions by owning shard.
  std::vector<std::vector<std::size_t>> shard_seeds(shards_.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    shard_seeds[partitioner_.ShardOf(seeds[i])].push_back(i);
  }

  // One parallel logical RPC (with retries) per non-empty shard.
  std::vector<std::vector<VertexId>> results(seeds.size());
  std::vector<RpcOutcome> outcomes(shards_.size());
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    const std::vector<std::size_t>& group = shard_seeds[s];
    if (group.empty()) return;
    outcomes[s] = RunRpc(s, [&](bool corrupt, RpcOutcome& out) {
      // Fresh RNG per attempt: a retry replays the exact draw sequence of
      // the failed attempt, so faults never perturb sampling results.
      Xoshiro256 rng(seed ^ (kShardSeedSalt * (s + 1)));
      Timer rpc;
      std::vector<std::vector<VertexId>> local(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) {
        shards_[s]->SampleNeighbors(seeds[group[i]], fanout, weighted, rng,
                                    &local[i], type);
      }
      rpc_latency_.RecordMicros(rpc.ElapsedMicros());
      if (corrupt) {
        // Ship the response through the real codec, damage it in flight,
        // and let the hardened decoder judge it (docs/fault_tolerance.md).
        NeighborBatch resp;
        resp.offsets.push_back(0);
        for (const auto& r : local) {
          resp.neighbors.insert(resp.neighbors.end(), r.begin(), r.end());
          resp.offsets.push_back(resp.neighbors.size());
        }
        std::string bytes = wire::EncodeSampleResponse(resp);
        out.resp_bytes += bytes.size();  // shipped before the damage
        injector_.CorruptBytes(s, &bytes);
        NeighborBatch decoded;
        if (!wire::DecodeSampleResponse(bytes, &decoded) ||
            decoded.NumSeeds() != group.size()) {
          return false;  // rejected by the codec; RunRpc retries
        }
        // Structurally valid despite the damage — accept what decoded.
        // (CorruptBytes guarantees structural damage, so this is a
        // belt-and-braces path, not an expected one.)
        for (std::size_t i = 0; i < group.size(); ++i) {
          results[group[i]].assign(
              decoded.neighbors.begin() +
                  static_cast<std::ptrdiff_t>(decoded.offsets[i]),
              decoded.neighbors.begin() +
                  static_cast<std::ptrdiff_t>(decoded.offsets[i + 1]));
        }
        return true;
      }
      // SampleResponse wire size: header + per seed (4 B len + 8 B each).
      std::uint64_t resp = 5;
      for (const auto& r : local) resp += 4 + r.size() * sizeof(VertexId);
      out.resp_bytes += resp;
      for (std::size_t i = 0; i < group.size(); ++i) {
        results[group[i]] = std::move(local[i]);
      }
      return true;
    });
  });

  SampleReport report;
  report.seed_status.assign(seeds.size(), SeedStatus::kOk);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<std::size_t>& group = shard_seeds[s];
    if (group.empty()) continue;
    const RpcOutcome& out = outcomes[s];
    MergeOutcome(out);
    // SampleRequest wire size (dist/wire.h): header + 8 B per seed.
    stats_.bytes_sent += out.attempts * (14 + group.size() * sizeof(VertexId));
    stats_.bytes_received += out.resp_bytes;
    if (!out.delivered) {
      // Bounded-staleness fallback: an unreachable primary's seeds may be
      // served by its freshest replica if one is within the staleness
      // budget — real data flagged kStale, not an empty degraded marker.
      // Seeded identically to the primary attempt, so a caught-up replica
      // returns bit-identical samples. Only on primary failure: a
      // fault-free run never touches replicas and stays bit-identical to
      // a replication-disabled run.
      bool served = false;
      if (replication_ != nullptr) {
        std::vector<VertexId> group_seeds;
        group_seeds.reserve(group.size());
        for (std::size_t pos : group) group_seeds.push_back(seeds[pos]);
        std::optional<ReplicationManager::ReplicaServe> serve =
            replication_->SampleFromReplica(s, group_seeds, fanout, weighted,
                                            seed ^ (kShardSeedSalt * (s + 1)),
                                            type);
        if (serve.has_value()) {
          for (std::size_t i = 0; i < group.size(); ++i) {
            results[group[i]] = std::move(serve->neighbors[i]);
            report.seed_status[group[i]] = SeedStatus::kStale;
          }
          stats_.replica_read_seeds += group.size();
          if (serve->lag > 0) stats_.stale_replica_seeds += group.size();
          served = true;
        }
      }
      if (!served) {
        // Degrade this shard's seeds: empty ranges, flagged per seed.
        for (std::size_t pos : group) {
          results[pos].clear();
          report.seed_status[pos] = SeedStatus::kDegraded;
        }
        report.degraded_seeds += group.size();
      }
    }
  }
  stats_.degraded_seeds += report.degraded_seeds;
  // Sampling ships nothing new, but its virtual-time cost does age
  // suspicions — the health monitor runs so a dead primary eventually
  // fails over under a read-only workload too.
  ReplicationHealthCheck();

  // Re-assemble in seed order.
  report.batch.offsets.reserve(seeds.size() + 1);
  report.batch.offsets.push_back(0);
  for (const auto& r : results) {
    report.batch.neighbors.insert(report.batch.neighbors.end(), r.begin(),
                                  r.end());
    report.batch.offsets.push_back(report.batch.neighbors.size());
  }
  return report;
}

void GraphCluster::CrashShard(std::size_t i) {
  injector_.CrashShard(i);
  shards_[i]->Crash();
}

Status GraphCluster::RecoverShard(std::size_t i) {
  std::size_t replayed = 0;
  Status s = shards_[i]->Recover(&replayed);
  if (!s.ok()) return s;
  injector_.RestoreShard(i);
  ++stats_.recoveries;
  stats_.replayed_updates += replayed;
  return Status::Ok();
}

Status GraphCluster::CheckpointAll(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // SaveGraph fails loudly
  Status result = Status::Ok();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->crashed()) continue;
    Status s = shards_[i]->Checkpoint(dir + "/shard_" + std::to_string(i) +
                                      ".ckpt");
    if (!s.ok() && result.ok()) result = s;
  }
  return result;
}

std::size_t GraphCluster::Degree(VertexId src, EdgeType type) const {
  return shards_[partitioner_.ShardOf(src)]->store().Degree(src, type);
}

std::size_t GraphCluster::NumEdges() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store().NumEdges();
  return n;
}

double GraphCluster::LoadImbalance() const {
  std::size_t max_edges = 0;
  std::size_t min_edges = static_cast<std::size_t>(-1);
  for (const auto& s : shards_) {
    const std::size_t e = s->store().NumEdges();
    max_edges = std::max(max_edges, e);
    min_edges = std::min(min_edges, e);
  }
  if (min_edges == 0) return static_cast<double>(max_edges);
  return static_cast<double>(max_edges) / static_cast<double>(min_edges);
}

}  // namespace platod2gl
