#include "dist/cluster.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/timer.h"
#include "dist/wire.h"

namespace platod2gl {

namespace {
/// Salt deriving the per-shard sampling RNG stream from the caller's seed.
/// Retries re-derive the same stream, so fault runs sample identically to
/// fault-free runs (tested in test_fault_tolerance.cc).
constexpr std::uint64_t kShardSeedSalt = 0xD1B54A32D192ED03ULL;
}  // namespace

GraphCluster::GraphCluster(ClusterConfig config)
    : config_(config),
      partitioner_(config.num_shards),
      pool_(config.num_client_threads),
      injector_(config.fault, config.num_shards) {
  using S = ClusterStats;
  counters_.rpcs = metrics_.BindCounter(&binding_, &S::rpcs,
                                        "pd2gl_cluster_rpcs");
  counters_.virtual_network_us = metrics_.BindCounter(
      &binding_, &S::virtual_network_us, "pd2gl_cluster_virtual_network_us");
  counters_.bytes_sent = metrics_.BindCounter(&binding_, &S::bytes_sent,
                                              "pd2gl_cluster_bytes_sent");
  counters_.bytes_received = metrics_.BindCounter(
      &binding_, &S::bytes_received, "pd2gl_cluster_bytes_received");
  counters_.retries = metrics_.BindCounter(&binding_, &S::retries,
                                           "pd2gl_cluster_retries");
  counters_.transient_faults = metrics_.BindCounter(
      &binding_, &S::transient_faults, "pd2gl_cluster_transient_faults");
  counters_.corrupt_responses = metrics_.BindCounter(
      &binding_, &S::corrupt_responses, "pd2gl_cluster_corrupt_responses");
  counters_.deadline_hits = metrics_.BindCounter(
      &binding_, &S::deadline_hits, "pd2gl_cluster_deadline_hits");
  counters_.crash_rejections = metrics_.BindCounter(
      &binding_, &S::crash_rejections, "pd2gl_cluster_crash_rejections");
  counters_.degraded_seeds = metrics_.BindCounter(
      &binding_, &S::degraded_seeds, "pd2gl_cluster_degraded_seeds");
  counters_.wal_handoffs = metrics_.BindCounter(
      &binding_, &S::wal_handoffs, "pd2gl_cluster_wal_handoffs");
  counters_.lost_updates = metrics_.BindCounter(
      &binding_, &S::lost_updates, "pd2gl_cluster_lost_updates");
  counters_.recoveries = metrics_.BindCounter(&binding_, &S::recoveries,
                                              "pd2gl_cluster_recoveries");
  counters_.replayed_updates = metrics_.BindCounter(
      &binding_, &S::replayed_updates, "pd2gl_cluster_replayed_updates");
  counters_.replica_read_seeds = metrics_.BindCounter(
      &binding_, &S::replica_read_seeds, "pd2gl_cluster_replica_read_seeds");
  counters_.stale_replica_seeds = metrics_.BindCounter(
      &binding_, &S::stale_replica_seeds, "pd2gl_cluster_stale_replica_seeds");
  counters_.failovers = metrics_.BindCounter(&binding_, &S::failovers,
                                             "pd2gl_cluster_failovers");
  counters_.failover_replayed = metrics_.BindCounter(
      &binding_, &S::failover_replayed, "pd2gl_cluster_failover_replayed");
  counters_.digest_rounds = metrics_.BindCounter(
      &binding_, &S::digest_rounds, "pd2gl_cluster_digest_rounds");
  counters_.digest_mismatches = metrics_.BindCounter(
      &binding_, &S::digest_mismatches, "pd2gl_cluster_digest_mismatches");
  counters_.antientropy_repairs = metrics_.BindCounter(
      &binding_, &S::antientropy_repairs, "pd2gl_cluster_antientropy_repairs");
  counters_.antientropy_edges = metrics_.BindCounter(
      &binding_, &S::antientropy_edges, "pd2gl_cluster_antientropy_edges");
  metrics_.RegisterExternalHistogram("pd2gl_cluster_rpc_compute_nanos", {},
                                     &rpc_latency_);

  shards_.reserve(partitioner_.num_shards());
  shard_seed_counters_.reserve(partitioner_.num_shards());
  shard_gather_counters_.reserve(partitioner_.num_shards());
  for (std::size_t i = 0; i < partitioner_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<GraphShard>(config_.shard_config));
    const obs::Labels shard_label{{"shard", std::to_string(i)}};
    shard_seed_counters_.push_back(
        metrics_.RegisterCounter("pd2gl_shard_sample_seeds", shard_label));
    shard_gather_counters_.push_back(
        metrics_.RegisterCounter("pd2gl_shard_gather_ids", shard_label));
    if (SampleCache* cache = shards_.back()->store().sample_cache()) {
      cache->RegisterWith(&metrics_, shard_label);
    }
  }
  if (config_.replication.num_replicas > 0) {
    std::vector<GraphShard*> primaries;
    primaries.reserve(shards_.size());
    for (auto& s : shards_) primaries.push_back(s.get());
    replication_ = std::make_unique<ReplicationManager>(
        config_.replication, config_.shard_config, std::move(primaries),
        &injector_, &cutover_, &metrics_);
  }
}

void GraphCluster::ReplicationHealthCheck() {
  if (!replication_) return;
  const ReplicationManager::HealthReport health =
      replication_->AdvanceTime(counters_.virtual_network_us->Value());
  counters_.failovers->Add(health.failovers);
  counters_.failover_replayed->Add(health.replayed_entries);
}

void GraphCluster::PumpReplication() {
  if (!replication_) return;
  replication_->Kick();
  ReplicationHealthCheck();
}

void GraphCluster::AdvanceVirtualTime(std::uint64_t us) {
  counters_.virtual_network_us->Add(us);
  ReplicationHealthCheck();
}

Status GraphCluster::FlushReplication() {
  if (!replication_) return Status::Ok();
  return replication_->Flush();
}

ReplicationManager::AntiEntropyReport GraphCluster::RunAntiEntropy() {
  if (!replication_) return {};
  const ReplicationManager::AntiEntropyReport r =
      replication_->RunAntiEntropyAll();
  counters_.digest_rounds->Add(r.digest_rounds);
  counters_.digest_mismatches->Add(r.digest_mismatches);
  counters_.antientropy_repairs->Add(r.repaired_replicas);
  counters_.antientropy_edges->Add(r.repaired_edges);
  return r;
}

void GraphCluster::CrashReplica(std::size_t s, std::size_t r) {
  injector_.CrashReplica(s, r);
  // The replica process died: its volatile store is gone with it.
  if (replication_) replication_->WipeReplica(s, r);
}

void GraphCluster::RecoverReplica(std::size_t s, std::size_t r) {
  // Rejoin empty; the next ship round replays the log (or bootstraps a
  // snapshot when the log was truncated past seq 0).
  injector_.RestoreReplica(s, r);
}

void GraphCluster::PartitionReplica(std::size_t s, std::size_t r) {
  injector_.PartitionReplica(s, r);
}

void GraphCluster::HealReplica(std::size_t s, std::size_t r) {
  injector_.HealReplica(s, r);
}

template <typename Body>
GraphCluster::RpcOutcome GraphCluster::RunRpc(std::size_t s, Body&& body) {
  const RetryPolicy& retry = config_.retry;
  const std::size_t max_attempts =
      std::max<std::size_t>(std::size_t{1}, retry.max_attempts);
  RpcOutcome out;
  std::uint64_t backoff = retry.initial_backoff_us;
  // Deterministic backoff jitter, drawn from a stream unrelated to both
  // the fault decisions and the sampling RNGs.
  SplitMix64 jitter(config_.fault.seed ^ (0xBF58476D1CE4E5B9ULL * (s + 1)));
  while (true) {
    ++out.attempts;
    if (injector_.IsCrashed(s)) {
      // Connection refused: the serving process is dead. Probing still
      // costs a round trip in virtual time.
      ++out.crash_rejections;
      out.virtual_us += config_.rpc_latency_us;
    } else {
      switch (injector_.NextFault(s)) {
        case FaultInjector::Fault::kNone:
          out.virtual_us += config_.rpc_latency_us;
          if (body(/*corrupt=*/false, out)) out.delivered = true;
          break;
        case FaultInjector::Fault::kSlow:
          out.virtual_us +=
              config_.rpc_latency_us + config_.fault.slow_extra_us;
          if (body(/*corrupt=*/false, out)) out.delivered = true;
          break;
        case FaultInjector::Fault::kFail:  // request lost in flight
          out.virtual_us += config_.rpc_latency_us;
          ++out.transient_faults;
          break;
        case FaultInjector::Fault::kTimeout:  // response never arrives
          out.virtual_us += std::max(config_.rpc_latency_us, retry.timeout_us);
          ++out.transient_faults;
          break;
        case FaultInjector::Fault::kCorrupt:  // response damaged in flight
          out.virtual_us += config_.rpc_latency_us;
          ++out.transient_faults;
          ++out.corrupt;
          if (body(/*corrupt=*/true, out)) out.delivered = true;
          break;
      }
    }
    if (out.delivered) break;
    if (out.virtual_us >= retry.deadline_us) {
      out.deadline_hit = true;
      break;
    }
    if (out.attempts >= max_attempts) break;
    // Exponential backoff with ±25% jitter — virtual time, never slept.
    std::uint64_t wait = backoff;
    const std::uint64_t j = backoff / 4;
    if (j > 0) wait = backoff - j + jitter.Next() % (2 * j + 1);
    if (out.virtual_us + wait >= retry.deadline_us) {
      out.deadline_hit = true;
      break;
    }
    out.virtual_us += wait;
    backoff = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                   retry.backoff_multiplier),
        retry.max_backoff_us);
  }
  return out;
}

GraphCluster::RpcOutcome GraphCluster::DeliverUpdates(
    std::size_t s, const std::vector<EdgeUpdate>& group) {
  if (injector_.IsCrashed(s)) {
    // Hinted handoff: the durable log service outlives the serving
    // process (GNNFlow-style — the update log is the recovery substrate).
    // Write the updates straight to the shard's WAL; RecoverShard replays
    // them. One virtual RPC to the log.
    RpcOutcome out;
    out.attempts = 1;
    out.virtual_us = config_.rpc_latency_us;
    for (const EdgeUpdate& u : group) shards_[s]->Apply(u);
    out.delivered = true;
    out.resp_bytes = 1;  // ack
    return out;
  }
  return RunRpc(s, [&](bool corrupt, RpcOutcome& out) {
    if (corrupt) {
      // A damaged ack is indistinguishable from a lost request; the
      // attempt is modelled as not applied, preserving exactly-once
      // delivery across the retry.
      return false;
    }
    Timer rpc;
    for (const EdgeUpdate& u : group) shards_[s]->Apply(u);
    rpc_latency_.RecordMicros(rpc.ElapsedMicros());
    out.resp_bytes += 1;  // ack
    return true;
  });
}

void GraphCluster::MergeOutcome(const RpcOutcome& out) {
  counters_.rpcs->Add(out.attempts);
  counters_.virtual_network_us->Add(out.virtual_us);
  counters_.retries->Add(out.attempts - 1);
  counters_.transient_faults->Add(out.transient_faults);
  counters_.corrupt_responses->Add(out.corrupt);
  counters_.crash_rejections->Add(out.crash_rejections);
  if (out.deadline_hit) counters_.deadline_hits->Add();
}

Status GraphCluster::Apply(const EdgeUpdate& update) {
  const std::size_t s = partitioner_.ShardOf(update.edge.src);
  const bool handoff = injector_.IsCrashed(s);
  const RpcOutcome out = DeliverUpdates(s, {update});
  MergeOutcome(out);
  // UpdateBatch wire size (dist/wire.h): tag + count + 29 B per update.
  counters_.bytes_sent->Add(out.attempts * (5 + 29));
  counters_.bytes_received->Add(out.resp_bytes);
  if (handoff) counters_.wal_handoffs->Add();
  PumpReplication();
  if (!out.delivered) {
    counters_.lost_updates->Add();
    return Status::DeadlineExceeded("update lost: shard " +
                                    std::to_string(s) +
                                    " unreachable past the retry budget");
  }
  return Status::Ok();
}

Status GraphCluster::ApplyBatch(const std::vector<EdgeUpdate>& batch) {
  std::vector<std::vector<EdgeUpdate>> per_shard(shards_.size());
  for (const EdgeUpdate& u : batch) {
    per_shard[partitioner_.ShardOf(u.edge.src)].push_back(u);
  }
  std::vector<RpcOutcome> outcomes(shards_.size());
  std::vector<std::uint8_t> handoff(shards_.size(), 0);
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    handoff[s] = injector_.IsCrashed(s) ? 1 : 0;
    outcomes[s] = DeliverUpdates(s, per_shard[s]);
  });
  Status result = Status::Ok();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& group = per_shard[s];
    if (group.empty()) continue;
    const RpcOutcome& out = outcomes[s];
    MergeOutcome(out);
    // UpdateBatch wire size (dist/wire.h): tag + count + 29 B per update.
    counters_.bytes_sent->Add(out.attempts * (5 + group.size() * 29));
    counters_.bytes_received->Add(out.resp_bytes);
    if (handoff[s]) counters_.wal_handoffs->Add(group.size());
    if (!out.delivered) {
      counters_.lost_updates->Add(group.size());
      if (result.ok()) {
        result = Status::DeadlineExceeded(
            std::to_string(group.size()) + " updates lost: shard " +
            std::to_string(s) + " unreachable past the retry budget");
      }
    }
  }
  PumpReplication();
  return result;
}

template <typename Fill, typename Fallback>
MultiSampleReport GraphCluster::NeighborRound(
    const std::vector<const std::vector<VertexId>*>& item_seeds, Fill&& fill,
    Fallback&& fallback) {
  MultiSampleReport multi;
  multi.reports.resize(item_seeds.size());
  if (item_seeds.empty()) return multi;

  // Group each item's seed positions by owning shard:
  // shard_groups[s] = [(item, positions-in-item), ...] in item order.
  struct ShardGroup {
    std::size_t item;
    std::vector<std::size_t> positions;
  };
  std::vector<std::vector<ShardGroup>> shard_groups(shards_.size());
  for (std::size_t w = 0; w < item_seeds.size(); ++w) {
    const std::vector<VertexId>& seeds = *item_seeds[w];
    std::vector<std::vector<std::size_t>> by_shard(shards_.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      by_shard[partitioner_.ShardOf(seeds[i])].push_back(i);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!by_shard[s].empty()) {
        shard_groups[s].push_back(ShardGroup{w, std::move(by_shard[s])});
      }
    }
  }

  // One parallel logical RPC (with retries) per touched shard, carrying
  // every item's seeds for that shard.
  std::vector<std::vector<std::vector<VertexId>>> results(item_seeds.size());
  for (std::size_t w = 0; w < item_seeds.size(); ++w) {
    results[w].resize(item_seeds[w]->size());
  }
  std::vector<RpcOutcome> outcomes(shards_.size());
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    const std::vector<ShardGroup>& groups = shard_groups[s];
    if (groups.empty()) return;
    outcomes[s] = RunRpc(s, [&](bool corrupt, RpcOutcome& out) {
      Timer rpc;
      // local[g][i] = range for groups[g].positions[i]. `fill` re-derives
      // any RNG state per item per attempt, so a retry replays the exact
      // draw sequence and batching never perturbs an item's stream.
      std::vector<std::vector<std::vector<VertexId>>> local(groups.size());
      for (std::size_t g = 0; g < groups.size(); ++g) {
        local[g].resize(groups[g].positions.size());
        fill(s, groups[g].item, groups[g].positions, &local[g]);
      }
      rpc_latency_.RecordMicros(rpc.ElapsedMicros());
      if (corrupt) {
        // Ship the response through the real codec, damage it in flight,
        // and let the hardened decoder judge it (docs/fault_tolerance.md).
        NeighborBatch resp;
        resp.offsets.push_back(0);
        std::size_t total_ranges = 0;
        for (const auto& item_local : local) {
          for (const auto& r : item_local) {
            resp.neighbors.insert(resp.neighbors.end(), r.begin(), r.end());
            resp.offsets.push_back(resp.neighbors.size());
            ++total_ranges;
          }
        }
        std::string bytes = wire::EncodeSampleResponse(resp);
        out.resp_bytes += bytes.size();  // shipped before the damage
        injector_.CorruptBytes(s, &bytes);
        NeighborBatch decoded;
        if (!wire::DecodeSampleResponse(bytes, &decoded) ||
            decoded.NumSeeds() != total_ranges) {
          return false;  // rejected by the codec; RunRpc retries
        }
        // Structurally valid despite the damage — accept what decoded.
        // (CorruptBytes guarantees structural damage, so this is a
        // belt-and-braces path, not an expected one.)
        std::size_t k = 0;
        for (const ShardGroup& grp : groups) {
          for (std::size_t pos : grp.positions) {
            results[grp.item][pos].assign(
                decoded.neighbors.begin() +
                    static_cast<std::ptrdiff_t>(decoded.offsets[k]),
                decoded.neighbors.begin() +
                    static_cast<std::ptrdiff_t>(decoded.offsets[k + 1]));
            ++k;
          }
        }
        return true;
      }
      // One logical SampleResponse per item bundled into the RPC:
      // header + per seed (4 B len + 8 B each).
      std::uint64_t resp = 0;
      for (const auto& item_local : local) {
        resp += 5;
        for (const auto& r : item_local) resp += 4 + r.size() * sizeof(VertexId);
      }
      out.resp_bytes += resp;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const ShardGroup& grp = groups[g];
        for (std::size_t i = 0; i < grp.positions.size(); ++i) {
          results[grp.item][grp.positions[i]] = std::move(local[g][i]);
        }
      }
      return true;
    });
  });

  for (std::size_t w = 0; w < item_seeds.size(); ++w) {
    multi.reports[w].seed_status.assign(item_seeds[w]->size(),
                                        SeedStatus::kOk);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<ShardGroup>& groups = shard_groups[s];
    if (groups.empty()) continue;
    const RpcOutcome& out = outcomes[s];
    MergeOutcome(out);
    // One logical SampleRequest per item bundled into the RPC (dist/wire.h
    // layout): header + 8 B per seed.
    std::size_t shard_seeds = 0;
    for (const ShardGroup& grp : groups) shard_seeds += grp.positions.size();
    counters_.bytes_sent->Add(
        out.attempts * (14 * groups.size() + shard_seeds * sizeof(VertexId)));
    shard_seed_counters_[s]->Add(shard_seeds);
    counters_.bytes_received->Add(out.resp_bytes);
    // The round's virtual wall time is the slowest of the parallel RPCs.
    multi.round_virtual_us = std::max(multi.round_virtual_us, out.virtual_us);
    if (!out.delivered) {
      for (const ShardGroup& grp : groups) {
        SampleReport& report = multi.reports[grp.item];
        if (fallback(s, grp.item, grp.positions, &results[grp.item],
                     &report)) {
          continue;
        }
        // Degrade this item's seeds on this shard: empty ranges, flagged.
        for (std::size_t pos : grp.positions) {
          results[grp.item][pos].clear();
          report.seed_status[pos] = SeedStatus::kDegraded;
        }
        report.degraded_seeds += grp.positions.size();
      }
    }
  }
  for (const SampleReport& r : multi.reports) {
    counters_.degraded_seeds->Add(r.degraded_seeds);
  }
  // Sampling ships nothing new, but its virtual-time cost does age
  // suspicions — the health monitor runs so a dead primary eventually
  // fails over under a read-only workload too.
  ReplicationHealthCheck();

  // Re-assemble each item in seed order.
  for (std::size_t w = 0; w < item_seeds.size(); ++w) {
    SampleReport& report = multi.reports[w];
    report.batch.offsets.reserve(item_seeds[w]->size() + 1);
    report.batch.offsets.push_back(0);
    for (const auto& r : results[w]) {
      report.batch.neighbors.insert(report.batch.neighbors.end(), r.begin(),
                                    r.end());
      report.batch.offsets.push_back(report.batch.neighbors.size());
    }
  }
  return multi;
}

MultiSampleReport GraphCluster::SampleMany(
    const std::vector<SampleWorkItem>& work) {
  std::vector<const std::vector<VertexId>*> item_seeds;
  item_seeds.reserve(work.size());
  for (const SampleWorkItem& w : work) item_seeds.push_back(w.seeds);
  return NeighborRound(
      item_seeds,
      [&](std::size_t s, std::size_t item,
          const std::vector<std::size_t>& positions,
          std::vector<std::vector<VertexId>>* local) {
        const SampleWorkItem& w = work[item];
        // Fresh RNG per item per attempt: batched results are
        // bit-identical to issuing the item alone, and a retry replays
        // the exact draw sequence of the failed attempt.
        Xoshiro256 rng(w.rng_seed ^ (kShardSeedSalt * (s + 1)));
        for (std::size_t i = 0; i < positions.size(); ++i) {
          shards_[s]->SampleNeighbors((*w.seeds)[positions[i]], w.fanout,
                                      w.weighted, rng, &(*local)[i], w.type);
        }
      },
      [&](std::size_t s, std::size_t item,
          const std::vector<std::size_t>& positions,
          std::vector<std::vector<VertexId>>* item_results,
          SampleReport* report) {
        // Bounded-staleness fallback: an unreachable primary's seeds may
        // be served by its freshest replica if one is within the
        // staleness budget — real data flagged kStale, not an empty
        // degraded marker. Seeded identically to the primary attempt, so
        // a caught-up replica returns bit-identical samples. Only on
        // primary failure: a fault-free run never touches replicas and
        // stays bit-identical to a replication-disabled run.
        if (replication_ == nullptr) return false;
        const SampleWorkItem& w = work[item];
        std::vector<VertexId> group_seeds;
        group_seeds.reserve(positions.size());
        for (std::size_t pos : positions) {
          group_seeds.push_back((*w.seeds)[pos]);
        }
        std::optional<ReplicationManager::ReplicaServe> serve =
            replication_->SampleFromReplica(
                s, group_seeds, w.fanout, w.weighted,
                w.rng_seed ^ (kShardSeedSalt * (s + 1)), w.type);
        if (!serve.has_value()) return false;
        for (std::size_t i = 0; i < positions.size(); ++i) {
          (*item_results)[positions[i]] = std::move(serve->neighbors[i]);
          report->seed_status[positions[i]] = SeedStatus::kStale;
        }
        counters_.replica_read_seeds->Add(positions.size());
        if (serve->lag > 0) counters_.stale_replica_seeds->Add(positions.size());
        return true;
      });
}

SampleReport GraphCluster::SampleNeighborsChecked(
    const std::vector<VertexId>& seeds, std::size_t fanout, bool weighted,
    std::uint64_t seed, EdgeType type) {
  SampleWorkItem item;
  item.seeds = &seeds;
  item.fanout = fanout;
  item.weighted = weighted;
  item.rng_seed = seed;
  item.type = type;
  MultiSampleReport multi = SampleMany({item});
  return std::move(multi.reports[0]);
}

MultiSampleReport GraphCluster::TraverseMany(
    const std::vector<TraverseWorkItem>& work) {
  std::vector<const std::vector<VertexId>*> item_seeds;
  item_seeds.reserve(work.size());
  for (const TraverseWorkItem& w : work) item_seeds.push_back(w.seeds);
  return NeighborRound(
      item_seeds,
      [&](std::size_t s, std::size_t item,
          const std::vector<std::size_t>& positions,
          std::vector<std::vector<VertexId>>* local) {
        const TraverseWorkItem& w = work[item];
        for (std::size_t i = 0; i < positions.size(); ++i) {
          shards_[s]->Traverse((*w.seeds)[positions[i]], w.cap, &(*local)[i],
                               w.type);
        }
      },
      [](std::size_t, std::size_t, const std::vector<std::size_t>&,
         std::vector<std::vector<VertexId>>*, SampleReport*) {
        // No replica fallback for traversal: degraded frontiers must stay
        // visible to the serving layer's SLO accounting.
        return false;
      });
}

MultiGatherReport GraphCluster::GatherMany(
    const std::vector<GatherWorkItem>& work) {
  MultiGatherReport multi;
  multi.reports.resize(work.size());
  if (work.empty()) return multi;

  struct ShardGroup {
    std::size_t item;
    std::vector<std::size_t> positions;
  };
  std::vector<std::vector<ShardGroup>> shard_groups(shards_.size());
  for (std::size_t w = 0; w < work.size(); ++w) {
    const std::vector<VertexId>& ids = *work[w].ids;
    std::vector<std::vector<std::size_t>> by_shard(shards_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      by_shard[partitioner_.ShardOf(ids[i])].push_back(i);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!by_shard[s].empty()) {
        shard_groups[s].push_back(ShardGroup{w, std::move(by_shard[s])});
      }
    }
  }

  // rows[w][i] = feature vector for (*work[w].ids)[i] (empty = zero row).
  std::vector<std::vector<std::vector<float>>> rows(work.size());
  for (std::size_t w = 0; w < work.size(); ++w) {
    rows[w].resize(work[w].ids->size());
  }
  std::vector<RpcOutcome> outcomes(shards_.size());
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    const std::vector<ShardGroup>& groups = shard_groups[s];
    if (groups.empty()) return;
    outcomes[s] = RunRpc(s, [&](bool corrupt, RpcOutcome& out) {
      if (corrupt) {
        // A damaged feature payload fails its checksum; modelled as a
        // rejected response so RunRpc retries (same stance as update acks).
        return false;
      }
      Timer rpc;
      std::uint64_t resp = 0;
      std::vector<float> row;
      for (const ShardGroup& grp : groups) {
        const std::vector<VertexId>& ids = *work[grp.item].ids;
        resp += 5;
        for (std::size_t pos : grp.positions) {
          shards_[s]->GatherFeatures(ids[pos], &row);
          resp += 4 + row.size() * sizeof(float);
          rows[grp.item][pos] = row;
        }
      }
      rpc_latency_.RecordMicros(rpc.ElapsedMicros());
      out.resp_bytes += resp;
      return true;
    });
  });

  for (std::size_t w = 0; w < work.size(); ++w) {
    multi.reports[w].row_status.assign(work[w].ids->size(), SeedStatus::kOk);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<ShardGroup>& groups = shard_groups[s];
    if (groups.empty()) continue;
    const RpcOutcome& out = outcomes[s];
    MergeOutcome(out);
    std::size_t shard_ids = 0;
    for (const ShardGroup& grp : groups) shard_ids += grp.positions.size();
    counters_.bytes_sent->Add(
        out.attempts * (14 * groups.size() + shard_ids * sizeof(VertexId)));
    shard_gather_counters_[s]->Add(shard_ids);
    counters_.bytes_received->Add(out.resp_bytes);
    multi.round_virtual_us = std::max(multi.round_virtual_us, out.virtual_us);
    if (!out.delivered) {
      for (const ShardGroup& grp : groups) {
        GatherReport& report = multi.reports[grp.item];
        for (std::size_t pos : grp.positions) {
          rows[grp.item][pos].clear();
          report.row_status[pos] = SeedStatus::kDegraded;
        }
        report.degraded_rows += grp.positions.size();
      }
    }
  }
  ReplicationHealthCheck();

  // Dense [ids x dim] assembly; dim = widest row seen this round, shorter
  // or absent rows are zero-padded.
  std::size_t dim = 0;
  for (const auto& item_rows : rows) {
    for (const auto& r : item_rows) dim = std::max(dim, r.size());
  }
  multi.dim = static_cast<std::uint32_t>(dim);
  for (std::size_t w = 0; w < work.size(); ++w) {
    GatherReport& report = multi.reports[w];
    report.features.assign(rows[w].size() * dim, 0.0f);
    for (std::size_t i = 0; i < rows[w].size(); ++i) {
      const std::vector<float>& r = rows[w][i];
      std::copy(r.begin(), r.end(),
                report.features.begin() +
                    static_cast<std::ptrdiff_t>(i * dim));
    }
  }
  return multi;
}

void GraphCluster::CrashShard(std::size_t i) {
  injector_.CrashShard(i);
  shards_[i]->Crash();
}

Status GraphCluster::RecoverShard(std::size_t i) {
  std::size_t replayed = 0;
  Status s = shards_[i]->Recover(&replayed);
  if (!s.ok()) return s;
  injector_.RestoreShard(i);
  counters_.recoveries->Add();
  counters_.replayed_updates->Add(replayed);
  return Status::Ok();
}

Status GraphCluster::CheckpointAll(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // SaveGraph fails loudly
  Status result = Status::Ok();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->crashed()) continue;
    Status s = shards_[i]->Checkpoint(dir + "/shard_" + std::to_string(i) +
                                      ".ckpt");
    if (!s.ok() && result.ok()) result = s;
  }
  return result;
}

std::size_t GraphCluster::Degree(VertexId src, EdgeType type) const {
  return shards_[partitioner_.ShardOf(src)]->store().Degree(src, type);
}

std::size_t GraphCluster::NumEdges() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store().NumEdges();
  return n;
}

double GraphCluster::LoadImbalance() const {
  std::size_t max_edges = 0;
  std::size_t min_edges = static_cast<std::size_t>(-1);
  for (const auto& s : shards_) {
    const std::size_t e = s->store().NumEdges();
    max_edges = std::max(max_edges, e);
    min_edges = std::min(min_edges, e);
  }
  if (min_edges == 0) return static_cast<double>(max_edges);
  return static_cast<double>(max_edges) / static_cast<double>(min_edges);
}

}  // namespace platod2gl
