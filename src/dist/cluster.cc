#include "dist/cluster.h"

#include "common/timer.h"

#include <algorithm>

namespace platod2gl {

GraphCluster::GraphCluster(ClusterConfig config)
    : config_(config),
      partitioner_(config.num_shards),
      pool_(config.num_client_threads) {
  shards_.reserve(partitioner_.num_shards());
  for (std::size_t i = 0; i < partitioner_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<GraphShard>(config_.shard_config));
  }
}

void GraphCluster::Apply(const EdgeUpdate& update) {
  ++stats_.rpcs;
  stats_.virtual_network_us += config_.rpc_latency_us;
  shards_[partitioner_.ShardOf(update.edge.src)]->Apply(update);
}

void GraphCluster::ApplyBatch(const std::vector<EdgeUpdate>& batch) {
  std::vector<std::vector<EdgeUpdate>> per_shard(shards_.size());
  for (const EdgeUpdate& u : batch) {
    per_shard[partitioner_.ShardOf(u.edge.src)].push_back(u);
  }
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Timer rpc;
    for (const EdgeUpdate& u : per_shard[s]) shards_[s]->Apply(u);
    rpc_latency_.RecordMicros(rpc.ElapsedMicros());
  });
  for (const auto& group : per_shard) {
    if (group.empty()) continue;
    ++stats_.rpcs;
    stats_.virtual_network_us += config_.rpc_latency_us;
    // UpdateBatch wire size (dist/wire.h): tag + count + 29 B per update.
    stats_.bytes_sent += 5 + group.size() * 29;
    stats_.bytes_received += 1;  // ack
  }
}

NeighborBatch GraphCluster::SampleNeighbors(const std::vector<VertexId>& seeds,
                                            std::size_t fanout, bool weighted,
                                            std::uint64_t seed,
                                            EdgeType type) {
  // Group seed positions by owning shard.
  std::vector<std::vector<std::size_t>> shard_seeds(shards_.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    shard_seeds[partitioner_.ShardOf(seeds[i])].push_back(i);
  }

  // One parallel RPC per non-empty shard.
  std::vector<std::vector<VertexId>> results(seeds.size());
  pool_.ParallelFor(shards_.size(), [&](std::size_t s) {
    if (shard_seeds[s].empty()) return;
    Timer rpc;
    Xoshiro256 rng(seed ^ (0xD1B54A32D192ED03ULL * (s + 1)));
    for (std::size_t pos : shard_seeds[s]) {
      shards_[s]->SampleNeighbors(seeds[pos], fanout, weighted, rng,
                                  &results[pos], type);
    }
    rpc_latency_.RecordMicros(rpc.ElapsedMicros());
  });
  for (const auto& group : shard_seeds) {
    if (group.empty()) continue;
    ++stats_.rpcs;
    stats_.virtual_network_us += config_.rpc_latency_us;
    // SampleRequest wire size (dist/wire.h): header + 8 B per seed;
    // SampleResponse: header + per seed (4 B length + 8 B per neighbour).
    stats_.bytes_sent += 14 + group.size() * sizeof(VertexId);
    std::uint64_t resp = 5;
    for (std::size_t pos : group) {
      resp += 4 + results[pos].size() * sizeof(VertexId);
    }
    stats_.bytes_received += resp;
  }

  // Re-assemble in seed order.
  NeighborBatch batch;
  batch.offsets.reserve(seeds.size() + 1);
  batch.offsets.push_back(0);
  for (const auto& r : results) {
    batch.neighbors.insert(batch.neighbors.end(), r.begin(), r.end());
    batch.offsets.push_back(batch.neighbors.size());
  }
  return batch;
}

std::size_t GraphCluster::Degree(VertexId src, EdgeType type) const {
  return shards_[partitioner_.ShardOf(src)]->store().Degree(src, type);
}

std::size_t GraphCluster::NumEdges() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store().NumEdges();
  return n;
}

double GraphCluster::LoadImbalance() const {
  std::size_t max_edges = 0;
  std::size_t min_edges = static_cast<std::size_t>(-1);
  for (const auto& s : shards_) {
    const std::size_t e = s->store().NumEdges();
    max_edges = std::max(max_edges, e);
    min_edges = std::min(min_edges, e);
  }
  if (min_edges == 0) return static_cast<double>(max_edges);
  return static_cast<double>(max_edges) / static_cast<double>(min_edges);
}

}  // namespace platod2gl
