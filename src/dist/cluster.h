// GraphCluster: the distributed graph-storage simulation.
//
// Routes every request to the shard owning its source vertex
// (hash-by-source, like the production deployment), fans batched requests
// out across shards on a thread pool (one simulated RPC per shard per
// batch), and keeps virtual-time accounting of the network cost so
// experiments can report "what a real cluster would have paid" without
// sleeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dist/partitioner.h"
#include "dist/shard.h"
#include "sampling/neighbor_sampler.h"

namespace platod2gl {

struct ClusterConfig {
  std::size_t num_shards = 4;
  GraphStoreConfig shard_config;
  /// Virtual per-RPC latency (accounted, never slept).
  std::uint64_t rpc_latency_us = 150;
  std::size_t num_client_threads = 4;
};

struct ClusterStats {
  std::uint64_t rpcs = 0;
  std::uint64_t virtual_network_us = 0;
  /// Wire-format sizes (see dist/wire.h) the RPCs would have shipped,
  /// computed arithmetically from the same layout the codec pins.
  std::uint64_t bytes_sent = 0;      ///< client -> shards (requests)
  std::uint64_t bytes_received = 0;  ///< shards -> client (responses)
};

class GraphCluster {
 public:
  explicit GraphCluster(ClusterConfig config = {});

  /// Route one update to its owning shard.
  void Apply(const EdgeUpdate& update);

  /// Apply a batch: updates are grouped per shard and shipped as one RPC
  /// per non-empty shard, executed in parallel.
  void ApplyBatch(const std::vector<EdgeUpdate>& batch);

  /// Batched neighbour sampling across shards: seeds are grouped by owner,
  /// one RPC per shard, results re-assembled in seed order.
  NeighborBatch SampleNeighbors(const std::vector<VertexId>& seeds,
                                std::size_t fanout, bool weighted,
                                std::uint64_t seed, EdgeType type = 0);

  std::size_t Degree(VertexId src, EdgeType type = 0) const;
  std::size_t NumEdges() const;

  GraphShard& shard(std::size_t i) { return *shards_.at(i); }
  const GraphShard& shard(std::size_t i) const { return *shards_.at(i); }
  std::size_t num_shards() const { return shards_.size(); }

  const Partitioner& partitioner() const { return partitioner_; }
  const ClusterStats& stats() const { return stats_; }

  /// Per-RPC compute-latency distribution (excludes the virtual network
  /// cost). Thread-safe.
  const LatencyHistogram& rpc_latency() const { return rpc_latency_; }

  /// Max/min shard load ratio — the balance metric hash-by-source is
  /// chosen for.
  double LoadImbalance() const;

 private:
  ClusterConfig config_;
  HashBySourcePartitioner partitioner_;
  std::vector<std::unique_ptr<GraphShard>> shards_;
  ThreadPool pool_;
  ClusterStats stats_;
  LatencyHistogram rpc_latency_;
};

}  // namespace platod2gl
