// GraphCluster: the distributed graph-storage simulation.
//
// Routes every request to the shard owning its source vertex
// (hash-by-source, like the production deployment), fans batched requests
// out across shards on a thread pool (one simulated RPC per shard per
// batch), and keeps virtual-time accounting of the network cost so
// experiments can report "what a real cluster would have paid" without
// sleeping.
//
// Fault tolerance (DESIGN.md §9, docs/fault_tolerance.md): every RPC runs
// through a FaultInjector and a RetryPolicy — bounded attempts,
// exponential backoff with jitter and a per-call deadline, all accounted
// in virtual time like rpc_latency_us (never slept). Sampling degrades
// gracefully: seeds whose shard stays unreachable past the budget come
// back with empty ranges flagged kDegraded instead of an exception or a
// hang. Updates are durable via the shards' write-ahead logs: a crashed
// shard keeps accepting WAL writes (hinted handoff) and RecoverShard()
// rebuilds it from checkpoint + WAL replay to the exact never-crashed
// state.
//
// Replication (DESIGN.md §13, docs/replication.md): with
// config.replication.num_replicas > 0 each shard additionally feeds N read
// replicas by WAL shipping (dist/replication.h). Sampling falls back to a
// replica within the staleness budget when a primary stays unreachable
// (seeds flagged kStale instead of kDegraded), a virtual-time health
// monitor promotes the best replica of a primary that stays crashed past
// the suspicion timeout (under the epoch barrier, bit-identical to a
// sequential log replay), and RunAntiEntropy() repairs injected
// divergence via per-keyrange CRC digests. With num_replicas == 0 (the
// default) none of this machinery is constructed and the cluster behaves
// exactly as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dist/fault_injector.h"
#include "dist/partitioner.h"
#include "dist/replication.h"
#include "dist/shard.h"
#include "obs/metrics.h"
#include "pipeline/epoch_coordinator.h"
#include "sampling/neighbor_sampler.h"

namespace platod2gl {

/// Client-side resilience knobs for one logical RPC (one shard, one
/// group of seeds/updates). All waits are virtual time, never slept.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  std::uint64_t initial_backoff_us = 200;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 5000;
  /// Per-call virtual deadline: once the accumulated virtual cost of
  /// attempts + backoffs reaches this, the call gives up (degraded
  /// sampling / failed update delivery) instead of retrying further.
  std::uint64_t deadline_us = 50000;
  /// Virtual cost charged for an attempt whose response never arrives.
  std::uint64_t timeout_us = 2000;
};

struct ClusterConfig {
  std::size_t num_shards = 4;
  GraphStoreConfig shard_config;
  /// Virtual per-RPC latency (accounted, never slept).
  std::uint64_t rpc_latency_us = 150;
  std::size_t num_client_threads = 4;
  RetryPolicy retry;
  FaultConfig fault;
  /// Per-shard read replication; num_replicas == 0 disables it.
  ReplicationConfig replication;
};

/// Point-in-time snapshot of the cluster's transport counters. Filled
/// from the pd2gl_cluster_* registry series by GraphCluster::stats() —
/// the registry (GraphCluster::metrics()) is the live, exportable home.
struct ClusterStats {
  std::uint64_t rpcs = 0;  ///< attempts, including retried/failed ones
  std::uint64_t virtual_network_us = 0;
  /// Wire-format sizes (see dist/wire.h) the RPCs would have shipped,
  /// computed arithmetically from the same layout the codec pins.
  std::uint64_t bytes_sent = 0;      ///< client -> shards (requests)
  std::uint64_t bytes_received = 0;  ///< shards -> client (responses)
  // --- fault-tolerance observability ---
  std::uint64_t retries = 0;           ///< re-attempts after a failure
  std::uint64_t transient_faults = 0;  ///< injected fail/timeout/corrupt hits
  std::uint64_t corrupt_responses = 0; ///< responses dropped by the codec
  std::uint64_t deadline_hits = 0;     ///< calls abandoned at the deadline
  std::uint64_t crash_rejections = 0;  ///< attempts refused by a dead shard
  std::uint64_t degraded_seeds = 0;    ///< seeds returned empty-degraded
  std::uint64_t wal_handoffs = 0;      ///< updates durably logged while down
  std::uint64_t lost_updates = 0;      ///< updates undeliverable AND unlogged
  std::uint64_t recoveries = 0;        ///< RecoverShard completions
  std::uint64_t replayed_updates = 0;  ///< WAL entries replayed on recovery
  // --- replication observability (docs/replication.md) ---
  std::uint64_t replica_read_seeds = 0;  ///< seeds served by replica fallback
  std::uint64_t stale_replica_seeds = 0; ///< ...of those, behind the primary
  std::uint64_t failovers = 0;           ///< replica promotions
  std::uint64_t failover_replayed = 0;   ///< WAL entries replayed at promotion
  std::uint64_t digest_rounds = 0;       ///< anti-entropy comparisons run
  std::uint64_t digest_mismatches = 0;   ///< digest buckets that disagreed
  std::uint64_t antientropy_repairs = 0; ///< replicas repaired by a round
  std::uint64_t antientropy_edges = 0;   ///< edges re-shipped by repairs
};

/// Batched sampling result plus per-seed delivery status: `batch` always
/// has one (possibly empty) range per seed, `seed_status[i]` says whether
/// seed i's range is authoritative or a degraded empty marker.
struct SampleReport {
  NeighborBatch batch;
  std::vector<SeedStatus> seed_status;  // size = #seeds
  std::uint64_t degraded_seeds = 0;

  bool complete() const { return degraded_seeds == 0; }
};

/// One request's sampling work inside a cross-request batched round
/// (src/serve): its own seeds, fanout, and RNG seed. The round ships ONE
/// RPC per touched shard covering every item, but each item's per-shard
/// RNG stream is derived exactly as SampleNeighborsChecked would derive
/// it, so batched results are bit-identical to issuing the items one by
/// one (pinned in tests/test_serve.cc).
struct SampleWorkItem {
  const std::vector<VertexId>* seeds = nullptr;
  std::size_t fanout = 0;
  bool weighted = true;
  std::uint64_t rng_seed = 0;
  EdgeType type = 0;
};

/// Traversal work: up to `cap` neighbours per seed in store order
/// (RNG-free).
struct TraverseWorkItem {
  const std::vector<VertexId>* seeds = nullptr;
  std::size_t cap = 0;
  EdgeType type = 0;
};

/// Attribute-gather work: feature rows for `ids`.
struct GatherWorkItem {
  const std::vector<VertexId>* ids = nullptr;
};

/// Result of one cross-request round: one report per work item plus the
/// round's virtual wall time — the max across the per-shard RPCs, since
/// they fan out in parallel (vs. stats().virtual_network_us, which sums
/// every RPC's cost).
struct MultiSampleReport {
  std::vector<SampleReport> reports;
  std::uint64_t round_virtual_us = 0;
};

/// Per-item gather result: dense row-major rows over this item's ids
/// (missing vertices get zero rows, flagged in `row_status`).
struct GatherReport {
  std::vector<float> features;          // ids.size() x dim
  std::vector<SeedStatus> row_status;   // kOk / kDegraded per id
  std::uint64_t degraded_rows = 0;
};

struct MultiGatherReport {
  std::vector<GatherReport> reports;
  std::uint32_t dim = 0;
  std::uint64_t round_virtual_us = 0;
};

class GraphCluster {
 public:
  explicit GraphCluster(ClusterConfig config = {});

  /// Route one update to its owning shard (same retry/handoff semantics
  /// as ApplyBatch). Non-OK only if the update could not be delivered or
  /// durably logged within the retry budget.
  Status Apply(const EdgeUpdate& update);

  /// Apply a batch: updates are grouped per shard and shipped as one RPC
  /// per non-empty shard, executed in parallel. Updates owned by a crashed
  /// shard are durably appended to its WAL (hinted handoff, replayed by
  /// RecoverShard); transient RPC faults are retried. Non-OK reports
  /// updates that were lost past the retry budget (stats().lost_updates).
  Status ApplyBatch(const std::vector<EdgeUpdate>& batch);

  /// Batched neighbour sampling across shards: seeds are grouped by owner,
  /// one RPC per shard, results re-assembled in seed order. Transient
  /// faults are retried (retries re-derive the per-shard RNG stream, so
  /// results are bit-identical to a fault-free run); shards unreachable
  /// past the budget degrade their seeds to flagged empty ranges.
  SampleReport SampleNeighborsChecked(const std::vector<VertexId>& seeds,
                                      std::size_t fanout, bool weighted,
                                      std::uint64_t seed, EdgeType type = 0);

  /// Back-compat convenience: the batch alone. Degradation is still
  /// visible in stats().degraded_seeds.
  NeighborBatch SampleNeighbors(const std::vector<VertexId>& seeds,
                                std::size_t fanout, bool weighted,
                                std::uint64_t seed, EdgeType type = 0) {
    return SampleNeighborsChecked(seeds, fanout, weighted, seed, type).batch;
  }

  // --- Cross-request batched rounds (the serving layer's data plane) ------

  /// Sample many requests' seed sets in ONE round: one RPC per touched
  /// shard carries every item's seeds for that shard, amortising the
  /// per-RPC virtual latency across requests. Each item's per-shard RNG is
  /// re-derived from its own rng_seed, so reports[i] is bit-identical to
  /// SampleNeighborsChecked(*work[i].seeds, ...) issued alone (in fact
  /// SampleNeighborsChecked is now the 1-item special case). Retries,
  /// replica fallback, and per-seed degradation behave per item exactly as
  /// in the single-request path.
  MultiSampleReport SampleMany(const std::vector<SampleWorkItem>& work);

  /// Batched traversal round: up to `cap` neighbours per seed in store
  /// order, deterministic and RNG-free. Unreachable shards degrade their
  /// seeds (no replica fallback: traversal is a serving-plan operator, and
  /// degraded frontiers must be visible to the SLO accounting).
  MultiSampleReport TraverseMany(const std::vector<TraverseWorkItem>& work);

  /// Batched attribute-gather round: dense [ids x dim] rows per item,
  /// zero rows (flagged kDegraded) for ids on unreachable shards. `dim` is
  /// taken from the widest feature vector seen this round.
  MultiGatherReport GatherMany(const std::vector<GatherWorkItem>& work);

  // --- Fault-tolerance lifecycle -----------------------------------------

  /// Kill shard i: wipes its in-memory store and makes it refuse RPCs
  /// until RecoverShard. Its WAL and last checkpoint survive.
  void CrashShard(std::size_t i);

  /// Rebuild a crashed shard from its last checkpoint + WAL replay and
  /// put it back in service.
  Status RecoverShard(std::size_t i);

  /// Checkpoint every live shard into dir/shard_<i>.ckpt (io/checkpoint
  /// format with CRC32 footer) and truncate the covered WAL prefixes.
  /// Crashed shards are skipped (first error wins otherwise).
  Status CheckpointAll(const std::string& dir);

  FaultInjector& fault_injector() { return injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

  // --- Replication (no-ops / empty results when num_replicas == 0) --------

  bool has_replication() const { return replication_ != nullptr; }
  /// The manager itself (tests / tools); nullptr when disabled.
  ReplicationManager* replication() { return replication_.get(); }

  /// Advance the virtual clock by `us` and run the replica health monitor:
  /// suspicion starts/ages here, and a primary crashed past the suspicion
  /// timeout is failed over (stats().failovers).
  void AdvanceVirtualTime(std::uint64_t us);

  /// Ship until every reachable replica is caught up (see
  /// ReplicationManager::Flush).
  Status FlushReplication();

  /// One anti-entropy digest round over every shard; outcomes are also
  /// accumulated into stats().
  ReplicationManager::AntiEntropyReport RunAntiEntropy();

  /// Kill replica r of shard s: its store is wiped; after RecoverReplica
  /// the next ship round re-feeds it (snapshot bootstrap if the WAL was
  /// truncated meanwhile).
  void CrashReplica(std::size_t s, std::size_t r);
  void RecoverReplica(std::size_t s, std::size_t r);
  /// Partition / heal the primary<->replica link (the replica keeps
  /// serving stale reads while cut off).
  void PartitionReplica(std::size_t s, std::size_t r);
  void HealReplica(std::size_t s, std::size_t r);

  /// Read/write barrier ordering replica reads against failover cut-overs;
  /// epoch() counts completed promotions.
  EpochCoordinator& cutover() { return cutover_; }

  /// Transport-level replication counters (zeros when disabled).
  ReplicationStats replication_stats() const {
    return replication_ ? replication_->stats() : ReplicationStats{};
  }

  /// Degree/NumEdges read the live stores directly; a crashed shard
  /// contributes its wiped (empty) store until recovered.
  std::size_t Degree(VertexId src, EdgeType type = 0) const;
  std::size_t NumEdges() const;

  GraphShard& shard(std::size_t i) { return *shards_.at(i); }
  const GraphShard& shard(std::size_t i) const { return *shards_.at(i); }
  std::size_t num_shards() const { return shards_.size(); }

  const Partitioner& partitioner() const { return partitioner_; }
  /// Snapshot of the transport counters (one shared registry fill loop —
  /// see obs::StatsBinding).
  ClusterStats stats() const { return binding_.Read(); }

  /// The cluster's metric registry: pd2gl_cluster_* transport counters,
  /// per-shard load series (pd2gl_shard_*{shard="i"}), the RPC compute
  /// histogram, pd2gl_replication_* (when replication is on), and
  /// per-shard sample-cache series (when the cache is on).
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Per-RPC compute-latency distribution (excludes the virtual network
  /// cost). Thread-safe.
  const LatencyHistogram& rpc_latency() const { return rpc_latency_; }

  /// Max/min shard load ratio — the balance metric hash-by-source is
  /// chosen for.
  double LoadImbalance() const;

 private:
  /// Outcome of one logical RPC (all attempts against one shard).
  struct RpcOutcome {
    bool delivered = false;
    bool deadline_hit = false;
    std::uint64_t attempts = 0;
    std::uint64_t virtual_us = 0;
    std::uint64_t transient_faults = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t crash_rejections = 0;
    std::uint64_t resp_bytes = 0;  ///< response bytes shipped back
  };

  /// Drive the retry loop for one logical RPC against shard s. `body`
  /// performs one attempt's shard-side work; body(corrupt, out) returns
  /// whether the client accepted the response.
  template <typename Body>
  RpcOutcome RunRpc(std::size_t s, Body&& body);

  /// Shared engine for neighbour-shaped cross-request rounds (SampleMany /
  /// TraverseMany): groups every item's seeds by shard, ships one RPC per
  /// touched shard via RunRpc, and reassembles per-item SampleReports.
  /// `fill(s, item, positions, local)` performs one item group's
  /// shard-side work for one attempt; `fallback(s, item, positions,
  /// item_results, report)` may serve a failed shard's seeds from a
  /// replica, returning whether it did.
  template <typename Fill, typename Fallback>
  MultiSampleReport NeighborRound(
      const std::vector<const std::vector<VertexId>*>& item_seeds,
      Fill&& fill, Fallback&& fallback);

  /// Update delivery to one shard (crash handoff / retry loop). Pure
  /// w.r.t. stats_; the caller merges the outcome serially.
  RpcOutcome DeliverUpdates(std::size_t s,
                            const std::vector<EdgeUpdate>& group);

  /// Fold one logical RPC's outcome into stats_ (serial sections only).
  void MergeOutcome(const RpcOutcome& out);

  /// Ship outstanding WAL entries and run the failover health monitor
  /// against the current virtual clock (serial sections only).
  void PumpReplication();
  /// Health monitor only (read paths: nothing new to ship).
  void ReplicationHealthCheck();

  // Registry-owned transport counters (pd2gl_cluster_*), bound onto
  // ClusterStats members at construction; stats() is binding_.Read().
  // All bumps happen in serial sections (outcome merges), exactly like
  // the plain fields they replace — the registry just makes them named
  // and exportable.
  struct Counters {
    obs::Counter* rpcs = nullptr;
    obs::Counter* virtual_network_us = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* transient_faults = nullptr;
    obs::Counter* corrupt_responses = nullptr;
    obs::Counter* deadline_hits = nullptr;
    obs::Counter* crash_rejections = nullptr;
    obs::Counter* degraded_seeds = nullptr;
    obs::Counter* wal_handoffs = nullptr;
    obs::Counter* lost_updates = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* replayed_updates = nullptr;
    obs::Counter* replica_read_seeds = nullptr;
    obs::Counter* stale_replica_seeds = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* failover_replayed = nullptr;
    obs::Counter* digest_rounds = nullptr;
    obs::Counter* digest_mismatches = nullptr;
    obs::Counter* antientropy_repairs = nullptr;
    obs::Counter* antientropy_edges = nullptr;
  };

  ClusterConfig config_;
  HashBySourcePartitioner partitioner_;
  std::vector<std::unique_ptr<GraphShard>> shards_;
  ThreadPool pool_;
  FaultInjector injector_;
  // Declared before replication_ so it outlives the manager's series.
  obs::MetricRegistry metrics_;
  obs::StatsBinding<ClusterStats> binding_;
  Counters counters_;
  /// Per-shard load series, {shard="i"}-labelled: seeds routed to each
  /// shard by sampling/traversal rounds and ids by gather rounds. The
  /// load signal dynamic partitioning (ROADMAP) and `pd2gl serve-bench`'s
  /// hottest-shard summary read.
  std::vector<obs::Counter*> shard_seed_counters_;
  std::vector<obs::Counter*> shard_gather_counters_;
  LatencyHistogram rpc_latency_;
  EpochCoordinator cutover_;
  std::unique_ptr<ReplicationManager> replication_;  // null when disabled
};

}  // namespace platod2gl
