// GraphShard: one simulated graph server.
//
// The paper's evaluation cluster dedicates 54 machines to graph storage;
// this repo substitutes in-process shards (see DESIGN.md, substitutions).
// A shard owns a full GraphStore for the vertices hashed onto it and
// counts the requests it served so the cluster can report load balance.
//
// Fault tolerance (DESIGN.md §9): the shard separates volatile from
// durable state. The GraphStore is volatile — Crash() wipes it, modelling
// a dead serving process. The write-ahead log (a TemporalEdgeLog keyed by
// a per-shard sequence number) and the last checkpoint are durable — they
// model the disk that survives the process. Every update is logged before
// it is applied, so Recover() can always rebuild the store exactly:
// load the last checkpoint (covering sequence numbers <= checkpoint_seq),
// then replay the WAL window (checkpoint_seq, wal_seq]. While crashed the
// shard still accepts durable WAL writes (the log service outlives the
// serving process, as in GNNFlow's log-structured recovery) but refuses
// sampling.
//
// Replication (DESIGN.md §13, docs/replication.md): the durable WAL
// doubles as the replication log. The ReplicationManager reads windows of
// it to ship to replicas — possibly from a pump thread concurrent with
// Apply — so the WAL and its watermarks are guarded by a spinlock and
// exposed through the locked accessors below. Promote() is the failover
// hand-off: a caught-up replica store is installed as the serving store
// and the shard returns to service.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/graph_store.h"
#include "temporal/edge_log.h"

namespace platod2gl {

class GraphShard {
 public:
  explicit GraphShard(GraphStoreConfig config = {});

  GraphStore& store() { return *store_; }
  const GraphStore& store() const { return *store_; }

  /// Durably log the update, then apply it to the store (skipped while
  /// crashed — the WAL write is the hinted handoff that Recover() replays).
  void Apply(const EdgeUpdate& update);

  /// Serve a sampling request. Returns false without touching `out` while
  /// crashed (callers should have checked crashed() — the cluster's RPC
  /// path treats a crashed shard as refusing the connection).
  bool SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                       Xoshiro256& rng, std::vector<VertexId>* out,
                       EdgeType type = 0) const;

  /// Serve a traversal request: append up to `cap` of src's neighbours in
  /// store order (deterministic, RNG-free — the serving layer's traverse
  /// operator). Returns false without touching `out` while crashed.
  bool Traverse(VertexId src, std::size_t cap, std::vector<VertexId>* out,
                EdgeType type = 0) const;

  /// Serve an attribute gather: copy v's feature vector into `out`
  /// (cleared when absent), returning whether the vertex had features.
  /// `served` distinguishes "no features" from "shard crashed": it is set
  /// false without touching `out` while crashed.
  bool GatherFeatures(VertexId v, std::vector<float>* out,
                      bool* served = nullptr) const;

  // --- Fault-tolerance lifecycle -----------------------------------------

  /// Kill the serving process: the in-memory store is destroyed. The WAL
  /// and the last checkpoint survive (they are the "disk").
  void Crash();
  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Persist the current store to `path` (io/checkpoint format) and
  /// truncate the WAL prefix the checkpoint now covers. Refused while
  /// crashed (there is no store to persist).
  Status Checkpoint(const std::string& path);

  /// Rebuild the store after a crash: fresh store, load the last
  /// checkpoint if one was taken, replay the WAL window past it. After a
  /// successful recovery the shard serves again and the rebuilt store is
  /// byte-for-byte equivalent to one that never crashed.
  /// Returns the number of WAL updates replayed via `replayed` (optional).
  Status Recover(std::size_t* replayed = nullptr);

  /// Failover hand-off: install `store` (a promoted replica's store,
  /// already rolled forward to wal_seq by the caller) as the serving store
  /// and return to service. The WAL and checkpoint state are untouched —
  /// the new serving process inherits the same durable log.
  void Promote(std::unique_ptr<GraphStore> store);

  // --- Durable-log access -------------------------------------------------

  /// Direct WAL reference for quiesced inspection (tests, single-threaded
  /// recovery drills). NOT safe against a concurrent Apply(); the
  /// replication layer uses the locked window/watermark accessors instead.
  // NO_THREAD_SAFETY_ANALYSIS: quiesced-only escape hatch — callers
  // guarantee no concurrent Apply/Checkpoint (see accessor contract).
  const TemporalEdgeLog& wal() const NO_THREAD_SAFETY_ANALYSIS {
    return wal_;
  }

  /// Sequence number of the last durably logged update (0 = none).
  std::uint64_t wal_seq() const EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return wal_seq_;
  }
  /// Sequence number covered by the last checkpoint (0 = never).
  std::uint64_t checkpoint_seq() const EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return checkpoint_seq_;
  }
  /// Path of the last checkpoint ("" = never checkpointed) — the snapshot
  /// source when a crashed primary must bootstrap a replica.
  std::string checkpoint_path() const EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return checkpoint_path_;
  }
  /// The WAL's erased-prefix watermark (see TemporalEdgeLog).
  std::uint64_t wal_truncated_through() const EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return wal_.truncated_through();
  }

  /// Copy of the WAL entries in (from, to] — the replication sender's
  /// read path, safe against concurrent Apply().
  std::vector<TimedUpdate> WalWindow(std::uint64_t from,
                                     std::uint64_t to) const
      EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return wal_.Window(from, to);
  }

  /// WalWindow() into a reusable buffer — keeps the hot ship path free of
  /// per-round allocations (and so keeps the spinlock hold short).
  void WalWindowInto(std::uint64_t from, std::uint64_t to,
                     std::vector<TimedUpdate>* out) const EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    wal_.WindowInto(from, to, out);
  }

  /// Truncation-gap-checked WAL replay into `graph` (see
  /// TemporalEdgeLog::CheckedReplayInto) under the WAL lock — the
  /// promotion path's roll-forward.
  Status CheckedWalReplay(GraphStore* graph, std::uint64_t from,
                          std::uint64_t to, std::size_t* applied) const
      EXCLUDES(wal_mu_) {
    SpinlockGuard g(wal_mu_);
    return wal_.CheckedReplayInto(graph, from, to, applied);
  }

  std::uint64_t requests_served() const {
    // order: stat tally, read for reporting only
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  GraphStoreConfig config_;
  std::unique_ptr<GraphStore> store_;  // volatile (lost on Crash)
  /// Guards the durable-log state: Apply appends while a replication pump
  /// may concurrently read windows/watermarks. Held only for short log
  /// operations, never across a store apply.
  mutable Spinlock wal_mu_;
  TemporalEdgeLog wal_ GUARDED_BY(wal_mu_);  // durable
  std::uint64_t wal_seq_ GUARDED_BY(wal_mu_) = 0;
  std::uint64_t checkpoint_seq_ GUARDED_BY(wal_mu_) = 0;
  std::string checkpoint_path_ GUARDED_BY(wal_mu_);  // "" = never
  std::atomic<bool> crashed_{false};
  mutable std::atomic<std::uint64_t> requests_{0};
};

}  // namespace platod2gl
