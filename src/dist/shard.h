// GraphShard: one simulated graph server.
//
// The paper's evaluation cluster dedicates 54 machines to graph storage;
// this repo substitutes in-process shards (see DESIGN.md, substitutions).
// A shard owns a full GraphStore for the vertices hashed onto it and
// counts the requests it served so the cluster can report load balance.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

class GraphShard {
 public:
  explicit GraphShard(GraphStoreConfig config = {});

  GraphStore& store() { return store_; }
  const GraphStore& store() const { return store_; }

  void Apply(const EdgeUpdate& update);

  bool SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                       Xoshiro256& rng, std::vector<VertexId>* out,
                       EdgeType type = 0) const;

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  GraphStore store_;
  mutable std::atomic<std::uint64_t> requests_{0};
};

}  // namespace platod2gl
