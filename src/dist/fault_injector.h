// FaultInjector: deterministic, seedable fault injection for the
// distributed graph service simulation.
//
// The paper's deployment keeps graph servers alive for weeks under heavy
// traffic; any honest reproduction of that claim has to survive the
// failures such a deployment actually sees. The injector sits in
// GraphCluster's RPC dispatch and models four fault classes:
//
//   crash    — a shard's serving process dies (manual CrashShard): its
//              in-memory store is wiped and it refuses RPCs until
//              GraphCluster::RecoverShard rebuilds it from checkpoint +
//              WAL replay (see dist/shard.h).
//   failure  — a transient RPC loss: the request never reaches the shard
//              (so retries are exactly-once safe by construction).
//   timeout  — the response never arrives; the attempt costs the retry
//              policy's timeout budget in virtual time.
//   corrupt  — the response arrives with flipped/truncated bytes. The
//              cluster routes these through the real wire.h codec so the
//              decoder hardening is exercised on every injected fault.
//   slow     — the RPC succeeds but its virtual latency is inflated.
//
// Determinism: the n-th fault decision for shard s is a pure function of
// (seed, s, n) via SplitMix64 — independent of thread interleaving across
// shards and of wall-clock time — so fault runs are reproducible
// bit-for-bit and retries never perturb the per-shard sampling RNG
// streams (those are derived from an unrelated seed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace platod2gl {

/// Probabilities of the transient fault classes, drawn independently per
/// RPC attempt (first match in the order below wins; they partition the
/// unit interval, so keep the sum <= 1).
struct FaultConfig {
  std::uint64_t seed = 0xFA017EC7ED5EEDULL;
  double failure_prob = 0.0;  ///< request lost in flight
  double timeout_prob = 0.0;  ///< response never arrives
  double corrupt_prob = 0.0;  ///< response bytes damaged in flight
  double slow_prob = 0.0;     ///< response delayed by slow_extra_us
  std::uint64_t slow_extra_us = 2000;
  // Replication-channel faults (primary -> replica log stream; see
  // docs/replication.md). Drawn per message from a stream independent of
  // the RPC fault draws, keyed by (shard, replica), so replication chaos
  // never perturbs the client-RPC fault schedule and vice versa.
  double rep_drop_prob = 0.0;       ///< replication message lost in flight
  double rep_duplicate_prob = 0.0;  ///< message delivered twice
  double rep_reorder_prob = 0.0;    ///< message swapped with its successor
};

class FaultInjector {
 public:
  enum class Fault : std::uint8_t { kNone, kFail, kTimeout, kCorrupt, kSlow };

  /// Fault classes on a replication channel (one primary -> one replica).
  /// kDrop models a lost message, kDuplicate an at-least-once transport,
  /// kReorder a message overtaken by its successor; the replica's
  /// contiguity check turns all three into deterministic retransmits.
  enum class RepFault : std::uint8_t { kNone, kDrop, kDuplicate, kReorder };

  /// Hard cap on replicas per shard the injector tracks state for
  /// (replication configs are validated against it).
  static constexpr std::size_t kMaxReplicas = 8;

  FaultInjector(FaultConfig config, std::size_t num_shards);

  /// Kill a shard: it refuses every RPC until RecoverShard. Thread-safe.
  void CrashShard(std::size_t shard);
  /// Mark a shard recovered (called by GraphCluster::RecoverShard once the
  /// store has been rebuilt). Thread-safe.
  void RestoreShard(std::size_t shard);
  bool IsCrashed(std::size_t shard) const;
  std::size_t NumCrashed() const;

  /// Fault decision for the next RPC attempt against `shard`.
  /// Deterministic per shard (see file header); thread-safe across shards.
  Fault NextFault(std::size_t shard);

  // --- Replica lifecycle + replication-channel faults --------------------

  /// Kill one replica process of a shard: its store is volatile (the
  /// ReplicationManager wipes it) and it neither receives log messages nor
  /// serves reads until RestoreReplica + re-bootstrap. Thread-safe.
  void CrashReplica(std::size_t shard, std::size_t replica);
  void RestoreReplica(std::size_t shard, std::size_t replica);
  bool IsReplicaCrashed(std::size_t shard, std::size_t replica) const;

  /// Partition the primary<->replica link: messages in BOTH directions are
  /// withheld (the replica falls behind, its acks stop) until HealReplica.
  /// Unlike a crash the replica keeps its store and may still serve reads.
  void PartitionReplica(std::size_t shard, std::size_t replica);
  void HealReplica(std::size_t shard, std::size_t replica);
  bool IsReplicaPartitioned(std::size_t shard, std::size_t replica) const;

  /// Fault decision for the next message on the (shard, replica) channel.
  /// The n-th draw is a pure function of (seed, shard, replica, n) —
  /// independent of RPC draws and of thread interleaving across channels.
  RepFault NextRepFault(std::size_t shard, std::size_t replica);

  /// Next raw 64-bit draw on the (shard, replica) channel — the
  /// deterministic randomness source for replication tests that need to
  /// pick a victim record (anti-entropy divergence injection).
  std::uint64_t RepDraw(std::size_t shard, std::size_t replica);

  /// Deterministically damage an encoded response in a way a length-
  /// prefixed codec must detect: flip the tag, blow up a length prefix,
  /// truncate the tail, or append trailing garbage. Never a silent payload
  /// flip — end-to-end payload checksums are out of scope for the wire
  /// format (see docs/fault_tolerance.md).
  void CorruptBytes(std::size_t shard, std::string* bytes);

  /// True when every transient probability is zero — lets the RPC path
  /// skip the draw entirely.
  bool PassiveExceptCrashes() const { return passive_; }

  /// True when every replication-channel probability is zero.
  bool PassiveReplication() const { return rep_passive_; }

  const FaultConfig& config() const { return config_; }

 private:
  std::uint64_t Draw(std::size_t shard);  // next raw 64-bit draw for shard
  std::size_t Channel(std::size_t shard, std::size_t replica) const {
    return shard * kMaxReplicas + replica;
  }

  FaultConfig config_;
  bool passive_ = true;
  bool rep_passive_ = true;
  std::size_t num_shards_;
  std::unique_ptr<std::atomic<bool>[]> crashed_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> draws_;
  // Per-(shard, replica) state, indexed by Channel(): bit 0 = crashed,
  // bit 1 = partitioned. Sized num_shards x kMaxReplicas up front so a
  // cluster can enable replication without resizing the injector.
  std::unique_ptr<std::atomic<std::uint8_t>[]> replica_state_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rep_draws_;
};

}  // namespace platod2gl
