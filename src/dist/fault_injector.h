// FaultInjector: deterministic, seedable fault injection for the
// distributed graph service simulation.
//
// The paper's deployment keeps graph servers alive for weeks under heavy
// traffic; any honest reproduction of that claim has to survive the
// failures such a deployment actually sees. The injector sits in
// GraphCluster's RPC dispatch and models four fault classes:
//
//   crash    — a shard's serving process dies (manual CrashShard): its
//              in-memory store is wiped and it refuses RPCs until
//              GraphCluster::RecoverShard rebuilds it from checkpoint +
//              WAL replay (see dist/shard.h).
//   failure  — a transient RPC loss: the request never reaches the shard
//              (so retries are exactly-once safe by construction).
//   timeout  — the response never arrives; the attempt costs the retry
//              policy's timeout budget in virtual time.
//   corrupt  — the response arrives with flipped/truncated bytes. The
//              cluster routes these through the real wire.h codec so the
//              decoder hardening is exercised on every injected fault.
//   slow     — the RPC succeeds but its virtual latency is inflated.
//
// Determinism: the n-th fault decision for shard s is a pure function of
// (seed, s, n) via SplitMix64 — independent of thread interleaving across
// shards and of wall-clock time — so fault runs are reproducible
// bit-for-bit and retries never perturb the per-shard sampling RNG
// streams (those are derived from an unrelated seed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace platod2gl {

/// Probabilities of the transient fault classes, drawn independently per
/// RPC attempt (first match in the order below wins; they partition the
/// unit interval, so keep the sum <= 1).
struct FaultConfig {
  std::uint64_t seed = 0xFA017EC7ED5EEDULL;
  double failure_prob = 0.0;  ///< request lost in flight
  double timeout_prob = 0.0;  ///< response never arrives
  double corrupt_prob = 0.0;  ///< response bytes damaged in flight
  double slow_prob = 0.0;     ///< response delayed by slow_extra_us
  std::uint64_t slow_extra_us = 2000;
};

class FaultInjector {
 public:
  enum class Fault : std::uint8_t { kNone, kFail, kTimeout, kCorrupt, kSlow };

  FaultInjector(FaultConfig config, std::size_t num_shards);

  /// Kill a shard: it refuses every RPC until RecoverShard. Thread-safe.
  void CrashShard(std::size_t shard);
  /// Mark a shard recovered (called by GraphCluster::RecoverShard once the
  /// store has been rebuilt). Thread-safe.
  void RestoreShard(std::size_t shard);
  bool IsCrashed(std::size_t shard) const;
  std::size_t NumCrashed() const;

  /// Fault decision for the next RPC attempt against `shard`.
  /// Deterministic per shard (see file header); thread-safe across shards.
  Fault NextFault(std::size_t shard);

  /// Deterministically damage an encoded response in a way a length-
  /// prefixed codec must detect: flip the tag, blow up a length prefix,
  /// truncate the tail, or append trailing garbage. Never a silent payload
  /// flip — end-to-end payload checksums are out of scope for the wire
  /// format (see docs/fault_tolerance.md).
  void CorruptBytes(std::size_t shard, std::string* bytes);

  /// True when every transient probability is zero — lets the RPC path
  /// skip the draw entirely.
  bool PassiveExceptCrashes() const { return passive_; }

  const FaultConfig& config() const { return config_; }

 private:
  std::uint64_t Draw(std::size_t shard);  // next raw 64-bit draw for shard

  FaultConfig config_;
  bool passive_ = true;
  std::size_t num_shards_;
  std::unique_ptr<std::atomic<bool>[]> crashed_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> draws_;
};

}  // namespace platod2gl
