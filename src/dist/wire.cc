#include "dist/wire.h"

#include <cstring>

namespace platod2gl::wire {
namespace {

template <typename T>
void Put(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, std::size_t* pos, T* value) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string EncodeSampleRequest(const SampleRequest& req) {
  std::string out;
  out.reserve(14 + req.seeds.size() * sizeof(VertexId));
  out.push_back('S');
  Put(&out, req.edge_type);
  Put(&out, req.fanout);
  Put(&out, static_cast<std::uint8_t>(req.weighted ? 1 : 0));
  Put(&out, static_cast<std::uint32_t>(req.seeds.size()));
  for (VertexId s : req.seeds) Put(&out, s);
  return out;
}

bool DecodeSampleRequest(const std::string& bytes, SampleRequest* req) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'S') return false;
  std::uint8_t weighted;
  std::uint32_t count;
  if (!Get(bytes, &pos, &req->edge_type) || !Get(bytes, &pos, &req->fanout) ||
      !Get(bytes, &pos, &weighted) || !Get(bytes, &pos, &count)) {
    return false;
  }
  // Bounds-check the declared count against the actual tail BEFORE
  // allocating: a malformed count of ~4 billion must be rejected, not
  // turned into a 32 GB resize. The seed array is the whole remaining
  // payload, so the check is exact and also rejects trailing garbage.
  if (bytes.size() - pos !=
      static_cast<std::size_t>(count) * sizeof(VertexId)) {
    return false;
  }
  req->weighted = weighted != 0;
  req->seeds.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!Get(bytes, &pos, &req->seeds[i])) return false;
  }
  return pos == bytes.size();
}

std::string EncodeSampleResponse(const NeighborBatch& batch) {
  std::string out;
  out.push_back('R');
  Put(&out, static_cast<std::uint32_t>(batch.NumSeeds()));
  for (std::size_t i = 0; i + 1 < batch.offsets.size(); ++i) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(batch.offsets[i + 1] - batch.offsets[i]);
    Put(&out, len);
    for (std::size_t j = batch.offsets[i]; j < batch.offsets[i + 1]; ++j) {
      Put(&out, batch.neighbors[j]);
    }
  }
  return out;
}

bool DecodeSampleResponse(const std::string& bytes, NeighborBatch* batch) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'R') return false;
  std::uint32_t seeds;
  if (!Get(bytes, &pos, &seeds)) return false;
  // Each seed contributes at least a 4-byte length prefix: reject absurd
  // seed counts before reserving anything.
  if (static_cast<std::size_t>(seeds) * sizeof(std::uint32_t) >
      bytes.size() - pos) {
    return false;
  }
  batch->neighbors.clear();
  batch->offsets.assign(1, 0);
  batch->offsets.reserve(static_cast<std::size_t>(seeds) + 1);
  for (std::uint32_t i = 0; i < seeds; ++i) {
    std::uint32_t len;
    if (!Get(bytes, &pos, &len)) return false;
    // Bounds-check the whole range before reading it: a bit-flipped
    // length prefix must never cause an over-read or an absurd reserve.
    if (static_cast<std::size_t>(len) * sizeof(VertexId) >
        bytes.size() - pos) {
      return false;
    }
    for (std::uint32_t j = 0; j < len; ++j) {
      VertexId v;
      if (!Get(bytes, &pos, &v)) return false;
      batch->neighbors.push_back(v);
    }
    batch->offsets.push_back(batch->neighbors.size());
  }
  return pos == bytes.size();
}

std::string EncodeUpdateBatch(const std::vector<EdgeUpdate>& batch) {
  std::string out;
  out.reserve(5 + batch.size() * 29);
  out.push_back('U');
  Put(&out, static_cast<std::uint32_t>(batch.size()));
  for (const EdgeUpdate& u : batch) {
    Put(&out, static_cast<std::uint8_t>(u.kind));
    Put(&out, u.edge.type);
    Put(&out, u.edge.src);
    Put(&out, u.edge.dst);
    Put(&out, u.edge.weight);
  }
  return out;
}

bool DecodeUpdateBatch(const std::string& bytes,
                       std::vector<EdgeUpdate>* batch) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'U') return false;
  std::uint32_t count;
  if (!Get(bytes, &pos, &count)) return false;
  // Updates are fixed 29-byte records and the whole remaining payload:
  // exact arithmetic check before the reserve, so truncation, trailing
  // garbage and absurd counts are all rejected without allocating.
  if (bytes.size() - pos != static_cast<std::size_t>(count) * 29) {
    return false;
  }
  batch->clear();
  batch->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind;
    EdgeUpdate u;
    if (!Get(bytes, &pos, &kind) || !Get(bytes, &pos, &u.edge.type) ||
        !Get(bytes, &pos, &u.edge.src) || !Get(bytes, &pos, &u.edge.dst) ||
        !Get(bytes, &pos, &u.edge.weight)) {
      return false;
    }
    if (kind > static_cast<std::uint8_t>(UpdateKind::kDelete)) return false;
    u.kind = static_cast<UpdateKind>(kind);
    batch->push_back(u);
  }
  return pos == bytes.size();
}

}  // namespace platod2gl::wire
