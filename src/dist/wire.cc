#include "dist/wire.h"

#include <cstring>
#include <utility>

#include "temporal/edge_log.h"

namespace platod2gl::wire {
namespace {

template <typename T>
void Put(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, std::size_t* pos, T* value) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string EncodeSampleRequest(const SampleRequest& req) {
  std::string out;
  out.reserve(14 + req.seeds.size() * sizeof(VertexId));
  out.push_back('S');
  Put(&out, req.edge_type);
  Put(&out, req.fanout);
  Put(&out, static_cast<std::uint8_t>(req.weighted ? 1 : 0));
  Put(&out, static_cast<std::uint32_t>(req.seeds.size()));
  for (VertexId s : req.seeds) Put(&out, s);
  return out;
}

bool DecodeSampleRequest(const std::string& bytes, SampleRequest* req) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'S') return false;
  std::uint8_t weighted;
  std::uint32_t count;
  if (!Get(bytes, &pos, &req->edge_type) || !Get(bytes, &pos, &req->fanout) ||
      !Get(bytes, &pos, &weighted) || !Get(bytes, &pos, &count)) {
    return false;
  }
  // Bounds-check the declared count against the actual tail BEFORE
  // allocating: a malformed count of ~4 billion must be rejected, not
  // turned into a 32 GB resize. The seed array is the whole remaining
  // payload, so the check is exact and also rejects trailing garbage.
  if (bytes.size() - pos !=
      static_cast<std::size_t>(count) * sizeof(VertexId)) {
    return false;
  }
  req->weighted = weighted != 0;
  req->seeds.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!Get(bytes, &pos, &req->seeds[i])) return false;
  }
  return pos == bytes.size();
}

std::string EncodeSampleResponse(const NeighborBatch& batch) {
  std::string out;
  out.push_back('R');
  Put(&out, static_cast<std::uint32_t>(batch.NumSeeds()));
  for (std::size_t i = 0; i + 1 < batch.offsets.size(); ++i) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(batch.offsets[i + 1] - batch.offsets[i]);
    Put(&out, len);
    for (std::size_t j = batch.offsets[i]; j < batch.offsets[i + 1]; ++j) {
      Put(&out, batch.neighbors[j]);
    }
  }
  return out;
}

bool DecodeSampleResponse(const std::string& bytes, NeighborBatch* batch) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'R') return false;
  std::uint32_t seeds;
  if (!Get(bytes, &pos, &seeds)) return false;
  // Each seed contributes at least a 4-byte length prefix: reject absurd
  // seed counts before reserving anything.
  if (static_cast<std::size_t>(seeds) * sizeof(std::uint32_t) >
      bytes.size() - pos) {
    return false;
  }
  batch->neighbors.clear();
  batch->offsets.assign(1, 0);
  batch->offsets.reserve(static_cast<std::size_t>(seeds) + 1);
  for (std::uint32_t i = 0; i < seeds; ++i) {
    std::uint32_t len;
    if (!Get(bytes, &pos, &len)) return false;
    // Bounds-check the whole range before reading it: a bit-flipped
    // length prefix must never cause an over-read or an absurd reserve.
    if (static_cast<std::size_t>(len) * sizeof(VertexId) >
        bytes.size() - pos) {
      return false;
    }
    for (std::uint32_t j = 0; j < len; ++j) {
      VertexId v;
      if (!Get(bytes, &pos, &v)) return false;
      batch->neighbors.push_back(v);
    }
    batch->offsets.push_back(batch->neighbors.size());
  }
  return pos == bytes.size();
}

std::string EncodeUpdateBatch(const std::vector<EdgeUpdate>& batch) {
  std::string out;
  out.reserve(5 + batch.size() * 29);
  out.push_back('U');
  Put(&out, static_cast<std::uint32_t>(batch.size()));
  for (const EdgeUpdate& u : batch) {
    Put(&out, static_cast<std::uint8_t>(u.kind));
    Put(&out, u.edge.type);
    Put(&out, u.edge.src);
    Put(&out, u.edge.dst);
    Put(&out, u.edge.weight);
  }
  return out;
}

bool DecodeUpdateBatch(const std::string& bytes,
                       std::vector<EdgeUpdate>* batch) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != 'U') return false;
  std::uint32_t count;
  if (!Get(bytes, &pos, &count)) return false;
  // Updates are fixed 29-byte records and the whole remaining payload:
  // exact arithmetic check before the reserve, so truncation, trailing
  // garbage and absurd counts are all rejected without allocating.
  if (bytes.size() - pos != static_cast<std::size_t>(count) * 29) {
    return false;
  }
  batch->clear();
  batch->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind;
    EdgeUpdate u;
    if (!Get(bytes, &pos, &kind) || !Get(bytes, &pos, &u.edge.type) ||
        !Get(bytes, &pos, &u.edge.src) || !Get(bytes, &pos, &u.edge.dst) ||
        !Get(bytes, &pos, &u.edge.weight)) {
      return false;
    }
    if (kind > static_cast<std::uint8_t>(UpdateKind::kDelete)) return false;
    u.kind = static_cast<UpdateKind>(kind);
    batch->push_back(u);
  }
  return pos == bytes.size();
}

namespace {

/// Shared header check for the versioned replication messages: consumes
/// the tag and version byte. kUnsupportedVersion is only reported once the
/// tag matched — an unknown tag is plain malformed input.
DecodeResult GetRepHeader(const std::string& bytes, char tag,
                          std::size_t* pos) {
  if (bytes.size() < 2 || bytes[0] != tag) return DecodeResult::kMalformed;
  const auto version = static_cast<std::uint8_t>(bytes[1]);
  if (version != kReplicationWireVersion) {
    return DecodeResult::kUnsupportedVersion;
  }
  *pos = 2;
  return DecodeResult::kOk;
}

}  // namespace

std::string EncodeRepLogAppend(const RepLogAppend& msg, std::uint8_t version) {
  std::string out;
  out.reserve(10 + msg.entries.size() * 37);
  out.push_back('L');
  Put(&out, version);
  Put(&out, msg.shard);
  Put(&out, static_cast<std::uint32_t>(msg.entries.size()));
  for (const RepLogEntry& e : msg.entries) {
    Put(&out, e.seq);
    Put(&out, static_cast<std::uint8_t>(e.update.kind));
    Put(&out, e.update.edge.type);
    Put(&out, e.update.edge.src);
    Put(&out, e.update.edge.dst);
    Put(&out, e.update.edge.weight);
  }
  return out;
}

std::string EncodeRepLogAppendWindow(std::uint32_t shard,
                                     std::uint64_t first_seq,
                                     const TimedUpdate* window,
                                     std::size_t count,
                                     std::uint8_t version) {
  std::string out;
  out.reserve(10 + count * 37);
  out.push_back('L');
  Put(&out, version);
  Put(&out, shard);
  Put(&out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeUpdate& u = window[i].update;
    Put(&out, first_seq + i);
    Put(&out, static_cast<std::uint8_t>(u.kind));
    Put(&out, u.edge.type);
    Put(&out, u.edge.src);
    Put(&out, u.edge.dst);
    Put(&out, u.edge.weight);
  }
  return out;
}

DecodeResult DecodeRepLogAppend(const std::string& bytes, RepLogAppend* out) {
  std::size_t pos = 0;
  const DecodeResult head = GetRepHeader(bytes, 'L', &pos);
  if (head != DecodeResult::kOk) return head;
  std::uint32_t count;
  if (!Get(bytes, &pos, &out->shard) || !Get(bytes, &pos, &count)) {
    return DecodeResult::kMalformed;
  }
  // Entries are fixed 37-byte records and the whole remaining payload:
  // exact arithmetic check before the reserve (same hardening discipline
  // as DecodeUpdateBatch — absurd counts must not drive an allocation).
  if (bytes.size() - pos != static_cast<std::size_t>(count) * 37) {
    return DecodeResult::kMalformed;
  }
  out->entries.clear();
  out->entries.reserve(count);
  std::uint64_t prev_seq = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    RepLogEntry e;
    std::uint8_t kind;
    if (!Get(bytes, &pos, &e.seq) || !Get(bytes, &pos, &kind) ||
        !Get(bytes, &pos, &e.update.edge.type) ||
        !Get(bytes, &pos, &e.update.edge.src) ||
        !Get(bytes, &pos, &e.update.edge.dst) ||
        !Get(bytes, &pos, &e.update.edge.weight)) {
      return DecodeResult::kMalformed;
    }
    if (kind > static_cast<std::uint8_t>(UpdateKind::kDelete)) {
      return DecodeResult::kMalformed;
    }
    // Sequence numbers must be strictly increasing within a message — a
    // run that is not contiguous-sorted can never be a valid WAL window.
    if (i > 0 && e.seq != prev_seq + 1) return DecodeResult::kMalformed;
    prev_seq = e.seq;
    e.update.kind = static_cast<UpdateKind>(kind);
    out->entries.push_back(e);
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

std::string EncodeRepAck(const RepAck& msg, std::uint8_t version) {
  std::string out;
  out.reserve(18);
  out.push_back('A');
  Put(&out, version);
  Put(&out, msg.shard);
  Put(&out, msg.replica);
  Put(&out, msg.applied_seq);
  return out;
}

DecodeResult DecodeRepAck(const std::string& bytes, RepAck* out) {
  std::size_t pos = 0;
  const DecodeResult head = GetRepHeader(bytes, 'A', &pos);
  if (head != DecodeResult::kOk) return head;
  if (!Get(bytes, &pos, &out->shard) || !Get(bytes, &pos, &out->replica) ||
      !Get(bytes, &pos, &out->applied_seq)) {
    return DecodeResult::kMalformed;
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

std::string EncodeRepDigest(const RepDigest& msg, std::uint8_t version) {
  std::string out;
  out.reserve(18 + msg.bucket_edges.size() * 12);
  out.push_back('G');
  Put(&out, version);
  Put(&out, msg.shard);
  Put(&out, msg.through_seq);
  Put(&out, static_cast<std::uint32_t>(msg.bucket_edges.size()));
  for (std::size_t i = 0; i < msg.bucket_edges.size(); ++i) {
    Put(&out, msg.bucket_edges[i]);
    Put(&out, msg.bucket_crcs[i]);
  }
  return out;
}

DecodeResult DecodeRepDigest(const std::string& bytes, RepDigest* out) {
  std::size_t pos = 0;
  const DecodeResult head = GetRepHeader(bytes, 'G', &pos);
  if (head != DecodeResult::kOk) return head;
  std::uint32_t count;
  if (!Get(bytes, &pos, &out->shard) || !Get(bytes, &pos, &out->through_seq) ||
      !Get(bytes, &pos, &count)) {
    return DecodeResult::kMalformed;
  }
  // Buckets are fixed 12-byte records and the whole remaining payload.
  if (bytes.size() - pos != static_cast<std::size_t>(count) * 12) {
    return DecodeResult::kMalformed;
  }
  out->bucket_edges.assign(count, 0);
  out->bucket_crcs.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!Get(bytes, &pos, &out->bucket_edges[i]) ||
        !Get(bytes, &pos, &out->bucket_crcs[i])) {
      return DecodeResult::kMalformed;
    }
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

std::string EncodeRepSnapshot(const RepSnapshot& msg, std::uint8_t version) {
  std::string out;
  out.reserve(18 + msg.checkpoint.size());
  out.push_back('B');
  Put(&out, version);
  Put(&out, msg.shard);
  Put(&out, msg.covered_seq);
  Put(&out, static_cast<std::uint32_t>(msg.checkpoint.size()));
  out.append(msg.checkpoint);
  return out;
}

DecodeResult DecodeRepSnapshot(const std::string& bytes, RepSnapshot* out) {
  std::size_t pos = 0;
  const DecodeResult head = GetRepHeader(bytes, 'B', &pos);
  if (head != DecodeResult::kOk) return head;
  std::uint32_t len;
  if (!Get(bytes, &pos, &out->shard) || !Get(bytes, &pos, &out->covered_seq) ||
      !Get(bytes, &pos, &len)) {
    return DecodeResult::kMalformed;
  }
  // The checkpoint image is the whole remaining payload: exact check
  // before the copy. Its *contents* are verified separately by the
  // io/checkpoint CRC-32 footer on load.
  if (bytes.size() - pos != static_cast<std::size_t>(len)) {
    return DecodeResult::kMalformed;
  }
  out->checkpoint.assign(bytes, pos, len);
  pos += len;
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

namespace {

/// Shared header check for the versioned serving messages — same
/// negotiation stance as GetRepHeader: kUnsupportedVersion only once the
/// tag matched. Unlike the replication protocol, serving clients span a
/// version RANGE (v1 predates the trace context): the accepted version is
/// returned so the body decoder can skip the fields that version lacks.
DecodeResult GetServeHeader(const std::string& bytes, char tag,
                            std::size_t* pos, std::uint8_t* version) {
  if (bytes.size() < 2 || bytes[0] != tag) return DecodeResult::kMalformed;
  *version = static_cast<std::uint8_t>(bytes[1]);
  if (*version < kMinServeWireVersion || *version > kServeWireVersion) {
    return DecodeResult::kUnsupportedVersion;
  }
  *pos = 2;
  return DecodeResult::kOk;
}

}  // namespace

std::string EncodeQueryRequest(const serve::QueryRequest& req,
                               std::uint8_t version) {
  std::string out;
  out.reserve(43 + req.seeds.size() * sizeof(VertexId) +
              req.plan.ops.size() * 34);
  out.push_back('Q');
  Put(&out, version);
  Put(&out, req.tenant);
  Put(&out, req.request_id);
  Put(&out, req.rng_seed);
  if (version != 1) {
    // v2+: the propagated trace context rides between the RNG seed and
    // the seed array. Encoding at version 1 emits the exact legacy
    // layout, byte for byte.
    Put(&out, req.trace.trace_id);
    Put(&out, req.trace.parent_span);
    Put(&out, req.trace.flags);
  }
  Put(&out, static_cast<std::uint32_t>(req.seeds.size()));
  for (VertexId s : req.seeds) Put(&out, s);
  Put(&out, static_cast<std::uint32_t>(req.plan.ops.size()));
  for (const serve::PlanOp& op : req.plan.ops) {
    Put(&out, static_cast<std::uint8_t>(op.kind));
    Put(&out, op.input);
    Put(&out, op.edge_type);
    Put(&out, op.fanout);
    Put(&out, static_cast<std::uint8_t>(op.weighted ? 1 : 0));
    Put(&out, op.count);
    Put(&out, op.range_lo);
    Put(&out, op.range_hi);
  }
  return out;
}

DecodeResult DecodeQueryRequest(const std::string& bytes,
                                serve::QueryRequest* out) {
  std::size_t pos = 0;
  std::uint8_t version = 0;
  const DecodeResult head = GetServeHeader(bytes, 'Q', &pos, &version);
  if (head != DecodeResult::kOk) return head;
  if (!Get(bytes, &pos, &out->tenant) || !Get(bytes, &pos, &out->request_id) ||
      !Get(bytes, &pos, &out->rng_seed)) {
    return DecodeResult::kMalformed;
  }
  out->trace = obs::TraceContext{};
  if (version != 1) {
    if (!Get(bytes, &pos, &out->trace.trace_id) ||
        !Get(bytes, &pos, &out->trace.parent_span) ||
        !Get(bytes, &pos, &out->trace.flags)) {
      return DecodeResult::kMalformed;
    }
  }
  std::uint32_t seed_count;
  if (!Get(bytes, &pos, &seed_count)) return DecodeResult::kMalformed;
  // The seed array cannot exceed the remaining payload: bounds-check the
  // declared count BEFORE allocating (absurd counts must not drive a
  // resize).
  if (static_cast<std::size_t>(seed_count) * sizeof(VertexId) >
      bytes.size() - pos) {
    return DecodeResult::kMalformed;
  }
  out->seeds.resize(seed_count);
  for (std::uint32_t i = 0; i < seed_count; ++i) {
    if (!Get(bytes, &pos, &out->seeds[i])) return DecodeResult::kMalformed;
  }
  std::uint32_t op_count;
  if (!Get(bytes, &pos, &op_count)) return DecodeResult::kMalformed;
  // Ops are fixed 34-byte records and the whole remaining payload: exact
  // arithmetic check before the reserve — this also rejects trailing
  // garbage.
  if (bytes.size() - pos != static_cast<std::size_t>(op_count) * 34) {
    return DecodeResult::kMalformed;
  }
  out->plan.ops.clear();
  out->plan.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    serve::PlanOp op;
    std::uint8_t kind;
    std::uint8_t weighted;
    if (!Get(bytes, &pos, &kind) || !Get(bytes, &pos, &op.input) ||
        !Get(bytes, &pos, &op.edge_type) || !Get(bytes, &pos, &op.fanout) ||
        !Get(bytes, &pos, &weighted) || !Get(bytes, &pos, &op.count) ||
        !Get(bytes, &pos, &op.range_lo) || !Get(bytes, &pos, &op.range_hi)) {
      return DecodeResult::kMalformed;
    }
    if (kind > static_cast<std::uint8_t>(serve::OpKind::kGather) ||
        weighted > 1) {
      return DecodeResult::kMalformed;
    }
    op.kind = static_cast<serve::OpKind>(kind);
    op.weighted = weighted != 0;
    out->plan.ops.push_back(op);
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

std::string EncodeQueryResponse(const serve::QueryResponse& resp,
                                std::uint8_t version) {
  std::string out;
  out.push_back('P');
  Put(&out, version);
  Put(&out, resp.tenant);
  Put(&out, resp.request_id);
  Put(&out, static_cast<std::uint8_t>(resp.status));
  Put(&out, resp.epoch);
  if (version != 1) Put(&out, resp.trace_id);
  Put(&out, static_cast<std::uint32_t>(resp.stages.size()));
  for (const serve::StageOutput& stage : resp.stages) {
    Put(&out, static_cast<std::uint32_t>(stage.ids.size()));
    for (VertexId v : stage.ids) Put(&out, v);
    Put(&out, static_cast<std::uint32_t>(stage.offsets.size()));
    for (std::uint64_t o : stage.offsets) Put(&out, o);
    Put(&out, stage.feature_dim);
    Put(&out, static_cast<std::uint32_t>(stage.features.size()));
    for (float f : stage.features) Put(&out, f);
  }
  return out;
}

DecodeResult DecodeQueryResponse(const std::string& bytes,
                                 serve::QueryResponse* out) {
  std::size_t pos = 0;
  std::uint8_t version = 0;
  const DecodeResult head = GetServeHeader(bytes, 'P', &pos, &version);
  if (head != DecodeResult::kOk) return head;
  std::uint8_t status;
  std::uint32_t stage_count;
  if (!Get(bytes, &pos, &out->tenant) || !Get(bytes, &pos, &out->request_id) ||
      !Get(bytes, &pos, &status) || !Get(bytes, &pos, &out->epoch)) {
    return DecodeResult::kMalformed;
  }
  out->trace_id = 0;
  if (version != 1 && !Get(bytes, &pos, &out->trace_id)) {
    return DecodeResult::kMalformed;
  }
  if (!Get(bytes, &pos, &stage_count)) return DecodeResult::kMalformed;
  if (status > static_cast<std::uint8_t>(serve::RequestStatus::kShed)) {
    return DecodeResult::kMalformed;
  }
  out->status = static_cast<serve::RequestStatus>(status);
  out->latency_us = 0;  // server-side metadata, not carried on the wire
  // Each stage contributes at least its four length/dim prefixes: reject
  // absurd stage counts before reserving anything.
  if (static_cast<std::size_t>(stage_count) * 16 > bytes.size() - pos) {
    return DecodeResult::kMalformed;
  }
  out->stages.clear();
  out->stages.reserve(stage_count);
  for (std::uint32_t i = 0; i < stage_count; ++i) {
    serve::StageOutput stage;
    std::uint32_t ids_len;
    if (!Get(bytes, &pos, &ids_len)) return DecodeResult::kMalformed;
    if (static_cast<std::size_t>(ids_len) * sizeof(VertexId) >
        bytes.size() - pos) {
      return DecodeResult::kMalformed;
    }
    stage.ids.resize(ids_len);
    for (std::uint32_t j = 0; j < ids_len; ++j) {
      if (!Get(bytes, &pos, &stage.ids[j])) return DecodeResult::kMalformed;
    }
    std::uint32_t off_len;
    if (!Get(bytes, &pos, &off_len)) return DecodeResult::kMalformed;
    if (static_cast<std::size_t>(off_len) * sizeof(std::uint64_t) >
        bytes.size() - pos) {
      return DecodeResult::kMalformed;
    }
    stage.offsets.resize(off_len);
    for (std::uint32_t j = 0; j < off_len; ++j) {
      if (!Get(bytes, &pos, &stage.offsets[j])) {
        return DecodeResult::kMalformed;
      }
    }
    // Structural invariants of the NeighborBatch layout: offsets (when
    // present) start at 0, never decrease, and cover exactly the id
    // array; a stage with no offsets carries no ids (gather sink).
    if (off_len == 0) {
      if (ids_len != 0) return DecodeResult::kMalformed;
    } else {
      if (stage.offsets.front() != 0 || stage.offsets.back() != ids_len) {
        return DecodeResult::kMalformed;
      }
      for (std::uint32_t j = 1; j < off_len; ++j) {
        if (stage.offsets[j] < stage.offsets[j - 1]) {
          return DecodeResult::kMalformed;
        }
      }
    }
    std::uint32_t feat_len;
    if (!Get(bytes, &pos, &stage.feature_dim) ||
        !Get(bytes, &pos, &feat_len)) {
      return DecodeResult::kMalformed;
    }
    if (static_cast<std::size_t>(feat_len) * sizeof(float) >
        bytes.size() - pos) {
      return DecodeResult::kMalformed;
    }
    // Feature rows are dense [n x dim]: a row count that doesn't divide
    // evenly (or features without a dim) is structural damage.
    if (stage.feature_dim == 0) {
      if (feat_len != 0) return DecodeResult::kMalformed;
    } else if (feat_len % stage.feature_dim != 0) {
      return DecodeResult::kMalformed;
    }
    stage.features.resize(feat_len);
    for (std::uint32_t j = 0; j < feat_len; ++j) {
      if (!Get(bytes, &pos, &stage.features[j])) {
        return DecodeResult::kMalformed;
      }
    }
    out->stages.push_back(std::move(stage));
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

std::string EncodeTraceContext(const obs::TraceContext& ctx,
                               std::uint8_t version) {
  std::string out;
  out.reserve(15);
  out.push_back('T');
  Put(&out, version);
  Put(&out, ctx.trace_id);
  Put(&out, ctx.parent_span);
  Put(&out, ctx.flags);
  return out;
}

DecodeResult DecodeTraceContext(const std::string& bytes,
                                obs::TraceContext* out) {
  std::size_t pos = 0;
  if (bytes.size() < 2 || bytes[0] != 'T') return DecodeResult::kMalformed;
  if (static_cast<std::uint8_t>(bytes[1]) != kTraceWireVersion) {
    return DecodeResult::kUnsupportedVersion;
  }
  pos = 2;
  if (!Get(bytes, &pos, &out->trace_id) ||
      !Get(bytes, &pos, &out->parent_span) || !Get(bytes, &pos, &out->flags)) {
    return DecodeResult::kMalformed;
  }
  return pos == bytes.size() ? DecodeResult::kOk : DecodeResult::kMalformed;
}

}  // namespace platod2gl::wire
