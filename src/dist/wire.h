// Wire format for the graph-server RPCs.
//
// The in-process cluster simulation executes requests as function calls;
// a real deployment serialises them. This codec defines the byte layout
// so the simulation can account for bytes-on-the-wire (and tests pin the
// format), keeping the virtual-network model honest:
//
//   SampleRequest:  tag 'S' | edge_type u32 | fanout u32 | weighted u8 |
//                   count u32 | count x seed u64
//   SampleResponse: tag 'R' | count u32 | count x (len u32, len x u64)
//   UpdateBatch:    tag 'U' | count u32 | count x
//                   (kind u8, type u32, src u64, dst u64, weight f64)
//
// All integers little-endian (the deployment is homogeneous x86).
//
// Decoders are hardened against malformed input: every length/count
// prefix is bounds-checked against the remaining payload BEFORE any
// allocation or read, so truncated buffers, bit-flipped prefixes, absurd
// counts and trailing garbage all return false without over-reading
// (negative suite: tests/test_wire_fuzz.cc). The cluster's fault
// injector routes corrupted responses through these decoders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sampling/neighbor_sampler.h"

namespace platod2gl::wire {

struct SampleRequest {
  EdgeType edge_type = 0;
  std::uint32_t fanout = 0;
  bool weighted = true;
  std::vector<VertexId> seeds;

  friend bool operator==(const SampleRequest&,
                         const SampleRequest&) = default;
};

std::string EncodeSampleRequest(const SampleRequest& req);
bool DecodeSampleRequest(const std::string& bytes, SampleRequest* req);

/// The response reuses NeighborBatch (per-seed ranges).
std::string EncodeSampleResponse(const NeighborBatch& batch);
bool DecodeSampleResponse(const std::string& bytes, NeighborBatch* batch);

std::string EncodeUpdateBatch(const std::vector<EdgeUpdate>& batch);
bool DecodeUpdateBatch(const std::string& bytes,
                       std::vector<EdgeUpdate>* batch);

}  // namespace platod2gl::wire
