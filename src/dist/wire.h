// Wire format for the graph-server RPCs.
//
// The in-process cluster simulation executes requests as function calls;
// a real deployment serialises them. This codec defines the byte layout
// so the simulation can account for bytes-on-the-wire (and tests pin the
// format), keeping the virtual-network model honest:
//
//   SampleRequest:  tag 'S' | edge_type u32 | fanout u32 | weighted u8 |
//                   count u32 | count x seed u64
//   SampleResponse: tag 'R' | count u32 | count x (len u32, len x u64)
//   UpdateBatch:    tag 'U' | count u32 | count x
//                   (kind u8, type u32, src u64, dst u64, weight f64)
//
// Replication messages (docs/replication.md) additionally carry a version
// byte right after the tag — the primary/replica protocol is expected to
// evolve independently of the client RPCs, so peers negotiate: a decoder
// that sees a tag it knows but a version it does not returns
// kUnsupportedVersion, which the replication layer surfaces as a clean
// kUnimplemented instead of treating the peer's bytes as corruption.
//
//   RepLogAppend:   tag 'L' | ver u8 | shard u32 | count u32 | count x
//                   (seq u64, kind u8, type u32, src u64, dst u64, w f64)
//   RepAck:         tag 'A' | ver u8 | shard u32 | replica u32 |
//                   applied_seq u64
//   RepDigest:      tag 'G' | ver u8 | shard u32 | through_seq u64 |
//                   count u32 | count x (edge_count u64, crc u32)
//   RepSnapshot:    tag 'B' | ver u8 | shard u32 | covered_seq u64 |
//                   len u32 | len bytes (io/checkpoint image, self-CRC'd)
//
// All integers little-endian (the deployment is homogeneous x86).
//
// Decoders are hardened against malformed input: every length/count
// prefix is bounds-checked against the remaining payload BEFORE any
// allocation or read, so truncated buffers, bit-flipped prefixes, absurd
// counts and trailing garbage all return false without over-reading
// (negative suite: tests/test_wire_fuzz.cc). The cluster's fault
// injector routes corrupted responses through these decoders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "sampling/neighbor_sampler.h"
#include "serve/query_plan.h"

namespace platod2gl {
struct TimedUpdate;  // temporal/edge_log.h
}  // namespace platod2gl

namespace platod2gl::wire {

struct SampleRequest {
  EdgeType edge_type = 0;
  std::uint32_t fanout = 0;
  bool weighted = true;
  std::vector<VertexId> seeds;

  friend bool operator==(const SampleRequest&,
                         const SampleRequest&) = default;
};

std::string EncodeSampleRequest(const SampleRequest& req);
bool DecodeSampleRequest(const std::string& bytes, SampleRequest* req);

/// The response reuses NeighborBatch (per-seed ranges).
std::string EncodeSampleResponse(const NeighborBatch& batch);
bool DecodeSampleResponse(const std::string& bytes, NeighborBatch* batch);

std::string EncodeUpdateBatch(const std::vector<EdgeUpdate>& batch);
bool DecodeUpdateBatch(const std::string& bytes,
                       std::vector<EdgeUpdate>* batch);

// --- Replication protocol (primary -> replica log shipping) --------------

/// Current replication wire version. Encoders stamp it; decoders refuse
/// anything else with kUnsupportedVersion (never kMalformed — an old peer
/// is a negotiation failure, not corruption).
inline constexpr std::uint8_t kReplicationWireVersion = 1;

/// Three-state decode result for the versioned replication messages.
enum class DecodeResult : std::uint8_t {
  kOk = 0,
  kMalformed = 1,           ///< structural damage: reject, never over-read
  kUnsupportedVersion = 2,  ///< recognised tag, unknown version byte
};

/// One WAL entry in flight: the per-shard sequence number (the WAL's
/// timestamp key, see dist/shard.h) plus the update itself.
struct RepLogEntry {
  std::uint64_t seq = 0;
  EdgeUpdate update;

  friend bool operator==(const RepLogEntry&, const RepLogEntry&) = default;
};

/// A contiguous run of WAL entries shipped primary -> replica. The replica
/// applies a message only if it starts exactly at applied_seq + 1
/// (contiguity check); anything else is acked-around via retransmission.
struct RepLogAppend {
  std::uint32_t shard = 0;
  std::vector<RepLogEntry> entries;

  friend bool operator==(const RepLogAppend&, const RepLogAppend&) = default;
};

/// Replica -> primary cumulative acknowledgement: every WAL entry with
/// seq <= applied_seq has been applied to the replica's store.
struct RepAck {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  std::uint64_t applied_seq = 0;

  friend bool operator==(const RepAck&, const RepAck&) = default;
};

/// Anti-entropy digest: per-keyrange-bucket (edge count, CRC-32 xor) pairs
/// over the store's topology as of WAL position through_seq.
struct RepDigest {
  std::uint32_t shard = 0;
  std::uint64_t through_seq = 0;
  std::vector<std::uint64_t> bucket_edges;  ///< edges per bucket
  std::vector<std::uint32_t> bucket_crcs;   ///< xor of per-edge CRC-32s

  friend bool operator==(const RepDigest&, const RepDigest&) = default;
};

/// Snapshot bootstrap: a full io/checkpoint image (internally CRC-checked)
/// covering WAL entries <= covered_seq, shipped when the primary's WAL no
/// longer reaches back to the replica's applied watermark.
struct RepSnapshot {
  std::uint32_t shard = 0;
  std::uint64_t covered_seq = 0;
  std::string checkpoint;  ///< io/checkpoint bytes (see SaveGraphToBytes)

  friend bool operator==(const RepSnapshot&, const RepSnapshot&) = default;
};

/// Encoders stamp `version` so tests can model an old-format peer;
/// decoders fill `out` only on kOk.
std::string EncodeRepLogAppend(const RepLogAppend& msg,
                               std::uint8_t version = kReplicationWireVersion);
DecodeResult DecodeRepLogAppend(const std::string& bytes, RepLogAppend* out);

/// Shipping fast path: encode `count` contiguous entries (seqs first_seq,
/// first_seq + 1, ...) straight out of a WAL window, byte-identical to
/// EncodeRepLogAppend over the equivalent RepLogAppend but without
/// materialising the intermediate entry vector.
std::string EncodeRepLogAppendWindow(
    std::uint32_t shard, std::uint64_t first_seq, const TimedUpdate* window,
    std::size_t count, std::uint8_t version = kReplicationWireVersion);

std::string EncodeRepAck(const RepAck& msg,
                         std::uint8_t version = kReplicationWireVersion);
DecodeResult DecodeRepAck(const std::string& bytes, RepAck* out);

std::string EncodeRepDigest(const RepDigest& msg,
                            std::uint8_t version = kReplicationWireVersion);
DecodeResult DecodeRepDigest(const std::string& bytes, RepDigest* out);

std::string EncodeRepSnapshot(const RepSnapshot& msg,
                              std::uint8_t version = kReplicationWireVersion);
DecodeResult DecodeRepSnapshot(const std::string& bytes, RepSnapshot* out);

// --- Serving protocol (client -> server query execution) ------------------
//
// The serving front end (src/serve) speaks its own versioned messages —
// clients are long-lived and upgrade independently of the cluster, so the
// decoders negotiate exactly like the replication codecs: recognised tag +
// unknown version byte => kUnsupportedVersion, anything structurally off
// => kMalformed (exact bounds checks before any allocation, full
// consumption required).
//
//   QueryRequest:  tag 'Q' | ver u8 | tenant u32 | request_id u64 |
//                  rng_seed u64 |
//                  [v2+] trace_id u64 | parent_span u32 | tflags u8 |
//                  seed_count u32 | seed_count x u64 |
//                  op_count u32 | op_count x (kind u8, input u32,
//                  edge_type u32, fanout u32, weighted u8, count u32,
//                  range_lo u64, range_hi u64)                [34 B per op]
//   QueryResponse: tag 'P' | ver u8 | tenant u32 | request_id u64 |
//                  status u8 | epoch u64 | [v2+] trace_id u64 |
//                  stage_count u32 | stage_count x
//                  (ids_len u32, ids_len x u64, off_len u32, off_len x u64,
//                   feature_dim u32, feat_len u32, feat_len x f32)
//   TraceContext:  tag 'T' | ver u8 | trace_id u64 | parent_span u32 |
//                  tflags u8                       (standalone propagation)

/// Current serving wire version. v2 added the trace-context fields
/// (DESIGN.md §15); v1 peers are still decoded — their requests simply
/// carry an unset trace context — so decoders accept
/// [kMinServeWireVersion, kServeWireVersion] and refuse anything else
/// with kUnsupportedVersion. Encoders asked for version 1 emit the exact
/// v1 byte layout (no trace fields).
inline constexpr std::uint8_t kServeWireVersion = 2;
inline constexpr std::uint8_t kMinServeWireVersion = 1;

std::string EncodeQueryRequest(const serve::QueryRequest& req,
                               std::uint8_t version = kServeWireVersion);
DecodeResult DecodeQueryRequest(const std::string& bytes,
                                serve::QueryRequest* out);

std::string EncodeQueryResponse(const serve::QueryResponse& resp,
                                std::uint8_t version = kServeWireVersion);
DecodeResult DecodeQueryResponse(const std::string& bytes,
                                 serve::QueryResponse* out);

// --- Trace-context propagation (obs/trace.h) ------------------------------

/// Standalone trace-context message, for transports that attach the
/// context out of band (sidecar headers) instead of inline in a v2
/// QueryRequest. Versioned and hardened like every other codec here
/// (fuzz harness: tests/fuzz/fuzz_trace.cc).
inline constexpr std::uint8_t kTraceWireVersion = 1;

std::string EncodeTraceContext(const obs::TraceContext& ctx,
                               std::uint8_t version = kTraceWireVersion);
DecodeResult DecodeTraceContext(const std::string& bytes,
                                obs::TraceContext* out);

}  // namespace platod2gl::wire
