// RemoteSubgraphSampler: K-hop subgraph sampling against a GraphCluster —
// the training-server side of the paper's deployment (Figure 1: training
// servers issue batched sampling RPCs to the graph servers).
//
// Each hop is ONE batched RPC round (one request per shard holding any
// frontier vertex), not one RPC per vertex; the cluster's virtual-network
// accounting makes the difference measurable.
//
// Resilience: each hop inherits the cluster's RetryPolicy. When a shard
// stays unreachable past the retry budget, the affected frontier vertices
// simply stop expanding (their per-seed degraded markers become empty
// layers) — training degrades instead of stalling, GLISP-style. Use
// SampleWithReport to see how much of the subgraph is authoritative.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dist/cluster.h"
#include "sampling/subgraph_sampler.h"

namespace platod2gl {

/// A sampled subgraph plus how degraded it is: degraded_frontier[l] counts
/// hop-l frontier vertices whose expansion was lost to an unreachable
/// shard (their children are missing from layer l+1).
struct RemoteSampleReport {
  SampledSubgraph subgraph;
  std::vector<std::uint64_t> degraded_frontier;  // size = #hops
  std::uint64_t degraded_total = 0;

  bool complete() const { return degraded_total == 0; }
};

class RemoteSubgraphSampler {
 public:
  explicit RemoteSubgraphSampler(GraphCluster* cluster)
      : cluster_(cluster) {}

  /// Same semantics as SubgraphSampler::Sample, executed via batched
  /// cluster RPCs. `seed` derives the per-shard RNG streams, so results
  /// are deterministic for a fixed shard count — including under injected
  /// transient faults, because retries re-derive the same streams.
  SampledSubgraph Sample(const std::vector<VertexId>& seeds,
                         const std::vector<SubgraphSampler::Hop>& hops,
                         std::uint64_t seed) {
    return SampleWithReport(seeds, hops, seed).subgraph;
  }

  /// Sample() plus the per-hop degraded-frontier accounting.
  RemoteSampleReport SampleWithReport(
      const std::vector<VertexId>& seeds,
      const std::vector<SubgraphSampler::Hop>& hops, std::uint64_t seed);

 private:
  GraphCluster* cluster_;
};

}  // namespace platod2gl
