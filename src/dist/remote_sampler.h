// RemoteSubgraphSampler: K-hop subgraph sampling against a GraphCluster —
// the training-server side of the paper's deployment (Figure 1: training
// servers issue batched sampling RPCs to the graph servers).
//
// Each hop is ONE batched RPC round (one request per shard holding any
// frontier vertex), not one RPC per vertex; the cluster's virtual-network
// accounting makes the difference measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dist/cluster.h"
#include "sampling/subgraph_sampler.h"

namespace platod2gl {

class RemoteSubgraphSampler {
 public:
  explicit RemoteSubgraphSampler(GraphCluster* cluster)
      : cluster_(cluster) {}

  /// Same semantics as SubgraphSampler::Sample, executed via batched
  /// cluster RPCs. `seed` derives the per-shard RNG streams, so results
  /// are deterministic for a fixed shard count.
  SampledSubgraph Sample(const std::vector<VertexId>& seeds,
                         const std::vector<SubgraphSampler::Hop>& hops,
                         std::uint64_t seed);

 private:
  GraphCluster* cluster_;
};

}  // namespace platod2gl
