#include "dist/partitioner.h"

#include <algorithm>

#include "storage/cuckoo_map.h"  // HashVertexId

namespace platod2gl {

HashBySourcePartitioner::HashBySourcePartitioner(std::size_t num_shards)
    : num_shards_(std::max<std::size_t>(1, num_shards)) {}

std::size_t HashBySourcePartitioner::ShardOf(VertexId v) const {
  return HashVertexId(v, 0x2545F4914F6CDD1DULL) % num_shards_;
}

RangePartitioner::RangePartitioner(std::size_t num_shards, VertexId max_id)
    : num_shards_(std::max<std::size_t>(1, num_shards)),
      range_size_(std::max<VertexId>(1, max_id / num_shards_ + 1)) {}

std::size_t RangePartitioner::ShardOf(VertexId v) const {
  return std::min<std::size_t>(num_shards_ - 1,
                               static_cast<std::size_t>(v / range_size_));
}

}  // namespace platod2gl
