// ReplicationManager: per-shard read replicas fed by WAL shipping, with
// deterministic failover and anti-entropy repair (DESIGN.md §13,
// docs/replication.md).
//
// The paper's deployment answers "what happens when a graph server dies
// mid-training?" with replicated serving processes behind each keyrange;
// this module reproduces that layer on top of the existing simulation:
//
//   * Log shipping. The durable per-shard WAL (dist/shard.h) doubles as
//     the replication log: Ship() delivers the window (applied, wal_seq]
//     as chunked RepLogAppend messages. A replica applies a message only
//     if it starts exactly at applied_seq + 1, so injected drops /
//     duplicates / reorders degrade into deterministic retransmits —
//     never divergence. Watermark invariant per replica:
//     acked_seq <= applied_seq <= wal_seq (AckWindow blocks on it).
//   * Snapshot bootstrap. A replica behind the WAL's truncation point is
//     re-seeded with a CRC-verified io/checkpoint image (RepSnapshot),
//     then log shipping resumes past covered_seq.
//   * Deterministic failover. AdvanceTime() suspects a crashed primary,
//     waits out suspicion_timeout_us of virtual time, then promotes the
//     furthest-applied replica: WAL roll-forward + store install under
//     the epoch-coordinator write barrier, so the promoted store is
//     bit-identical to sequential replay of the primary's log.
//   * Anti-entropy. Per-keyrange (edge count, CRC-32 xor) bucket digests;
//     mismatches repaired by re-shipping the delta, lagging replicas
//     skipped (honest lag is not divergence — no false positives).
//
// Threading: every per-shard mutable structure is guarded by that shard's
// mutex. In synchronous mode (default) all calls happen on the cluster's
// client thread and runs are seed-pure. In async mode (async_ship) a pump
// thread ships in the background — throughput-realistic for the bench,
// but message timing then depends on the OS scheduler, so chaos tests
// stick to synchronous mode. Lock order: shard mutex before the epoch
// coordinator; the pump never touches the coordinator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "dist/fault_injector.h"
#include "dist/shard.h"
#include "dist/wire.h"
#include "obs/metrics.h"
#include "pipeline/epoch_coordinator.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct ReplicationConfig {
  /// Read replicas per shard; 0 disables replication entirely (the
  /// cluster then behaves bit-identically to a build without this module).
  std::size_t num_replicas = 0;
  /// Max WAL entries per RepLogAppend message (the chunking unit faults
  /// are drawn against).
  std::size_t max_entries_per_append = 64;
  /// A replica may serve reads while at most this many WAL entries behind
  /// its primary; beyond it the read degrades instead (bounded staleness).
  std::uint64_t staleness_budget = 256;
  /// Virtual microseconds a primary must stay crashed (as observed by
  /// AdvanceTime) before a replica is promoted.
  std::uint64_t suspicion_timeout_us = 20000;
  /// Keyrange buckets per anti-entropy digest.
  std::size_t digest_buckets = 16;
  /// Wire version stamped on outgoing messages. Tests set an unknown
  /// version to model an old-format peer; such replicas are excluded with
  /// kUnimplemented rather than fed garbage.
  std::uint8_t wire_version = wire::kReplicationWireVersion;
  /// Ship from a background pump thread instead of inline after each
  /// apply. Throughput mode for the bench; NOT seed-pure (see header).
  bool async_ship = false;
};

/// Transport-level counters (registry-backed; snapshot via
/// ReplicationManager::stats() or the pd2gl_replication_* series of the
/// bound MetricRegistry).
struct ReplicationStats {
  std::uint64_t ship_rounds = 0;        ///< Ship() passes over a shard
  std::uint64_t append_messages = 0;    ///< RepLogAppend messages encoded
  std::uint64_t ack_messages = 0;       ///< RepAck messages encoded
  std::uint64_t bytes_shipped = 0;      ///< encoded bytes on all channels
  std::uint64_t entries_applied = 0;    ///< WAL entries applied at replicas
  std::uint64_t duplicate_entries = 0;  ///< entries skipped as <= applied
  std::uint64_t rejected_appends = 0;   ///< messages refused (gap after drop/reorder)
  std::uint64_t dropped_messages = 0;   ///< injected kDrop faults taken
  std::uint64_t duplicated_messages = 0;///< injected kDuplicate faults taken
  std::uint64_t reordered_messages = 0; ///< injected kReorder faults taken
  std::uint64_t snapshot_bootstraps = 0;///< RepSnapshot images applied
  std::uint64_t unimplemented_peers = 0;///< replicas excluded by version
  /// CPU nanoseconds spent doing the *replica's* side of replication —
  /// decoding appends and applying entries / snapshot images to replica
  /// stores. In a deployment this burns the replica machine's cores, not
  /// the primary's; bench_replication subtracts it to price what
  /// replication costs the ingest path itself on a shared-host simulation.
  std::uint64_t replica_apply_nanos = 0;
  /// Total CPU nanoseconds burnt by the async pump thread (0 in sync
  /// mode). pump_cpu_nanos - replica_apply_nanos is the primary-side ship
  /// cost: window copies, encoding, fault draws, ack handling.
  std::uint64_t pump_cpu_nanos = 0;
};

/// The primary-side acked watermark for one shard: a monotonic sequence
/// number raised by incoming acks, with a blocking wait. Kept minimal and
/// public so the schedcheck lost-wakeup scenario can drive it directly:
/// Ack() must notify while still holding the mutex — notifying after the
/// unlock opens the classic missed-wakeup window this class exists to pin.
class AckWindow {
 public:
  /// Raise the watermark to max(current, seq) and wake waiters.
  void Ack(std::uint64_t seq) EXCLUDES(mu_);
  /// Block until the watermark reaches `seq`.
  void WaitForAcked(std::uint64_t seq) EXCLUDES(mu_);
  std::uint64_t acked() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::uint64_t acked_ GUARDED_BY(mu_) = 0;
};

class ReplicationManager {
 public:
  /// Outcome of one virtual-time health check.
  struct HealthReport {
    std::size_t failovers = 0;          ///< promotions performed
    std::uint64_t replayed_entries = 0; ///< WAL entries rolled forward
  };

  /// Outcome of one anti-entropy digest round over one or all shards.
  struct AntiEntropyReport {
    std::uint64_t digest_rounds = 0;     ///< replica comparisons performed
    std::uint64_t digest_mismatches = 0; ///< buckets that disagreed
    std::uint64_t repaired_replicas = 0; ///< replicas with >= 1 bad bucket
    std::uint64_t repaired_edges = 0;    ///< primary edges re-shipped
    std::uint64_t skipped_replicas = 0;  ///< lagging/partitioned/crashed
  };

  /// A replica-served batch of per-seed neighbour samples.
  struct ReplicaServe {
    std::vector<std::vector<VertexId>> neighbors;  ///< one entry per seed
    std::size_t replica = 0;
    std::uint64_t lag = 0;  ///< wal_seq - applied_seq at serve time
  };

  /// Per-replica observability snapshot (tests, pd2gl verify-store).
  struct ReplicaProbe {
    std::uint64_t applied_seq = 0;
    std::uint64_t acked_seq = 0;
    std::uint64_t head_seq = 0;  ///< primary wal_seq at probe time
    bool crashed = false;
    bool partitioned = false;
    bool incompatible = false;  ///< excluded by version negotiation
    std::size_t edges = 0;
  };

  /// `primaries`, `injector` and `cutover` must outlive the manager.
  /// `metrics` (optional, must outlive the manager when given) is where
  /// the pd2gl_replication_* series are registered; null means a private
  /// registry (stats() works either way).
  ReplicationManager(const ReplicationConfig& config,
                     const GraphStoreConfig& store_config,
                     std::vector<GraphShard*> primaries,
                     FaultInjector* injector, EpochCoordinator* cutover,
                     obs::MetricRegistry* metrics = nullptr);
  ~ReplicationManager();
  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  // --- Shipping -----------------------------------------------------------

  /// Notify the manager that new WAL entries may exist. Synchronous mode
  /// ships inline (and may bootstrap); async mode wakes the pump.
  void Kick();

  /// One shipping pass over `shard`: bootstrap lagging-behind-truncation
  /// replicas (if allowed), then deliver the outstanding WAL window to
  /// every reachable replica and collect acks.
  void Ship(std::size_t shard, bool allow_bootstrap);

  /// Ship until every live, unpartitioned, compatible replica has applied
  /// the full WAL; kDeadlineExceeded if the fault schedule keeps a channel
  /// lossy for an absurd number of rounds.
  Status Flush();

  // --- Reads --------------------------------------------------------------

  /// Serve `seeds` of `shard` from the freshest replica whose lag is
  /// within the staleness budget, sampling with an RNG seeded exactly like
  /// the primary path would (rng_seed). Pins the epoch coordinator for the
  /// duration, so a racing promotion waits for this read to drain.
  /// nullopt when no replica qualifies (caller degrades the seeds).
  std::optional<ReplicaServe> SampleFromReplica(
      std::size_t shard, const std::vector<VertexId>& seeds,
      std::size_t fanout, bool weighted, std::uint64_t rng_seed,
      EdgeType type);

  // --- Failover -----------------------------------------------------------

  /// Virtual-time health monitor: note `now_us` (monotonic max) and check
  /// every shard — start suspicion on a crashed primary, and once a
  /// suspicion is older than suspicion_timeout_us promote the best
  /// replica. Deterministic given the operation sequence.
  HealthReport AdvanceTime(std::uint64_t now_us);

  // --- Anti-entropy -------------------------------------------------------

  /// One digest round for one shard (skipped entirely while its primary
  /// is crashed — there is no authoritative side to compare against).
  AntiEntropyReport RunAntiEntropy(std::size_t shard);
  /// One digest round over every shard.
  AntiEntropyReport RunAntiEntropyAll();

  // --- Replica lifecycle (driven by GraphCluster / tests) -----------------

  /// Wipe a replica's volatile store after FaultInjector::CrashReplica:
  /// both watermarks drop to 0 and the next Ship() re-feeds it from the
  /// log (or a snapshot if the log was truncated).
  void WipeReplica(std::size_t shard, std::size_t replica);

  /// Deterministically corrupt one edge weight on a replica (divergence
  /// injection for anti-entropy tests). The victim is picked with the
  /// injector's RepDraw stream. Returns false if the replica has no edges.
  bool CorruptReplicaEdgeForTest(std::size_t shard, std::size_t replica);

  // --- Observability ------------------------------------------------------

  ReplicationStats stats() const;
  std::vector<ReplicaProbe> Probe(std::size_t shard);
  /// Serialize a replica's store (io/checkpoint byte format) — the
  /// byte-for-byte comparison hook for tests and `pd2gl verify-store`.
  Status SnapshotReplica(std::size_t shard, std::size_t replica,
                         std::string* out);
  AckWindow& ack_window(std::size_t shard) { return reps_[shard]->acks; }
  const ReplicationConfig& config() const { return config_; }
  /// The registry the pd2gl_replication_* series live in (the caller's,
  /// or the private fallback).
  obs::MetricRegistry& metrics() { return *metrics_; }

 private:
  // The per-shard mutex lives behind a unique_ptr in a vector, so callers
  // cannot name it in an EXCLUDES clause; public methods document their
  // locking in prose and the private helpers use REQUIRES on the
  // dereferenced member.
  struct Replica {
    std::unique_ptr<GraphStore> store;
    std::uint64_t applied_seq = 0;
    std::uint64_t acked_seq = 0;  ///< primary-side view (<= applied_seq)
    bool incompatible = false;
    Status last_error;
  };

  struct ShardRep {
    mutable Mutex mu;
    std::vector<Replica> replicas GUARDED_BY(mu);
    AckWindow acks;
    /// Virtual time at which the primary was first seen crashed;
    /// kNotSuspected while it looks healthy.
    std::uint64_t suspected_since_us GUARDED_BY(mu) = kNotSuspected;
    /// Ship-round scratch: WAL windows are similarly sized round over
    /// round, so reusing the buffer keeps the hot path allocation-free.
    std::vector<TimedUpdate> window_scratch GUARDED_BY(mu);
  };

  static constexpr std::uint64_t kNotSuspected = ~std::uint64_t{0};
  static constexpr int kMaxFlushRounds = 4096;

  void ShipLocked(std::size_t shard, ShardRep& sr, bool allow_bootstrap)
      REQUIRES(sr.mu);
  /// Deliver one encoded RepLogAppend to a replica (decode + contiguity
  /// check + apply). Updates watermarks and counters.
  void DeliverAppend(const std::string& bytes, Replica& rep);
  /// Send the cumulative ack for one replica back to the primary side
  /// (subject to a drop draw on the reverse channel).
  void SendAck(std::size_t shard, std::size_t replica, ShardRep& sr)
      REQUIRES(sr.mu);
  /// Bootstrap one replica from a snapshot image. False if no image is
  /// obtainable right now (crashed primary without a checkpoint) or the
  /// message was dropped.
  bool BootstrapReplica(std::size_t shard, std::size_t replica, Replica& rep);
  /// Promote the best replica of a crashed shard. Returns entries
  /// replayed, or nullopt if no replica qualifies.
  std::optional<std::uint64_t> PromoteLocked(std::size_t shard, ShardRep& sr)
      REQUIRES(sr.mu);
  void PumpLoop();

  ReplicationConfig config_;
  GraphStoreConfig store_config_;
  std::vector<GraphShard*> primaries_;
  FaultInjector* injector_;
  EpochCoordinator* cutover_;
  std::vector<std::unique_ptr<ShardRep>> reps_;

  // Transport counters: registry-owned obs::Counter series
  // (pd2gl_replication_*), each bound onto its ReplicationStats member at
  // construction so stats() is the binding's shared fill loop — no
  // hand-rolled per-field copy.
  struct Counters {
    obs::Counter* ship_rounds = nullptr;
    obs::Counter* append_messages = nullptr;
    obs::Counter* ack_messages = nullptr;
    obs::Counter* bytes_shipped = nullptr;
    obs::Counter* entries_applied = nullptr;
    obs::Counter* duplicate_entries = nullptr;
    obs::Counter* rejected_appends = nullptr;
    obs::Counter* dropped_messages = nullptr;
    obs::Counter* duplicated_messages = nullptr;
    obs::Counter* reordered_messages = nullptr;
    obs::Counter* snapshot_bootstraps = nullptr;
    obs::Counter* unimplemented_peers = nullptr;
    obs::Counter* replica_apply_nanos = nullptr;
    obs::Counter* pump_cpu_nanos = nullptr;
  };
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;  ///< when none given
  obs::MetricRegistry* metrics_;
  obs::StatsBinding<ReplicationStats> binding_;
  Counters counters_;

  // Async pump (constructed only when config_.async_ship).
  Mutex pump_mu_;
  CondVar pump_cv_;
  bool pump_work_ GUARDED_BY(pump_mu_) = false;
  bool pump_stop_ GUARDED_BY(pump_mu_) = false;
  std::thread pump_;
};

}  // namespace platod2gl
