#include "dist/replication.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/crc32.h"
#include "io/checkpoint.h"
#include "obs/profile.h"

namespace platod2gl {

namespace {

/// RAII meter for work billed to the *replica* machine (decode + apply).
/// Thread-CPU clock, not wall: on a shared-host simulation the pump and
/// the client time-slice one core, and only actual cycles burnt by the
/// replica's side should land in replica_apply_nanos.
class ReplicaCpuMeter {
 public:
  explicit ReplicaCpuMeter(obs::Counter* sink) : sink_(sink) {
    start_ = Now();
  }
  ~ReplicaCpuMeter() { sink_->Add(Now() - start_); }

 private:
  static std::uint64_t Now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
  obs::Counter* sink_;
  std::uint64_t start_ = 0;
};

struct FilePtr {
  std::FILE* f = nullptr;
  ~FilePtr() {
    if (f != nullptr) std::fclose(f);
  }
};

bool ReadFileToString(const std::string& path, std::string* out) {
  FilePtr fp{std::fopen(path.c_str(), "rb")};
  if (fp.f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fp.f)) > 0) {
    out->append(buf, n);
  }
  return std::ferror(fp.f) == 0;
}

/// Keyrange bucket of a source vertex: SplitMix64-mixed so contiguous id
/// ranges spread across buckets (primary and replica agree by construction).
std::size_t BucketOf(VertexId src, std::size_t buckets) {
  SplitMix64 sm(src);
  return static_cast<std::size_t>(sm.Next() % buckets);
}

/// CRC-32 of one edge's topology record (type, src, dst, weight), packed
/// little-endian-independent via memcpy — attributes are out of digest
/// scope (docs/replication.md).
std::uint32_t EdgeCrc(EdgeType type, VertexId src, VertexId dst, Weight w) {
  unsigned char buf[4 + 8 + 8 + 8];
  std::uint32_t t = type;
  std::memcpy(buf, &t, 4);
  std::memcpy(buf + 4, &src, 8);
  std::memcpy(buf + 12, &dst, 8);
  std::memcpy(buf + 20, &w, 8);
  return Crc32(buf, sizeof(buf), 0);
}

/// Per-bucket (edge count, CRC xor) digest of a store's topology. The xor
/// combine is order-insensitive: two stores with the same edge *set*
/// digest identically even if their iteration orders differ (a replica
/// bootstrapped from a snapshot may iterate differently from one that
/// replayed the whole log).
void ComputeDigest(const GraphStore& store, std::size_t buckets,
                   std::vector<std::uint64_t>* counts,
                   std::vector<std::uint32_t>* crcs) {
  counts->assign(buckets, 0);
  crcs->assign(buckets, 0);
  for (std::size_t rel = 0; rel < store.num_relations(); ++rel) {
    const auto type = static_cast<EdgeType>(rel);
    store.topology(type).ForEachSource([&](VertexId src, const Samtree& tree) {
      const std::size_t b = BucketOf(src, buckets);
      tree.ForEachNeighbor([&](VertexId dst, Weight w) {
        (*counts)[b] += 1;
        (*crcs)[b] ^= EdgeCrc(type, src, dst, w);
      });
    });
  }
}

/// Every edge of `store` whose source hashes into `bucket`.
std::vector<Edge> BucketEdges(const GraphStore& store, std::size_t buckets,
                              std::size_t bucket) {
  std::vector<Edge> out;
  for (std::size_t rel = 0; rel < store.num_relations(); ++rel) {
    const auto type = static_cast<EdgeType>(rel);
    store.topology(type).ForEachSource([&](VertexId src, const Samtree& tree) {
      if (BucketOf(src, buckets) != bucket) return;
      tree.ForEachNeighbor([&](VertexId dst, Weight w) {
        out.push_back(Edge{src, dst, w, type});
      });
    });
  }
  return out;
}

}  // namespace

// --- AckWindow ------------------------------------------------------------

void AckWindow::Ack(std::uint64_t seq) {
  MutexLock lock(mu_);
  if (seq <= acked_) return;
  acked_ = seq;
  // Notify while still holding mu_: a waiter between its predicate check
  // and cv_.wait() would otherwise miss this wakeup forever (the
  // schedcheck scenario pins exactly this).
  cv_.notify_all();
}

void AckWindow::WaitForAcked(std::uint64_t seq) {
  MutexLock lock(mu_);
  while (acked_ < seq) cv_.wait(mu_);
}

std::uint64_t AckWindow::acked() const {
  MutexLock lock(mu_);
  return acked_;
}

// --- ReplicationManager ---------------------------------------------------

ReplicationManager::ReplicationManager(const ReplicationConfig& config,
                                       const GraphStoreConfig& store_config,
                                       std::vector<GraphShard*> primaries,
                                       FaultInjector* injector,
                                       EpochCoordinator* cutover,
                                       obs::MetricRegistry* metrics)
    : config_(config),
      store_config_(store_config),
      primaries_(std::move(primaries)),
      injector_(injector),
      cutover_(cutover) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  using S = ReplicationStats;
  counters_.ship_rounds = metrics_->BindCounter(
      &binding_, &S::ship_rounds, "pd2gl_replication_ship_rounds");
  counters_.append_messages = metrics_->BindCounter(
      &binding_, &S::append_messages, "pd2gl_replication_append_messages");
  counters_.ack_messages = metrics_->BindCounter(
      &binding_, &S::ack_messages, "pd2gl_replication_ack_messages");
  counters_.bytes_shipped = metrics_->BindCounter(
      &binding_, &S::bytes_shipped, "pd2gl_replication_bytes_shipped");
  counters_.entries_applied = metrics_->BindCounter(
      &binding_, &S::entries_applied, "pd2gl_replication_entries_applied");
  counters_.duplicate_entries = metrics_->BindCounter(
      &binding_, &S::duplicate_entries, "pd2gl_replication_duplicate_entries");
  counters_.rejected_appends = metrics_->BindCounter(
      &binding_, &S::rejected_appends, "pd2gl_replication_rejected_appends");
  counters_.dropped_messages = metrics_->BindCounter(
      &binding_, &S::dropped_messages, "pd2gl_replication_dropped_messages");
  counters_.duplicated_messages =
      metrics_->BindCounter(&binding_, &S::duplicated_messages,
                            "pd2gl_replication_duplicated_messages");
  counters_.reordered_messages = metrics_->BindCounter(
      &binding_, &S::reordered_messages, "pd2gl_replication_reordered_messages");
  counters_.snapshot_bootstraps =
      metrics_->BindCounter(&binding_, &S::snapshot_bootstraps,
                            "pd2gl_replication_snapshot_bootstraps");
  counters_.unimplemented_peers =
      metrics_->BindCounter(&binding_, &S::unimplemented_peers,
                            "pd2gl_replication_unimplemented_peers");
  counters_.replica_apply_nanos =
      metrics_->BindCounter(&binding_, &S::replica_apply_nanos,
                            "pd2gl_replication_replica_apply_nanos");
  counters_.pump_cpu_nanos = metrics_->BindCounter(
      &binding_, &S::pump_cpu_nanos, "pd2gl_replication_pump_cpu_nanos");
  if (config_.num_replicas > FaultInjector::kMaxReplicas) {
    config_.num_replicas = FaultInjector::kMaxReplicas;
  }
  if (config_.max_entries_per_append == 0) config_.max_entries_per_append = 1;
  if (config_.digest_buckets == 0) config_.digest_buckets = 1;
  reps_.reserve(primaries_.size());
  for (std::size_t s = 0; s < primaries_.size(); ++s) {
    auto sr = std::make_unique<ShardRep>();
    MutexLock lock(sr->mu);
    sr->replicas.resize(config_.num_replicas);
    for (auto& r : sr->replicas) {
      r.store = std::make_unique<GraphStore>(store_config_);
    }
    reps_.push_back(std::move(sr));
  }
  if (config_.async_ship) {
    pump_ = std::thread([this] { PumpLoop(); });
  }
}

ReplicationManager::~ReplicationManager() {
  if (pump_.joinable()) {
    {
      MutexLock lock(pump_mu_);
      pump_stop_ = true;
      pump_cv_.notify_all();
    }
    pump_.join();
  }
}

void ReplicationManager::Kick() {
  if (!config_.async_ship) {
    for (std::size_t s = 0; s < primaries_.size(); ++s) {
      Ship(s, /*allow_bootstrap=*/true);
    }
    return;
  }
  MutexLock lock(pump_mu_);
  pump_work_ = true;
  pump_cv_.notify_all();
}

void ReplicationManager::PumpLoop() {
  for (;;) {
    {
      MutexLock lock(pump_mu_);
      while (!pump_stop_ && !pump_work_) pump_cv_.wait(pump_mu_);
      if (pump_stop_) return;
      pump_work_ = false;
    }
    // Meter the whole round: pump_cpu - replica_apply isolates the
    // primary-side ship cost for the bench's cost accounting.
    ReplicaCpuMeter round_meter(counters_.pump_cpu_nanos);
    // Bootstrapping snapshots the primary's *live* store, which may be
    // receiving applies right now — only the client-serial paths (Kick in
    // sync mode, Flush) are allowed to do that.
    for (std::size_t s = 0; s < primaries_.size(); ++s) {
      Ship(s, /*allow_bootstrap=*/false);
    }
  }
}

void ReplicationManager::Ship(std::size_t shard, bool allow_bootstrap) {
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  if (allow_bootstrap) {
    for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
      Replica& rep = sr.replicas[r];
      if (rep.incompatible || injector_->IsReplicaCrashed(shard, r) ||
          injector_->IsReplicaPartitioned(shard, r)) {
        continue;
      }
      if (rep.applied_seq < primaries_[shard]->wal_truncated_through()) {
        BootstrapReplica(shard, r, rep);
      }
    }
  }
  ShipLocked(shard, sr, allow_bootstrap);
}

void ReplicationManager::ShipLocked(std::size_t shard, ShardRep& sr,
                                    bool allow_bootstrap) {
  PD2GL_PROFILE_SCOPE(obs::ProfileSite::kWalShip);
  (void)allow_bootstrap;
  GraphShard* pri = primaries_[shard];
  const std::uint64_t head = pri->wal_seq();
  counters_.ship_rounds->Add();
  for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
    Replica& rep = sr.replicas[r];
    if (rep.incompatible) continue;
    if (injector_->IsReplicaCrashed(shard, r)) continue;
    if (injector_->IsReplicaPartitioned(shard, r)) continue;
    // Below the truncation point and not bootstrapped this round: the log
    // cannot reach this replica, skip until a bootstrap-capable pass.
    if (rep.applied_seq < pri->wal_truncated_through()) continue;
    if (rep.applied_seq < head) {
      std::vector<TimedUpdate>& window = sr.window_scratch;
      pri->WalWindowInto(rep.applied_seq, head, &window);
      // Chunk the window into append messages, encoding straight from
      // the WAL entries (no intermediate RepLogAppend materialisation).
      std::vector<std::string> msgs;
      msgs.reserve(window.size() / config_.max_entries_per_append + 1);
      for (std::size_t i = 0; i < window.size();
           i += config_.max_entries_per_append) {
        const std::size_t end =
            std::min(window.size(), i + config_.max_entries_per_append);
        msgs.push_back(wire::EncodeRepLogAppendWindow(
            static_cast<std::uint32_t>(shard), rep.applied_seq + i + 1,
            window.data() + i, end - i, config_.wire_version));
      }
      // Deliver under the injected channel-fault schedule. All three
      // fault classes resolve into retransmits: the contiguity check in
      // DeliverAppend refuses anything that does not extend applied_seq.
      std::size_t i = 0;
      while (i < msgs.size() && !rep.incompatible) {
        switch (injector_->NextRepFault(shard, r)) {
          case FaultInjector::RepFault::kDrop:
            counters_.dropped_messages->Add();
            ++i;
            break;
          case FaultInjector::RepFault::kDuplicate:
            counters_.duplicated_messages->Add();
            DeliverAppend(msgs[i], rep);
            DeliverAppend(msgs[i], rep);
            ++i;
            break;
          case FaultInjector::RepFault::kReorder:
            if (i + 1 < msgs.size()) {
              counters_.reordered_messages->Add();
              DeliverAppend(msgs[i + 1], rep);
              DeliverAppend(msgs[i], rep);
              i += 2;
            } else {
              DeliverAppend(msgs[i], rep);
              ++i;
            }
            break;
          case FaultInjector::RepFault::kNone:
            DeliverAppend(msgs[i], rep);
            ++i;
            break;
        }
      }
    }
    // Ack only when the watermark can actually move — an idle ship round
    // over a caught-up, fully-acked replica sends nothing.
    if (!rep.incompatible && rep.acked_seq < rep.applied_seq) {
      SendAck(shard, r, sr);
    }
  }
}

void ReplicationManager::DeliverAppend(const std::string& bytes,
                                       Replica& rep) {
  counters_.append_messages->Add();
  counters_.bytes_shipped->Add(bytes.size());
  ReplicaCpuMeter meter(counters_.replica_apply_nanos);
  wire::RepLogAppend msg;
  switch (wire::DecodeRepLogAppend(bytes, &msg)) {
    case wire::DecodeResult::kUnsupportedVersion:
      // Version negotiation: the peer speaks a format we do not. Mark it
      // incompatible once — it is excluded from shipping, reads and
      // promotion until reconfigured.
      if (!rep.incompatible) {
        rep.incompatible = true;
        rep.last_error = Status::Unimplemented(
            "replica rejected replication wire version");
        counters_.unimplemented_peers->Add();
      }
      return;
    case wire::DecodeResult::kMalformed:
      rep.last_error = Status::DataLoss("malformed replication append");
      return;
    case wire::DecodeResult::kOk:
      break;
  }
  for (const wire::RepLogEntry& e : msg.entries) {
    if (e.seq <= rep.applied_seq) {
      // At-least-once transport: silently skip the duplicate prefix.
      counters_.duplicate_entries->Add();
      continue;
    }
    if (e.seq != rep.applied_seq + 1) {
      // Gap (a predecessor was dropped or is still in flight behind a
      // reorder): refuse the suffix; the next ship round retransmits
      // from applied_seq + 1.
      counters_.rejected_appends->Add();
      return;
    }
    rep.store->Apply(e.update);
    rep.applied_seq = e.seq;
    counters_.entries_applied->Add();
  }
}

void ReplicationManager::SendAck(std::size_t shard, std::size_t replica,
                                 ShardRep& sr) {
  Replica& rep = sr.replicas[replica];
  wire::RepAck ack;
  ack.shard = static_cast<std::uint32_t>(shard);
  ack.replica = static_cast<std::uint32_t>(replica);
  ack.applied_seq = rep.applied_seq;
  const std::string bytes = wire::EncodeRepAck(ack, config_.wire_version);
  counters_.ack_messages->Add();
  counters_.bytes_shipped->Add(bytes.size());
  // The reverse channel is just as lossy as the forward one. A dropped
  // ack leaves acked_seq stale; the next round's cumulative ack covers it
  // (and AckWindow waiters are woken then — the lost-ack wakeup path).
  if (injector_->NextRepFault(shard, replica) ==
      FaultInjector::RepFault::kDrop) {
    counters_.dropped_messages->Add();
    return;
  }
  wire::RepAck decoded;
  if (wire::DecodeRepAck(bytes, &decoded) != wire::DecodeResult::kOk) return;
  rep.acked_seq = std::max(rep.acked_seq, decoded.applied_seq);
  sr.acks.Ack(decoded.applied_seq);
}

bool ReplicationManager::BootstrapReplica(std::size_t shard,
                                          std::size_t replica, Replica& rep) {
  GraphShard* pri = primaries_[shard];
  std::string image;
  std::uint64_t covered = 0;
  if (!pri->crashed()) {
    // Live primary: snapshot the serving store (covers the full log).
    covered = pri->wal_seq();
    if (!SaveGraphToBytes(pri->store(), &image).ok()) return false;
  } else if (!pri->checkpoint_path().empty()) {
    // Crashed primary: its disk checkpoint is still authoritative for the
    // truncated prefix; log shipping covers the rest.
    covered = pri->checkpoint_seq();
    if (!ReadFileToString(pri->checkpoint_path(), &image)) return false;
  } else {
    return false;  // nothing to bootstrap from yet
  }
  wire::RepSnapshot snap;
  snap.shard = static_cast<std::uint32_t>(shard);
  snap.covered_seq = covered;
  snap.checkpoint = std::move(image);
  const std::string bytes =
      wire::EncodeRepSnapshot(snap, config_.wire_version);
  counters_.bytes_shipped->Add(bytes.size());
  if (injector_->NextRepFault(shard, replica) ==
      FaultInjector::RepFault::kDrop) {
    counters_.dropped_messages->Add();
    return false;  // retried next bootstrap-capable round
  }
  // Decoding and loading the image are the receiving replica's work.
  ReplicaCpuMeter meter(counters_.replica_apply_nanos);
  wire::RepSnapshot decoded;
  switch (wire::DecodeRepSnapshot(bytes, &decoded)) {
    case wire::DecodeResult::kUnsupportedVersion:
      if (!rep.incompatible) {
        rep.incompatible = true;
        rep.last_error = Status::Unimplemented(
            "replica rejected replication wire version");
        counters_.unimplemented_peers->Add();
      }
      return false;
    case wire::DecodeResult::kMalformed:
      rep.last_error = Status::DataLoss("malformed snapshot message");
      return false;
    case wire::DecodeResult::kOk:
      break;
  }
  auto fresh = std::make_unique<GraphStore>(store_config_);
  Status s = LoadGraphFromBytes(decoded.checkpoint, fresh.get());
  if (!s.ok()) {  // CRC mismatch or structural damage: refuse the image
    rep.last_error = s;
    return false;
  }
  rep.store = std::move(fresh);
  rep.applied_seq = decoded.covered_seq;
  rep.last_error = Status::Ok();
  counters_.snapshot_bootstraps->Add();
  return true;
}

Status ReplicationManager::Flush() {
  for (int round = 0; round < kMaxFlushRounds; ++round) {
    bool all_caught_up = true;
    for (std::size_t s = 0; s < primaries_.size(); ++s) {
      Ship(s, /*allow_bootstrap=*/true);
      ShardRep& sr = *reps_[s];
      MutexLock lock(sr.mu);
      const std::uint64_t head = primaries_[s]->wal_seq();
      for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
        const Replica& rep = sr.replicas[r];
        if (rep.incompatible || injector_->IsReplicaCrashed(s, r) ||
            injector_->IsReplicaPartitioned(s, r)) {
          continue;  // unreachable by contract, not by flakiness
        }
        if (rep.applied_seq < head || rep.acked_seq < head) {
          all_caught_up = false;
        }
      }
    }
    if (all_caught_up) return Status::Ok();
  }
  return Status::DeadlineExceeded(
      "replication flush: channels still lossy after max rounds");
}

std::optional<ReplicationManager::ReplicaServe>
ReplicationManager::SampleFromReplica(std::size_t shard,
                                      const std::vector<VertexId>& seeds,
                                      std::size_t fanout, bool weighted,
                                      std::uint64_t rng_seed, EdgeType type) {
  ShardRep& sr = *reps_[shard];
  // Lock order: shard mutex, then the epoch coordinator pin — the same
  // order PromoteLocked uses (mutex, then write barrier), so the two can
  // never deadlock.
  MutexLock lock(sr.mu);
  const std::uint64_t head = primaries_[shard]->wal_seq();
  std::size_t best = sr.replicas.size();
  for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
    const Replica& rep = sr.replicas[r];
    // A partitioned replica is cut off from its *primary*, not from
    // clients — it may still serve (stale) reads. A crashed one may not.
    if (rep.incompatible || injector_->IsReplicaCrashed(shard, r)) continue;
    if (best == sr.replicas.size() ||
        rep.applied_seq > sr.replicas[best].applied_seq) {
      best = r;
    }
  }
  if (best == sr.replicas.size()) return std::nullopt;
  Replica& rep = sr.replicas[best];
  const std::uint64_t lag = head - rep.applied_seq;
  if (lag > config_.staleness_budget) return std::nullopt;
  auto pin = cutover_->PinRead();
  ReplicaServe serve;
  serve.replica = best;
  serve.lag = lag;
  serve.neighbors.resize(seeds.size());
  // Seeded exactly like the primary-path attempt so a caught-up replica
  // (lag 0) returns bit-identical samples.
  Xoshiro256 rng(rng_seed);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    rep.store->SampleNeighbors(seeds[i], fanout, weighted, rng,
                               &serve.neighbors[i], type);
  }
  return serve;
}

ReplicationManager::HealthReport ReplicationManager::AdvanceTime(
    std::uint64_t now_us) {
  HealthReport report;
  for (std::size_t s = 0; s < primaries_.size(); ++s) {
    ShardRep& sr = *reps_[s];
    MutexLock lock(sr.mu);
    if (!injector_->IsCrashed(s)) {
      sr.suspected_since_us = kNotSuspected;  // healthy (or recovered)
      continue;
    }
    if (sr.suspected_since_us == kNotSuspected) {
      // First observation of the crash: start the suspicion clock. The
      // timeout is measured from here, so promotion needs a later
      // AdvanceTime call — a blip recovered before then never fails over.
      sr.suspected_since_us = now_us;
      continue;
    }
    if (now_us - sr.suspected_since_us < config_.suspicion_timeout_us) {
      continue;
    }
    std::optional<std::uint64_t> replayed = PromoteLocked(s, sr);
    if (replayed.has_value()) {
      report.failovers += 1;
      report.replayed_entries += *replayed;
      sr.suspected_since_us = kNotSuspected;
    }
    // else: no promotable replica yet — stay suspected and retry on the
    // next health check.
  }
  return report;
}

std::optional<std::uint64_t> ReplicationManager::PromoteLocked(std::size_t s,
                                                               ShardRep& sr) {
  GraphShard* pri = primaries_[s];
  const std::uint64_t head = pri->wal_seq();
  // Candidate: the furthest-applied live, connected, compatible replica;
  // ties break to the lowest index — both deterministic.
  std::size_t best = sr.replicas.size();
  for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
    const Replica& rep = sr.replicas[r];
    if (rep.incompatible) continue;
    if (injector_->IsReplicaCrashed(s, r)) continue;
    if (injector_->IsReplicaPartitioned(s, r)) continue;
    if (rep.applied_seq < pri->wal_truncated_through()) continue;
    if (best == sr.replicas.size() ||
        rep.applied_seq > sr.replicas[best].applied_seq) {
      best = r;
    }
  }
  if (best == sr.replicas.size()) return std::nullopt;
  Replica& rep = sr.replicas[best];
  // Roll the candidate forward to the log head: replaying (applied, head]
  // of the durable WAL makes its store bit-identical to a sequential
  // replay of the primary's whole log (tests pin this byte-for-byte).
  std::size_t replayed = 0;
  Status st = pri->CheckedWalReplay(rep.store.get(), rep.applied_seq, head,
                                    &replayed);
  if (!st.ok()) return std::nullopt;  // truncation gap: not promotable
  {
    // Take over the keyrange under the epoch barrier: pinned readers
    // drain before the store pointer swaps, and the epoch advance
    // publishes the hand-off.
    auto wg = cutover_->BeginWrite();
    pri->Promote(std::move(rep.store));
  }
  injector_->RestoreShard(s);
  // The promoted slot is now an empty replica; it re-bootstraps (or
  // re-replays from seq 0) on subsequent ship rounds.
  rep.store = std::make_unique<GraphStore>(store_config_);
  rep.applied_seq = 0;
  rep.acked_seq = 0;
  return static_cast<std::uint64_t>(replayed);
}

ReplicationManager::AntiEntropyReport ReplicationManager::RunAntiEntropy(
    std::size_t shard) {
  AntiEntropyReport report;
  GraphShard* pri = primaries_[shard];
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  if (pri->crashed()) {
    // No authoritative side to digest against; every replica is skipped.
    report.skipped_replicas += sr.replicas.size();
    return report;
  }
  const std::uint64_t head = pri->wal_seq();
  std::vector<std::uint64_t> pri_counts;
  std::vector<std::uint32_t> pri_crcs;
  ComputeDigest(pri->store(), config_.digest_buckets, &pri_counts, &pri_crcs);
  for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
    Replica& rep = sr.replicas[r];
    if (rep.incompatible || injector_->IsReplicaCrashed(shard, r) ||
        injector_->IsReplicaPartitioned(shard, r) ||
        rep.applied_seq != head) {
      // Only caught-up, reachable replicas are compared: digesting a
      // lagging store would flag honest lag as divergence (false
      // positive), which the acceptance tests forbid.
      report.skipped_replicas += 1;
      continue;
    }
    wire::RepDigest digest;
    digest.shard = static_cast<std::uint32_t>(shard);
    digest.through_seq = head;
    digest.bucket_edges = pri_counts;
    digest.bucket_crcs = pri_crcs;
    const std::string bytes =
        wire::EncodeRepDigest(digest, config_.wire_version);
    counters_.bytes_shipped->Add(bytes.size());
    if (injector_->NextRepFault(shard, r) ==
        FaultInjector::RepFault::kDrop) {
      counters_.dropped_messages->Add();
      report.skipped_replicas += 1;
      continue;
    }
    wire::RepDigest decoded;
    switch (wire::DecodeRepDigest(bytes, &decoded)) {
      case wire::DecodeResult::kUnsupportedVersion:
        if (!rep.incompatible) {
          rep.incompatible = true;
          rep.last_error = Status::Unimplemented(
              "replica rejected replication wire version");
          counters_.unimplemented_peers->Add();
        }
        report.skipped_replicas += 1;
        continue;
      case wire::DecodeResult::kMalformed:
        report.skipped_replicas += 1;
        continue;
      case wire::DecodeResult::kOk:
        break;
    }
    report.digest_rounds += 1;
    std::vector<std::uint64_t> rep_counts;
    std::vector<std::uint32_t> rep_crcs;
    ComputeDigest(*rep.store, config_.digest_buckets, &rep_counts, &rep_crcs);
    bool repaired = false;
    for (std::size_t b = 0; b < config_.digest_buckets; ++b) {
      if (decoded.bucket_edges[b] == rep_counts[b] &&
          decoded.bucket_crcs[b] == rep_crcs[b]) {
        continue;
      }
      report.digest_mismatches += 1;
      repaired = true;
      // Repair = re-ship the bucket delta: drop everything the replica
      // holds in the bucket, then re-insert the primary's bucket edges.
      // Delete-then-insert handles both phantom and missing edges.
      for (const Edge& e : BucketEdges(*rep.store, config_.digest_buckets, b)) {
        rep.store->Apply(EdgeUpdate{UpdateKind::kDelete, e});
      }
      const std::vector<Edge> truth =
          BucketEdges(pri->store(), config_.digest_buckets, b);
      for (const Edge& e : truth) {
        rep.store->Apply(EdgeUpdate{UpdateKind::kInsert, e});
      }
      report.repaired_edges += truth.size();
    }
    if (repaired) report.repaired_replicas += 1;
  }
  return report;
}

ReplicationManager::AntiEntropyReport ReplicationManager::RunAntiEntropyAll() {
  AntiEntropyReport total;
  for (std::size_t s = 0; s < primaries_.size(); ++s) {
    const AntiEntropyReport r = RunAntiEntropy(s);
    total.digest_rounds += r.digest_rounds;
    total.digest_mismatches += r.digest_mismatches;
    total.repaired_replicas += r.repaired_replicas;
    total.repaired_edges += r.repaired_edges;
    total.skipped_replicas += r.skipped_replicas;
  }
  return total;
}

void ReplicationManager::WipeReplica(std::size_t shard, std::size_t replica) {
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  Replica& rep = sr.replicas[replica];
  rep.store = std::make_unique<GraphStore>(store_config_);
  rep.applied_seq = 0;
  rep.acked_seq = 0;
  rep.last_error = Status::Ok();
}

bool ReplicationManager::CorruptReplicaEdgeForTest(std::size_t shard,
                                                   std::size_t replica) {
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  Replica& rep = sr.replicas[replica];
  std::vector<Edge> edges;
  for (std::size_t b = 0; b < config_.digest_buckets; ++b) {
    const std::vector<Edge> bucket =
        BucketEdges(*rep.store, config_.digest_buckets, b);
    edges.insert(edges.end(), bucket.begin(), bucket.end());
  }
  if (edges.empty()) return false;
  Edge victim = edges[injector_->RepDraw(shard, replica) % edges.size()];
  victim.weight += 1.5;  // weight is part of the topology digest
  rep.store->Apply(EdgeUpdate{UpdateKind::kInPlaceUpdate, victim});
  return true;
}

ReplicationStats ReplicationManager::stats() const { return binding_.Read(); }

Status ReplicationManager::SnapshotReplica(std::size_t shard,
                                           std::size_t replica,
                                           std::string* out) {
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  return SaveGraphToBytes(*sr.replicas[replica].store, out);
}

std::vector<ReplicationManager::ReplicaProbe> ReplicationManager::Probe(
    std::size_t shard) {
  ShardRep& sr = *reps_[shard];
  MutexLock lock(sr.mu);
  std::vector<ReplicaProbe> out;
  out.reserve(sr.replicas.size());
  for (std::size_t r = 0; r < sr.replicas.size(); ++r) {
    const Replica& rep = sr.replicas[r];
    ReplicaProbe p;
    p.applied_seq = rep.applied_seq;
    p.acked_seq = rep.acked_seq;
    p.head_seq = primaries_[shard]->wal_seq();
    p.crashed = injector_->IsReplicaCrashed(shard, r);
    p.partitioned = injector_->IsReplicaPartitioned(shard, r);
    p.incompatible = rep.incompatible;
    p.edges = rep.store->NumEdges();
    out.push_back(p);
  }
  return out;
}

}  // namespace platod2gl
