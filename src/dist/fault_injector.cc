#include "dist/fault_injector.h"

#include "common/random.h"

namespace platod2gl {

FaultInjector::FaultInjector(FaultConfig config, std::size_t num_shards)
    : config_(config),
      passive_(config.failure_prob <= 0 && config.timeout_prob <= 0 &&
               config.corrupt_prob <= 0 && config.slow_prob <= 0),
      rep_passive_(config.rep_drop_prob <= 0 &&
                   config.rep_duplicate_prob <= 0 &&
                   config.rep_reorder_prob <= 0),
      num_shards_(num_shards),
      crashed_(std::make_unique<std::atomic<bool>[]>(num_shards)),
      draws_(std::make_unique<std::atomic<std::uint64_t>[]>(num_shards)),
      replica_state_(std::make_unique<std::atomic<std::uint8_t>[]>(
          num_shards * kMaxReplicas)),
      rep_draws_(std::make_unique<std::atomic<std::uint64_t>[]>(
          num_shards * kMaxReplicas)) {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    // order: constructor; nothing runs concurrently yet
    crashed_[i].store(false, std::memory_order_relaxed);
    // order: constructor; nothing runs concurrently yet
    draws_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < num_shards_ * kMaxReplicas; ++i) {
    // order: constructor; nothing runs concurrently yet
    replica_state_[i].store(0, std::memory_order_relaxed);
    // order: constructor; nothing runs concurrently yet
    rep_draws_[i].store(0, std::memory_order_relaxed);
  }
}

void FaultInjector::CrashShard(std::size_t shard) {
  crashed_[shard].store(true, std::memory_order_release);
}

void FaultInjector::RestoreShard(std::size_t shard) {
  crashed_[shard].store(false, std::memory_order_release);
}

bool FaultInjector::IsCrashed(std::size_t shard) const {
  return crashed_[shard].load(std::memory_order_acquire);
}

std::size_t FaultInjector::NumCrashed() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    if (IsCrashed(i)) ++n;
  }
  return n;
}

std::uint64_t FaultInjector::Draw(std::size_t shard) {
  // The n-th draw for a shard is SplitMix64 of (seed, shard, n): stateless
  // apart from the per-shard counter, so concurrent RPCs against
  // *different* shards cannot perturb each other's fault sequences.
  const std::uint64_t n =
      // order: per-shard draw tally; shards never read each other's
      draws_[shard].fetch_add(1, std::memory_order_relaxed);
  SplitMix64 sm(config_.seed ^ (0x9E3779B97F4A7C15ULL * (shard + 1)) ^
                (0xD1B54A32D192ED03ULL * n));
  return sm.Next();
}

FaultInjector::Fault FaultInjector::NextFault(std::size_t shard) {
  if (passive_) return Fault::kNone;
  const double u =
      static_cast<double>(Draw(shard) >> 11) * 0x1.0p-53;  // [0, 1)
  double edge = config_.failure_prob;
  if (u < edge) return Fault::kFail;
  edge += config_.timeout_prob;
  if (u < edge) return Fault::kTimeout;
  edge += config_.corrupt_prob;
  if (u < edge) return Fault::kCorrupt;
  edge += config_.slow_prob;
  if (u < edge) return Fault::kSlow;
  return Fault::kNone;
}

namespace {
constexpr std::uint8_t kReplicaCrashedBit = 1;
constexpr std::uint8_t kReplicaPartitionedBit = 2;
}  // namespace

void FaultInjector::CrashReplica(std::size_t shard, std::size_t replica) {
  replica_state_[Channel(shard, replica)].fetch_or(kReplicaCrashedBit,
                                                   std::memory_order_release);
}

void FaultInjector::RestoreReplica(std::size_t shard, std::size_t replica) {
  replica_state_[Channel(shard, replica)].fetch_and(
      static_cast<std::uint8_t>(~kReplicaCrashedBit),
      std::memory_order_release);
}

bool FaultInjector::IsReplicaCrashed(std::size_t shard,
                                     std::size_t replica) const {
  return (replica_state_[Channel(shard, replica)].load(
              std::memory_order_acquire) &
          kReplicaCrashedBit) != 0;
}

void FaultInjector::PartitionReplica(std::size_t shard, std::size_t replica) {
  replica_state_[Channel(shard, replica)].fetch_or(kReplicaPartitionedBit,
                                                   std::memory_order_release);
}

void FaultInjector::HealReplica(std::size_t shard, std::size_t replica) {
  replica_state_[Channel(shard, replica)].fetch_and(
      static_cast<std::uint8_t>(~kReplicaPartitionedBit),
      std::memory_order_release);
}

bool FaultInjector::IsReplicaPartitioned(std::size_t shard,
                                         std::size_t replica) const {
  return (replica_state_[Channel(shard, replica)].load(
              std::memory_order_acquire) &
          kReplicaPartitionedBit) != 0;
}

std::uint64_t FaultInjector::RepDraw(std::size_t shard, std::size_t replica) {
  // Mirrors Draw(): the n-th draw on a channel is SplitMix64 of
  // (seed, shard, replica, n). The salts differ from Draw()'s so the RPC
  // and replication fault streams never alias even for shard 0.
  const std::uint64_t n =
      // order: per-channel draw tally; channels never read each other's
      rep_draws_[Channel(shard, replica)].fetch_add(
          1, std::memory_order_relaxed);
  SplitMix64 sm(config_.seed ^ (0xBF58476D1CE4E5B9ULL * (shard + 1)) ^
                (0x94D049BB133111EBULL * (replica + 1)) ^
                (0x2545F4914F6CDD1DULL * n));
  return sm.Next();
}

FaultInjector::RepFault FaultInjector::NextRepFault(std::size_t shard,
                                                    std::size_t replica) {
  if (rep_passive_) return RepFault::kNone;
  const double u =
      static_cast<double>(RepDraw(shard, replica) >> 11) * 0x1.0p-53;
  double edge = config_.rep_drop_prob;
  if (u < edge) return RepFault::kDrop;
  edge += config_.rep_duplicate_prob;
  if (u < edge) return RepFault::kDuplicate;
  edge += config_.rep_reorder_prob;
  if (u < edge) return RepFault::kReorder;
  return RepFault::kNone;
}

void FaultInjector::CorruptBytes(std::size_t shard, std::string* bytes) {
  const std::uint64_t r = Draw(shard);
  if (bytes->empty()) {
    bytes->push_back('\xFF');
    return;
  }
  switch (r & 3u) {
    case 0:  // flip the message tag
      (*bytes)[0] = static_cast<char>((*bytes)[0] ^ 0x5A);
      break;
    case 1: {  // damage a random byte AND shear the tail — a payload-only
               // flip could still decode, the shear guarantees a
               // structural mismatch the decoder must catch
      const std::size_t pos = (r >> 2) % bytes->size();
      (*bytes)[pos] = static_cast<char>((*bytes)[pos] ^ 0xFF);
      bytes->pop_back();
      break;
    }
    case 2: {  // truncate 1..size tail bytes
      const std::size_t cut = 1 + (r >> 2) % bytes->size();
      bytes->resize(bytes->size() - cut);
      break;
    }
    default:  // trailing garbage
      bytes->push_back(static_cast<char>(r >> 8));
      break;
  }
}

}  // namespace platod2gl
