#include "dist/remote_sampler.h"

namespace platod2gl {

RemoteSampleReport RemoteSubgraphSampler::SampleWithReport(
    const std::vector<VertexId>& seeds,
    const std::vector<SubgraphSampler::Hop>& hops, std::uint64_t seed) {
  RemoteSampleReport report;
  SampledSubgraph& sg = report.subgraph;
  sg.layers.push_back(seeds);

  std::uint64_t round = 0;
  for (const SubgraphSampler::Hop& hop : hops) {
    const std::vector<VertexId>& frontier = sg.layers.back();
    // One batched (retrying) RPC round for the whole frontier.
    const SampleReport hop_result = cluster_->SampleNeighborsChecked(
        frontier, hop.fanout, hop.weighted,
        seed ^ (0x9E3779B97F4A7C15ULL * ++round), hop.edge_type);
    const NeighborBatch& batch = hop_result.batch;

    std::uint64_t degraded = 0;
    std::vector<VertexId> next;
    std::vector<std::uint32_t> parents;
    next.reserve(batch.neighbors.size());
    parents.reserve(batch.neighbors.size());
    for (std::size_t i = 0; i + 1 < batch.offsets.size(); ++i) {
      if (hop_result.seed_status[i] == SeedStatus::kDegraded) ++degraded;
      for (std::size_t j = batch.offsets[i]; j < batch.offsets[i + 1]; ++j) {
        next.push_back(batch.neighbors[j]);
        parents.push_back(static_cast<std::uint32_t>(i));
      }
    }
    report.degraded_frontier.push_back(degraded);
    report.degraded_total += degraded;
    sg.layers.push_back(std::move(next));
    sg.parents.push_back(std::move(parents));
  }
  return report;
}

}  // namespace platod2gl
