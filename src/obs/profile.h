// Hot-path profiling hooks: compile-away-by-default scoped timers.
//
// The three hot paths the roadmap's perf work keeps returning to —
// samtree batch descent, latch-free micro-batch apply, WAL ship — get a
// PD2GL_PROFILE_SCOPE(site) at BATCH granularity (never per draw: a
// ~20ns timer read against the ~58ns/draw descent budget would be the
// profiler observing itself). Each scope records wall-clock nanoseconds
// into a process-global LatencyHistogram per site, exported through
// ProfileSnapshot() into any RegistrySnapshot (pd2gl metrics).
//
// Cost discipline:
//  * PD2GL_OBS_PROFILE undefined (the default): the macro expands to
//    nothing — zero code, zero data references, bit-identical hot loops.
//  * defined: two steady_clock reads per scope, one relaxed fetch_add.
//    bench_sampling_batched's ablation gates the overhead at <= 2%.
//
// These histograms are intentionally global (unlike MetricRegistry):
// profiling cuts across every store/cluster instance in the process, and
// the sites are a fixed enum, so there is no registration story to get
// wrong in a hot loop.
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "obs/metrics.h"

#if defined(PD2GL_OBS_PROFILE)
#include <chrono>
#endif

namespace platod2gl::obs {

enum class ProfileSite : std::uint8_t {
  kSamtreeDescent = 0,  ///< one Sample{Weighted,Uniform}Batch call
  kBatchApply = 1,      ///< one BatchUpdater::ApplyBatch* call
  kWalShip = 2,         ///< one ReplicationManager shipping pass
  kNumSites = 3,
};

const char* ProfileSiteName(ProfileSite site);

/// The live per-site histogram (process-global, thread-safe).
LatencyHistogram& ProfileHistogram(ProfileSite site);

/// True when the timers are compiled in.
constexpr bool ProfilingEnabled() {
#if defined(PD2GL_OBS_PROFILE)
  return true;
#else
  return false;
#endif
}

/// Per-site points (pd2gl_profile_<site>_nanos) for export alongside a
/// registry snapshot. Empty histograms when profiling is compiled out.
RegistrySnapshot ProfileSnapshot();

#if defined(PD2GL_OBS_PROFILE)

class ProfileScope {
 public:
  explicit ProfileScope(ProfileSite site)
      : site_(site), start_(std::chrono::steady_clock::now()) {}
  ~ProfileScope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    ProfileHistogram(site_).Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileSite site_;
  std::chrono::steady_clock::time_point start_;
};

#define PD2GL_PROFILE_CONCAT_INNER(a, b) a##b
#define PD2GL_PROFILE_CONCAT(a, b) PD2GL_PROFILE_CONCAT_INNER(a, b)
#define PD2GL_PROFILE_SCOPE(site)                        \
  ::platod2gl::obs::ProfileScope PD2GL_PROFILE_CONCAT(   \
      pd2gl_profile_scope_, __LINE__)(site)

#else

#define PD2GL_PROFILE_SCOPE(site) \
  do {                            \
  } while (false)

#endif  // PD2GL_OBS_PROFILE

}  // namespace platod2gl::obs
