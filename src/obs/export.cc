#include "obs/export.h"

#include <cstdio>

namespace platod2gl::obs {

namespace {

void AppendEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendLabelSet(const Labels& labels, std::string* out) {
  if (labels.empty()) return;
  *out += '{';
  bool first = true;
  for (const Label& l : labels) {
    if (!first) *out += ',';
    first = false;
    *out += l.key;
    *out += "=\"";
    AppendEscaped(l.value, out);
    *out += '"';
  }
  *out += '}';
}

/// Labels plus one extra (the histogram `le` bound) for bucket lines.
void AppendBucketLabels(const Labels& labels, const std::string& le,
                        std::string* out) {
  *out += '{';
  for (const Label& l : labels) {
    *out += l.key;
    *out += "=\"";
    AppendEscaped(l.value, out);
    *out += "\",";
  }
  *out += "le=\"";
  *out += le;
  *out += "\"}";
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Upper bound of log bucket i in seconds, formatted compactly. Bucket 0
/// holds the zeros; bucket i >= 1 spans [2^(i-1), 2^i - 1] nanoseconds.
std::string BucketBoundSeconds(std::size_t i) {
  const double nanos =
      i == 0 ? 0.0 : static_cast<double>((1ULL << i) - 1) + 0.5;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", nanos / 1e9);
  return buf;
}

}  // namespace

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricPoint& p : snapshot.points) {
    if (p.name != last_family) {
      out += "# TYPE ";
      out += p.name;
      out += ' ';
      out += KindName(p.kind);
      out += '\n';
      last_family = p.name;
    }
    if (p.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        cumulative += p.hist.buckets[i];
        if (p.hist.buckets[i] == 0 && i + 1 != HistogramSnapshot::kBuckets) {
          continue;  // keep the page one screen: skip empty interior buckets
        }
        out += p.name;
        out += "_bucket";
        AppendBucketLabels(
            p.labels,
            i + 1 == HistogramSnapshot::kBuckets ? "+Inf"
                                                 : BucketBoundSeconds(i),
            &out);
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      out += p.name;
      out += "_count";
      AppendLabelSet(p.labels, &out);
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    } else {
      out += p.name;
      AppendLabelSet(p.labels, &out);
      out += ' ';
      out += std::to_string(p.value);
      out += '\n';
    }
  }
  return out;
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::string out = "[";
  bool first_point = true;
  for (const MetricPoint& p : snapshot.points) {
    if (!first_point) out += ",";
    first_point = false;
    out += "\n  {\"name\":\"";
    AppendEscaped(p.name, &out);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const Label& l : p.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      AppendEscaped(l.key, &out);
      out += "\":\"";
      AppendEscaped(l.value, &out);
      out += '"';
    }
    out += "},\"kind\":\"";
    out += KindName(p.kind);
    out += "\"";
    if (p.kind == MetricKind::kHistogram) {
      char buf[64];
      std::snprintf(buf, sizeof(buf),
                    ",\"count\":%llu,\"p50_us\":%.3f,\"p99_us\":%.3f",
                    static_cast<unsigned long long>(p.hist.Count()),
                    p.hist.PercentileMicros(50.0),
                    p.hist.PercentileMicros(99.0));
      out += buf;
    } else {
      out += ",\"value\":";
      out += std::to_string(p.value);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace platod2gl::obs
