#include "obs/profile.h"

#include <array>

namespace platod2gl::obs {

namespace {

std::array<LatencyHistogram,
           static_cast<std::size_t>(ProfileSite::kNumSites)>&
SiteHistograms() {
  static std::array<LatencyHistogram,
                    static_cast<std::size_t>(ProfileSite::kNumSites)>
      hists;
  return hists;
}

}  // namespace

const char* ProfileSiteName(ProfileSite site) {
  switch (site) {
    case ProfileSite::kSamtreeDescent:
      return "samtree_descent";
    case ProfileSite::kBatchApply:
      return "batch_apply";
    case ProfileSite::kWalShip:
      return "wal_ship";
    case ProfileSite::kNumSites:
      break;
  }
  return "unknown";
}

LatencyHistogram& ProfileHistogram(ProfileSite site) {
  return SiteHistograms()[static_cast<std::size_t>(site)];
}

RegistrySnapshot ProfileSnapshot() {
  RegistrySnapshot snap;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(ProfileSite::kNumSites); ++i) {
    MetricPoint p;
    p.name = std::string("pd2gl_profile_") +
             ProfileSiteName(static_cast<ProfileSite>(i)) + "_nanos";
    p.kind = MetricKind::kHistogram;
    p.hist = SiteHistograms()[i].Snapshot();
    snap.points.push_back(std::move(p));
  }
  return snap;
}

}  // namespace platod2gl::obs
