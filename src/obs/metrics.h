// MetricRegistry: one canonical, exportable home for every number in the
// system (DESIGN.md §15, docs/observability.md).
//
// Before this layer each subsystem grew its own ad-hoc stats struct
// (ClusterStats, ReplicationStats, IngestorStats, the serve tallies...)
// with a hand-rolled load loop per struct and no common export path. The
// registry replaces those with named, labelled series:
//
//  * Counter — a monotone relaxed atomic tally, the histogram.h recording
//    discipline generalised: Add() is one relaxed fetch_add from any
//    thread, Value() a relaxed load. Lock-cheap by construction.
//  * Gauge — a point-in-time value (queue depth, watermark); Set/Value.
//  * Histogram — the existing LatencyHistogram, registered so its
//    Snapshot/DeltaSince windows ride the same export path.
//
// Series are registered ONCE (startup / subsystem construction; the only
// mutex in this file guards the series table, never the hot increments)
// and snapshotted race-free: counters are monotone, so a point-in-time
// copy is a valid basis for deltas exactly like HistogramSnapshot.
// Registration is idempotent — the same (name, labels, kind) returns the
// same instance — and storage is deque-backed so handed-out pointers stay
// stable for the registry's lifetime.
//
// The registry is an instance, not a global: tests and tools construct
// many clusters/servers side by side, and determinism demands their
// numbers never bleed into each other. Subsystems own (or borrow) a
// registry and export through it.
//
// StatsBinding<S> is the dedup path for the legacy snapshot structs: a
// subsystem maps each registered counter onto a member of its public
// stats struct once, and stats() becomes a single shared fill loop — the
// per-struct hand-rolled load loops are gone.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace platod2gl::obs {

/// Monotone tally. The ONLY sanctioned way to grow a statistic outside
/// src/obs/ (tools/pd2gl_lint.py `atomic-tally` rejects new raw atomic
/// tally members elsewhere).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t delta = 1) {
    // order: stat tally, read for reporting only
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    // order: stat tally, read for reporting only
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (depths, watermarks). Not monotone; snapshots
/// report the latest Set.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::uint64_t v) {
    // order: advisory point-in-time value, read for reporting only
    v_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    // order: advisory point-in-time value, read for reporting only
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// One label dimension. Cardinality rules in docs/observability.md: label
/// values must come from a SMALL, BOUNDED set (shard index, tenant id,
/// policy name) — never request ids or vertex ids.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) = default;
};
using Labels = std::vector<Label>;

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One series in a snapshot: plain values, safe to copy and export.
struct MetricPoint {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;      ///< counters and gauges
  HistogramSnapshot hist;       ///< histograms only
};

/// A race-free point-in-time copy of every registered series, sorted by
/// (name, labels) so exports and test expectations are deterministic.
struct RegistrySnapshot {
  std::vector<MetricPoint> points;

  const MetricPoint* Find(const std::string& name,
                          const Labels& labels = {}) const;
  /// Counter/gauge value; 0 when the series is absent.
  std::uint64_t Value(const std::string& name, const Labels& labels = {}) const;
  /// Histogram buckets; empty snapshot when the series is absent.
  HistogramSnapshot Hist(const std::string& name,
                         const Labels& labels = {}) const;
  /// Sum of `name` across every label combination (per-shard totals).
  std::uint64_t SumAcrossLabels(const std::string& name) const;

  /// Fold another snapshot in: matching (name, labels) series sum their
  /// counters and merge their histogram buckets (gauges take the other
  /// side's value); unmatched series are appended. Used to export several
  /// subsystem registries as one page.
  void MergeFrom(const RegistrySnapshot& other);
};

/// Maps registered counters onto the members of a legacy stats struct S,
/// so the subsystem's stats() is one shared fill loop instead of a
/// hand-rolled per-struct copy.
template <typename S>
class StatsBinding {
 public:
  void Map(const Counter* c, std::uint64_t S::*field) {
    fields_.push_back(Entry{c, field});
  }
  S Read() const {
    S s{};
    for (const Entry& e : fields_) s.*(e.field) = e.counter->Value();
    return s;
  }

 private:
  struct Entry {
    const Counter* counter;
    std::uint64_t S::*field;
  };
  std::vector<Entry> fields_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (or find) an owned series. Pointers stay valid for the
  /// registry's lifetime. Re-registering the same (name, labels) with a
  /// different kind is a programming error.
  Counter* RegisterCounter(std::string name, Labels labels = {});
  Gauge* RegisterGauge(std::string name, Labels labels = {});
  LatencyHistogram* RegisterHistogram(std::string name, Labels labels = {});

  /// Register a counter AND map it onto a stats-struct member in one
  /// step — the migration one-liner for legacy stats() structs.
  template <typename S>
  Counter* BindCounter(StatsBinding<S>* binding, std::uint64_t S::*field,
                       std::string name, Labels labels = {}) {
    Counter* c = RegisterCounter(std::move(name), std::move(labels));
    binding->Map(c, field);
    return c;
  }

  /// Borrowed series: the metric object lives inside a subsystem (e.g.
  /// SampleCache's tallies) and must outlive the registry entry.
  void RegisterExternalCounter(std::string name, Labels labels,
                               const Counter* counter);
  void RegisterExternalHistogram(std::string name, Labels labels,
                                 const LatencyHistogram* hist);

  RegistrySnapshot Snapshot() const;

  std::size_t NumSeries() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* hist = nullptr;
  };

  Series* FindLocked(const std::string& name, const Labels& labels)
      REQUIRES(mu_);

  mutable Mutex mu_;
  // Deques: stable addresses for handed-out metric pointers.
  std::deque<Counter> counters_ GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ GUARDED_BY(mu_);
  std::deque<LatencyHistogram> hists_ GUARDED_BY(mu_);
  std::vector<Series> series_ GUARDED_BY(mu_);
};

/// Canonical label sort (by key, then value) applied at registration so
/// lookups and exports are order-independent.
void NormalizeLabels(Labels* labels);

}  // namespace platod2gl::obs
