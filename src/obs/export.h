// Exporters: Prometheus text format and JSON for RegistrySnapshots.
//
// Both formats render a *snapshot*, never the live registry, so an export
// is internally consistent in the Snapshot/DeltaSince sense and costs the
// hot paths nothing. Histograms render as cumulative power-of-two buckets
// (le="<upper bound in seconds>") plus _count; there is no _sum series —
// the log-bucketed histogram does not track one, and percentiles from
// buckets are what the SLO machinery actually consumes.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace platod2gl::obs {

/// Prometheus text exposition format (one # TYPE line per family, sorted
/// series, labels escaped).
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// JSON array of points: {"name":..., "labels":{...}, "kind":...,
/// "value":N} for counters/gauges; histograms carry "count" and the
/// percentile summary the benches consume.
std::string ToJson(const RegistrySnapshot& snapshot);

}  // namespace platod2gl::obs
