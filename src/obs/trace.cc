#include "obs/trace.h"

#include <utility>

namespace platod2gl::obs {

std::uint64_t DeriveTraceId(std::uint32_t tenant, std::uint64_t request_id,
                            std::uint64_t rng_seed) {
  // SplitMix64 finalizer over the mixed identity; the same constants the
  // rest of the codebase uses for seed derivation (common/random.h).
  std::uint64_t z = rng_seed;
  z ^= request_id + 0x9E3779B97F4A7C15ULL;
  z ^= (static_cast<std::uint64_t>(tenant) + 1) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return z == 0 ? 0x9E3779B97F4A7C15ULL : z;
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kServeRequest:
      return "serve.request";
    case SpanKind::kPlanTraverse:
      return "plan.traverse";
    case SpanKind::kPlanSample:
      return "plan.sample";
    case SpanKind::kPlanNegative:
      return "plan.negative";
    case SpanKind::kPlanGather:
      return "plan.gather";
    case SpanKind::kRpcShard:
      return "rpc.shard";
  }
  return "unknown";
}

TraceBuilder::TraceBuilder(std::uint64_t trace_id, std::size_t max_spans)
    : trace_id_(trace_id), max_spans_(max_spans) {}

std::uint32_t TraceBuilder::StartSpan(SpanKind kind, std::uint32_t parent,
                                      std::uint64_t start_us,
                                      std::uint32_t step, std::uint32_t shard,
                                      std::uint64_t items) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kDroppedSpan;
  }
  Span s;
  s.id = static_cast<std::uint32_t>(spans_.size());
  s.parent = parent;
  s.kind = kind;
  s.step = step;
  s.shard = shard;
  s.items = items;
  s.start_us = start_us;
  spans_.push_back(s);
  return s.id;
}

void TraceBuilder::EndSpan(std::uint32_t id, std::uint64_t end_us) {
  if (id >= spans_.size()) return;  // dropped span: nothing to close
  Span& s = spans_[id];
  s.end_us = end_us < s.start_us ? s.start_us : end_us;
  s.closed = true;
}

void TraceBuilder::CloseAll(std::uint64_t end_us) {
  for (Span& s : spans_) {
    if (!s.closed) {
      s.end_us = end_us < s.start_us ? s.start_us : end_us;
      s.closed = true;
    }
  }
}

bool TraceBuilder::AllClosed() const {
  for (const Span& s : spans_) {
    if (!s.closed) return false;
  }
  return true;
}

Trace TraceBuilder::Finish(std::uint32_t tenant, std::uint64_t request_id,
                           std::uint8_t status) && {
  Trace t;
  t.trace_id = trace_id_;
  t.tenant = tenant;
  t.request_id = request_id;
  t.status = status;
  t.spans = std::move(spans_);
  return t;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceSink::Publish(Trace trace) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_ % capacity_] = std::move(trace);
  }
  ++next_;
  ++published_;
}

std::vector<Trace> TraceSink::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<Trace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest-first: the slot the cursor points at is the next overwrite
    // victim, i.e. the oldest retained trace.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::optional<Trace> TraceSink::Find(std::uint64_t trace_id) const {
  MutexLock lock(mu_);
  for (const Trace& t : ring_) {
    if (t.trace_id == trace_id) return t;
  }
  return std::nullopt;
}

std::uint64_t TraceSink::published() const {
  MutexLock lock(mu_);
  return published_;
}

std::uint64_t TraceSink::evicted() const {
  MutexLock lock(mu_);
  return published_ - ring_.size();
}

}  // namespace platod2gl::obs
