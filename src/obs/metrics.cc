#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace platod2gl::obs {

namespace {

bool LabelLess(const Label& a, const Label& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

bool PointLess(const MetricPoint& a, const MetricPoint& b) {
  if (a.name != b.name) return a.name < b.name;
  return std::lexicographical_compare(a.labels.begin(), a.labels.end(),
                                      b.labels.begin(), b.labels.end(),
                                      LabelLess);
}

}  // namespace

void NormalizeLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end(), LabelLess);
}

const MetricPoint* RegistrySnapshot::Find(const std::string& name,
                                          const Labels& labels) const {
  Labels key = labels;
  NormalizeLabels(&key);
  for (const MetricPoint& p : points) {
    if (p.name == name && p.labels == key) return &p;
  }
  return nullptr;
}

std::uint64_t RegistrySnapshot::Value(const std::string& name,
                                      const Labels& labels) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? 0 : p->value;
}

HistogramSnapshot RegistrySnapshot::Hist(const std::string& name,
                                         const Labels& labels) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? HistogramSnapshot{} : p->hist;
}

std::uint64_t RegistrySnapshot::SumAcrossLabels(const std::string& name) const {
  std::uint64_t sum = 0;
  for (const MetricPoint& p : points) {
    if (p.name == name) sum += p.value;
  }
  return sum;
}

void RegistrySnapshot::MergeFrom(const RegistrySnapshot& other) {
  for (const MetricPoint& theirs : other.points) {
    MetricPoint* mine = nullptr;
    for (MetricPoint& p : points) {
      if (p.name == theirs.name && p.labels == theirs.labels &&
          p.kind == theirs.kind) {
        mine = &p;
        break;
      }
    }
    if (mine == nullptr) {
      points.push_back(theirs);
      continue;
    }
    switch (theirs.kind) {
      case MetricKind::kCounter:
        mine->value += theirs.value;
        break;
      case MetricKind::kGauge:
        mine->value = theirs.value;
        break;
      case MetricKind::kHistogram:
        for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
          mine->hist.buckets[i] += theirs.hist.buckets[i];
        }
        break;
    }
  }
  std::sort(points.begin(), points.end(), PointLess);
}

MetricRegistry::Series* MetricRegistry::FindLocked(const std::string& name,
                                                   const Labels& labels) {
  for (Series& s : series_) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

Counter* MetricRegistry::RegisterCounter(std::string name, Labels labels) {
  NormalizeLabels(&labels);
  MutexLock lock(mu_);
  if (Series* s = FindLocked(name, labels)) {
    assert(s->kind == MetricKind::kCounter && s->counter != nullptr);
    return const_cast<Counter*>(s->counter);
  }
  Counter* c = &counters_.emplace_back();
  series_.push_back(
      Series{std::move(name), std::move(labels), MetricKind::kCounter, c,
             nullptr, nullptr});
  return c;
}

Gauge* MetricRegistry::RegisterGauge(std::string name, Labels labels) {
  NormalizeLabels(&labels);
  MutexLock lock(mu_);
  if (Series* s = FindLocked(name, labels)) {
    assert(s->kind == MetricKind::kGauge && s->gauge != nullptr);
    return const_cast<Gauge*>(s->gauge);
  }
  Gauge* g = &gauges_.emplace_back();
  series_.push_back(Series{std::move(name), std::move(labels),
                           MetricKind::kGauge, nullptr, g, nullptr});
  return g;
}

LatencyHistogram* MetricRegistry::RegisterHistogram(std::string name,
                                                    Labels labels) {
  NormalizeLabels(&labels);
  MutexLock lock(mu_);
  if (Series* s = FindLocked(name, labels)) {
    assert(s->kind == MetricKind::kHistogram && s->hist != nullptr);
    return const_cast<LatencyHistogram*>(s->hist);
  }
  LatencyHistogram* h = &hists_.emplace_back();
  series_.push_back(Series{std::move(name), std::move(labels),
                           MetricKind::kHistogram, nullptr, nullptr, h});
  return h;
}

void MetricRegistry::RegisterExternalCounter(std::string name, Labels labels,
                                             const Counter* counter) {
  NormalizeLabels(&labels);
  MutexLock lock(mu_);
  if (Series* s = FindLocked(name, labels)) {
    assert(s->kind == MetricKind::kCounter);
    s->counter = counter;
    return;
  }
  series_.push_back(Series{std::move(name), std::move(labels),
                           MetricKind::kCounter, counter, nullptr, nullptr});
}

void MetricRegistry::RegisterExternalHistogram(std::string name, Labels labels,
                                               const LatencyHistogram* hist) {
  NormalizeLabels(&labels);
  MutexLock lock(mu_);
  if (Series* s = FindLocked(name, labels)) {
    assert(s->kind == MetricKind::kHistogram);
    s->hist = hist;
    return;
  }
  series_.push_back(Series{std::move(name), std::move(labels),
                           MetricKind::kHistogram, nullptr, nullptr, hist});
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  MutexLock lock(mu_);
  snap.points.reserve(series_.size());
  for (const Series& s : series_) {
    MetricPoint p;
    p.name = s.name;
    p.labels = s.labels;
    p.kind = s.kind;
    switch (s.kind) {
      case MetricKind::kCounter:
        p.value = s.counter->Value();
        break;
      case MetricKind::kGauge:
        p.value = s.gauge->Value();
        break;
      case MetricKind::kHistogram:
        p.hist = s.hist->Snapshot();
        break;
    }
    snap.points.push_back(std::move(p));
  }
  std::sort(snap.points.begin(), snap.points.end(), PointLess);
  return snap;
}

std::size_t MetricRegistry::NumSeries() const {
  MutexLock lock(mu_);
  return series_.size();
}

}  // namespace platod2gl::obs
