// Request tracing in virtual time (DESIGN.md §15, docs/observability.md).
//
// Every served request can carry a trace: a bounded tree of spans whose
// timestamps live on the SAME virtual clock the server's latency
// accounting uses, so a trace is not a statistical sample of one lucky
// wall-clock run — it is the deterministic execution record of that
// request. Two properties fall out of determinism and are pinned in
// tests/test_trace.cc:
//
//  * trace ids derive purely from the request identity
//    (DeriveTraceId(tenant, request_id, rng_seed)) — no global sequence,
//    no wall clock — so solo and batched executions of the same request
//    carry the same id;
//  * the span TREE (structure, kinds, per-step shard fan-out) of a
//    batched execution is identical to the solo execution of the same
//    request, because span emission follows the plan and the
//    partitioner's shard routing, both of which batching preserves.
//
// Layering: obs knows nothing about serve/dist types. The serving layer
// owns where spans start/stop; this file owns the bounded builder, the
// completed-trace ring (TraceSink), and the wire-portable TraceContext
// (encoded by dist/wire.cc as part of the v2 serving messages).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace platod2gl::obs {

/// The propagated trace identity: rides the wire (dist/wire.h tag 'T'
/// inside v2 QueryRequest) so a downstream tier attaches its spans under
/// the caller's. flags bit 0 = sampled (spans are recorded); an all-zero
/// context means "derive and sample at the server door".
struct TraceContext {
  static constexpr std::uint8_t kSampled = 0x01;

  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;
  std::uint8_t flags = 0;

  bool sampled() const { return (flags & kSampled) != 0; }
  bool unset() const { return trace_id == 0 && parent_span == 0 && flags == 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Deterministic trace id: a SplitMix64 finalizer over the request
/// identity. Pure — independent of batching, admission order, retries,
/// and the wall clock. Never returns 0 (0 means "unset").
std::uint64_t DeriveTraceId(std::uint32_t tenant, std::uint64_t request_id,
                            std::uint64_t rng_seed);

enum class SpanKind : std::uint8_t {
  kServeRequest = 0,  ///< root: admission -> retirement
  kPlanTraverse = 1,  ///< one plan step's traverse round
  kPlanSample = 2,    ///< one plan step's sample round
  kPlanNegative = 3,  ///< client-side negative sampling (no RPC)
  kPlanGather = 4,    ///< one plan step's gather round
  kRpcShard = 5,      ///< one shard's share of a step round
};

const char* SpanKindName(SpanKind kind);

inline constexpr std::uint32_t kNoParentSpan = 0xFFFFFFFFu;

/// One span. Timestamps are virtual microseconds; `end_us` is only
/// meaningful once `closed`.
struct Span {
  std::uint32_t id = 0;
  std::uint32_t parent = kNoParentSpan;
  SpanKind kind = SpanKind::kServeRequest;
  std::uint32_t step = 0;   ///< plan step index (plan/rpc spans)
  std::uint32_t shard = 0;  ///< rpc spans
  std::uint64_t items = 0;  ///< seeds/rows this span covered
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool closed = false;

  friend bool operator==(const Span&, const Span&) = default;
};

/// A completed trace as published to the sink.
struct Trace {
  std::uint64_t trace_id = 0;
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  ///< serve::RequestStatus, untyped to keep layering
  std::vector<Span> spans;  ///< creation order; spans[0] is the root

  /// Root latency (0 if the root never closed — a builder bug).
  std::uint64_t DurationUs() const {
    return spans.empty() || !spans[0].closed
               ? 0
               : spans[0].end_us - spans[0].start_us;
  }
};

/// Per-request span builder. Bounded: past `max_spans` StartSpan returns
/// kDroppedSpan and only counts, so a hostile plan cannot grow the buffer.
/// Move-only, owned by the in-flight request (serve::PendingRequest); the
/// server finishes it into the TraceSink at retirement.
class TraceBuilder {
 public:
  static constexpr std::uint32_t kDroppedSpan = 0xFFFFFFFEu;
  static constexpr std::size_t kDefaultMaxSpans = 96;

  explicit TraceBuilder(std::uint64_t trace_id,
                        std::size_t max_spans = kDefaultMaxSpans);

  TraceBuilder(TraceBuilder&&) = default;
  TraceBuilder& operator=(TraceBuilder&&) = default;
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  /// Open a span; ids are assigned sequentially in creation order (the
  /// determinism anchor for batched-vs-solo tree comparison).
  std::uint32_t StartSpan(SpanKind kind, std::uint32_t parent,
                          std::uint64_t start_us, std::uint32_t step = 0,
                          std::uint32_t shard = 0, std::uint64_t items = 0);
  void EndSpan(std::uint32_t id, std::uint64_t end_us);
  /// Close every still-open span at `end_us` — the shed/teardown path, so
  /// an evicted request never leaks open spans.
  void CloseAll(std::uint64_t end_us);

  bool AllClosed() const;
  std::size_t NumSpans() const { return spans_.size(); }
  std::uint64_t dropped_spans() const { return dropped_; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Consume the builder into a publishable trace.
  Trace Finish(std::uint32_t tenant, std::uint64_t request_id,
               std::uint8_t status) &&;

 private:
  std::uint64_t trace_id_ = 0;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
};

/// Bounded ring of completed traces (newest win). One sink per
/// GraphServer; memory is capacity x max_spans regardless of load.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 128);

  void Publish(Trace trace);

  /// Every retained trace, oldest first.
  std::vector<Trace> Snapshot() const;
  std::optional<Trace> Find(std::uint64_t trace_id) const;

  std::uint64_t published() const;
  std::uint64_t evicted() const;

 private:
  std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<Trace> ring_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;  ///< ring insertion cursor
  std::uint64_t published_ GUARDED_BY(mu_) = 0;
};

}  // namespace platod2gl::obs
