// SamtreeStore: PlatoD2GL's own topology layer behind the NeighborStore
// interface, so the comparative benches drive it with the same loop as the
// baselines. Construct with compress_ids=false to get the paper's
// "w/o CP" ablation system.
#pragma once

#include <string>
#include <vector>

#include "baselines/neighbor_store.h"
#include "storage/topology_store.h"

namespace platod2gl {

class SamtreeStore : public NeighborStore {
 public:
  explicit SamtreeStore(SamtreeConfig config = {}, std::string name = "")
      : store_(config),
        name_(!name.empty() ? std::move(name)
                            : (config.compress_ids ? "PlatoD2GL"
                                                   : "PlatoD2GL w/o CP")) {}

  std::string Name() const override { return name_; }

  void AddEdge(VertexId src, VertexId dst, Weight w) override {
    store_.AddEdge(src, dst, w);
  }
  void AddEdgeFast(VertexId src, VertexId dst, Weight w) override {
    store_.AddEdgeUnchecked(src, dst, w);
  }
  bool UpdateEdge(VertexId src, VertexId dst, Weight w) override {
    return store_.UpdateEdge(src, dst, w);
  }
  bool RemoveEdge(VertexId src, VertexId dst) override {
    return store_.RemoveEdge(src, dst);
  }
  std::size_t Degree(VertexId src) const override {
    return store_.Degree(src);
  }
  std::size_t NumEdges() const override { return store_.NumEdges(); }

  bool SampleNeighbors(VertexId src, std::size_t k, Xoshiro256& rng,
                       std::vector<VertexId>* out) override {
    return store_.SampleNeighbors(src, k, /*weighted=*/true, rng, out);
  }

  MemoryBreakdown Memory() const override { return store_.Memory(); }

  TopologyStore& topology() { return store_; }
  const TopologyStore& topology() const { return store_; }

 private:
  TopologyStore store_;
  std::string name_;
};

}  // namespace platod2gl
