// NeighborStore: the common interface the benchmark harness drives.
//
// The paper compares three topology-storage designs under identical
// workloads — PlatoD2GL (samtrees), PlatoGL (block-based key-value store)
// and AliGraph (hash-by-source adjacency with alias tables). Each is
// implemented behind this interface so every bench (Fig. 8/9/10, Table IV)
// runs the exact same driver loop against all systems.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/types.h"

namespace platod2gl {

class NeighborStore {
 public:
  virtual ~NeighborStore() = default;

  virtual std::string Name() const = 0;

  /// Insert (src, dst, w); refresh the weight if the edge exists.
  virtual void AddEdge(VertexId src, VertexId dst, Weight w) = 0;

  /// Bulk-load insert: the caller guarantees (src, dst) is not already
  /// present, letting stores whose duplicate check is O(degree) skip it —
  /// this is how PlatoGL's and AliGraph's bulk loaders behave. Defaults
  /// to AddEdge for stores (like the samtree) whose check is inherent and
  /// cheap.
  virtual void AddEdgeFast(VertexId src, VertexId dst, Weight w) {
    AddEdge(src, dst, w);
  }

  /// In-place weight update; false if the edge is absent.
  virtual bool UpdateEdge(VertexId src, VertexId dst, Weight w) = 0;

  /// Delete an edge; false if absent.
  virtual bool RemoveEdge(VertexId src, VertexId dst) = 0;

  /// Apply one dynamic update by kind.
  void Apply(const EdgeUpdate& u) {
    switch (u.kind) {
      case UpdateKind::kInsert:
        AddEdge(u.edge.src, u.edge.dst, u.edge.weight);
        break;
      case UpdateKind::kInPlaceUpdate:
        UpdateEdge(u.edge.src, u.edge.dst, u.edge.weight);
        break;
      case UpdateKind::kDelete:
        RemoveEdge(u.edge.src, u.edge.dst);
        break;
    }
  }

  /// Called after each ingest batch of a *dynamic* build: the store must
  /// return to a sample-ready state before the next queries arrive.
  /// No-op for stores whose indexes are maintained online (samtree,
  /// PlatoGL); AliGraph rebuilds the alias tables of every vertex the
  /// batch touched — the recurring cost that makes eager-index systems
  /// slow on dynamic graphs (paper Section I / Fig. 8).
  virtual void FinishBatch() {}

  virtual std::size_t Degree(VertexId src) const = 0;
  virtual std::size_t NumEdges() const = 0;

  /// Draw k weighted samples with replacement from src's out-neighbours;
  /// false when src has none.
  virtual bool SampleNeighbors(VertexId src, std::size_t k, Xoshiro256& rng,
                               std::vector<VertexId>* out) = 0;

  /// Table IV accounting.
  virtual MemoryBreakdown Memory() const = 0;
  std::size_t MemoryUsage() const { return Memory().Total(); }
};

}  // namespace platod2gl
