#include "baselines/platogl_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace platod2gl {

std::string PlatoGLStore::MakeBlockKey(VertexId src, std::uint32_t block_id) {
  // src(8) | block_id(4) | vertex_type(2) | reserved metadata(10).
  std::string key(24, '\0');
  std::memcpy(key.data(), &src, sizeof(src));
  std::memcpy(key.data() + 8, &block_id, sizeof(block_id));
  key[12] = 'B';  // vertex-type tag placeholder
  return key;
}

std::string PlatoGLStore::MakeMetaKey(VertexId src) {
  std::string key(9, '\0');
  key[0] = 'M';
  std::memcpy(key.data() + 1, &src, sizeof(src));
  return key;
}

PlatoGLStore::PlatoGLStore() : PlatoGLStore(Config()) {}

PlatoGLStore::PlatoGLStore(Config config) : config_(config) {
  config_.block_capacity = std::max<std::size_t>(2, config_.block_capacity);
}

PlatoGLStore::Block* PlatoGLStore::FindBlock(VertexId src,
                                             std::uint32_t block_id) {
  auto it = blocks_.find(MakeBlockKey(src, block_id));
  return it == blocks_.end() ? nullptr : &it->second;
}

const PlatoGLStore::Block* PlatoGLStore::FindBlock(
    VertexId src, std::uint32_t block_id) const {
  return const_cast<PlatoGLStore*>(this)->FindBlock(src, block_id);
}

PlatoGLStore::SourceMeta* PlatoGLStore::FindMeta(VertexId src) {
  auto it = meta_.find(MakeMetaKey(src));
  return it == meta_.end() ? nullptr : &it->second;
}

const PlatoGLStore::SourceMeta* PlatoGLStore::FindMeta(VertexId src) const {
  return const_cast<PlatoGLStore*>(this)->FindMeta(src);
}

bool PlatoGLStore::Locate(const SourceMeta& meta, VertexId src, VertexId dst,
                          std::uint32_t* block_id, std::size_t* pos) const {
  for (std::uint32_t b = 0; b < meta.num_blocks; ++b) {
    const Block* block = FindBlock(src, b);
    assert(block != nullptr);
    for (std::size_t i = 0; i < block->ids.size(); ++i) {
      if (block->ids[i] == dst) {
        *block_id = b;
        *pos = i;
        return true;
      }
    }
  }
  return false;
}

void PlatoGLStore::AppendEdge(SourceMeta& meta, VertexId src, VertexId dst,
                              Weight w) {
  // Append to the last block, opening a new one when it is full.
  Block* last =
      meta.num_blocks == 0 ? nullptr : FindBlock(src, meta.num_blocks - 1);
  if (last == nullptr || last->ids.size() >= config_.block_capacity) {
    const std::uint32_t new_id = meta.num_blocks++;
    last = &blocks_[MakeBlockKey(src, new_id)];
    meta.block_cstable.Append(0.0);
  }
  // Block stores allocate storage in fixed sub-block chunks rather than
  // growing byte-exactly: a partially-filled chunk still occupies its
  // full footprint. This is the block-granularity memory overhead Table
  // IV charges PlatoGL with on low-degree-heavy graphs.
  if (last->ids.size() == last->ids.capacity()) {
    const std::size_t chunk = std::max<std::size_t>(
        kAllocChunk, config_.block_capacity / 4);
    const std::size_t new_cap =
        std::min(config_.block_capacity, last->ids.size() + chunk);
    last->ids.reserve(new_cap);
    last->cstable.Reserve(new_cap);
  }
  last->ids.push_back(dst);
  last->cstable.Append(w);  // O(1): new entries append at the tail
  meta.block_cstable.AddDelta(meta.num_blocks - 1, w);
  ++meta.degree;
  ++num_edges_;
}

void PlatoGLStore::AddEdge(VertexId src, VertexId dst, Weight w) {
  SourceMeta& meta = meta_[MakeMetaKey(src)];

  // Refresh the weight when the edge already exists.
  std::uint32_t bid;
  std::size_t pos;
  if (meta.num_blocks > 0 && Locate(meta, src, dst, &bid, &pos)) {
    Block* block = FindBlock(src, bid);
    const Weight old = block->cstable.WeightAt(pos);
    block->cstable.UpdateWeight(pos, w);               // O(B) suffix rewrite
    meta.block_cstable.AddDelta(bid, w - old);         // O(#blocks)
    return;
  }
  AppendEdge(meta, src, dst, w);
}

void PlatoGLStore::AddEdgeFast(VertexId src, VertexId dst, Weight w) {
  AppendEdge(meta_[MakeMetaKey(src)], src, dst, w);
}

bool PlatoGLStore::UpdateEdge(VertexId src, VertexId dst, Weight w) {
  SourceMeta* meta = FindMeta(src);
  if (!meta) return false;
  std::uint32_t bid;
  std::size_t pos;
  if (!Locate(*meta, src, dst, &bid, &pos)) return false;
  Block* block = FindBlock(src, bid);
  const Weight old = block->cstable.WeightAt(pos);
  block->cstable.UpdateWeight(pos, w);  // O(B)
  meta->block_cstable.AddDelta(bid, w - old);
  return true;
}

bool PlatoGLStore::RemoveEdge(VertexId src, VertexId dst) {
  SourceMeta* meta = FindMeta(src);
  if (!meta) return false;
  std::uint32_t bid;
  std::size_t pos;
  if (!Locate(*meta, src, dst, &bid, &pos)) return false;

  Block* block = FindBlock(src, bid);
  const Weight old = block->cstable.WeightAt(pos);
  block->ids.erase(block->ids.begin() + static_cast<std::ptrdiff_t>(pos));
  block->cstable.Remove(pos);  // O(B) suffix rewrite
  meta->block_cstable.AddDelta(bid, -old);
  --meta->degree;
  --num_edges_;

  if (block->ids.empty() && bid == meta->num_blocks - 1) {
    // Drop a drained tail block (middle blocks stay as tombstoned slots,
    // as a log-structured KV store keeps them until compaction).
    blocks_.erase(MakeBlockKey(src, bid));
    meta->block_cstable.Remove(bid);
    --meta->num_blocks;
  }
  if (meta->degree == 0 && meta->num_blocks == 0) {
    meta_.erase(MakeMetaKey(src));
  }
  return true;
}

std::size_t PlatoGLStore::Degree(VertexId src) const {
  const SourceMeta* meta = FindMeta(src);
  return meta ? meta->degree : 0;
}

bool PlatoGLStore::SampleNeighbors(VertexId src, std::size_t k,
                                   Xoshiro256& rng,
                                   std::vector<VertexId>* out) {
  SourceMeta* meta = FindMeta(src);
  if (!meta || meta->degree == 0) return false;
  out->reserve(out->size() + k);
  for (std::size_t i = 0; i < k; ++i) {
    // Two-level ITS: block via the source CSTable, neighbour via the
    // block CSTable.
    const std::size_t bid = meta->block_cstable.Sample(rng);
    const Block* block = FindBlock(src, static_cast<std::uint32_t>(bid));
    if (block->ids.empty()) {  // tombstoned middle block: retry
      --i;
      continue;
    }
    out->push_back(block->ids[block->cstable.Sample(rng)]);
  }
  return true;
}

MemoryBreakdown PlatoGLStore::Memory() const {
  MemoryBreakdown mem;
  // Modelled std::unordered_map node overhead: next pointer + cached hash.
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);

  for (const auto& [key, block] : blocks_) {
    mem.topology_bytes += VectorBytes(block.ids);
    mem.index_bytes += block.cstable.MemoryUsage();
    mem.key_bytes += sizeof(std::string) + StringBytes(key) + kNodeOverhead;
  }
  mem.key_bytes += blocks_.bucket_count() * sizeof(void*);

  for (const auto& [key, meta] : meta_) {
    mem.index_bytes += meta.block_cstable.MemoryUsage();
    mem.key_bytes += sizeof(std::string) + StringBytes(key) +
                     sizeof(SourceMeta) + kNodeOverhead;
  }
  mem.key_bytes += meta_.bucket_count() * sizeof(void*);
  return mem;
}

}  // namespace platod2gl
