// AliGraphStore: re-implementation of AliGraph's hash-by-source topology
// storage (the paper's second baseline, run in its default
// "hash-by-source" partition mode so it can accept dynamic inserts).
//
// Each source vertex owns a flat adjacency list (IDs + weights) plus an
// alias table for O(1) weighted sampling. The alias table is what the
// paper calls "duplicating the graph topology for supporting fast
// sampling": two additional n-sized arrays per vertex, rebuilt from
// scratch whenever the neighbourhood changes — hence expensive memory
// (Table IV: o.o.m. on WeChat) and expensive dynamic updates (Fig. 8/9).
// Rebuilds are deferred until the next sample so that a bulk build costs
// O(E) amortised rather than O(sum deg^2), which is how AliGraph's bulk
// loader behaves in practice.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/neighbor_store.h"
#include "index/alias_table.h"

namespace platod2gl {

class AliGraphStore : public NeighborStore {
 public:
  AliGraphStore() = default;

  std::string Name() const override { return "AliGraph"; }

  void AddEdge(VertexId src, VertexId dst, Weight w) override;
  void AddEdgeFast(VertexId src, VertexId dst, Weight w) override;
  bool UpdateEdge(VertexId src, VertexId dst, Weight w) override;
  bool RemoveEdge(VertexId src, VertexId dst) override;

  std::size_t Degree(VertexId src) const override;
  std::size_t NumEdges() const override { return num_edges_; }

  bool SampleNeighbors(VertexId src, std::size_t k, Xoshiro256& rng,
                       std::vector<VertexId>* out) override;

  void FinishBatch() override { FinalizeSamplingIndexes(); }

  MemoryBreakdown Memory() const override;

  /// Force alias tables to be (re)built for every dirty vertex — called by
  /// benches after the build phase so Table IV measures steady-state
  /// (sampling-ready) memory.
  void FinalizeSamplingIndexes();

 private:
  struct AdjList {
    std::vector<VertexId> ids;
    std::vector<Weight> weights;
    AliasTable alias;
    bool dirty = true;  // alias out of date w.r.t. ids/weights
  };

  static void Rebuild(AdjList& adj) {
    adj.alias = AliasTable(adj.weights);
    adj.dirty = false;
  }

  std::unordered_map<VertexId, AdjList> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace platod2gl
