// PlatoGLStore: re-implementation of the PlatoGL (CIKM'22) block-based
// key-value topology store — the paper's state-of-the-art baseline.
//
// Edges of a source vertex are sharded into fixed-capacity *blocks*; each
// block lives under its own serialized key in a key-value store. The key
// carries "various information except the unique identifier" (paper
// Section I): source ID, block sequence number, vertex type and reserved
// metadata — 24 serialized bytes per block key, hashed and compared as an
// opaque string the way a generic KV store does. That per-block key
// construction, hashing and indexing is exactly the memory and CPU cost
// Table IV / Fig. 8 charge PlatoGL with, and what the samtree's
// non-key-value layout removes.
//
// Sampling is PlatoGL's two-level ITS: a per-source CSTable over block
// weight sums picks a block, a per-block CSTable picks the neighbour.
// Mutating a weight therefore rewrites the block CSTable suffix (O(B))
// and the source-level CSTable suffix (O(#blocks)) — the O(n_L)
// maintenance cost FSTable eliminates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/neighbor_store.h"
#include "index/cstable.h"

namespace platod2gl {

class PlatoGLStore : public NeighborStore {
 public:
  struct Config {
    std::size_t block_capacity = 256;  ///< neighbours per block
  };

  /// Sub-block allocation granularity (entries): blocks grow in fixed
  /// chunks, never byte-exactly.
  static constexpr std::size_t kAllocChunk = 64;

  PlatoGLStore();
  explicit PlatoGLStore(Config config);

  std::string Name() const override { return "PlatoGL"; }

  void AddEdge(VertexId src, VertexId dst, Weight w) override;
  void AddEdgeFast(VertexId src, VertexId dst, Weight w) override;
  bool UpdateEdge(VertexId src, VertexId dst, Weight w) override;
  bool RemoveEdge(VertexId src, VertexId dst) override;

  std::size_t Degree(VertexId src) const override;
  std::size_t NumEdges() const override { return num_edges_; }

  bool SampleNeighbors(VertexId src, std::size_t k, Xoshiro256& rng,
                       std::vector<VertexId>* out) override;

  MemoryBreakdown Memory() const override;

  /// Serialized block key: src(8) | block_id(4) | vertex_type(2) |
  /// reserved metadata(10) = 24 bytes, the paper's "key with various
  /// information".
  static std::string MakeBlockKey(VertexId src, std::uint32_t block_id);
  /// Serialized per-source metadata key: tag(1) | src(8) = 9 bytes.
  static std::string MakeMetaKey(VertexId src);

 private:
  struct Block {
    std::vector<VertexId> ids;
    CSTable cstable;  // per-block ITS index (stores the weights implicitly)
  };

  struct SourceMeta {
    std::uint32_t num_blocks = 0;
    std::uint64_t degree = 0;
    CSTable block_cstable;  // per-source ITS index over block sums
  };

  Block* FindBlock(VertexId src, std::uint32_t block_id);
  const Block* FindBlock(VertexId src, std::uint32_t block_id) const;
  SourceMeta* FindMeta(VertexId src);
  const SourceMeta* FindMeta(VertexId src) const;

  /// Locate dst within src's blocks; returns false when absent.
  bool Locate(const SourceMeta& meta, VertexId src, VertexId dst,
              std::uint32_t* block_id, std::size_t* pos) const;

  void AppendEdge(SourceMeta& meta, VertexId src, VertexId dst, Weight w);

  Config config_;
  // The generic string-keyed KV store both metadata and blocks live in,
  // as in the production system (two maps = two column families).
  std::unordered_map<std::string, SourceMeta> meta_;
  std::unordered_map<std::string, Block> blocks_;
  std::size_t num_edges_ = 0;
};

}  // namespace platod2gl
