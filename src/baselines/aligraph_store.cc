#include "baselines/aligraph_store.h"

#include <algorithm>

namespace platod2gl {

void AliGraphStore::AddEdge(VertexId src, VertexId dst, Weight w) {
  AdjList& adj = adj_[src];
  auto it = std::find(adj.ids.begin(), adj.ids.end(), dst);
  if (it != adj.ids.end()) {
    adj.weights[static_cast<std::size_t>(it - adj.ids.begin())] = w;
  } else {
    adj.ids.push_back(dst);
    adj.weights.push_back(w);
    ++num_edges_;
  }
  adj.dirty = true;
}

void AliGraphStore::AddEdgeFast(VertexId src, VertexId dst, Weight w) {
  AdjList& adj = adj_[src];
  adj.ids.push_back(dst);
  adj.weights.push_back(w);
  adj.dirty = true;
  ++num_edges_;
}

bool AliGraphStore::UpdateEdge(VertexId src, VertexId dst, Weight w) {
  auto mit = adj_.find(src);
  if (mit == adj_.end()) return false;
  AdjList& adj = mit->second;
  auto it = std::find(adj.ids.begin(), adj.ids.end(), dst);
  if (it == adj.ids.end()) return false;
  adj.weights[static_cast<std::size_t>(it - adj.ids.begin())] = w;
  adj.dirty = true;
  return true;
}

bool AliGraphStore::RemoveEdge(VertexId src, VertexId dst) {
  auto mit = adj_.find(src);
  if (mit == adj_.end()) return false;
  AdjList& adj = mit->second;
  auto it = std::find(adj.ids.begin(), adj.ids.end(), dst);
  if (it == adj.ids.end()) return false;
  const std::size_t pos = static_cast<std::size_t>(it - adj.ids.begin());
  adj.ids.erase(adj.ids.begin() + static_cast<std::ptrdiff_t>(pos));
  adj.weights.erase(adj.weights.begin() + static_cast<std::ptrdiff_t>(pos));
  adj.dirty = true;
  --num_edges_;
  if (adj.ids.empty()) adj_.erase(mit);
  return true;
}

std::size_t AliGraphStore::Degree(VertexId src) const {
  auto it = adj_.find(src);
  return it == adj_.end() ? 0 : it->second.ids.size();
}

bool AliGraphStore::SampleNeighbors(VertexId src, std::size_t k,
                                    Xoshiro256& rng,
                                    std::vector<VertexId>* out) {
  auto it = adj_.find(src);
  if (it == adj_.end() || it->second.ids.empty()) return false;
  AdjList& adj = it->second;
  if (adj.dirty) Rebuild(adj);  // O(n) rebuild after any mutation
  out->reserve(out->size() + k);
  for (std::size_t i = 0; i < k; ++i) {
    out->push_back(adj.ids[adj.alias.Sample(rng)]);
  }
  return true;
}

void AliGraphStore::FinalizeSamplingIndexes() {
  for (auto& [src, adj] : adj_) {
    (void)src;
    if (adj.dirty && !adj.ids.empty()) Rebuild(adj);
  }
}

MemoryBreakdown AliGraphStore::Memory() const {
  MemoryBreakdown mem;
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  for (const auto& [src, adj] : adj_) {
    (void)src;
    mem.topology_bytes += VectorBytes(adj.ids) + VectorBytes(adj.weights);
    mem.index_bytes += adj.alias.MemoryUsage();
    mem.key_bytes += sizeof(VertexId) + sizeof(AdjList) + kNodeOverhead;
  }
  mem.key_bytes += adj_.bucket_count() * sizeof(void*);
  return mem;
}

}  // namespace platod2gl
