#include "temporal/edge_log.h"

#include <algorithm>

namespace platod2gl {

Status TemporalEdgeLog::Append(std::uint64_t timestamp,
                               const EdgeUpdate& update) {
  if (!log_.empty() && timestamp < log_.back().timestamp) {
    ++rejected_;
    return Status::OutOfRange("time regression: append at " +
                              std::to_string(timestamp) + " after " +
                              std::to_string(log_.back().timestamp));
  }
  log_.push_back(TimedUpdate{timestamp, update});
  return Status::Ok();
}

std::size_t TemporalEdgeLog::AppendBatch(std::span<const TimedUpdate> batch) {
  log_.reserve(log_.size() + batch.size());
  std::uint64_t tail = log_.empty() ? 0 : log_.back().timestamp;
  bool have_tail = !log_.empty();
  std::size_t accepted = 0;
  for (const TimedUpdate& e : batch) {
    if (have_tail && e.timestamp < tail) {
      ++rejected_;
      continue;
    }
    log_.push_back(e);
    tail = e.timestamp;
    have_tail = true;
    ++accepted;
  }
  return accepted;
}

std::size_t TemporalEdgeLog::TruncateThrough(std::uint64_t t) {
  const std::size_t n = UpperBound(t);
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(n));
  // Record the watermark even when the window was empty: a checkpoint that
  // covers (and truncates) through t makes every replay from below t
  // unsound whether or not entries happened to exist there.
  truncated_through_ = std::max(truncated_through_, t);
  return n;
}

std::size_t TemporalEdgeLog::UpperBound(std::uint64_t t) const {
  return static_cast<std::size_t>(
      std::upper_bound(log_.begin(), log_.end(), t,
                       [](std::uint64_t value, const TimedUpdate& e) {
                         return value < e.timestamp;
                       }) -
      log_.begin());
}

std::size_t TemporalEdgeLog::ReplayInto(GraphStore* graph, std::uint64_t from,
                                        std::uint64_t to) const {
  const std::size_t begin = UpperBound(from);
  const std::size_t end = UpperBound(to);
  for (std::size_t i = begin; i < end; ++i) {
    graph->Apply(log_[i].update);
  }
  return end - begin;
}

Status TemporalEdgeLog::CheckedReplayInto(GraphStore* graph,
                                          std::uint64_t from, std::uint64_t to,
                                          std::size_t* applied) const {
  if (from < truncated_through_) {
    // The half-open window (from, to] starts inside the erased prefix:
    // entries in (from, truncated_through_] are gone, so the replay would
    // be missing updates. Note the boundary: from == truncated_through_
    // is sound (nothing below it is requested), one less is not.
    return Status::DataLoss(
        "replay window (" + std::to_string(from) + ", " + std::to_string(to) +
        "] starts below the truncation watermark " +
        std::to_string(truncated_through_));
  }
  const std::size_t n = ReplayInto(graph, from, to);
  if (applied != nullptr) *applied = n;
  return Status::Ok();
}

std::vector<TimedUpdate> TemporalEdgeLog::Window(std::uint64_t from,
                                                 std::uint64_t to) const {
  const std::size_t begin = UpperBound(from);
  const std::size_t end = UpperBound(to);
  return std::vector<TimedUpdate>(log_.begin() + begin, log_.begin() + end);
}

void TemporalEdgeLog::WindowInto(std::uint64_t from, std::uint64_t to,
                                 std::vector<TimedUpdate>* out) const {
  const std::size_t begin = UpperBound(from);
  const std::size_t end = UpperBound(to);
  out->assign(log_.begin() + begin, log_.begin() + end);
}

}  // namespace platod2gl
