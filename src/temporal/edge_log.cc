#include "temporal/edge_log.h"

#include <algorithm>

namespace platod2gl {

Status TemporalEdgeLog::Append(std::uint64_t timestamp,
                               const EdgeUpdate& update) {
  if (!log_.empty() && timestamp < log_.back().timestamp) {
    ++rejected_;
    return Status::OutOfRange("time regression: append at " +
                              std::to_string(timestamp) + " after " +
                              std::to_string(log_.back().timestamp));
  }
  log_.push_back(TimedUpdate{timestamp, update});
  return Status::Ok();
}

std::size_t TemporalEdgeLog::AppendBatch(std::span<const TimedUpdate> batch) {
  log_.reserve(log_.size() + batch.size());
  std::uint64_t tail = log_.empty() ? 0 : log_.back().timestamp;
  bool have_tail = !log_.empty();
  std::size_t accepted = 0;
  for (const TimedUpdate& e : batch) {
    if (have_tail && e.timestamp < tail) {
      ++rejected_;
      continue;
    }
    log_.push_back(e);
    tail = e.timestamp;
    have_tail = true;
    ++accepted;
  }
  return accepted;
}

std::size_t TemporalEdgeLog::TruncateThrough(std::uint64_t t) {
  const std::size_t n = UpperBound(t);
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

std::size_t TemporalEdgeLog::UpperBound(std::uint64_t t) const {
  return static_cast<std::size_t>(
      std::upper_bound(log_.begin(), log_.end(), t,
                       [](std::uint64_t value, const TimedUpdate& e) {
                         return value < e.timestamp;
                       }) -
      log_.begin());
}

std::size_t TemporalEdgeLog::ReplayInto(GraphStore* graph, std::uint64_t from,
                                        std::uint64_t to) const {
  const std::size_t begin = UpperBound(from);
  const std::size_t end = UpperBound(to);
  for (std::size_t i = begin; i < end; ++i) {
    graph->Apply(log_[i].update);
  }
  return end - begin;
}

std::vector<TimedUpdate> TemporalEdgeLog::Window(std::uint64_t from,
                                                 std::uint64_t to) const {
  const std::size_t begin = UpperBound(from);
  const std::size_t end = UpperBound(to);
  return std::vector<TimedUpdate>(log_.begin() + begin, log_.begin() + end);
}

}  // namespace platod2gl
