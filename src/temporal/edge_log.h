// TemporalEdgeLog: the dynamic graph as a timestamped update series.
//
// The paper models a dynamic graph as {G^(t) | t in [1, T]} (Section
// II-A): the graph at timestamp t is the result of applying every update
// with timestamp <= t. This log is the substrate for that semantics —
// training pipelines append interactions as they arrive, snapshot-build
// G^(t) for offline evaluation, or replay half-open windows (t1, t2] to
// roll a live store forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct TimedUpdate {
  std::uint64_t timestamp = 0;
  EdgeUpdate update;
};

class TemporalEdgeLog {
 public:
  TemporalEdgeLog() = default;

  /// Append an update; timestamps must be non-decreasing (monotone event
  /// time). A time regression is rejected with kOutOfRange — the update is
  /// NOT stored — and bumps the rejected() counter so writers (e.g. the
  /// shard WAL) can observe lost updates instead of dropping them silently.
  Status Append(std::uint64_t timestamp, const EdgeUpdate& update);

  /// Convenience: append an insertion.
  Status AppendInsert(std::uint64_t timestamp, const Edge& e) {
    return Append(timestamp, EdgeUpdate{UpdateKind::kInsert, e});
  }

  /// Append a whole batch with one capacity reserve and a single
  /// monotonicity scan — the MicroBatcher's hot path. Entry-for-entry
  /// equivalent to calling Append in order: each entry older than the
  /// running tail timestamp is skipped and counted in rejected(); later
  /// valid entries still land. Returns the number accepted.
  std::size_t AppendBatch(std::span<const TimedUpdate> batch);

  std::size_t size() const { return log_.size(); }
  bool empty() const { return log_.empty(); }

  /// Number of appends rejected for violating time monotonicity.
  std::uint64_t rejected() const { return rejected_; }

  /// Earliest / latest timestamps (0 when empty).
  std::uint64_t MinTimestamp() const {
    return log_.empty() ? 0 : log_.front().timestamp;
  }
  std::uint64_t MaxTimestamp() const {
    return log_.empty() ? 0 : log_.back().timestamp;
  }

  /// Apply every update with from < timestamp <= to, in order. Rolls a
  /// store at G^(from) forward to G^(to). Returns the number applied.
  std::size_t ReplayInto(GraphStore* graph, std::uint64_t from,
                         std::uint64_t to) const;

  /// ReplayInto with a truncation-gap check: replaying from below the
  /// truncation watermark would silently skip the erased prefix and build
  /// a wrong store, so it is rejected with kDataLoss and applies NOTHING.
  /// `from == truncated_through()` is the exact boundary and is legal (the
  /// caller's base state already covers the erased prefix);
  /// `from == truncated_through() - 1` is the off-by-one this guards
  /// (regression test in tests/test_temporal.cc). The shard recovery and
  /// replica bootstrap/promotion paths all replay through this entry.
  Status CheckedReplayInto(GraphStore* graph, std::uint64_t from,
                           std::uint64_t to, std::size_t* applied) const;

  /// Build G^(t) from scratch into an empty store (every update with
  /// timestamp <= t). Returns the number applied.
  std::size_t SnapshotInto(GraphStore* graph, std::uint64_t t) const {
    return ReplayInto(graph, 0, t);
  }

  /// The raw log entries in the half-open window (from, to].
  std::vector<TimedUpdate> Window(std::uint64_t from, std::uint64_t to) const;

  /// Window() into a caller-owned buffer, reusing its capacity — the
  /// replication sender calls this once per ship round, and the windows
  /// are similarly sized round over round.
  void WindowInto(std::uint64_t from, std::uint64_t to,
                  std::vector<TimedUpdate>* out) const;

  /// Drop every entry with timestamp <= t (checkpoint truncation: once a
  /// checkpoint covers G^(t), the prefix is no longer needed for
  /// recovery). Later ReplayInto(from >= t, ...) calls are unaffected.
  /// Advances truncated_through() to max(truncated_through(), t) even when
  /// nothing is erased, so the covered-prefix watermark survives empty
  /// windows. Returns the number of entries removed.
  std::size_t TruncateThrough(std::uint64_t t);

  /// Highest timestamp a TruncateThrough call has ever covered: entries at
  /// or below it may be gone, so replays must start at or above it (see
  /// CheckedReplayInto). 0 = never truncated, the full history is intact.
  std::uint64_t truncated_through() const { return truncated_through_; }

  std::size_t MemoryUsage() const {
    return log_.capacity() * sizeof(TimedUpdate);
  }

 private:
  /// Index of the first entry with timestamp > t.
  std::size_t UpperBound(std::uint64_t t) const;

  std::vector<TimedUpdate> log_;  // sorted by timestamp (append-enforced)
  std::uint64_t rejected_ = 0;    // appends refused (time regression)
  std::uint64_t truncated_through_ = 0;  // erased-prefix watermark
};

}  // namespace platod2gl
