#include "walk/random_walk.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace platod2gl {

VertexId RandomWalker::Step(VertexId prev, VertexId cur,
                            const WalkConfig& config, Xoshiro256& rng) const {
  const TopologyStore& topo = graph_->topology(config.edge_type);
  const Samtree* tree = topo.FindTree(cur);
  if (!tree || tree->empty()) return kInvalidVertex;

  const bool second_order =
      prev != kInvalidVertex && (config.p != 1.0 || config.q != 1.0);

  // KnightKing-style rejection sampling: draw from the static
  // (first-order) distribution, then accept with the ratio between the
  // node2vec-biased weight and an upper bound of it. The acceptance
  // bound is max(1, 1/p, 1/q).
  const double inv_p = 1.0 / config.p;
  const double inv_q = 1.0 / config.q;
  const double bound =
      second_order ? std::max({1.0, inv_p, inv_q}) : 1.0;

  for (int attempt = 0; attempt < 256; ++attempt) {
    ++last_draws_;
    const VertexId cand = config.weighted ? tree->SampleWeighted(rng)
                                          : tree->SampleUniform(rng);
    if (!second_order) return cand;

    double bias;
    if (cand == prev) {
      bias = inv_p;  // return to where we came from
    } else if (graph_->HasEdge(prev, cand, config.edge_type)) {
      bias = 1.0;    // triangle step: distance 1 from prev
    } else {
      bias = inv_q;  // exploration step: distance 2 from prev
    }
    if (rng.NextDouble() * bound <= bias) return cand;
  }
  // Pathological rejection streak (e.g. huge p and q): fall back to the
  // unbiased draw rather than looping forever.
  ++last_draws_;
  return config.weighted ? tree->SampleWeighted(rng)
                         : tree->SampleUniform(rng);
}

WalkBatch RandomWalker::Walk(const std::vector<VertexId>& seeds,
                             const WalkConfig& config, Xoshiro256& rng) const {
  last_draws_ = 0;
  WalkBatch walks;
  walks.reserve(seeds.size());
  for (VertexId seed : seeds) {
    std::vector<VertexId> walk;
    walk.reserve(config.walk_length);
    walk.push_back(seed);
    VertexId prev = kInvalidVertex;
    while (walk.size() < config.walk_length) {
      if (config.restart_prob > 0.0 &&
          rng.NextDouble() < config.restart_prob) {
        // Teleport home. Not an edge traversal, so the second-order
        // state resets as if the walk had just (re)started.
        prev = kInvalidVertex;
        walk.push_back(seed);
        continue;
      }
      const VertexId next = Step(prev, walk.back(), config, rng);
      if (next == kInvalidVertex) break;  // dangling vertex: walk ends
      prev = walk.back();
      walk.push_back(next);
    }
    walks.push_back(std::move(walk));
  }
  return walks;
}

std::vector<std::pair<VertexId, double>> RandomWalker::ApproxPPR(
    VertexId seed, std::size_t num_walks, std::size_t walk_length,
    double restart_prob, Xoshiro256& rng, EdgeType edge_type) const {
  WalkConfig config;
  config.walk_length = walk_length;
  config.edge_type = edge_type;
  config.restart_prob = restart_prob;

  std::unordered_map<VertexId, std::size_t> visits;
  std::size_t total = 0;
  const std::vector<VertexId> seeds(1, seed);
  for (std::size_t w = 0; w < num_walks; ++w) {
    const WalkBatch batch = Walk(seeds, config, rng);
    for (VertexId v : batch[0]) {
      ++visits[v];
      ++total;
    }
  }

  std::vector<std::pair<VertexId, double>> out;
  out.reserve(visits.size());
  for (const auto& [v, n] : visits) {
    out.emplace_back(v, static_cast<double>(n) / total);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

}  // namespace platod2gl
