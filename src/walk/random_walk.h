// Random-walk engine over the dynamic graph store.
//
// Weighted random walks are the other big consumer of the weighted
// neighbour sampling primitive (the paper builds its ITS/FTS machinery on
// the KnightKing line of work [34], whose workload is exactly this).
// Supports first-order (DeepWalk-style) walks and second-order node2vec
// walks with return parameter p and in-out parameter q, implemented with
// KnightKing's rejection-sampling trick so each step still costs one
// O(log n) weighted draw plus an expected O(1) number of acceptance
// tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct WalkConfig {
  std::size_t walk_length = 10;  ///< vertices per walk (including the seed)
  bool weighted = true;          ///< edge-weight-proportional transitions
  EdgeType edge_type = 0;
  /// node2vec biasing: probability of returning to the previous vertex is
  /// scaled by 1/p, of moving to a non-neighbour of it by 1/q. p = q = 1
  /// degenerates to a first-order walk (no rejection step at all).
  double p = 1.0;
  double q = 1.0;
  /// Random-walk-with-restart: before each transition the walk teleports
  /// back to its seed with this probability (personalised-PageRank-style
  /// locality). 0 disables restarts.
  double restart_prob = 0.0;
};

/// A batch of walks: walks[i] starts at seeds[i]; a walk ends early when
/// it reaches a vertex without out-edges.
using WalkBatch = std::vector<std::vector<VertexId>>;

class RandomWalker {
 public:
  explicit RandomWalker(const GraphStore* graph) : graph_(graph) {}

  /// One walk from each seed.
  WalkBatch Walk(const std::vector<VertexId>& seeds, const WalkConfig& config,
                 Xoshiro256& rng) const;

  /// Total transition steps taken by the last Walk() call — rejection
  /// retries included, so callers can observe the rejection overhead.
  std::size_t last_candidate_draws() const { return last_draws_; }

  /// Monte-Carlo personalised PageRank: visit-frequency estimate over
  /// `num_walks` restart walks of `walk_length` (every visited vertex
  /// counts, the seed included, as in the standard estimator). Returns
  /// (vertex, probability mass) sorted by descending mass.
  std::vector<std::pair<VertexId, double>> ApproxPPR(
      VertexId seed, std::size_t num_walks, std::size_t walk_length,
      double restart_prob, Xoshiro256& rng,
      EdgeType edge_type = 0) const;

 private:
  /// Draw the next vertex after `cur`, given the previous vertex of the
  /// walk (kInvalidVertex for the first step).
  VertexId Step(VertexId prev, VertexId cur, const WalkConfig& config,
                Xoshiro256& rng) const;

  const GraphStore* graph_;
  mutable std::size_t last_draws_ = 0;
};

}  // namespace platod2gl
