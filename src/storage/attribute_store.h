// AttributeStore: key-value storage for vertex feature vectors and labels
// (paper Section III: "As for the attribute storage, the key-value store
// is used").
//
// GNN training reads features in minibatch-sized gathers; the store keeps
// one float vector (plus an optional integer label) per vertex in the same
// concurrent cuckoo map used for topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/memory.h"
#include "common/types.h"
#include "storage/cuckoo_map.h"

namespace platod2gl {

class AttributeStore {
 public:
  explicit AttributeStore(std::size_t num_shards = 64);

  /// Store (overwrite) the feature vector of a vertex. Thread-safe.
  void SetFeatures(VertexId v, std::vector<float> features);

  /// Store (overwrite) the label of a vertex. Thread-safe.
  void SetLabel(VertexId v, std::int64_t label);

  /// Feature vector of v, or nullptr when absent. See
  /// CuckooMap::FindUnsafe for the synchronisation contract.
  const std::vector<float>* GetFeatures(VertexId v) const;

  std::optional<std::int64_t> GetLabel(VertexId v) const;

  /// Gather the features of a batch into a dense row-major buffer of
  /// shape [ids.size(), dim]; missing vertices get zero rows.
  void GatherFeatures(const std::vector<VertexId>& ids, std::size_t dim,
                      std::vector<float>* out) const;

  std::size_t NumVertices() const { return attrs_.Size(); }

  /// Visit every vertex as fn(id, features, label). Not thread-safe
  /// against writers.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    attrs_.ForEach([&](VertexId v, const VertexAttrs& a) {
      fn(v, a.features, a.label);
    });
  }

  std::size_t MemoryUsage() const;

 private:
  struct VertexAttrs {
    std::vector<float> features;
    std::optional<std::int64_t> label;
  };

  CuckooMap<VertexAttrs> attrs_;
};

}  // namespace platod2gl
