#include "storage/edge_attributes.h"

#include <algorithm>

#include "storage/cuckoo_map.h"  // HashVertexId

namespace platod2gl {

std::size_t EdgeAttributeStore::EdgeKeyHash::operator()(
    const EdgeKey& k) const {
  const std::uint64_t a = HashVertexId(k.src, 0x8BADF00D5EEDULL);
  const std::uint64_t b =
      HashVertexId(k.dst ^ (static_cast<std::uint64_t>(k.type) << 48),
                   0xFACEFEEDCAFEULL);
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

EdgeAttributeStore::EdgeAttributeStore(std::size_t num_shards)
    : shards_(std::max<std::size_t>(1, num_shards)) {}

const EdgeAttributeStore::Shard& EdgeAttributeStore::ShardFor(
    VertexId src, VertexId dst, EdgeType type) const {
  const std::size_t h =
      EdgeKeyHash()(EdgeKey{src, dst, type});
  return shards_[h % shards_.size()];
}

void EdgeAttributeStore::Set(VertexId src, VertexId dst, EdgeType type,
                             std::vector<float> features) {
  Shard& shard = ShardFor(src, dst, type);
  SpinlockGuard lock(shard.mu);
  auto& slot = shard.map[EdgeKey{src, dst, type}];
  if (!slot) slot = std::make_unique<std::vector<float>>();
  *slot = std::move(features);
}

const std::vector<float>* EdgeAttributeStore::Get(VertexId src, VertexId dst,
                                                  EdgeType type) const {
  const Shard& shard = ShardFor(src, dst, type);
  SpinlockGuard lock(shard.mu);
  auto it = shard.map.find(EdgeKey{src, dst, type});
  return it == shard.map.end() ? nullptr : it->second.get();
}

bool EdgeAttributeStore::Remove(VertexId src, VertexId dst, EdgeType type) {
  Shard& shard = ShardFor(src, dst, type);
  SpinlockGuard lock(shard.mu);
  return shard.map.erase(EdgeKey{src, dst, type}) > 0;
}

std::size_t EdgeAttributeStore::NumEdges() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    SpinlockGuard lock(s.mu);
    n += s.map.size();
  }
  return n;
}

std::size_t EdgeAttributeStore::MemoryUsage() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  std::size_t bytes = shards_.capacity() * sizeof(Shard);
  for (const auto& s : shards_) {
    SpinlockGuard lock(s.mu);
    bytes += s.map.bucket_count() * sizeof(void*);
    for (const auto& [key, value] : s.map) {
      bytes += sizeof(EdgeKey) + kNodeOverhead + sizeof(*value) +
               value->capacity() * sizeof(float);
    }
  }
  return bytes;
}

}  // namespace platod2gl
