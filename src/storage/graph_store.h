// GraphStore: the dynamic graph storage layer of PlatoD2GL (paper
// Section III, bottom layer of Figure 2).
//
// A heterogeneous graph keeps one TopologyStore per edge relation (User-
// Live, Live-Tag, ...) plus one AttributeStore for vertex features/labels.
// This facade is the single entry point the TF-operator-equivalent layer
// (src/gnn) and the samplers (src/sampling) talk to.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/types.h"
#include "core/samtree.h"
#include "storage/attribute_store.h"
#include "storage/topology_store.h"

namespace platod2gl {

struct GraphStoreConfig {
  SamtreeConfig samtree;
  std::size_t num_shards = 64;
  std::size_t num_relations = 1;  ///< number of edge types
};

class GraphStore {
 public:
  explicit GraphStore(GraphStoreConfig config = {});

  /// Insert one edge of its relation; refreshes weight if present.
  void AddEdge(const Edge& e);

  /// Apply a single dynamic update.
  void Apply(const EdgeUpdate& update);

  /// Apply a batch of updates sequentially (the concurrent path lives in
  /// concurrency/batch_updater.h).
  void ApplyBatch(const std::vector<EdgeUpdate>& batch);

  bool HasEdge(VertexId src, VertexId dst, EdgeType type = 0) const;
  std::optional<Weight> EdgeWeight(VertexId src, VertexId dst,
                                   EdgeType type = 0) const;
  std::size_t Degree(VertexId src, EdgeType type = 0) const;

  bool SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                       Xoshiro256& rng, std::vector<VertexId>* out,
                       EdgeType type = 0) const;
  std::vector<std::pair<VertexId, Weight>> Neighbors(VertexId src,
                                                     EdgeType type = 0) const;

  TopologyStore& topology(EdgeType type = 0) { return *relations_.at(type); }
  const TopologyStore& topology(EdgeType type = 0) const {
    return *relations_.at(type);
  }
  AttributeStore& attributes() { return attributes_; }
  const AttributeStore& attributes() const { return attributes_; }

  std::size_t num_relations() const { return relations_.size(); }

  /// Live edges across all relations.
  std::size_t NumEdges() const;

  /// Topology-layer memory across all relations (Table IV accounting;
  /// attributes are reported separately since every system stores them the
  /// same way).
  MemoryBreakdown TopologyMemory() const;

  const GraphStoreConfig& config() const { return config_; }

 private:
  GraphStoreConfig config_;
  std::vector<std::unique_ptr<TopologyStore>> relations_;
  AttributeStore attributes_;
};

}  // namespace platod2gl
