// GraphStore: the dynamic graph storage layer of PlatoD2GL (paper
// Section III, bottom layer of Figure 2).
//
// A heterogeneous graph keeps one TopologyStore per edge relation (User-
// Live, Live-Tag, ...) plus one AttributeStore for vertex features/labels.
// This facade is the single entry point the TF-operator-equivalent layer
// (src/gnn) and the samplers (src/sampling) talk to.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/types.h"
#include "core/samtree.h"
#include "sampling/sample_cache.h"
#include "storage/attribute_store.h"
#include "storage/topology_store.h"

namespace platod2gl {

struct GraphStoreConfig {
  SamtreeConfig samtree;
  std::size_t num_shards = 64;
  std::size_t num_relations = 1;  ///< number of edge types
  /// Hot-vertex O(1) sampling cache (sampling/sample_cache.h). Enabled by
  /// default; the admission gates keep cold vertices on the samtree
  /// descent, and version checks keep cached tables consistent with
  /// dynamic updates.
  SampleCacheConfig sample_cache;
};

class GraphStore {
 public:
  explicit GraphStore(GraphStoreConfig config = {});

  /// Insert one edge of its relation; refreshes weight if present.
  void AddEdge(const Edge& e);

  /// Apply a single dynamic update.
  void Apply(const EdgeUpdate& update);

  /// Apply a batch of updates sequentially (the concurrent path lives in
  /// concurrency/batch_updater.h).
  void ApplyBatch(const std::vector<EdgeUpdate>& batch);

  bool HasEdge(VertexId src, VertexId dst, EdgeType type = 0) const;
  std::optional<Weight> EdgeWeight(VertexId src, VertexId dst,
                                   EdgeType type = 0) const;
  std::size_t Degree(VertexId src, EdgeType type = 0) const;

  /// Draw k neighbours of src with replacement. Hot vertices are served
  /// from the O(1) sampling cache when their cached table is still
  /// version-consistent with the samtree; everything else falls back to
  /// the O(log n) ITS+FTS descent.
  bool SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                       Xoshiro256& rng, std::vector<VertexId>* out,
                       EdgeType type = 0) const;
  std::vector<std::pair<VertexId, Weight>> Neighbors(VertexId src,
                                                     EdgeType type = 0) const;

  TopologyStore& topology(EdgeType type = 0) { return *relations_.at(type); }
  const TopologyStore& topology(EdgeType type = 0) const {
    return *relations_.at(type);
  }
  AttributeStore& attributes() { return attributes_; }
  const AttributeStore& attributes() const { return attributes_; }

  /// The hot-vertex sampling cache, or nullptr when disabled.
  SampleCache* sample_cache() const { return sample_cache_.get(); }

  std::size_t num_relations() const { return relations_.size(); }

  /// Live edges across all relations.
  std::size_t NumEdges() const;

  /// Topology-layer memory across all relations (Table IV accounting;
  /// attributes are reported separately since every system stores them the
  /// same way).
  MemoryBreakdown TopologyMemory() const;

  const GraphStoreConfig& config() const { return config_; }

 private:
  GraphStoreConfig config_;
  std::vector<std::unique_ptr<TopologyStore>> relations_;
  AttributeStore attributes_;
  // Mutable derived state (internally synchronised): consulted and
  // refreshed from the const sampling path.
  std::unique_ptr<SampleCache> sample_cache_;
};

}  // namespace platod2gl
