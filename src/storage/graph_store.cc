#include "storage/graph_store.h"

#include <algorithm>

namespace platod2gl {

GraphStore::GraphStore(GraphStoreConfig config)
    : config_(config), attributes_(config.num_shards) {
  config_.num_relations = std::max<std::size_t>(1, config_.num_relations);
  relations_.reserve(config_.num_relations);
  for (std::size_t i = 0; i < config_.num_relations; ++i) {
    relations_.push_back(std::make_unique<TopologyStore>(
        config_.samtree, config_.num_shards));
  }
  if (config_.sample_cache.enabled) {
    sample_cache_ = std::make_unique<SampleCache>(config_.sample_cache);
  }
}

void GraphStore::AddEdge(const Edge& e) {
  relations_.at(e.type)->AddEdge(e.src, e.dst, e.weight);
}

void GraphStore::Apply(const EdgeUpdate& update) {
  relations_.at(update.edge.type)->Apply(update);
}

void GraphStore::ApplyBatch(const std::vector<EdgeUpdate>& batch) {
  for (const EdgeUpdate& u : batch) Apply(u);
}

bool GraphStore::HasEdge(VertexId src, VertexId dst, EdgeType type) const {
  return relations_.at(type)->HasEdge(src, dst);
}

std::optional<Weight> GraphStore::EdgeWeight(VertexId src, VertexId dst,
                                             EdgeType type) const {
  return relations_.at(type)->EdgeWeight(src, dst);
}

std::size_t GraphStore::Degree(VertexId src, EdgeType type) const {
  return relations_.at(type)->Degree(src);
}

bool GraphStore::SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                                 Xoshiro256& rng, std::vector<VertexId>* out,
                                 EdgeType type) const {
  const TopologyStore& rel = *relations_.at(type);
  if (!sample_cache_) return rel.SampleNeighbors(src, k, weighted, rng, out);
  const Samtree* tree = rel.FindTree(src);
  if (!tree || tree->empty()) return false;
  if (sample_cache_->Sample(src, type, *tree, weighted, k, rng, out)) {
    return true;
  }
  // Cold vertex (or warming up): the regular ITS+FTS descent.
  if (weighted) {
    tree->SampleWeighted(k, rng, out);
  } else {
    tree->SampleUniform(k, rng, out);
  }
  return true;
}

std::vector<std::pair<VertexId, Weight>> GraphStore::Neighbors(
    VertexId src, EdgeType type) const {
  return relations_.at(type)->Neighbors(src);
}

std::size_t GraphStore::NumEdges() const {
  std::size_t n = 0;
  for (const auto& r : relations_) n += r->NumEdges();
  return n;
}

MemoryBreakdown GraphStore::TopologyMemory() const {
  MemoryBreakdown mem;
  for (const auto& r : relations_) {
    const MemoryBreakdown m = r->Memory();
    mem.topology_bytes += m.topology_bytes;
    mem.index_bytes += m.index_bytes;
    mem.key_bytes += m.key_bytes;
    mem.other_bytes += m.other_bytes;
  }
  return mem;
}

}  // namespace platod2gl
