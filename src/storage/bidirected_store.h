// BidirectedGraphStore: a GraphStore wrapper that maintains the reverse
// direction of every edge automatically.
//
// The paper's datasets are all bi-directed ("all the datasets in our
// experiments are bi-directed"): production keeps the mirror edge so that
// in-neighbourhoods are samplable too (who watched this room?). This
// wrapper hides the mirroring and exposes in-degree / in-neighbour
// queries next to the usual out-direction API. The mirror edge lives in
// the same relation, exactly like the presets built by MakeBidirected.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

class BidirectedGraphStore {
 public:
  explicit BidirectedGraphStore(GraphStoreConfig config = {})
      : graph_(config) {}

  /// Insert (or refresh) the edge and its mirror (self-loops store one
  /// physical edge).
  void AddEdge(const Edge& e) {
    graph_.AddEdge(e);
    if (e.src != e.dst) {
      graph_.AddEdge(Edge{e.dst, e.src, e.weight, e.type});
    }
  }

  /// Update both directions; false if the edge does not exist.
  bool UpdateEdge(VertexId src, VertexId dst, Weight w, EdgeType type = 0) {
    const bool fwd = graph_.topology(type).UpdateEdge(src, dst, w);
    if (src == dst) return fwd;
    const bool bwd = graph_.topology(type).UpdateEdge(dst, src, w);
    return fwd && bwd;
  }

  /// Remove both directions; false if the edge does not exist.
  bool RemoveEdge(VertexId src, VertexId dst, EdgeType type = 0) {
    const bool fwd = graph_.topology(type).RemoveEdge(src, dst);
    if (src == dst) return fwd;
    const bool bwd = graph_.topology(type).RemoveEdge(dst, src);
    return fwd && bwd;
  }

  bool HasEdge(VertexId src, VertexId dst, EdgeType type = 0) const {
    return graph_.HasEdge(src, dst, type);
  }

  /// Out- and in-degree coincide on a bi-directed graph, but both names
  /// read naturally at call sites.
  std::size_t OutDegree(VertexId v, EdgeType type = 0) const {
    return graph_.Degree(v, type);
  }
  std::size_t InDegree(VertexId v, EdgeType type = 0) const {
    return graph_.Degree(v, type);
  }

  bool SampleOutNeighbors(VertexId v, std::size_t k, bool weighted,
                          Xoshiro256& rng, std::vector<VertexId>* out,
                          EdgeType type = 0) const {
    return graph_.SampleNeighbors(v, k, weighted, rng, out, type);
  }
  /// In-neighbours are the mirror's out-neighbours.
  bool SampleInNeighbors(VertexId v, std::size_t k, bool weighted,
                         Xoshiro256& rng, std::vector<VertexId>* out,
                         EdgeType type = 0) const {
    return graph_.SampleNeighbors(v, k, weighted, rng, out, type);
  }

  /// Undirected edge count (mirrors counted once). Self-loops store a
  /// single directed edge, so each contributes only half here; use
  /// graph().NumEdges() for the exact directed count.
  std::size_t NumEdges() const { return graph_.NumEdges() / 2; }

  /// The wrapped store, for samplers / trainers / analytics. Mutating
  /// topology through it directly bypasses the mirroring.
  GraphStore& graph() { return graph_; }
  const GraphStore& graph() const { return graph_; }

 private:
  GraphStore graph_;
};

/// Induced subgraph: every stored edge whose endpoints are both in
/// `vertices`, extracted per relation. O(sum of the vertices' degrees).
std::vector<Edge> InducedSubgraph(const GraphStore& graph,
                                  const std::vector<VertexId>& vertices);

}  // namespace platod2gl
