#include "storage/topology_store.h"

namespace platod2gl {

TopologyStore::TopologyStore(SamtreeConfig config, std::size_t num_shards)
    : config_(config), trees_(num_shards) {
  // Every tree this store creates allocates its nodes from the store's
  // arena; a caller-supplied arena pointer is overridden — the arena must
  // be owned by (and die with) the store.
  config_.arena = &arena_;
}

void TopologyStore::AddEdge(VertexId src, VertexId dst, Weight w) {
  WithTree(src, [&](Samtree& tree) {
    const std::size_t before = tree.size();
    tree.Insert(dst, w);
    if (tree.size() != before) {
      // order: stat tally, read for reporting only
      num_edges_.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void TopologyStore::AddEdgeUnchecked(VertexId src, VertexId dst, Weight w) {
  WithTree(src, [&](Samtree& tree) {
    tree.InsertUnchecked(dst, w);
    // order: stat tally, read for reporting only
    num_edges_.fetch_add(1, std::memory_order_relaxed);
  });
}

void TopologyStore::InstallTree(VertexId src, Samtree&& tree) {
  std::size_t delta = 0;
  trees_.With(src, [&](Samtree& existing) {
    if (existing.empty()) {
      delta = tree.size();
      existing = std::move(tree);
      // The adopted tree was built outside the store (heap-allocated
      // nodes, e.g. checkpoint restore's BulkBuild). Those nodes keep
      // their origin, but splits from now on land in the shard arena.
      existing.SetArena(config_.arena);
      return;
    }
    // Merge path: the slower but lossless fallback.
    const std::size_t before = existing.size();
    tree.ForEachNeighbor(
        [&](VertexId dst, Weight w) { existing.Insert(dst, w); });
    delta = existing.size() - before;
  });
  // order: stat tally, read for reporting only
  num_edges_.fetch_add(delta, std::memory_order_relaxed);
}

bool TopologyStore::UpdateEdge(VertexId src, VertexId dst, Weight w) {
  bool updated = false;
  trees_.WithExisting(src,
                      [&](Samtree& tree) { updated = tree.Update(dst, w); });
  return updated;
}

bool TopologyStore::RemoveEdge(VertexId src, VertexId dst) {
  bool removed = false;
  trees_.WithExisting(src,
                      [&](Samtree& tree) { removed = tree.Remove(dst); });
  // order: stat tally, read for reporting only
  if (removed) num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return removed;
}

void TopologyStore::Apply(const EdgeUpdate& update) {
  const Edge& e = update.edge;
  switch (update.kind) {
    case UpdateKind::kInsert:
      AddEdge(e.src, e.dst, e.weight);
      break;
    case UpdateKind::kInPlaceUpdate:
      UpdateEdge(e.src, e.dst, e.weight);
      break;
    case UpdateKind::kDelete:
      RemoveEdge(e.src, e.dst);
      break;
  }
}

bool TopologyStore::HasEdge(VertexId src, VertexId dst) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  return tree && tree->Contains(dst);
}

std::optional<Weight> TopologyStore::EdgeWeight(VertexId src,
                                                VertexId dst) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  if (!tree) return std::nullopt;
  return tree->GetWeight(dst);
}

std::size_t TopologyStore::Degree(VertexId src) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  return tree ? tree->size() : 0;
}

Weight TopologyStore::VertexWeight(VertexId src) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  return tree ? tree->TotalWeight() : 0.0;
}

bool TopologyStore::SampleNeighbors(VertexId src, std::size_t k,
                                    bool weighted, Xoshiro256& rng,
                                    std::vector<VertexId>* out) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  if (!tree || tree->empty()) return false;
  if (weighted) {
    tree->SampleWeighted(k, rng, out);
  } else {
    tree->SampleUniform(k, rng, out);
  }
  return true;
}

std::vector<VertexId> TopologyStore::SampleNeighborsDistinct(
    VertexId src, std::size_t k, Xoshiro256& rng) {
  std::vector<VertexId> out;
  trees_.WithExisting(src, [&](Samtree& tree) {
    out = tree.SampleWeightedDistinct(k, rng);
  });
  return out;
}

std::size_t TopologyStore::RemoveSource(VertexId src) {
  std::size_t removed = 0;
  trees_.WithExisting(src, [&](Samtree& tree) {
    removed = tree.size();
    tree = Samtree(config_);
  });
  if (removed > 0) {
    trees_.Erase(src);
    // order: stat tally, read for reporting only
    num_edges_.fetch_sub(removed, std::memory_order_relaxed);
  }
  return removed;
}

std::size_t TopologyStore::CountNeighborsInRange(VertexId src, VertexId lo,
                                                 VertexId hi) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  return tree ? tree->CountInRange(lo, hi) : 0;
}

std::vector<std::pair<VertexId, Weight>> TopologyStore::Neighbors(
    VertexId src) const {
  const Samtree* tree = trees_.FindUnsafe(src);
  if (!tree) return {};
  return tree->Neighbors();
}

MemoryBreakdown TopologyStore::Memory() const {
  MemoryBreakdown mem;
  // The samtree layer is non-key-value: the only map keys are one 8-byte
  // vertex ID per *source vertex* (vs. one composite key per block in
  // PlatoGL) — the saving Table IV measures.
  mem.key_bytes += trees_.MemoryUsage();
  trees_.ForEach([&](VertexId, const Samtree& tree) {
    const MemoryBreakdown m = tree.Memory();
    mem.topology_bytes += m.topology_bytes;
    mem.index_bytes += m.index_bytes;
    mem.other_bytes += m.other_bytes;
  });
  // Per-node sizes are already counted by tree.Memory(); what remains of
  // the arena is its reserved-but-idle space (chunk slack + free lists).
  mem.other_bytes += arena_.SlackBytes();
  return mem;
}

SamtreeOpStats TopologyStore::AggregateStats() const {
  SamtreeOpStats total;
  trees_.ForEach([&](VertexId, const Samtree& tree) {
    const SamtreeOpStats& s = tree.stats();
    total.leaf_ops += s.leaf_ops;
    total.internal_ops += s.internal_ops;
    total.leaf_splits += s.leaf_splits;
    total.internal_splits += s.internal_splits;
    total.merges += s.merges;
  });
  return total;
}

bool TopologyStore::CheckAllInvariants(std::string* error) const {
  bool ok = true;
  std::size_t edge_total = 0;
  trees_.ForEach([&](VertexId src, const Samtree& tree) {
    if (!ok) return;
    edge_total += tree.size();
    std::string err;
    if (!tree.CheckInvariants(&err)) {
      ok = false;
      if (error) {
        *error = "samtree of source " + std::to_string(src) + ": " + err;
      }
    }
  });
  if (ok && edge_total != NumEdges()) {
    ok = false;
    if (error) {
      *error = "edge counter drift: NumEdges()=" +
               std::to_string(NumEdges()) + " but trees hold " +
               std::to_string(edge_total);
    }
  }
  return ok;
}

}  // namespace platod2gl
