#include "storage/bidirected_store.h"

#include <unordered_set>

namespace platod2gl {

std::vector<Edge> InducedSubgraph(const GraphStore& graph,
                                  const std::vector<VertexId>& vertices) {
  const std::unordered_set<VertexId> keep(vertices.begin(), vertices.end());
  std::vector<Edge> out;
  for (std::size_t r = 0; r < graph.num_relations(); ++r) {
    const EdgeType type = static_cast<EdgeType>(r);
    // Iterate the deduplicated set so repeated input vertices do not
    // duplicate their edges in the output.
    for (VertexId src : keep) {
      const Samtree* tree = graph.topology(type).FindTree(src);
      if (!tree) continue;
      tree->ForEachNeighbor([&](VertexId dst, Weight w) {
        if (keep.count(dst)) out.push_back(Edge{src, dst, w, type});
      });
    }
  }
  return out;
}

}  // namespace platod2gl
