#include "storage/attribute_store.h"

#include <algorithm>
#include <cstring>

namespace platod2gl {

AttributeStore::AttributeStore(std::size_t num_shards) : attrs_(num_shards) {}

void AttributeStore::SetFeatures(VertexId v, std::vector<float> features) {
  attrs_.With(v, [&](VertexAttrs& a) { a.features = std::move(features); });
}

void AttributeStore::SetLabel(VertexId v, std::int64_t label) {
  attrs_.With(v, [&](VertexAttrs& a) { a.label = label; });
}

const std::vector<float>* AttributeStore::GetFeatures(VertexId v) const {
  const VertexAttrs* a = attrs_.FindUnsafe(v);
  return a ? &a->features : nullptr;
}

std::optional<std::int64_t> AttributeStore::GetLabel(VertexId v) const {
  const VertexAttrs* a = attrs_.FindUnsafe(v);
  return a ? a->label : std::nullopt;
}

void AttributeStore::GatherFeatures(const std::vector<VertexId>& ids,
                                    std::size_t dim,
                                    std::vector<float>* out) const {
  out->assign(ids.size() * dim, 0.0f);
  for (std::size_t row = 0; row < ids.size(); ++row) {
    const std::vector<float>* f = GetFeatures(ids[row]);
    if (!f) continue;
    const std::size_t n = std::min(dim, f->size());
    std::memcpy(out->data() + row * dim, f->data(), n * sizeof(float));
  }
}

std::size_t AttributeStore::MemoryUsage() const {
  std::size_t bytes = attrs_.MemoryUsage();
  attrs_.ForEach([&](VertexId, const VertexAttrs& a) {
    bytes += sizeof(VertexAttrs) + VectorBytes(a.features);
  });
  return bytes;
}

}  // namespace platod2gl
