#include "storage/cuckoo_map.h"

namespace platod2gl {

std::uint64_t HashVertexId(VertexId key, std::uint64_t seed) {
  // SplitMix64 finaliser over key ^ seed: cheap, well mixed, and distinct
  // seeds give effectively independent hash functions.
  std::uint64_t z = key ^ seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace platod2gl
