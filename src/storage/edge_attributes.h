// EdgeAttributeStore: key-value storage for per-edge features.
//
// The paper's attribute layer covers "attributes information of nodes or
// edges" (Section III). Edge weights live inside the samtrees; richer
// per-edge payloads (interaction timestamps, context features, ...) live
// here, keyed by (src, dst, type) in a sharded hash map so writers on
// different shards never contend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace platod2gl {

class EdgeAttributeStore {
 public:
  explicit EdgeAttributeStore(std::size_t num_shards = 64);

  /// Store (overwrite) the features of an edge. Thread-safe.
  void Set(VertexId src, VertexId dst, EdgeType type,
           std::vector<float> features);
  void Set(const Edge& e, std::vector<float> features) {
    Set(e.src, e.dst, e.type, std::move(features));
  }

  /// Features of an edge, or nullptr. The pointer is stable until the
  /// edge's attributes are overwritten or removed; not synchronised with
  /// concurrent writers of the *same edge*.
  const std::vector<float>* Get(VertexId src, VertexId dst,
                                EdgeType type = 0) const;

  /// Remove an edge's attributes; false when absent. Thread-safe.
  bool Remove(VertexId src, VertexId dst, EdgeType type = 0);

  std::size_t NumEdges() const;
  std::size_t MemoryUsage() const;

 private:
  struct EdgeKey {
    VertexId src;
    VertexId dst;
    EdgeType type;
    friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const;
  };
  struct alignas(128) Shard {
    mutable Spinlock mu;
    // Values are heap-pinned so Get() pointers survive rehashes.
    std::unordered_map<EdgeKey, std::unique_ptr<std::vector<float>>,
                       EdgeKeyHash>
        map GUARDED_BY(mu);
  };

  const Shard& ShardFor(VertexId src, VertexId dst, EdgeType type) const;
  Shard& ShardFor(VertexId src, VertexId dst, EdgeType type) {
    return const_cast<Shard&>(
        static_cast<const EdgeAttributeStore*>(this)->ShardFor(src, dst,
                                                               type));
  }

  std::vector<Shard> shards_;
};

}  // namespace platod2gl
