// Concurrent cuckoo hash map: VertexId -> V.
//
// The paper's topology storage keeps a concurrent hashmap from each source
// vertex to <degree, samtree>, "by exploiting Cuckoo hash" (Section IV-B,
// citing MemC3 / libcuckoo). This implementation combines
//
//   * sharding for concurrency — the key space is split across
//     `num_shards` independent tables, each guarded by one spinlock, so
//     writers on different shards never contend; and
//   * bucketized cuckoo hashing within a shard — 4-way set-associative
//     buckets, two hash functions, random-walk eviction, and table doubling
//     when an eviction walk fails.
//
// Values are heap-allocated so their addresses stay stable across rehashes:
// the batch updater mutates samtrees through raw pointers while other
// threads may be inserting new vertices.
//
// Locking discipline (checked by clang -Wthread-safety): every bucket
// array is GUARDED_BY its shard's spinlock, and the *Locked helpers
// REQUIRE it. The two deliberate escape hatches — FindUnsafe and ForEach —
// are marked NO_THREAD_SAFETY_ANALYSIS and carry their synchronisation
// contract in the doc comment; everything else must go through the guard.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/sched_hooks.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace platod2gl {

/// 64-bit mix (SplitMix64 finaliser) used for bucket selection.
std::uint64_t HashVertexId(VertexId key, std::uint64_t seed);

template <typename V>
class CuckooMap {
 public:
  static constexpr std::size_t kSlotsPerBucket = 4;

  explicit CuckooMap(std::size_t num_shards = 64,
                     std::size_t initial_buckets_per_shard = 8)
      : shards_(RoundPow2(num_shards)) {
    for (auto& s : shards_) {
      SpinlockGuard lock(s.mu);
      s.buckets.resize(RoundPow2(initial_buckets_per_shard));
    }
  }

  CuckooMap(const CuckooMap&) = delete;
  CuckooMap& operator=(const CuckooMap&) = delete;

  /// Run `fn(V&)` under the shard lock, default-constructing the value if
  /// the key is absent. This is the write path: thread-safe.
  template <typename Fn>
  void With(VertexId key, Fn&& fn) {
    assert(key != kInvalidVertex);
    Shard& shard = ShardFor(key);
    SpinlockGuard lock(shard.mu);
    fn(*FindOrCreateLocked(shard, key));
  }

  /// Find-or-create under the shard lock and return the value's address.
  /// Values are heap-pinned, so the pointer stays valid across rehashes;
  /// the caller may use it after the lock is released as long as it
  /// guarantees no other thread mutates the same value. Thread-safe.
  V* GetOrCreate(VertexId key) {
    assert(key != kInvalidVertex);
    Shard& shard = ShardFor(key);
    SpinlockGuard lock(shard.mu);
    return FindOrCreateLocked(shard, key);
  }

  /// Run `fn(V&)` under the shard lock only if the key exists.
  /// Returns whether it did. Thread-safe.
  template <typename Fn>
  bool WithExisting(VertexId key, Fn&& fn) {
    Shard& shard = ShardFor(key);
    SpinlockGuard lock(shard.mu);
    V* v = FindLocked(shard, key);
    if (!v) return false;
    fn(*v);
    return true;
  }

  /// Pointer to the value, or nullptr. NOT synchronised with concurrent
  /// inserts/erases — safe during read-only phases, or when an external
  /// partitioning scheme guarantees no rehash races (the value object
  /// itself is heap-pinned, so only *map growth during lookup* races).
  /// That contract is exactly why this bypasses the analysis.
  V* FindUnsafe(VertexId key) NO_THREAD_SAFETY_ANALYSIS {
    Shard& shard = ShardFor(key);
    return FindLocked(shard, key);
  }
  const V* FindUnsafe(VertexId key) const {
    return const_cast<CuckooMap*>(this)->FindUnsafe(key);
  }

  bool Contains(VertexId key) const { return FindUnsafe(key) != nullptr; }

  /// Remove a key. Returns whether it was present. Thread-safe.
  bool Erase(VertexId key) {
    Shard& shard = ShardFor(key);
    SpinlockGuard lock(shard.mu);
    for (std::size_t h = 0; h < 2; ++h) {
      Bucket& b = shard.buckets[BucketIndex(shard, key, h)];
      for (auto& slot : b.slots) {
        if (slot.value && slot.key == key) {
          slot.value.reset();
          BumpSizeLocked(shard, -1);
          return true;
        }
      }
    }
    return false;
  }

  /// Number of stored keys. The per-shard counters are atomics, so this
  /// is race-free against concurrent writers (TSan-clean), but the sum is
  /// only a snapshot: exact when quiescent.
  std::size_t Size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
#if defined(PD2GL_SCHEDCHECK)
      if (sched::CuckooShardSizeRace()) {  // pre-PR2 racy read, tests only
        n += s.racy_size.load();
        continue;
      }
#endif
      // order: pure counter snapshot; carries no ordering with bucket
      // state, which Size() deliberately does not observe.
      n += s.size.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Visit every (key, value). NOT thread-safe against writers — callers
  /// run during read-only phases (memory accounting, stats aggregation,
  /// invariant sweeps), which is why this bypasses the analysis.
  template <typename Fn>
  void ForEach(Fn&& fn) const NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& shard : shards_) {
      for (const auto& bucket : shard.buckets) {
        for (const auto& slot : bucket.slots) {
          if (slot.value) fn(slot.key, *slot.value);
        }
      }
    }
  }

  /// Bytes of the map layer itself: bucket arrays (the "indexing" overhead
  /// the paper attributes to key-value stores) — the values' own memory is
  /// accounted by the caller via ForEach. Quiescent-phase only, like
  /// ForEach.
  std::size_t MemoryUsage() const NO_THREAD_SAFETY_ANALYSIS {
    std::size_t bytes = shards_.capacity() * sizeof(Shard);
    for (const auto& s : shards_) {
      bytes += s.buckets.capacity() * sizeof(Bucket);
    }
    return bytes;
  }

 private:
  struct Slot {
    VertexId key = kInvalidVertex;
    std::unique_ptr<V> value;  // null == empty slot
  };
  struct Bucket {
    std::array<Slot, kSlotsPerBucket> slots;
  };
  // Cache-line aligned: adjacent shards' spinlocks must not share a line,
  // or contended writers false-share and concurrent scaling inverts.
  struct alignas(128) Shard {
    Spinlock mu;
    std::vector<Bucket> buckets GUARDED_BY(mu);  // power-of-two size
    // Written under mu, read lock-free by Size(): relaxed atomic instead
    // of GUARDED_BY so the unlocked aggregate read stays race-free.
    // (sched::Atomic == std::atomic in production builds.)
    sched::Atomic<std::size_t> size{0};
#if defined(PD2GL_SCHEDCHECK)
    // The pre-PR2 bug: a plain counter written under mu but read lock-free
    // by Size(). Kept compilable (checker builds only) behind the runtime
    // toggle sched::SetCuckooShardSizeRace so the schedule checker can
    // prove it rediscovers the race deterministically.
    sched::NonAtomic<std::size_t> racy_size{0};
#endif
    Xoshiro256 rng GUARDED_BY(mu){0xC0C0C0C0DEADBEEFULL};
  };

  // Size-counter bump with the shard lock held. Routed through the racy
  // plain counter when the reintroduce-race test toggle is on.
  static void BumpSizeLocked(Shard& shard, std::ptrdiff_t delta)
      REQUIRES(shard.mu) {
#if defined(PD2GL_SCHEDCHECK)
    if (sched::CuckooShardSizeRace()) {
      shard.racy_size.store(shard.racy_size.load() +
                            static_cast<std::size_t>(delta));
      return;
    }
#endif
    if (delta >= 0) {
      // order: counter only; Size() sums a snapshot and never infers
      // bucket state from it.
      shard.size.fetch_add(static_cast<std::size_t>(delta),
                           std::memory_order_relaxed);
    } else {
      // order: counter only, as above.
      shard.size.fetch_sub(static_cast<std::size_t>(-delta),
                           std::memory_order_relaxed);
    }
  }

  static std::size_t RoundPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& ShardFor(VertexId key) {
    const std::uint64_t h = HashVertexId(key, /*seed=*/0x517CC1B727220A95ULL);
    return shards_[h & (shards_.size() - 1)];
  }
  const Shard& ShardFor(VertexId key) const {
    return const_cast<CuckooMap*>(this)->ShardFor(key);
  }

  static std::size_t BucketIndex(const Shard& shard, VertexId key,
                                 std::size_t which) REQUIRES(shard.mu) {
    static constexpr std::uint64_t kSeeds[2] = {0x9E3779B97F4A7C15ULL,
                                                0xD1B54A32D192ED03ULL};
    return HashVertexId(key, kSeeds[which]) & (shard.buckets.size() - 1);
  }

  V* FindLocked(Shard& shard, VertexId key) REQUIRES(shard.mu) {
    for (std::size_t h = 0; h < 2; ++h) {
      Bucket& b = shard.buckets[BucketIndex(shard, key, h)];
      for (auto& slot : b.slots) {
        if (slot.value && slot.key == key) return slot.value.get();
      }
    }
    return nullptr;
  }

  V* FindOrCreateLocked(Shard& shard, VertexId key) REQUIRES(shard.mu) {
    if (V* v = FindLocked(shard, key)) return v;
    auto value = std::make_unique<V>();
    V* raw = value.get();
    InsertLocked(shard, key, std::move(value));
    BumpSizeLocked(shard, +1);
    return raw;
  }

  void InsertLocked(Shard& shard, VertexId key, std::unique_ptr<V> value)
      REQUIRES(shard.mu) {
    static constexpr std::size_t kMaxEvictions = 512;
    for (std::size_t attempt = 0; attempt < kMaxEvictions; ++attempt) {
      // Try both candidate buckets for a free slot.
      for (std::size_t h = 0; h < 2; ++h) {
        Bucket& b = shard.buckets[BucketIndex(shard, key, h)];
        for (auto& slot : b.slots) {
          if (!slot.value) {
            slot.key = key;
            slot.value = std::move(value);
            return;
          }
        }
      }
      // Random-walk eviction: displace a random occupant of one candidate
      // bucket to its alternate location and retry with the evictee.
      const std::size_t h = shard.rng.NextUint64(2);
      Bucket& b = shard.buckets[BucketIndex(shard, key, h)];
      Slot& victim = b.slots[shard.rng.NextUint64(kSlotsPerBucket)];
      std::swap(key, victim.key);
      std::swap(value, victim.value);
    }
    // Eviction walk failed: double the table and retry (rare).
    GrowLocked(shard);
    InsertLocked(shard, key, std::move(value));
  }

  void GrowLocked(Shard& shard) REQUIRES(shard.mu) {
    std::vector<Bucket> old = std::move(shard.buckets);
    shard.buckets = std::vector<Bucket>(old.size() * 2);
    for (auto& bucket : old) {
      for (auto& slot : bucket.slots) {
        if (slot.value) InsertLocked(shard, slot.key, std::move(slot.value));
      }
    }
  }

  std::vector<Shard> shards_;
};

}  // namespace platod2gl
