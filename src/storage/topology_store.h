// TopologyStore: the dynamic graph-topology layer of PlatoD2GL for one
// edge relation (paper Section IV-B).
//
// A concurrent cuckoo hashmap maps each source vertex to its samtree;
// vertices without out-edges occupy no storage at all (Example 1). All
// mutation entry points are thread-safe per source vertex: two threads
// updating different sources never block each other beyond the map shard
// spinlock.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/types.h"
#include "core/samtree.h"
#include "storage/cuckoo_map.h"

namespace platod2gl {

class TopologyStore {
 public:
  explicit TopologyStore(SamtreeConfig config = {},
                         std::size_t num_shards = 64);

  /// Insert edge (src, dst, w); refreshes the weight if the edge exists.
  void AddEdge(VertexId src, VertexId dst, Weight w);

  /// Bulk-load insert for duplicate-free streams: skips the leaf
  /// duplicate scan (see Samtree::InsertUnchecked).
  void AddEdgeUnchecked(VertexId src, VertexId dst, Weight w);

  /// Install a fully-built samtree (see Samtree::BulkBuild) as src's
  /// neighbourhood. If src already stores edges the tree is merged in
  /// edge-by-edge instead, so no existing data is dropped.
  void InstallTree(VertexId src, Samtree&& tree);

  /// In-place weight update; returns false if the edge does not exist.
  bool UpdateEdge(VertexId src, VertexId dst, Weight w);

  /// Delete an edge; returns false if it does not exist.
  bool RemoveEdge(VertexId src, VertexId dst);

  /// Apply one dynamic update according to its kind.
  void Apply(const EdgeUpdate& update);

  bool HasEdge(VertexId src, VertexId dst) const;
  std::optional<Weight> EdgeWeight(VertexId src, VertexId dst) const;

  /// Out-degree of src (0 when src stores nothing).
  std::size_t Degree(VertexId src) const;

  /// Sum of out-edge weights of src.
  Weight VertexWeight(VertexId src) const;

  /// Current modification stamp of src's samtree (0 when src stores
  /// nothing — real stamps start at 1). Every mutation path — Apply,
  /// AddEdge/UpdateEdge/RemoveEdge, InstallTree's merge, RemoveSource's
  /// reset and the batch updater's direct tree access — advances it, so
  /// derived structures (the hot-vertex sampling cache) can validate
  /// cached state with one load. See Samtree::version().
  std::uint64_t TreeVersion(VertexId src) const {
    const Samtree* tree = trees_.FindUnsafe(src);
    return tree ? tree->version() : 0;
  }

  /// Draw k out-neighbours of src with replacement; returns false (and
  /// leaves *out* untouched) when src has no out-edges.
  bool SampleNeighbors(VertexId src, std::size_t k, bool weighted,
                       Xoshiro256& rng, std::vector<VertexId>* out) const;

  /// Draw up to k *distinct* out-neighbours of src, weighted, without
  /// replacement (see Samtree::SampleWeightedDistinct). Takes the shard
  /// lock for the duration since the tree is temporarily mutated.
  std::vector<VertexId> SampleNeighborsDistinct(VertexId src, std::size_t k,
                                                Xoshiro256& rng);

  /// Remove src and all of its out-edges; returns the number removed.
  std::size_t RemoveSource(VertexId src);

  /// Number of out-neighbours of src with ID in [lo, hi].
  std::size_t CountNeighborsInRange(VertexId src, VertexId lo,
                                    VertexId hi) const;

  /// All (neighbour, weight) pairs of src.
  std::vector<std::pair<VertexId, Weight>> Neighbors(VertexId src) const;

  /// Number of source vertices with at least one out-edge.
  std::size_t NumSources() const { return trees_.Size(); }

  /// Number of live edges.
  std::size_t NumEdges() const {
    // order: stat tally, read for reporting only
    return num_edges_.load(std::memory_order_relaxed);
  }

  /// Edge-counter hooks for external updaters (the batch updater) that
  /// mutate samtrees through FindTree() rather than the Apply() path.
  void NoteEdgeInserted() {
    // order: stat tally, read for reporting only
    num_edges_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteEdgeRemoved() {
    // order: stat tally, read for reporting only
    num_edges_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Get-or-create the samtree of src and return its (heap-pinned)
  /// address. The map access is shard-locked; the returned tree may be
  /// mutated lock-free afterwards by a caller that owns it exclusively
  /// (the batch updater's per-source partitioning guarantees this).
  Samtree* GetOrCreateTree(VertexId src) {
    Samtree* tree = trees_.GetOrCreate(src);
    if (tree->empty()) *tree = Samtree(config_);
    return tree;
  }

  /// Direct samtree access for the batch updater (nullptr when absent).
  /// See CuckooMap::FindUnsafe for the synchronisation contract.
  Samtree* FindTree(VertexId src) { return trees_.FindUnsafe(src); }
  const Samtree* FindTree(VertexId src) const {
    return trees_.FindUnsafe(src);
  }

  /// Get-or-create the samtree of src and run fn on it under the shard
  /// lock.
  template <typename Fn>
  void WithTree(VertexId src, Fn&& fn) {
    trees_.With(src, [&](Samtree& t) {
      // The map default-constructs trees; adopt the store's configuration
      // before the first edge lands (a no-op for non-empty trees).
      if (t.empty()) t = Samtree(config_);
      fn(t);
    });
  }

  /// Visit (source, samtree) pairs. Not thread-safe against writers.
  template <typename Fn>
  void ForEachSource(Fn&& fn) const {
    trees_.ForEach(std::forward<Fn>(fn));
  }

  /// Memory of topology + indexes + map keys (Table IV accounting).
  MemoryBreakdown Memory() const;
  std::size_t MemoryUsage() const { return Memory().Total(); }

  /// Aggregate samtree op counters over all trees (Table V).
  SamtreeOpStats AggregateStats() const;

  /// Verify every samtree's invariants plus the store-level aggregate:
  /// the lock-free edge counter must equal the sum of tree sizes (it is
  /// maintained by every mutation path, including the batch updater's
  /// NoteEdgeInserted/NoteEdgeRemoved hooks, so drift means a missed
  /// hook). Returns true when all hold, otherwise fills *error with the
  /// first failure. O(total edges), quiescent-phase only — test/debug
  /// tooling, not a serving-path call.
  bool CheckAllInvariants(std::string* error) const;

  const SamtreeConfig& config() const { return config_; }

 private:
  SamtreeConfig config_;
  // Shard-local node arena: every samtree of this store carves its nodes
  // here, so a sampling descent strides one contiguous region instead of
  // the global heap (docs/sampling_simd.md). Declared before trees_ —
  // members destroy in reverse order, so every node dies before its
  // arena. Internally locked: the batch updater grows distinct trees
  // from several threads at once.
  NodeArena arena_;
  CuckooMap<Samtree> trees_;
  std::atomic<std::size_t> num_edges_{0};
};

}  // namespace platod2gl
