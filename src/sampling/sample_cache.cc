#include "sampling/sample_cache.h"

#include <algorithm>
#include <iterator>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "index/alias_table.h"

namespace platod2gl {

namespace {

struct Key {
  VertexId v = kInvalidVertex;
  EdgeType t = 0;

  friend bool operator==(const Key&, const Key&) = default;
};

std::uint64_t MixKey(VertexId v, EdgeType t) {
  // SplitMix64 finalizer over the combined 64+32 bits.
  std::uint64_t z = v ^ (static_cast<std::uint64_t>(t) << 56) ^
                    (static_cast<std::uint64_t>(t) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct KeyHasher {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(MixKey(k.v, k.t));
  }
};

}  // namespace

/// Immutable once published; draws need no lock.
struct SampleCache::Entry {
  std::uint64_t version = 0;
  std::vector<VertexId> ids;  ///< flat neighbour array (uniform draws)
  AliasTable alias;           ///< O(1) weighted draws into `ids`

  void Draw(bool weighted, std::size_t k, Xoshiro256& rng,
            std::vector<VertexId>* out) const {
    out->reserve(out->size() + k);
    if (weighted) {
      // A batch request is served by ONE alias call: the whole fanout
      // resolves inside AliasTable::SampleBatch (same draw sequence as
      // k single Sample() calls), instead of paying per-draw call and
      // size-load overhead k times on the hottest path in the system.
      std::uint32_t stack_idx[64];
      std::vector<std::uint32_t> heap_idx;
      std::uint32_t* idx = stack_idx;
      if (k > std::size(stack_idx)) {
        heap_idx.resize(k);
        idx = heap_idx.data();
      }
      alias.SampleBatch(k, rng, idx);
      for (std::size_t i = 0; i < k; ++i) out->push_back(ids[idx[i]]);
    } else {
      const std::uint64_t n = ids.size();
      for (std::size_t i = 0; i < k; ++i) {
        out->push_back(ids[rng.NextUint64(n)]);
      }
    }
  }

  std::size_t MemoryUsage() const {
    return sizeof(Entry) + ids.capacity() * sizeof(VertexId) +
           alias.MemoryUsage();
  }
};

struct SampleCache::Shard {
  using EntryPtr = std::shared_ptr<const Entry>;
  using LruList = std::list<std::pair<Key, EntryPtr>>;

  mutable Spinlock mu;
  LruList order GUARDED_BY(mu);  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHasher> index GUARDED_BY(mu);
  std::unordered_map<Key, std::uint32_t, KeyHasher> warm
      GUARDED_BY(mu);  // miss counts

  /// Lookup, refreshing recency.
  EntryPtr Get(const Key& key) REQUIRES(mu) {
    auto it = index.find(key);
    if (it == index.end()) return nullptr;
    order.splice(order.begin(), order, it->second);
    return it->second->second;
  }

  /// Insert or overwrite; returns the number of evictions performed.
  std::size_t Put(const Key& key, EntryPtr entry, std::size_t capacity)
      REQUIRES(mu) {
    auto it = index.find(key);
    if (it != index.end()) {
      it->second->second = std::move(entry);
      order.splice(order.begin(), order, it->second);
      return 0;
    }
    std::size_t evicted = 0;
    while (index.size() >= capacity && !order.empty()) {
      index.erase(order.back().first);
      order.pop_back();
      ++evicted;
    }
    order.emplace_front(key, std::move(entry));
    index.emplace(key, order.begin());
    return evicted;
  }
};

SampleCache::SampleCache(SampleCacheConfig config) : config_(config) {
  config_.num_shards = std::max<std::size_t>(1, config_.num_shards);
  config_.capacity = std::max(config_.num_shards, config_.capacity);
  shard_capacity_ = config_.capacity / config_.num_shards;
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SampleCache::~SampleCache() = default;

SampleCache::Shard& SampleCache::ShardFor(VertexId v, EdgeType type) {
  return *shards_[MixKey(v, type) % shards_.size()];
}

std::shared_ptr<const SampleCache::Entry> SampleCache::BuildEntry(
    const Samtree& tree) const {
  auto entry = std::make_shared<Entry>();
  // Stamp *before* snapshotting: a mutation racing the snapshot leaves the
  // entry tagged with a superseded version, which only costs a rebuild on
  // the next hit — never a stale entry that validates.
  entry->version = tree.version();
  entry->ids.reserve(tree.size());
  std::vector<Weight> weights;
  weights.reserve(tree.size());
  tree.ForEachNeighbor([&](VertexId id, Weight w) {
    entry->ids.push_back(id);
    weights.push_back(w);
  });
  entry->alias = AliasTable(weights);
  return entry;
}

bool SampleCache::Sample(VertexId v, EdgeType type, const Samtree& tree,
                         bool weighted, std::size_t k, Xoshiro256& rng,
                         std::vector<VertexId>* out) {
  if (tree.empty()) return false;
  const std::uint64_t now = tree.version();
  Shard& shard = ShardFor(v, type);
  const Key key{v, type};

  std::shared_ptr<const Entry> entry;
  {
    SpinlockGuard lock(shard.mu);
    entry = shard.Get(key);
  }

  if (entry && entry->version == now) {
    hits_.Add();
    entry->Draw(weighted, k, rng, out);
    return true;
  }

  if (entry) {
    // Invalidation path: the tree changed since the entry was built.
    stale_hits_.Add();
    entry = BuildEntry(tree);
    std::size_t evicted;
    {
      SpinlockGuard lock(shard.mu);
      evicted = shard.Put(key, entry, shard_capacity_);
    }
    rebuilds_.Add();
    if (evicted) evictions_.Add(evicted);
    entry->Draw(weighted, k, rng, out);
    return true;
  }

  misses_.Add();
  if (tree.size() < config_.min_degree) {
    cold_rejects_.Add();
    return false;
  }

  bool admit;
  {
    SpinlockGuard lock(shard.mu);
    admit = ++shard.warm[key] >= config_.admit_after_misses;
    if (admit) {
      shard.warm.erase(key);
    } else if (shard.warm.size() > 8 * shard_capacity_) {
      // Bound the admission side-table: forgetting warm-up progress only
      // delays admission, it never corrupts anything.
      shard.warm.clear();
    }
  }
  if (!admit) {
    cold_rejects_.Add();
    return false;
  }

  entry = BuildEntry(tree);
  std::size_t evicted;
  {
    SpinlockGuard lock(shard.mu);
    evicted = shard.Put(key, entry, shard_capacity_);
  }
  admissions_.Add();
  if (evicted) evictions_.Add(evicted);
  entry->Draw(weighted, k, rng, out);
  return true;
}

void SampleCache::Clear() {
  for (auto& shard : shards_) {
    SpinlockGuard lock(shard->mu);
    shard->order.clear();
    shard->index.clear();
    shard->warm.clear();
  }
}

std::size_t SampleCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    SpinlockGuard lock(shard->mu);
    n += shard->index.size();
  }
  return n;
}

std::size_t SampleCache::MemoryUsage() const {
  std::size_t bytes = sizeof(SampleCache);
  for (const auto& shard : shards_) {
    SpinlockGuard lock(shard->mu);
    bytes += sizeof(Shard);
    for (const auto& [key, entry] : shard->order) {
      (void)key;
      bytes += entry->MemoryUsage();
    }
  }
  return bytes;
}

SampleCacheStats SampleCache::Stats() const {
  SampleCacheStats s;
  s.hits = hits_.Value() - baseline_.hits;
  s.misses = misses_.Value() - baseline_.misses;
  s.stale_hits = stale_hits_.Value() - baseline_.stale_hits;
  s.rebuilds = rebuilds_.Value() - baseline_.rebuilds;
  s.admissions = admissions_.Value() - baseline_.admissions;
  s.evictions = evictions_.Value() - baseline_.evictions;
  s.cold_rejects = cold_rejects_.Value() - baseline_.cold_rejects;
  return s;
}

void SampleCache::ResetStats() {
  // DeltaSince-style window restart: record the monotone counters as the
  // new baseline instead of zeroing them, so registry exports never see a
  // counter go backwards.
  baseline_.hits = hits_.Value();
  baseline_.misses = misses_.Value();
  baseline_.stale_hits = stale_hits_.Value();
  baseline_.rebuilds = rebuilds_.Value();
  baseline_.admissions = admissions_.Value();
  baseline_.evictions = evictions_.Value();
  baseline_.cold_rejects = cold_rejects_.Value();
}

void SampleCache::RegisterWith(obs::MetricRegistry* registry,
                               const obs::Labels& labels) const {
  registry->RegisterExternalCounter("pd2gl_sample_cache_hits", labels, &hits_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_misses", labels,
                                    &misses_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_stale_hits", labels,
                                    &stale_hits_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_rebuilds", labels,
                                    &rebuilds_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_admissions", labels,
                                    &admissions_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_evictions", labels,
                                    &evictions_);
  registry->RegisterExternalCounter("pd2gl_sample_cache_cold_rejects", labels,
                                    &cold_rejects_);
}

}  // namespace platod2gl
