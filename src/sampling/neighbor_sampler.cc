#include "sampling/neighbor_sampler.h"

#include <algorithm>

namespace platod2gl {

NeighborBatch NeighborSampler::Sample(const std::vector<VertexId>& seeds,
                                      const Options& options,
                                      Xoshiro256& rng) const {
  NeighborBatch batch;
  batch.offsets.reserve(seeds.size() + 1);
  batch.offsets.push_back(0);
  batch.neighbors.reserve(seeds.size() * options.fanout);
  for (VertexId seed : seeds) {
    graph_->SampleNeighbors(seed, options.fanout, options.weighted, rng,
                            &batch.neighbors, options.edge_type);
    batch.offsets.push_back(batch.neighbors.size());
  }
  return batch;
}

NeighborBatch NeighborSampler::SampleParallel(
    const std::vector<VertexId>& seeds, const Options& options,
    ThreadPool& pool, std::uint64_t seed) const {
  const std::size_t num_chunks = pool.num_threads();
  const std::size_t chunk =
      (seeds.size() + num_chunks - 1) / std::max<std::size_t>(1, num_chunks);

  std::vector<NeighborBatch> partials(num_chunks);
  pool.ParallelFor(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(seeds.size(), begin + chunk);
    if (begin >= end) return;
    Xoshiro256 rng(seed ^ (0x9E3779B97F4A7C15ULL * (c + 1)));
    std::vector<VertexId> slice(seeds.begin() + begin, seeds.begin() + end);
    partials[c] = Sample(slice, options, rng);
  });

  NeighborBatch out;
  out.offsets.push_back(0);
  for (const NeighborBatch& p : partials) {
    const std::size_t base = out.neighbors.size();
    out.neighbors.insert(out.neighbors.end(), p.neighbors.begin(),
                         p.neighbors.end());
    for (std::size_t i = 1; i < p.offsets.size(); ++i) {
      out.offsets.push_back(base + p.offsets[i]);
    }
  }
  return out;
}

}  // namespace platod2gl
