#include "sampling/neighbor_sampler.h"

#include <algorithm>

namespace platod2gl {

NeighborBatch NeighborSampler::Sample(const std::vector<VertexId>& seeds,
                                      const Options& options,
                                      Xoshiro256& rng) const {
  NeighborBatch batch;
  batch.offsets.reserve(seeds.size() + 1);
  batch.offsets.push_back(0);
  batch.neighbors.reserve(seeds.size() * options.fanout);
  for (VertexId seed : seeds) {
    graph_->SampleNeighbors(seed, options.fanout, options.weighted, rng,
                            &batch.neighbors, options.edge_type);
    batch.offsets.push_back(batch.neighbors.size());
  }
  return batch;
}

NeighborBatch NeighborSampler::SampleParallel(
    const std::vector<VertexId>& seeds, const Options& options,
    ThreadPool& pool, std::uint64_t seed) const {
  // Over-decompose into many more chunks than threads: with one chunk per
  // thread a single run of high-degree seeds stalls the whole batch, since
  // per-seed sampling cost is proportional to tree height (and fanout).
  // Finer chunks let the pool rebalance; each chunk samples straight out
  // of the shared seed array instead of copying its slice.
  constexpr std::size_t kChunksPerThread = 8;
  const std::size_t num_chunks =
      std::min(seeds.size(),
               std::max<std::size_t>(1, pool.num_threads() * kChunksPerThread));
  if (num_chunks == 0) {
    NeighborBatch empty;
    empty.offsets.push_back(0);
    return empty;
  }
  const std::size_t chunk = (seeds.size() + num_chunks - 1) / num_chunks;

  // One generator per chunk, split from a single base stream by jumping
  // 2^128 steps per chunk (Xoshiro256::Jump): provably disjoint
  // substreams of one seed, built once up front — generator construction
  // and seeding stay out of the sampling loop entirely (the previous
  // code re-expanded a SplitMix seed inside every chunk task).
  std::vector<Xoshiro256> rngs;
  rngs.reserve(num_chunks);
  Xoshiro256 base(seed);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    rngs.push_back(base);
    base.Jump();
  }

  std::vector<NeighborBatch> partials(num_chunks);
  pool.ParallelFor(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(seeds.size(), begin + chunk);
    if (begin >= end) return;
    Xoshiro256& rng = rngs[c];
    NeighborBatch& p = partials[c];
    p.offsets.reserve(end - begin + 1);
    p.offsets.push_back(0);
    p.neighbors.reserve((end - begin) * options.fanout);
    for (std::size_t i = begin; i < end; ++i) {
      graph_->SampleNeighbors(seeds[i], options.fanout, options.weighted,
                              rng, &p.neighbors, options.edge_type);
      p.offsets.push_back(p.neighbors.size());
    }
  });

  NeighborBatch out;
  out.offsets.reserve(seeds.size() + 1);
  out.offsets.push_back(0);
  for (const NeighborBatch& p : partials) {
    const std::size_t base = out.neighbors.size();
    out.neighbors.insert(out.neighbors.end(), p.neighbors.begin(),
                         p.neighbors.end());
    for (std::size_t i = 1; i < p.offsets.size(); ++i) {
      out.offsets.push_back(base + p.offsets[i]);
    }
  }
  return out;
}

}  // namespace platod2gl
