#include "sampling/node_sampler.h"

namespace platod2gl {

void NodeSampler::Refresh() {
  vertices_.clear();
  std::vector<Weight> degrees;
  store_->ForEachSource([&](VertexId v, const Samtree& tree) {
    if (tree.empty()) return;
    vertices_.push_back(v);
    degrees.push_back(static_cast<Weight>(tree.size()));
  });
  degree_cstable_ = CSTable(degrees);
}

std::vector<VertexId> NodeSampler::SampleUniform(std::size_t k,
                                                 Xoshiro256& rng) const {
  std::vector<VertexId> out;
  if (vertices_.empty()) return out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(vertices_[rng.NextUint64(vertices_.size())]);
  }
  return out;
}

std::vector<VertexId> NodeSampler::SampleByDegree(std::size_t k,
                                                  Xoshiro256& rng) const {
  std::vector<VertexId> out;
  if (vertices_.empty()) return out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(vertices_[degree_cstable_.Sample(rng)]);
  }
  return out;
}

}  // namespace platod2gl
