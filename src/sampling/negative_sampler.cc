#include "sampling/negative_sampler.h"

#include <cmath>

namespace platod2gl {

NegativeSampler::NegativeSampler(const TopologyStore* store, double alpha,
                                 VertexId range_lo, VertexId range_hi)
    : store_(store), alpha_(alpha), range_lo_(range_lo),
      range_hi_(range_hi) {
  Refresh();
}

void NegativeSampler::Refresh() {
  candidates_.clear();
  std::vector<Weight> weights;
  store_->ForEachSource([&](VertexId v, const Samtree& tree) {
    if (tree.empty() || v < range_lo_ || v > range_hi_) return;
    candidates_.push_back(v);
    weights.push_back(
        std::pow(static_cast<double>(tree.size()), alpha_));
  });
  table_ = weights.empty() ? AliasTable() : AliasTable(weights);
}

std::vector<VertexId> NegativeSampler::Sample(
    std::size_t k, Xoshiro256& rng,
    const std::function<bool(VertexId)>& is_positive) const {
  std::vector<VertexId> out;
  if (candidates_.empty()) return out;
  out.reserve(k);
  // Bounded rejection: if the positive set covers almost the whole
  // population, give up on a draw rather than looping forever.
  constexpr int kMaxRejects = 64;
  for (std::size_t i = 0; i < k; ++i) {
    for (int attempt = 0; attempt < kMaxRejects; ++attempt) {
      const VertexId cand = candidates_[table_.Sample(rng)];
      if (is_positive && is_positive(cand)) continue;
      out.push_back(cand);
      break;
    }
  }
  return out;
}

}  // namespace platod2gl
