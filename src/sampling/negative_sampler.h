// NegativeSampler: draws negative items for contrastive training
// (skip-gram, BPR, sampled-softmax).
//
// The standard recipe: candidates are drawn proportionally to
// popularity^alpha (alpha = 0.75 in the word2vec lineage; popularity here
// is in-degree estimated from the bi-directed topology, i.e. the item's
// out-degree over the mirrored relation), and draws that collide with a
// caller-supplied positive set are rejected so "negatives" are actually
// negative.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "index/alias_table.h"
#include "storage/topology_store.h"

namespace platod2gl {

class NegativeSampler {
 public:
  /// Snapshot the candidate population from the store's source vertices,
  /// weighting each by degree^alpha. Restricting to an ID range selects
  /// one vertex type from a heterogeneous graph (e.g. only live-rooms).
  NegativeSampler(const TopologyStore* store, double alpha = 0.75,
                  VertexId range_lo = 0,
                  VertexId range_hi = kInvalidVertex);

  /// Re-snapshot after topology changes.
  void Refresh();

  std::size_t population() const { return candidates_.size(); }

  /// Draw k negatives, rejecting any candidate for which `is_positive`
  /// returns true (pass {} to skip filtering). A candidate may appear
  /// more than once (sampling with replacement).
  std::vector<VertexId> Sample(
      std::size_t k, Xoshiro256& rng,
      const std::function<bool(VertexId)>& is_positive = {}) const;

 private:
  const TopologyStore* store_;
  double alpha_;
  VertexId range_lo_;
  VertexId range_hi_;
  std::vector<VertexId> candidates_;
  AliasTable table_;
};

}  // namespace platod2gl
