#include "sampling/subgraph_sampler.h"

#include <algorithm>
#include <unordered_map>

namespace platod2gl {

SampledSubgraph SubgraphSampler::Sample(const std::vector<VertexId>& seeds,
                                        const std::vector<Hop>& hops,
                                        Xoshiro256& rng) const {
  SampledSubgraph sg;
  sg.layers.push_back(seeds);

  std::vector<VertexId> scratch;
  for (const Hop& hop : hops) {
    const std::vector<VertexId>& frontier = sg.layers.back();
    std::vector<VertexId> next;
    std::vector<std::uint32_t> parents;
    next.reserve(frontier.size() * hop.fanout);
    parents.reserve(frontier.size() * hop.fanout);

    for (std::size_t i = 0; i < frontier.size(); ++i) {
      scratch.clear();
      if (!graph_->SampleNeighbors(frontier[i], hop.fanout, hop.weighted,
                                   rng, &scratch, hop.edge_type)) {
        continue;  // dangling frontier vertex: no expansion
      }
      for (VertexId v : scratch) {
        next.push_back(v);
        parents.push_back(static_cast<std::uint32_t>(i));
      }
    }
    sg.layers.push_back(std::move(next));
    sg.parents.push_back(std::move(parents));
  }
  return sg;
}

CompactSubgraph SubgraphSampler::SampleUnique(
    const std::vector<VertexId>& seeds, const std::vector<Hop>& hops,
    Xoshiro256& rng) const {
  CompactSubgraph sg;
  // Seeds dedup too (a batch may repeat a hot seed).
  {
    std::vector<VertexId> uniq;
    std::unordered_map<VertexId, std::uint32_t> index;
    for (VertexId s : seeds) {
      if (index.emplace(s, uniq.size()).second) uniq.push_back(s);
    }
    sg.layers.push_back(std::move(uniq));
  }

  std::vector<VertexId> scratch;
  for (const Hop& hop : hops) {
    const std::vector<VertexId>& frontier = sg.layers.back();
    std::vector<VertexId> next;
    std::unordered_map<VertexId, std::uint32_t> index;
    // Collect every sampled (parent, child) pair flat, then sort + unique
    // once per hop: on skewed graphs the same hub pair is drawn
    // fanout-fold, and a node-based std::set pays an allocation plus
    // O(log n) pointer chasing per draw where the vector pays amortised
    // O(1).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(frontier.size() * hop.fanout);

    for (std::uint32_t i = 0; i < frontier.size(); ++i) {
      scratch.clear();
      if (!graph_->SampleNeighbors(frontier[i], hop.fanout, hop.weighted,
                                   rng, &scratch, hop.edge_type)) {
        continue;
      }
      for (VertexId v : scratch) {
        auto [it, inserted] =
            index.emplace(v, static_cast<std::uint32_t>(next.size()));
        if (inserted) next.push_back(v);
        edges.emplace_back(i, it->second);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    sg.layers.push_back(std::move(next));
    sg.hop_edges.push_back(std::move(edges));
  }
  return sg;
}

}  // namespace platod2gl
