#include "sampling/subgraph_sampler.h"

#include <set>
#include <unordered_map>

namespace platod2gl {

SampledSubgraph SubgraphSampler::Sample(const std::vector<VertexId>& seeds,
                                        const std::vector<Hop>& hops,
                                        Xoshiro256& rng) const {
  SampledSubgraph sg;
  sg.layers.push_back(seeds);

  std::vector<VertexId> scratch;
  for (const Hop& hop : hops) {
    const std::vector<VertexId>& frontier = sg.layers.back();
    std::vector<VertexId> next;
    std::vector<std::uint32_t> parents;
    next.reserve(frontier.size() * hop.fanout);
    parents.reserve(frontier.size() * hop.fanout);

    for (std::size_t i = 0; i < frontier.size(); ++i) {
      scratch.clear();
      if (!graph_->SampleNeighbors(frontier[i], hop.fanout, hop.weighted,
                                   rng, &scratch, hop.edge_type)) {
        continue;  // dangling frontier vertex: no expansion
      }
      for (VertexId v : scratch) {
        next.push_back(v);
        parents.push_back(static_cast<std::uint32_t>(i));
      }
    }
    sg.layers.push_back(std::move(next));
    sg.parents.push_back(std::move(parents));
  }
  return sg;
}

CompactSubgraph SubgraphSampler::SampleUnique(
    const std::vector<VertexId>& seeds, const std::vector<Hop>& hops,
    Xoshiro256& rng) const {
  CompactSubgraph sg;
  // Seeds dedup too (a batch may repeat a hot seed).
  {
    std::vector<VertexId> uniq;
    std::unordered_map<VertexId, std::uint32_t> index;
    for (VertexId s : seeds) {
      if (index.emplace(s, uniq.size()).second) uniq.push_back(s);
    }
    sg.layers.push_back(std::move(uniq));
  }

  std::vector<VertexId> scratch;
  for (const Hop& hop : hops) {
    const std::vector<VertexId>& frontier = sg.layers.back();
    std::vector<VertexId> next;
    std::unordered_map<VertexId, std::uint32_t> index;
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;

    for (std::uint32_t i = 0; i < frontier.size(); ++i) {
      scratch.clear();
      if (!graph_->SampleNeighbors(frontier[i], hop.fanout, hop.weighted,
                                   rng, &scratch, hop.edge_type)) {
        continue;
      }
      for (VertexId v : scratch) {
        auto [it, inserted] =
            index.emplace(v, static_cast<std::uint32_t>(next.size()));
        if (inserted) next.push_back(v);
        edges.emplace(i, it->second);
      }
    }
    sg.layers.push_back(std::move(next));
    sg.hop_edges.emplace_back(edges.begin(), edges.end());
  }
  return sg;
}

}  // namespace platod2gl
