// NeighborSampler: the "neighbor sampling" operator of PlatoD2GL's
// TF-based operator layer (paper Section III): for every vertex of a
// minibatch, draw a fixed number of (weighted or uniform) out-neighbours.
//
// Results come back in the flat layout GNN kernels consume: one vector of
// sampled IDs plus per-seed offsets, so layer l+1's gather is a single
// contiguous pass.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

/// Flat batched sampling result: neighbours of seed i live at
/// [offsets[i], offsets[i+1]) in `neighbors`.
struct NeighborBatch {
  std::vector<VertexId> neighbors;
  std::vector<std::size_t> offsets;  // size = #seeds + 1

  std::size_t NumSeeds() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

/// Per-seed delivery status of a batched sampling call served by a
/// fault-prone backend (dist/cluster.h). kDegraded marks a seed whose
/// owning shard could not be reached within the retry budget / deadline:
/// by contract its range in the batch is empty (the degraded-result
/// marker), distinguishable from a genuinely isolated vertex only through
/// this status — callers that care must check it. kStale marks a seed
/// served by a read replica after its primary failed (docs/replication.md):
/// the range is real neighbour data, at most `staleness_budget` log
/// entries behind the primary (and exact when the replica was caught up).
enum class SeedStatus : std::uint8_t { kOk = 0, kDegraded = 1, kStale = 2 };

class NeighborSampler {
 public:
  struct Options {
    std::size_t fanout = 50;   ///< samples per seed (paper uses 50)
    bool weighted = true;      ///< weighted vs uniform
    EdgeType edge_type = 0;    ///< relation to traverse
  };

  explicit NeighborSampler(const GraphStore* graph) : graph_(graph) {}

  /// Sample neighbours for every seed. Seeds without out-edges contribute
  /// an empty range.
  NeighborBatch Sample(const std::vector<VertexId>& seeds,
                       const Options& options, Xoshiro256& rng) const;

  /// Parallel variant: seeds are split across the pool; per-thread RNGs
  /// are derived from `seed` so results are deterministic for a fixed
  /// thread count.
  NeighborBatch SampleParallel(const std::vector<VertexId>& seeds,
                               const Options& options, ThreadPool& pool,
                               std::uint64_t seed) const;

 private:
  const GraphStore* graph_;
};

}  // namespace platod2gl
