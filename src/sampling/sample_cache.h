// SampleCache: O(1) hot-vertex neighbour sampling over the dynamic
// samtree store.
//
// Production minibatch traffic is heavily power-law skewed: a small set of
// high-degree vertices absorbs most SampleNeighbors calls. The samtree
// descent is O(log n) per draw — the right trade-off for *dynamic*
// neighbourhoods, but pure overhead when the same hot neighbourhood is
// sampled thousands of times between updates. This cache keeps, per
// (vertex, edge relation), a flat neighbour-ID array plus a Walker/Vose
// alias table, giving AliGraph-style O(1) draws (uniform and weighted)
// without giving up dynamic updates:
//
//  * Correctness — each entry is stamped with Samtree::version() at build
//    time. Every tree mutation stores a fresh process-unique stamp, so a
//    hit is valid iff the entry's stamp still equals the tree's. Stale
//    entries are rebuilt lazily off the tree; the update path itself pays
//    only one relaxed atomic increment.
//  * Admission — entries are built only for vertices whose degree clears
//    `min_degree` AND that have already missed `admit_after_misses` times,
//    so one-off cold lookups never pollute the cache or pay the O(n)
//    build.
//  * Bounded memory — capacity is split across spinlocked shards, each an
//    LRU; concurrency comes from sharding plus immutable shared_ptr
//    entries (draws happen outside the shard lock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "core/samtree.h"
#include "obs/metrics.h"

namespace platod2gl {

struct SampleCacheConfig {
  bool enabled = true;
  std::size_t capacity = 1 << 16;   ///< max entries across all shards
  std::size_t num_shards = 16;
  std::size_t min_degree = 128;     ///< admission: degree gate
  std::uint32_t admit_after_misses = 2;  ///< admission: traffic gate
};

/// Monotonic counters, mirrored out of the cache's obs::Counter tallies
/// (common/histogram.h-style lock-free recording, snapshot on read).
/// Stats() subtracts the ResetStats() baseline, so the numbers here are
/// window deltas while the registry series stay monotone.
struct SampleCacheStats {
  std::uint64_t hits = 0;          ///< served from a valid entry
  std::uint64_t misses = 0;        ///< no entry for the key
  std::uint64_t stale_hits = 0;    ///< entry found but version mismatched
  std::uint64_t rebuilds = 0;      ///< stale entries rebuilt in place
  std::uint64_t admissions = 0;    ///< entries built for new keys
  std::uint64_t evictions = 0;     ///< entries dropped by LRU pressure
  std::uint64_t cold_rejects = 0;  ///< misses gated out by admission

  double HitRate() const {
    const std::uint64_t total = hits + stale_hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

class SampleCache {
 public:
  explicit SampleCache(SampleCacheConfig config = {});
  ~SampleCache();

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// Try to serve k draws (with replacement) from (v, type)'s cached
  /// table, validating against `tree`'s current version. On a valid hit
  /// the draws are appended to *out and true is returned. On a stale hit
  /// the entry is rebuilt from the tree and served. On a miss the
  /// admission gates decide whether to build; a gated-out miss returns
  /// false and the caller runs the samtree descent.
  bool Sample(VertexId v, EdgeType type, const Samtree& tree, bool weighted,
              std::size_t k, Xoshiro256& rng, std::vector<VertexId>* out);

  /// Drop every entry (admission history included). Stats survive.
  void Clear();

  std::size_t size() const;
  std::size_t MemoryUsage() const;

  SampleCacheStats Stats() const;
  /// Restart the Stats() window (baseline snapshot — the underlying
  /// counters stay monotone for registry exports). Not synchronised with
  /// concurrent samplers; call from the owner's serial sections.
  void ResetStats();

  /// Expose the tallies as pd2gl_sample_cache_* series of `registry`
  /// (labels identify the owning shard). The cache must outlive the
  /// registry entries.
  void RegisterWith(obs::MetricRegistry* registry,
                    const obs::Labels& labels) const;

  const SampleCacheConfig& config() const { return config_; }

 private:
  struct Entry;
  struct Shard;

  Shard& ShardFor(VertexId v, EdgeType type);

  std::shared_ptr<const Entry> BuildEntry(const Samtree& tree) const;

  SampleCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_capacity_ = 0;

  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  mutable obs::Counter stale_hits_;
  mutable obs::Counter rebuilds_;
  mutable obs::Counter admissions_;
  mutable obs::Counter evictions_;
  mutable obs::Counter cold_rejects_;
  /// Counter values at the last ResetStats(); Stats() reports the delta.
  SampleCacheStats baseline_;
};

}  // namespace platod2gl
