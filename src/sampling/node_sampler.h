// NodeSampler: the "node sampling" operator (paper Section III) — draw a
// set of vertices from the whole graph, uniformly or proportionally to
// out-degree (the usual negative-sampling distributions in GNN training).
//
// The sampler snapshots the source-vertex population once (O(V)); the
// snapshot is refreshed explicitly so minibatch loops pay O(1) per draw.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "index/cstable.h"
#include "storage/topology_store.h"

namespace platod2gl {

class NodeSampler {
 public:
  explicit NodeSampler(const TopologyStore* store) : store_(store) {
    Refresh();
  }

  /// Re-snapshot the vertex population after topology changes.
  void Refresh();

  std::size_t population() const { return vertices_.size(); }

  /// k vertices uniformly at random (with replacement).
  std::vector<VertexId> SampleUniform(std::size_t k, Xoshiro256& rng) const;

  /// k vertices proportionally to out-degree (with replacement).
  std::vector<VertexId> SampleByDegree(std::size_t k, Xoshiro256& rng) const;

 private:
  const TopologyStore* store_;
  std::vector<VertexId> vertices_;
  CSTable degree_cstable_;
};

}  // namespace platod2gl
