// SubgraphSampler: the "subgraph sampling" operator (paper Section III) —
// K-hop neighbourhood expansion pivoted at seed vertices, plus the
// multi-hop meta-path sampling used by heterogeneous GNNs (Section VII-C,
// Fig. 10(d-f) samples 2-hop subgraphs).
//
// The result keeps per-hop layers with parent links, which is the layout
// the GraphSAGE trainer aggregates bottom-up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

/// Layered K-hop sample. layers[0] are the seeds; node j of layer l+1 was
/// drawn from the neighbourhood of layers[l][parents[l][j]].
struct SampledSubgraph {
  std::vector<std::vector<VertexId>> layers;
  std::vector<std::vector<std::uint32_t>> parents;  // size = layers-1

  std::size_t NumHops() const {
    return layers.empty() ? 0 : layers.size() - 1;
  }
  std::size_t TotalVertices() const {
    std::size_t n = 0;
    for (const auto& l : layers) n += l.size();
    return n;
  }
};

/// Compact layered sample with per-layer *unique* vertices: node j of
/// layers[l+1] appears once no matter how many frontier vertices sampled
/// it, and hop l's sampled (parent, child) pairs are kept as index pairs
/// into the adjacent layers. This is the deduplicated layout production
/// trainers prefer — features are gathered and embeddings computed once
/// per distinct vertex.
struct CompactSubgraph {
  std::vector<std::vector<VertexId>> layers;
  /// hop_edges[l] holds (index into layers[l], index into layers[l+1]).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      hop_edges;

  std::size_t NumHops() const {
    return layers.empty() ? 0 : layers.size() - 1;
  }
  std::size_t TotalVertices() const {
    std::size_t n = 0;
    for (const auto& l : layers) n += l.size();
    return n;
  }
};

class SubgraphSampler {
 public:
  /// One hop of the expansion: which relation to walk and how many
  /// neighbours to draw per frontier vertex. A meta-path is simply a
  /// sequence of hops with different edge types.
  struct Hop {
    std::size_t fanout = 10;
    EdgeType edge_type = 0;
    bool weighted = true;
  };

  explicit SubgraphSampler(const GraphStore* graph) : graph_(graph) {}

  /// Expand `seeds` through `hops` (e.g. {25, 10} for the classic 2-hop
  /// GraphSAGE fan-out). Frontier vertices without out-edges simply stop
  /// expanding.
  SampledSubgraph Sample(const std::vector<VertexId>& seeds,
                         const std::vector<Hop>& hops, Xoshiro256& rng) const;

  /// Like Sample(), but each layer keeps every vertex once (the heavily
  /// re-sampled hubs of a skewed graph would otherwise be duplicated
  /// fanout-fold) and sampled transitions become (parent, child) index
  /// pairs. Duplicate draws of the same (parent, child) pair collapse.
  CompactSubgraph SampleUnique(const std::vector<VertexId>& seeds,
                               const std::vector<Hop>& hops,
                               Xoshiro256& rng) const;

 private:
  const GraphStore* graph_;
};

}  // namespace platod2gl
