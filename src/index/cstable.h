// CSTable: the cumulative-sum table used by the Inverse Transform
// Sampling (ITS) method (paper Section II-B).
//
// C[i] = sum_{j<=i} w_j. Sampling draws R uniform in [0, C[n-1]) and binary
// searches the smallest i with C[i] > R — O(log n). The price is paid on
// mutation: an in-place weight change or a deletion at position i must
// rewrite every entry at or after i — O(n). This is exactly the cost that
// PlatoD2GL's FSTable removes; keeping a faithful CSTable lets the benches
// reproduce Table II and the PlatoGL baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace platod2gl {

class CSTable {
 public:
  CSTable() = default;

  /// Build from a weight array in O(n).
  explicit CSTable(const std::vector<Weight>& weights);

  /// Number of entries.
  std::size_t size() const { return cumsum_.size(); }
  bool empty() const { return cumsum_.empty(); }

  /// Sum of all weights (0 when empty).
  Weight TotalWeight() const { return cumsum_.empty() ? 0.0 : cumsum_.back(); }

  /// Prefix sum through index i (inclusive).
  Weight Prefix(std::size_t i) const { return cumsum_[i]; }

  /// Raw weight of entry i, recovered from adjacent prefix sums.
  Weight WeightAt(std::size_t i) const {
    return i == 0 ? cumsum_[0] : cumsum_[i] - cumsum_[i - 1];
  }

  /// Pre-allocate capacity for n entries (block stores allocate their
  /// full block up front).
  void Reserve(std::size_t n) { cumsum_.reserve(n); }

  /// Append a new weight — O(1) (paper Table II, "new insertion").
  void Append(Weight w);

  /// Overwrite the weight of entry i — O(n): every suffix entry shifts.
  void UpdateWeight(std::size_t i, Weight w);

  /// Add a delta to entry i — O(n) suffix rewrite.
  void AddDelta(std::size_t i, Weight delta);

  /// Remove entry i — O(n).
  void Remove(std::size_t i);

  /// ITS: smallest i with C[i] > r. Small tables (every samtree internal
  /// node in practice) run a branch-free SIMD scan of the prefix span
  /// (compare + movemask); large ones binary search. Both share the
  /// upper_bound predicate, so the answer is identical either way.
  /// Precondition: 0 <= r < TotalWeight().
  std::size_t FindIndex(Weight r) const;

  /// Draw one index with probability w_i / W.
  std::size_t Sample(Xoshiro256& rng) const;

  /// Bytes held by this table.
  std::size_t MemoryUsage() const {
    return cumsum_.capacity() * sizeof(Weight);
  }

  /// Structural self-check for the samtree invariant sweep: the prefix
  /// sums must be finite and non-decreasing (equivalently, every recovered
  /// weight non-negative) or ITS's binary search loses its precondition.
  /// Returns true when consistent, otherwise fills *error.
  bool CheckConsistent(std::string* error) const;

  /// Test-only hook for the invariant checker's negative tests: overwrite
  /// a raw prefix-sum entry without maintaining monotonicity.
  void CorruptEntryForTest(std::size_t i, Weight w) { cumsum_[i] = w; }

 private:
  std::vector<Weight> cumsum_;
};

}  // namespace platod2gl
