// FSTable: the Fenwick-tree Sum Table of PlatoD2GL (paper Section V).
//
// A CSTable (see cstable.h) supports O(log n) weighted sampling but pays
// O(n) for in-place weight updates and deletions. The FSTable keeps the
// Fenwick-tree layout instead:
//
//   F[i] = sum_{j = g(i)+1}^{i} w_j,   g(i) = i - LSB(i+1)       (0-indexed)
//
// where LSB(x) is the lowest set bit of x. Every mutation — appending a new
// weight (Algorithm 4), an in-place weight change (Algorithm 3) and a
// swap-with-last deletion — costs O(log n), and the FTS sampling method
// (Algorithm 5) draws a weighted index in O(log n) by a range-narrowing
// descent over power-of-two-aligned ranges, exploiting the sub-tree-sum
// property F[2^k - 1] = sum_{j<=2^k-1} w_j (paper Theorem 4).
//
// The table stores only the Fenwick array: the raw weight of entry i is
// recovered as Prefix(i) - Prefix(i-1) in O(log n), so the memory cost
// equals that of storing the weights themselves, like ITS/CSTable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace platod2gl {

/// Borrowed view of one Fenwick array, for the cross-leaf batched
/// descent: the samtree hands the kernel one view per draw, so draws that
/// landed in *different* leaves still resolve in one lane-parallel sweep.
struct FenwickView {
  const Weight* tree = nullptr;
  std::uint32_t n = 0;
};

/// Resolve m independent FTS draws, each against its own Fenwick array:
/// out[d] is exactly what FSTable::FindIndex(rs[d]) would return on the
/// table views[d] points at. The AVX2 flavour runs four descents in
/// parallel lanes (gather + compare + blend — every lane performs the
/// same IEEE comparisons and subtractions the scalar loop would, so the
/// result is bit-identical across dispatch); the scalar flavour is the
/// FindIndex loop verbatim. Every view must be non-empty.
void FenwickFindIndices(const FenwickView* views, const Weight* rs,
                        std::uint32_t* out, std::size_t m);

class FSTable {
 public:
  FSTable() = default;

  /// Build from a weight array in O(n) (each append is amortised O(log n),
  /// but the bulk constructor uses the linear-time Fenwick build).
  explicit FSTable(const std::vector<Weight>& weights);

  std::size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  /// Raw Fenwick entry — exposed for tests reproducing the paper's examples.
  Weight RawEntry(std::size_t i) const { return tree_[i]; }

  /// Prefix sum of weights through index i (inclusive) — O(log n).
  /// This is GETALLSUM of Algorithm 5 generalised to any prefix.
  Weight Prefix(std::size_t i) const;

  /// Sum of all weights — O(log n).
  Weight TotalWeight() const {
    return tree_.empty() ? 0.0 : Prefix(tree_.size() - 1);
  }

  /// Raw weight of entry i — O(log n).
  Weight WeightAt(std::size_t i) const {
    return i == 0 ? Prefix(0) : Prefix(i) - Prefix(i - 1);
  }

  /// Add a delta to entry i — Algorithm 3, O(log n).
  void AddDelta(std::size_t i, Weight delta);

  /// Overwrite the weight of entry i — O(log n).
  void UpdateWeight(std::size_t i, Weight w);

  /// Append a new weight at index n — Algorithm 4, O(log n).
  void Append(Weight w);

  /// Delete entry i by swapping with the last entry and truncating —
  /// O(log n) (paper Section V-A2, "Deletion"). After the call the weight
  /// previously at index size()-1 lives at index i; callers must apply the
  /// same swap to their parallel ID arrays.
  void RemoveSwapLast(std::size_t i);

  /// FTS sampling (Algorithm 5): draw index i with probability w_i / W,
  /// using the random number r in [0, TotalWeight()) — O(log n).
  std::size_t FindIndex(Weight r) const;

  /// Batched FTS: resolve m residuals rs[0..m) to entry indices
  /// out[0..m), in order, bit-identical to calling FindIndex(rs[d]) for
  /// each d. No ordering requirement on rs — the batch runs four
  /// independent descents per step in AVX2 lanes (see FenwickFindIndices),
  /// trading the scalar loop's ~log n unpredictable branches per draw for
  /// branch-free gathers and blends.
  void FindIndices(const Weight* rs, std::uint32_t* out,
                   std::size_t m) const;

  /// This table as a kernel view (see FenwickFindIndices).
  FenwickView View() const {
    return {tree_.data(), static_cast<std::uint32_t>(tree_.size())};
  }

  /// Draw one index with probability w_i / W.
  std::size_t Sample(Xoshiro256& rng) const;

  /// Recover the raw weight array in O(n) — the inverse of the linear-time
  /// Fenwick build. Used when a leaf is split so the whole split stays
  /// O(n_L) as Theorem 2 requires.
  std::vector<Weight> DecodeWeights() const;

  /// Bytes held by this table.
  std::size_t MemoryUsage() const { return tree_.capacity() * sizeof(Weight); }

  /// Structural self-check for the samtree invariant sweep: every decoded
  /// weight must be finite and non-negative (FTS descends on cumulative
  /// masses; one negative weight silently skews every draw in the leaf).
  /// Cross-node sum agreement is checked by Samtree::CheckInvariants.
  /// Returns true when consistent, otherwise fills *error.
  bool CheckConsistent(std::string* error) const;

  /// Test-only hook for the invariant checker's negative tests: overwrite
  /// a raw Fenwick entry without maintaining the structure.
  void CorruptRawEntryForTest(std::size_t i, Weight w) { tree_[i] = w; }

 private:
  std::vector<Weight> tree_;
};

}  // namespace platod2gl
