#include "index/cstable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace platod2gl {

CSTable::CSTable(const std::vector<Weight>& weights) {
  cumsum_.reserve(weights.size());
  Weight running = 0.0;
  for (Weight w : weights) {
    running += w;
    cumsum_.push_back(running);
  }
}

void CSTable::Append(Weight w) {
  cumsum_.push_back(TotalWeight() + w);
}

void CSTable::UpdateWeight(std::size_t i, Weight w) {
  AddDelta(i, w - WeightAt(i));
}

void CSTable::AddDelta(std::size_t i, Weight delta) {
  assert(i < cumsum_.size());
  for (std::size_t j = i; j < cumsum_.size(); ++j) cumsum_[j] += delta;
}

void CSTable::Remove(std::size_t i) {
  assert(i < cumsum_.size());
  const Weight w = WeightAt(i);
  cumsum_.erase(cumsum_.begin() + static_cast<std::ptrdiff_t>(i));
  for (std::size_t j = i; j < cumsum_.size(); ++j) cumsum_[j] -= w;
}

std::size_t CSTable::FindIndex(Weight r) const {
  assert(!cumsum_.empty());
  auto it = std::upper_bound(cumsum_.begin(), cumsum_.end(), r);
  if (it == cumsum_.end()) --it;  // guard against floating-point edge cases
  return static_cast<std::size_t>(it - cumsum_.begin());
}

std::size_t CSTable::Sample(Xoshiro256& rng) const {
  return FindIndex(rng.NextDouble(TotalWeight()));
}

bool CSTable::CheckConsistent(std::string* error) const {
  Weight prev = 0.0;
  for (std::size_t i = 0; i < cumsum_.size(); ++i) {
    if (!std::isfinite(cumsum_[i])) {
      if (error) {
        *error = "non-finite prefix sum at entry " + std::to_string(i);
      }
      return false;
    }
    const Weight tol = 1e-9 * std::max<Weight>(1.0, std::fabs(prev));
    if (cumsum_[i] < prev - tol) {
      if (error) {
        *error = "prefix sums decrease at entry " + std::to_string(i) +
                 " (" + std::to_string(prev) + " -> " +
                 std::to_string(cumsum_[i]) + ")";
      }
      return false;
    }
    prev = cumsum_[i];
  }
  return true;
}

}  // namespace platod2gl
