#include "index/cstable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace platod2gl {

CSTable::CSTable(const std::vector<Weight>& weights) {
  cumsum_.reserve(weights.size());
  Weight running = 0.0;
  for (Weight w : weights) {
    running += w;
    cumsum_.push_back(running);
  }
}

void CSTable::Append(Weight w) {
  cumsum_.push_back(TotalWeight() + w);
}

void CSTable::UpdateWeight(std::size_t i, Weight w) {
  AddDelta(i, w - WeightAt(i));
}

void CSTable::AddDelta(std::size_t i, Weight delta) {
  assert(i < cumsum_.size());
  // The O(n) suffix rewrite is the CSTable's update cost (Table II);
  // the SIMD kernel is elementwise, so results stay bit-identical to the
  // scalar loop while the PlatoGL baseline's dominant update loop runs
  // 4 lanes wide.
  simd::AddToRange(cumsum_.data(), i, cumsum_.size(), delta);
}

void CSTable::Remove(std::size_t i) {
  assert(i < cumsum_.size());
  const Weight w = WeightAt(i);
  cumsum_.erase(cumsum_.begin() + static_cast<std::ptrdiff_t>(i));
  simd::AddToRange(cumsum_.data(), i, cumsum_.size(), -w);
}

std::size_t CSTable::FindIndex(Weight r) const {
  assert(!cumsum_.empty());
  const std::size_t n = cumsum_.size();
  // The binary search takes ~log n data-dependent branches, each a coin
  // flip to the predictor; on node-sized tables a branch-free scan of the
  // span is cheaper. Same `> r` predicate, so the two agree exactly.
  constexpr std::size_t kScanMax = 64;
  std::size_t i;
  if (n <= kScanMax) {
    i = simd::FindFirstGreater(cumsum_.data(), n, 0, r);
  } else {
    i = static_cast<std::size_t>(
        std::upper_bound(cumsum_.begin(), cumsum_.end(), r) -
        cumsum_.begin());
  }
  return i == n ? n - 1 : i;  // guard against floating-point edge cases
}

std::size_t CSTable::Sample(Xoshiro256& rng) const {
  return FindIndex(rng.NextDouble(TotalWeight()));
}

bool CSTable::CheckConsistent(std::string* error) const {
  Weight prev = 0.0;
  for (std::size_t i = 0; i < cumsum_.size(); ++i) {
    if (!std::isfinite(cumsum_[i])) {
      if (error) {
        *error = "non-finite prefix sum at entry " + std::to_string(i);
      }
      return false;
    }
    const Weight tol = 1e-9 * std::max<Weight>(1.0, std::fabs(prev));
    if (cumsum_[i] < prev - tol) {
      if (error) {
        *error = "prefix sums decrease at entry " + std::to_string(i) +
                 " (" + std::to_string(prev) + " -> " +
                 std::to_string(cumsum_[i]) + ")";
      }
      return false;
    }
    prev = cumsum_[i];
  }
  return true;
}

}  // namespace platod2gl
