#include "index/fstable.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace platod2gl {
namespace {

/// Lowest set bit of x (x > 0).
inline std::size_t Lsb(std::size_t x) { return x & (~x + 1); }

}  // namespace

FSTable::FSTable(const std::vector<Weight>& weights) {
  tree_.assign(weights.begin(), weights.end());
  // Linear-time Fenwick build: push each entry into its parent.
  for (std::size_t i = 0; i < tree_.size(); ++i) {
    const std::size_t parent = i + Lsb(i + 1);
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
}

Weight FSTable::Prefix(std::size_t i) const {
  assert(i < tree_.size());
  Weight s = 0.0;
  // Walk i+1 (1-indexed) down by stripping the lowest set bit.
  for (std::size_t j = i + 1; j > 0; j -= Lsb(j)) s += tree_[j - 1];
  return s;
}

void FSTable::AddDelta(std::size_t i, Weight delta) {
  assert(i < tree_.size());
  // Algorithm 3: climb to each covering entry via i <- i + LSB(i+1).
  while (i < tree_.size()) {
    tree_[i] += delta;
    i += Lsb(i + 1);
  }
}

void FSTable::UpdateWeight(std::size_t i, Weight w) {
  AddDelta(i, w - WeightAt(i));
}

void FSTable::Append(Weight w) {
  // Algorithm 4: the new entry at index n covers [g(n)+1, n]; accumulate
  // the already-stored children F[n - 2^k] whose covered range abuts ours.
  const std::size_t n = tree_.size();
  Weight s = w;
  for (std::size_t two_k = 1; two_k < n + 1; two_k <<= 1) {
    if (two_k > n) break;
    const std::size_t x = n - two_k;
    if (Lsb(x + 1) == two_k) s += tree_[x];
  }
  tree_.push_back(s);
}

void FSTable::RemoveSwapLast(std::size_t i) {
  assert(i < tree_.size());
  const std::size_t last = tree_.size() - 1;
  if (i != last) {
    UpdateWeight(i, WeightAt(last));
  }
  // Truncation is safe: F[j] for j < last never aggregates index `last`
  // (its covered range [g(j)+1, j] ends at j).
  tree_.pop_back();
}

std::vector<Weight> FSTable::DecodeWeights() const {
  std::vector<Weight> weights(tree_.begin(), tree_.end());
  // Undo the linear build back-to-front: strip each entry out of its parent.
  for (std::size_t i = weights.size(); i-- > 0;) {
    const std::size_t parent = i + Lsb(i + 1);
    if (parent < weights.size()) weights[parent] -= weights[i];
  }
  return weights;
}

std::size_t FSTable::FindIndex(Weight r) const {
  assert(!tree_.empty());
  const std::size_t n = tree_.size();
  // Smallest power of two >= n.
  std::size_t span = 1;
  while (span < n) span <<= 1;

  // Algorithm 5: descend over power-of-two-aligned ranges. For an aligned
  // range [left, left + 2^t - 1], the Fenwick entry at mid = left + 2^{t-1}
  // - 1 is exactly the sum of the left half, so one comparison halves the
  // range.
  std::size_t left = 0;
  std::size_t right = span - 1;
  while (left < right) {
    const std::size_t mid = left + (right - left) / 2;
    if (mid >= n) {  // indices beyond n carry zero weight: go left
      right = mid;
      continue;
    }
    if (tree_[mid] > r) {
      right = mid;
    } else {
      r -= tree_[mid];
      left = mid + 1;
    }
  }
  // Floating-point guard: r slightly >= total can push past the end.
  return std::min(left, n - 1);
}

std::size_t FSTable::Sample(Xoshiro256& rng) const {
  return FindIndex(rng.NextDouble(TotalWeight()));
}

namespace {

/// Scalar flavour of the batched descent: the FindIndex loop verbatim,
/// over a borrowed view. The AVX2 lanes below must land on exactly the
/// indices this lands on.
inline std::uint32_t FenwickFindOne(const Weight* tree, std::size_t n,
                                    Weight r) {
  std::size_t span = 1;
  while (span < n) span <<= 1;
  std::size_t left = 0;
  std::size_t right = span - 1;
  while (left < right) {
    const std::size_t mid = left + (right - left) / 2;
    if (mid >= n) {
      right = mid;
      continue;
    }
    if (tree[mid] > r) {
      right = mid;
    } else {
      r -= tree[mid];
      left = mid + 1;
    }
  }
  return static_cast<std::uint32_t>(std::min(left, n - 1));
}

#if defined(__x86_64__) || defined(__i386__)

/// Four Fenwick descents in parallel AVX2 lanes, one per draw, each
/// against its own table. State (left, right, residual) lives in vector
/// registers; each step gathers the four tree[mid] values and resolves
/// the scalar loop's branch as a blend:
///
///   * `mid >= n` and already-converged lanes are masked out of the
///     gather and read +inf, which drives the `tree[mid] > r` compare
///     down the same "go left" path the scalar loop takes (for converged
///     lanes, right = mid is a no-op since mid == left == right);
///   * the compare is _CMP_GT_OQ — the scalar `>` exactly — and the
///     residual update subtracts the gathered double itself, so every
///     lane performs the identical IEEE operation sequence and the
///     result is bit-identical to FenwickFindOne.
///
/// Ranges start at (possibly different) per-lane spans and halve every
/// step, so all four lanes converge within max log2(span) + 1 steps; the
/// loop runs until the movemask of still-open ranges clears.
__attribute__((target("avx2"))) void FenwickFind4Avx2(
    const FenwickView* views, const Weight* rs, std::uint32_t* out) {
  alignas(32) long long base[4];
  alignas(32) long long n64[4];
  alignas(32) long long span1[4];
  for (int l = 0; l < 4; ++l) {
    base[l] = reinterpret_cast<long long>(views[l].tree);
    n64[l] = static_cast<long long>(views[l].n);
    std::size_t span = 1;
    while (span < views[l].n) span <<= 1;
    span1[l] = static_cast<long long>(span - 1);
  }
  const __m256i vbase = _mm256_load_si256(reinterpret_cast<__m256i*>(base));
  const __m256i vn = _mm256_load_si256(reinterpret_cast<__m256i*>(n64));
  __m256i vleft = _mm256_setzero_si256();
  __m256i vright = _mm256_load_si256(reinterpret_cast<__m256i*>(span1));
  __m256d vr = _mm256_loadu_pd(rs);
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256i one = _mm256_set1_epi64x(1);

  while (true) {
    const __m256i active = _mm256_cmpgt_epi64(vright, vleft);  // left < right
    if (_mm256_movemask_epi8(active) == 0) break;
    const __m256i vmid = _mm256_add_epi64(
        vleft, _mm256_srli_epi64(_mm256_sub_epi64(vright, vleft), 1));
    const __m256i in_tree =
        _mm256_and_si256(active, _mm256_cmpgt_epi64(vn, vmid));  // mid < n
    const __m256i addr = _mm256_add_epi64(vbase, _mm256_slli_epi64(vmid, 3));
    const __m256d vals = _mm256_mask_i64gather_pd(
        inf, static_cast<const double*>(nullptr), addr,
        _mm256_castsi256_pd(in_tree), 1);
    const __m256d go_left = _mm256_cmp_pd(vals, vr, _CMP_GT_OQ);
    const __m256i go_left_i = _mm256_castpd_si256(go_left);
    // Lanes going right consume the left-half sum and move past mid.
    vr = _mm256_blendv_pd(_mm256_sub_pd(vr, vals), vr, go_left);
    vleft = _mm256_blendv_epi8(_mm256_add_epi64(vmid, one), vleft, go_left_i);
    vright = _mm256_blendv_epi8(vright, vmid, go_left_i);
  }

  // Same floating-point end clamp as FindIndex: min(left, n - 1).
  const __m256i vn1 = _mm256_sub_epi64(vn, one);
  const __m256i vidx = _mm256_blendv_epi8(
      vn1, vleft, _mm256_cmpgt_epi64(vn, vleft));
  alignas(32) long long idx[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx);
  for (int l = 0; l < 4; ++l) out[l] = static_cast<std::uint32_t>(idx[l]);
}

/// Two independent 4-lane descents interleaved in one loop. One 4-lane
/// descent is latency-bound: every gather waits on the previous step's
/// blends, so the core idles through the gather latency. Interleaving a
/// second, data-independent lane set gives the out-of-order engine two
/// gather chains to overlap, nearly doubling throughput without changing
/// any per-lane operation (each half is FenwickFind4Avx2 verbatim, so
/// bit-exactness is untouched). Converged halves keep looping as no-ops
/// — same masked-gather safety argument as above — until both clear.
__attribute__((target("avx2"))) void FenwickFind8Avx2(
    const FenwickView* views, const Weight* rs, std::uint32_t* out) {
  alignas(32) long long base[8];
  alignas(32) long long n64[8];
  alignas(32) long long span1[8];
  for (int l = 0; l < 8; ++l) {
    base[l] = reinterpret_cast<long long>(views[l].tree);
    n64[l] = static_cast<long long>(views[l].n);
    std::size_t span = 1;
    while (span < views[l].n) span <<= 1;
    span1[l] = static_cast<long long>(span - 1);
  }
  const __m256i vbase0 = _mm256_load_si256(reinterpret_cast<__m256i*>(base));
  const __m256i vbase1 =
      _mm256_load_si256(reinterpret_cast<__m256i*>(base + 4));
  const __m256i vn0 = _mm256_load_si256(reinterpret_cast<__m256i*>(n64));
  const __m256i vn1 = _mm256_load_si256(reinterpret_cast<__m256i*>(n64 + 4));
  __m256i vleft0 = _mm256_setzero_si256();
  __m256i vleft1 = _mm256_setzero_si256();
  __m256i vright0 = _mm256_load_si256(reinterpret_cast<__m256i*>(span1));
  __m256i vright1 =
      _mm256_load_si256(reinterpret_cast<__m256i*>(span1 + 4));
  __m256d vr0 = _mm256_loadu_pd(rs);
  __m256d vr1 = _mm256_loadu_pd(rs + 4);
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256i one = _mm256_set1_epi64x(1);

  while (true) {
    const __m256i active0 = _mm256_cmpgt_epi64(vright0, vleft0);
    const __m256i active1 = _mm256_cmpgt_epi64(vright1, vleft1);
    if ((_mm256_movemask_epi8(active0) | _mm256_movemask_epi8(active1)) == 0) {
      break;
    }
    const __m256i vmid0 = _mm256_add_epi64(
        vleft0, _mm256_srli_epi64(_mm256_sub_epi64(vright0, vleft0), 1));
    const __m256i vmid1 = _mm256_add_epi64(
        vleft1, _mm256_srli_epi64(_mm256_sub_epi64(vright1, vleft1), 1));
    const __m256i in_tree0 =
        _mm256_and_si256(active0, _mm256_cmpgt_epi64(vn0, vmid0));
    const __m256i in_tree1 =
        _mm256_and_si256(active1, _mm256_cmpgt_epi64(vn1, vmid1));
    const __m256i addr0 =
        _mm256_add_epi64(vbase0, _mm256_slli_epi64(vmid0, 3));
    const __m256i addr1 =
        _mm256_add_epi64(vbase1, _mm256_slli_epi64(vmid1, 3));
    const __m256d vals0 = _mm256_mask_i64gather_pd(
        inf, static_cast<const double*>(nullptr), addr0,
        _mm256_castsi256_pd(in_tree0), 1);
    const __m256d vals1 = _mm256_mask_i64gather_pd(
        inf, static_cast<const double*>(nullptr), addr1,
        _mm256_castsi256_pd(in_tree1), 1);
    const __m256d go_left0 = _mm256_cmp_pd(vals0, vr0, _CMP_GT_OQ);
    const __m256d go_left1 = _mm256_cmp_pd(vals1, vr1, _CMP_GT_OQ);
    const __m256i go_left_i0 = _mm256_castpd_si256(go_left0);
    const __m256i go_left_i1 = _mm256_castpd_si256(go_left1);
    vr0 = _mm256_blendv_pd(_mm256_sub_pd(vr0, vals0), vr0, go_left0);
    vr1 = _mm256_blendv_pd(_mm256_sub_pd(vr1, vals1), vr1, go_left1);
    vleft0 = _mm256_blendv_epi8(_mm256_add_epi64(vmid0, one), vleft0,
                                go_left_i0);
    vleft1 = _mm256_blendv_epi8(_mm256_add_epi64(vmid1, one), vleft1,
                                go_left_i1);
    vright0 = _mm256_blendv_epi8(vright0, vmid0, go_left_i0);
    vright1 = _mm256_blendv_epi8(vright1, vmid1, go_left_i1);
  }

  const __m256i vidx0 = _mm256_blendv_epi8(
      _mm256_sub_epi64(vn0, one), vleft0, _mm256_cmpgt_epi64(vn0, vleft0));
  const __m256i vidx1 = _mm256_blendv_epi8(
      _mm256_sub_epi64(vn1, one), vleft1, _mm256_cmpgt_epi64(vn1, vleft1));
  alignas(32) long long idx[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx + 4), vidx1);
  for (int l = 0; l < 8; ++l) out[l] = static_cast<std::uint32_t>(idx[l]);
}

#endif  // x86

}  // namespace

void FenwickFindIndices(const FenwickView* views, const Weight* rs,
                        std::uint32_t* out, std::size_t m) {
  std::size_t d = 0;
#if defined(__x86_64__) || defined(__i386__)
  if (simd::Avx2Enabled()) {
    for (; d + 8 <= m; d += 8) {
      FenwickFind8Avx2(views + d, rs + d, out + d);
    }
    for (; d + 4 <= m; d += 4) {
      FenwickFind4Avx2(views + d, rs + d, out + d);
    }
  }
#endif
  for (; d < m; ++d) {
    out[d] = FenwickFindOne(views[d].tree, views[d].n, rs[d]);
  }
}

void FSTable::FindIndices(const Weight* rs, std::uint32_t* out,
                          std::size_t m) const {
  assert(!tree_.empty());
  // Eight copies of one view feed the lane kernels without a per-call
  // views allocation.
  const FenwickView v = View();
  const FenwickView views8[8] = {v, v, v, v, v, v, v, v};
  std::size_t d = 0;
#if defined(__x86_64__) || defined(__i386__)
  if (simd::Avx2Enabled()) {
    for (; d + 8 <= m; d += 8) {
      FenwickFind8Avx2(views8, rs + d, out + d);
    }
    for (; d + 4 <= m; d += 4) {
      FenwickFind4Avx2(views8, rs + d, out + d);
    }
  }
#endif
  for (; d < m; ++d) out[d] = FenwickFindOne(v.tree, v.n, rs[d]);
}

bool FSTable::CheckConsistent(std::string* error) const {
  const std::vector<Weight> weights = DecodeWeights();
  Weight total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i])) {
      if (error) {
        *error = "non-finite weight at entry " + std::to_string(i);
      }
      return false;
    }
    // SampleWeightedDistinct zeroes weights via +/- deltas, so allow the
    // floating-point dust that restoring can leave behind.
    if (weights[i] < -1e-9 * std::max<Weight>(1.0, std::fabs(total))) {
      if (error) {
        *error = "negative weight " + std::to_string(weights[i]) +
                 " at entry " + std::to_string(i);
      }
      return false;
    }
    total += weights[i];
  }
  if (!std::isfinite(TotalWeight())) {
    if (error) *error = "non-finite total weight";
    return false;
  }
  return true;
}

}  // namespace platod2gl
