#include "index/fstable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace platod2gl {
namespace {

/// Lowest set bit of x (x > 0).
inline std::size_t Lsb(std::size_t x) { return x & (~x + 1); }

}  // namespace

FSTable::FSTable(const std::vector<Weight>& weights) {
  tree_.assign(weights.begin(), weights.end());
  // Linear-time Fenwick build: push each entry into its parent.
  for (std::size_t i = 0; i < tree_.size(); ++i) {
    const std::size_t parent = i + Lsb(i + 1);
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
}

Weight FSTable::Prefix(std::size_t i) const {
  assert(i < tree_.size());
  Weight s = 0.0;
  // Walk i+1 (1-indexed) down by stripping the lowest set bit.
  for (std::size_t j = i + 1; j > 0; j -= Lsb(j)) s += tree_[j - 1];
  return s;
}

void FSTable::AddDelta(std::size_t i, Weight delta) {
  assert(i < tree_.size());
  // Algorithm 3: climb to each covering entry via i <- i + LSB(i+1).
  while (i < tree_.size()) {
    tree_[i] += delta;
    i += Lsb(i + 1);
  }
}

void FSTable::UpdateWeight(std::size_t i, Weight w) {
  AddDelta(i, w - WeightAt(i));
}

void FSTable::Append(Weight w) {
  // Algorithm 4: the new entry at index n covers [g(n)+1, n]; accumulate
  // the already-stored children F[n - 2^k] whose covered range abuts ours.
  const std::size_t n = tree_.size();
  Weight s = w;
  for (std::size_t two_k = 1; two_k < n + 1; two_k <<= 1) {
    if (two_k > n) break;
    const std::size_t x = n - two_k;
    if (Lsb(x + 1) == two_k) s += tree_[x];
  }
  tree_.push_back(s);
}

void FSTable::RemoveSwapLast(std::size_t i) {
  assert(i < tree_.size());
  const std::size_t last = tree_.size() - 1;
  if (i != last) {
    UpdateWeight(i, WeightAt(last));
  }
  // Truncation is safe: F[j] for j < last never aggregates index `last`
  // (its covered range [g(j)+1, j] ends at j).
  tree_.pop_back();
}

std::vector<Weight> FSTable::DecodeWeights() const {
  std::vector<Weight> weights(tree_.begin(), tree_.end());
  // Undo the linear build back-to-front: strip each entry out of its parent.
  for (std::size_t i = weights.size(); i-- > 0;) {
    const std::size_t parent = i + Lsb(i + 1);
    if (parent < weights.size()) weights[parent] -= weights[i];
  }
  return weights;
}

std::size_t FSTable::FindIndex(Weight r) const {
  assert(!tree_.empty());
  const std::size_t n = tree_.size();
  // Smallest power of two >= n.
  std::size_t span = 1;
  while (span < n) span <<= 1;

  // Algorithm 5: descend over power-of-two-aligned ranges. For an aligned
  // range [left, left + 2^t - 1], the Fenwick entry at mid = left + 2^{t-1}
  // - 1 is exactly the sum of the left half, so one comparison halves the
  // range.
  std::size_t left = 0;
  std::size_t right = span - 1;
  while (left < right) {
    const std::size_t mid = left + (right - left) / 2;
    if (mid >= n) {  // indices beyond n carry zero weight: go left
      right = mid;
      continue;
    }
    if (tree_[mid] > r) {
      right = mid;
    } else {
      r -= tree_[mid];
      left = mid + 1;
    }
  }
  // Floating-point guard: r slightly >= total can push past the end.
  return std::min(left, n - 1);
}

std::size_t FSTable::Sample(Xoshiro256& rng) const {
  return FindIndex(rng.NextDouble(TotalWeight()));
}

bool FSTable::CheckConsistent(std::string* error) const {
  const std::vector<Weight> weights = DecodeWeights();
  Weight total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i])) {
      if (error) {
        *error = "non-finite weight at entry " + std::to_string(i);
      }
      return false;
    }
    // SampleWeightedDistinct zeroes weights via +/- deltas, so allow the
    // floating-point dust that restoring can leave behind.
    if (weights[i] < -1e-9 * std::max<Weight>(1.0, std::fabs(total))) {
      if (error) {
        *error = "negative weight " + std::to_string(weights[i]) +
                 " at entry " + std::to_string(i);
      }
      return false;
    }
    total += weights[i];
  }
  if (!std::isfinite(TotalWeight())) {
    if (error) *error = "non-finite total weight";
    return false;
  }
  return true;
}

}  // namespace platod2gl
