// AliasTable: Walker/Vose alias method for O(1) weighted sampling after an
// O(n) build.
//
// The paper (Section V, "Challenges") notes that most deep graph learning
// systems, including AliGraph, use alias tables: sampling is O(1), but the
// table must be rebuilt from scratch on every weight change, and it stores
// two extra arrays (probabilities + aliases) on top of the weights — the
// "memory-expensive" behaviour that Table IV attributes to AliGraph. This
// implementation backs the AliGraph baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace platod2gl {

class AliasTable {
 public:
  AliasTable() = default;

  /// Build from a weight array — O(n).
  explicit AliasTable(const std::vector<Weight>& weights);

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Draw one index with probability w_i / W — O(1).
  std::size_t Sample(Xoshiro256& rng) const;

  /// Draw k indices into out[0..k) in one call. Identical draw sequence
  /// to k single Sample() calls; the point is the hot cache-hit path,
  /// where one batched call hoists the per-draw size loads and call
  /// overhead out of the loop (a batch request is one cache lookup +
  /// one SampleBatch, not k table walks).
  void SampleBatch(std::size_t k, Xoshiro256& rng, std::uint32_t* out) const;

  /// Bytes held by this table (two n-sized arrays).
  std::size_t MemoryUsage() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<double> prob_;          // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback index per bucket
};

}  // namespace platod2gl
