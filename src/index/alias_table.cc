#include "index/alias_table.h"

#include <cassert>
#include <numeric>

namespace platod2gl {

AliasTable::AliasTable(const std::vector<Weight>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);

  // Vose's stable construction: scale every weight to mean 1, then pair
  // each under-full bucket with an over-full donor.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are exactly-full buckets.
  for (std::uint32_t i : small) prob_[i] = 1.0;
  for (std::uint32_t i : large) prob_[i] = 1.0;
}

std::size_t AliasTable::Sample(Xoshiro256& rng) const {
  assert(!prob_.empty());
  const std::size_t bucket = rng.NextUint64(prob_.size());
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

void AliasTable::SampleBatch(std::size_t k, Xoshiro256& rng,
                             std::uint32_t* out) const {
  assert(!prob_.empty());
  const std::uint64_t n = prob_.size();
  const double* prob = prob_.data();
  const std::uint32_t* alias = alias_.data();
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t bucket = rng.NextUint64(n);
    out[i] = rng.NextDouble() < prob[bucket]
                 ? static_cast<std::uint32_t>(bucket)
                 : alias[bucket];
  }
}

}  // namespace platod2gl
