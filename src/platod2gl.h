// PlatoD2GL — umbrella header: the full public API.
//
// Quickstart:
//   #include "platod2gl.h"
//   platod2gl::GraphStore graph;
//   graph.AddEdge({.src = 1, .dst = 2, .weight = 0.5});
//   platod2gl::Xoshiro256 rng(7);
//   std::vector<platod2gl::VertexId> out;
//   graph.SampleNeighbors(1, 10, /*weighted=*/true, rng, &out);
#pragma once

#include "common/histogram.h"  // IWYU pragma: export
#include "common/lru_cache.h"  // IWYU pragma: export
#include "common/memory.h"     // IWYU pragma: export
#include "common/random.h"     // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export
#include "common/timer.h"      // IWYU pragma: export
#include "common/types.h"      // IWYU pragma: export

#include "index/alias_table.h"  // IWYU pragma: export
#include "index/cstable.h"      // IWYU pragma: export
#include "index/fstable.h"      // IWYU pragma: export

#include "core/alpha_split.h"     // IWYU pragma: export
#include "core/compressed_ids.h"  // IWYU pragma: export
#include "core/samtree.h"         // IWYU pragma: export

#include "storage/attribute_store.h"  // IWYU pragma: export
#include "storage/bidirected_store.h" // IWYU pragma: export
#include "storage/cuckoo_map.h"       // IWYU pragma: export
#include "storage/edge_attributes.h"  // IWYU pragma: export
#include "storage/graph_store.h"      // IWYU pragma: export
#include "storage/topology_store.h"   // IWYU pragma: export

#include "sampling/negative_sampler.h" // IWYU pragma: export
#include "sampling/neighbor_sampler.h"  // IWYU pragma: export
#include "sampling/node_sampler.h"      // IWYU pragma: export
#include "sampling/subgraph_sampler.h"  // IWYU pragma: export

#include "concurrency/batch_updater.h"  // IWYU pragma: export

#include "dist/cluster.h"      // IWYU pragma: export
#include "dist/fault_injector.h"  // IWYU pragma: export
#include "dist/partitioner.h"  // IWYU pragma: export
#include "dist/remote_sampler.h"  // IWYU pragma: export
#include "dist/shard.h"        // IWYU pragma: export
#include "dist/wire.h"         // IWYU pragma: export

#include "gnn/deepwalk.h"   // IWYU pragma: export
#include "gnn/gcn_model.h"  // IWYU pragma: export
#include "gnn/embedding.h"  // IWYU pragma: export
#include "gnn/model.h"    // IWYU pragma: export
#include "gnn/trainer.h"    // IWYU pragma: export
#include "gnn/two_tower.h"  // IWYU pragma: export

#include "pipeline/continuous_trainer.h"  // IWYU pragma: export
#include "pipeline/epoch_coordinator.h"   // IWYU pragma: export
#include "pipeline/micro_batcher.h"       // IWYU pragma: export
#include "pipeline/update_ingestor.h"     // IWYU pragma: export

#include "obs/export.h"   // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/profile.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

#include "serve/admission.h"        // IWYU pragma: export
#include "serve/executor.h"         // IWYU pragma: export
#include "serve/query_plan.h"       // IWYU pragma: export
#include "serve/request_batcher.h"  // IWYU pragma: export
#include "serve/server.h"           // IWYU pragma: export

#include "analytics/graph_metrics.h"  // IWYU pragma: export
#include "io/checkpoint.h"         // IWYU pragma: export
#include "io/edge_list_reader.h"   // IWYU pragma: export
#include "temporal/edge_log.h"  // IWYU pragma: export
#include "walk/random_walk.h"   // IWYU pragma: export

#include "gen/datasets.h"    // IWYU pragma: export
#include "gen/generators.h"  // IWYU pragma: export
