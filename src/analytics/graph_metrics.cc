#include "analytics/graph_metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>

namespace platod2gl {

DegreeStats ComputeDegreeStats(const TopologyStore& store) {
  DegreeStats stats;
  store.ForEachSource([&](VertexId, const Samtree& tree) {
    const std::size_t deg = tree.size();
    if (deg == 0) return;
    ++stats.num_sources;
    stats.num_edges += deg;
    stats.max_degree = std::max(stats.max_degree, deg);
    std::size_t bucket = 0;
    while ((std::size_t{1} << (bucket + 1)) <= deg) ++bucket;
    if (stats.log2_histogram.size() <= bucket) {
      stats.log2_histogram.resize(bucket + 1, 0);
    }
    ++stats.log2_histogram[bucket];
  });
  stats.mean_degree =
      stats.num_sources == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) / stats.num_sources;
  return stats;
}

std::unordered_map<VertexId, double> PageRank(const TopologyStore& store,
                                              double damping,
                                              int iterations) {
  // Collect the vertex universe: sources plus every destination.
  std::unordered_map<VertexId, double> rank;
  store.ForEachSource([&](VertexId src, const Samtree& tree) {
    rank.emplace(src, 0.0);
    tree.ForEachNeighbor(
        [&](VertexId dst, Weight) { rank.emplace(dst, 0.0); });
  });
  if (rank.empty()) return rank;

  const double n = static_cast<double>(rank.size());
  for (auto& [v, r] : rank) r = 1.0 / n;

  std::unordered_map<VertexId, double> next;
  next.reserve(rank.size());
  for (int iter = 0; iter < iterations; ++iter) {
    next.clear();
    for (const auto& [v, r] : rank) next.emplace(v, 0.0);

    double dangling_mass = 0.0;
    for (const auto& [v, r] : rank) {
      const Samtree* tree = store.FindTree(v);
      if (!tree || tree->empty()) {
        dangling_mass += r;
        continue;
      }
      const Weight total = tree->TotalWeight();
      tree->ForEachNeighbor([&, r = r](VertexId dst, Weight w) {
        next[dst] += r * (w / total);
      });
    }
    const double teleport =
        (1.0 - damping) / n + damping * dangling_mass / n;
    for (auto& [v, r] : next) r = damping * r + teleport;
    rank.swap(next);
  }
  return rank;
}

std::unordered_map<VertexId, VertexId> ConnectedComponents(
    const TopologyStore& store) {
  // Union-find over the undirected view.
  std::unordered_map<VertexId, VertexId> parent;
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    auto it = parent.find(v);
    if (it == parent.end()) {
      parent.emplace(v, v);
      return v;
    }
    // Path halving.
    while (it->second != v) {
      auto up = parent.find(it->second);
      it->second = up->second;
      v = it->second;
      it = parent.find(v);
    }
    return v;
  };
  auto unite = [&](VertexId a, VertexId b) {
    VertexId ra = find(a), rb = find(b);
    if (ra == rb) return;
    if (rb < ra) std::swap(ra, rb);  // smaller ID becomes the root
    parent[rb] = ra;
  };

  store.ForEachSource([&](VertexId src, const Samtree& tree) {
    find(src);
    tree.ForEachNeighbor([&](VertexId dst, Weight) { unite(src, dst); });
  });

  std::unordered_map<VertexId, VertexId> out;
  out.reserve(parent.size());
  for (const auto& [v, p] : parent) {
    (void)p;
    out.emplace(v, find(v));
  }
  return out;
}

std::size_t NumComponents(
    const std::unordered_map<VertexId, VertexId>& components) {
  std::size_t roots = 0;
  for (const auto& [v, root] : components) roots += (v == root);
  return roots;
}

std::vector<VertexId> CommonNeighbors(const TopologyStore& store, VertexId a,
                                      VertexId b) {
  std::vector<VertexId> out;
  const Samtree* ta = store.FindTree(a);
  const Samtree* tb = store.FindTree(b);
  if (!ta || !tb) return out;
  const std::vector<VertexId> na = ta->SortedIds();
  const std::vector<VertexId> nb = tb->SortedIds();
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(out));
  return out;
}

double JaccardSimilarity(const TopologyStore& store, VertexId a, VertexId b) {
  const std::size_t da = store.Degree(a);
  const std::size_t db = store.Degree(b);
  if (da == 0 || db == 0) return 0.0;
  const std::size_t common = CommonNeighbors(store, a, b).size();
  return static_cast<double>(common) /
         static_cast<double>(da + db - common);
}

double EstimateTriangles(const TopologyStore& store, std::size_t samples,
                         Xoshiro256& rng) {
  // Total wedge count: sum over v of deg(v) * (deg(v) - 1) / 2.
  double total_wedges = 0.0;
  std::vector<VertexId> centers;
  std::vector<double> wedge_cdf;
  store.ForEachSource([&](VertexId v, const Samtree& tree) {
    const double d = static_cast<double>(tree.size());
    if (d < 2) return;
    total_wedges += d * (d - 1) / 2.0;
    centers.push_back(v);
    wedge_cdf.push_back(total_wedges);
  });
  if (total_wedges == 0.0 || samples == 0) return 0.0;

  std::size_t closed = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    // Pick a wedge center proportional to its wedge count.
    const double r = rng.NextDouble(total_wedges);
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(wedge_cdf.begin(), wedge_cdf.end(), r) -
        wedge_cdf.begin());
    const Samtree* tree = store.FindTree(centers[idx]);
    // Two distinct uniform neighbours.
    const VertexId a = tree->SampleUniform(rng);
    VertexId b = tree->SampleUniform(rng);
    for (int retry = 0; retry < 16 && b == a; ++retry) {
      b = tree->SampleUniform(rng);
    }
    if (b == a) continue;  // degenerate (all samples identical)
    if (store.HasEdge(a, b)) ++closed;
  }
  // Each triangle closes 3 wedges (on a bi-directed graph).
  return total_wedges * (static_cast<double>(closed) / samples) / 3.0;
}

}  // namespace platod2gl
