// Offline graph analytics over the dynamic store.
//
// Production graph platforms ship basic whole-graph analytics next to the
// training stack (the Plato engine the paper's storage descends from is
// exactly that). These run single-pass or iterative algorithms over the
// store's enumeration APIs; they treat the store as read-only and are
// meant for offline/maintenance windows, not the serving path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/topology_store.h"

namespace platod2gl {

/// Degree-distribution summary of a relation's source vertices.
struct DegreeStats {
  std::size_t num_sources = 0;
  std::size_t num_edges = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  /// log2-bucketed histogram: bucket[i] counts sources with degree in
  /// [2^i, 2^{i+1}).
  std::vector<std::size_t> log2_histogram;
};
DegreeStats ComputeDegreeStats(const TopologyStore& store);

/// Weighted PageRank by power iteration (damping d, `iterations` sweeps).
/// Dangling mass is redistributed uniformly. Returns vertex -> score;
/// scores sum to ~1 over all vertices that appear as a source or a
/// destination.
std::unordered_map<VertexId, double> PageRank(const TopologyStore& store,
                                              double damping = 0.85,
                                              int iterations = 20);

/// Connected components of the *undirected view* (an edge connects both
/// endpoints regardless of direction). Returns vertex -> component
/// representative (the smallest vertex ID in the component).
std::unordered_map<VertexId, VertexId> ConnectedComponents(
    const TopologyStore& store);

/// Number of distinct components in a ConnectedComponents() result.
std::size_t NumComponents(
    const std::unordered_map<VertexId, VertexId>& components);

/// Common out-neighbours of a and b (ascending), by merge-joining the
/// samtrees' sorted ID streams — O(deg_a log n_L + deg_b log n_L).
/// The co-engagement primitive of item-item similarity.
std::vector<VertexId> CommonNeighbors(const TopologyStore& store, VertexId a,
                                      VertexId b);

/// Jaccard similarity |N(a) ∩ N(b)| / |N(a) ∪ N(b)| of out-neighbourhoods
/// (0 when either is empty).
double JaccardSimilarity(const TopologyStore& store, VertexId a, VertexId b);

/// Monte-Carlo global triangle estimate on a *bi-directed* graph: sample
/// `samples` wedges (v, a, b) with a, b distinct uniform neighbours of v
/// and test whether edge a->b closes the triangle; scale by the total
/// wedge count. Exact enumeration is O(sum deg^2); this is O(samples).
double EstimateTriangles(const TopologyStore& store, std::size_t samples,
                         Xoshiro256& rng);

}  // namespace platod2gl
