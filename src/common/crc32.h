// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven and
// dependency-free. Used as the integrity footer of checkpoint files
// (io/checkpoint.cc) so bit rot and truncation are detected on load
// instead of silently building a wrong store.
//
// The running-value form lets callers checksum a stream chunk by chunk:
//
//   std::uint32_t crc = 0;
//   crc = Crc32(buf1, n1, crc);
//   crc = Crc32(buf2, n2, crc);
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace platod2gl {

namespace crc32_internal {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

/// CRC-32 of `n` bytes at `data`, continuing from a previous running value
/// (pass 0 to start). Matches zlib's crc32() for the same input.
inline std::uint32_t Crc32(const void* data, std::size_t n,
                           std::uint32_t running = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = running ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = crc32_internal::kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace platod2gl
