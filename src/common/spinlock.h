// A test-and-test-and-set spinlock used for short critical sections
// (cuckoo hash buckets, per-tree latches in the latch-based reference
// mode). After a bounded spin it yields to the scheduler, so contention
// on over-subscribed machines (threads > cores) degrades gracefully
// instead of burning whole quanta.
#pragma once

#include <atomic>
#include <thread>

namespace platod2gl {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    int spins = 0;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a relaxed load to avoid cache-line ping-pong.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        } else {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        }
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 64;
  std::atomic<bool> flag_{false};
};

}  // namespace platod2gl
