// A test-and-test-and-set spinlock used for short critical sections
// (cuckoo hash buckets, per-tree latches in the latch-based reference
// mode). After a bounded spin it yields to the scheduler, so contention
// on over-subscribed machines (threads > cores) degrades gracefully
// instead of burning whole quanta.
//
// The class is a Clang TSA capability: fields protected by a Spinlock are
// tagged GUARDED_BY(the lock) and must be accessed through SpinlockGuard
// (or an ACQUIRE/RELEASE-annotated path) for the thread-safety CI job to
// pass. Prefer SpinlockGuard over std::lock_guard<Spinlock>: the standard
// guard is invisible to the analysis.
#pragma once

#include <atomic>
#include <thread>

#include "common/thread_annotations.h"
#if defined(PD2GL_SCHEDCHECK)
#include "common/sched_hooks.h"
#endif

namespace platod2gl {

class CAPABILITY("mutex") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() ACQUIRE() {
#if defined(PD2GL_SCHEDCHECK)
    // Under an active schedule model the lock is virtual: ownership lives
    // in the scheduler and flag_ is never touched (threads are serialised,
    // so mutual exclusion holds by construction).
    if (sched::ModelActive()) {
      sched::LockAcquire(this, "Spinlock");
      return;
    }
#endif
    int spins = 0;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a relaxed load to avoid cache-line ping-pong.
      // order: stat tally, read for reporting only
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        } else {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        }
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
#if defined(PD2GL_SCHEDCHECK)
    if (sched::ModelActive()) return sched::LockTryAcquire(this, "Spinlock");
#endif
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() RELEASE() {
#if defined(PD2GL_SCHEDCHECK)
    if (sched::ModelActive()) {
      sched::LockRelease(this, "Spinlock");
      return;
    }
#endif
    flag_.store(false, std::memory_order_release);
  }

 private:
  static constexpr int kSpinLimit = 64;
  std::atomic<bool> flag_{false};
};

/// RAII lock holder for Spinlock, visible to the thread-safety analysis
/// (a drop-in replacement for std::lock_guard<Spinlock>).
class SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~SpinlockGuard() RELEASE() { mu_.unlock(); }

  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& mu_;
};

}  // namespace platod2gl
