// LatencyHistogram: lock-free log-bucketed latency tracking.
//
// Production graph servers report per-request latency percentiles; the
// cluster simulation records its per-RPC service times here and the
// serving layer records per-request latencies. Buckets are powers of two
// in nanoseconds, so Record() is one CLZ plus one relaxed atomic
// increment, safe from any thread.
//
// SLO windows want interval percentiles ("p99 over the last window"),
// which the racy advisory Reset() cannot provide: a Reset() concurrent
// with Record() silently drops or double-counts samples. Snapshot()
// instead copies the monotone counters into a plain HistogramSnapshot
// value; DeltaSince() of two snapshots is exact per-bucket subtraction,
// so windowed percentiles never clear the live histogram at all.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace platod2gl {

/// A plain (non-atomic) copy of histogram counters. Cheap to copy,
/// supports the same percentile queries as the live histogram, and can
/// be subtracted to get an interval view.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};

  std::uint64_t Count() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : buckets) n += b;
    return n;
  }

  /// Percentile (pct in (0, 100]) in nanoseconds with linear
  /// interpolation inside the containing power-of-two bucket. 0 when
  /// empty.
  std::uint64_t PercentileNanos(double pct) const;
  /// Same, but distinguishes "p50 is genuinely 0ns" from "no samples":
  /// *valid is false (and 0 returned) iff the snapshot is empty. Callers
  /// aggregating across shards must check it before averaging — an empty
  /// shard's 0 is not a latency.
  std::uint64_t PercentileNanos(double pct, bool* valid) const;
  double PercentileMicros(double pct) const {
    return static_cast<double>(PercentileNanos(pct)) / 1e3;
  }

  /// Cross-shard aggregation: fold another snapshot's buckets in. Exact —
  /// the merged percentile is the percentile of the combined sample set
  /// (up to the shared bucket resolution).
  void Merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  }

  /// Per-bucket difference against an earlier snapshot of the same
  /// histogram. Counters are monotone, so subtraction is exact; clamps
  /// at zero defensively if given snapshots from different histograms.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const {
    HistogramSnapshot d;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      d.buckets[i] =
          buckets[i] < earlier.buckets[i] ? 0 : buckets[i] - earlier.buckets[i];
    }
    return d;
  }
};

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  LatencyHistogram() = default;

  /// Record one sample. Thread-safe.
  void Record(std::uint64_t nanos) {
    // order: stat tally, read for reporting only
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMicros(double micros) {
    Record(static_cast<std::uint64_t>(micros * 1e3));
  }

  std::uint64_t Count() const {
    std::uint64_t n = 0;
    // order: stat tally, read for reporting only
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Race-free interval basis: copy the current counters. Each bucket
  /// read is individually atomic; the snapshot as a whole is a
  /// consistent-enough basis for windowed stats because counters only
  /// grow.
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      // order: stat tally, read for reporting only
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  /// Approximate percentile (pct in (0, 100]) in nanoseconds, linearly
  /// interpolated within the containing bucket. 0 when empty.
  std::uint64_t PercentileNanos(double pct) const {
    return Snapshot().PercentileNanos(pct);
  }
  double PercentileMicros(double pct) const {
    return static_cast<double>(PercentileNanos(pct)) / 1e3;
  }

  void Reset() {
    // order: racy reset is advisory; buckets are stats only
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t BucketOf(std::uint64_t nanos) {
    if (nanos == 0) return 0;
    return 64 - static_cast<std::size_t>(__builtin_clzll(nanos));
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace platod2gl
