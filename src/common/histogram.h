// LatencyHistogram: lock-free log-bucketed latency tracking.
//
// Production graph servers report per-request latency percentiles; the
// cluster simulation records its per-RPC service times here. Buckets are
// powers of two in nanoseconds, so Record() is one CLZ plus one relaxed
// atomic increment, safe from any thread.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace platod2gl {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  LatencyHistogram() = default;

  /// Record one sample. Thread-safe.
  void Record(std::uint64_t nanos) {
    // order: stat tally, read for reporting only
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMicros(double micros) {
    Record(static_cast<std::uint64_t>(micros * 1e3));
  }

  std::uint64_t Count() const {
    std::uint64_t n = 0;
    // order: stat tally, read for reporting only
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Approximate percentile (pct in (0, 100]) in nanoseconds, using the
  /// upper edge of the containing bucket. 0 when empty.
  std::uint64_t PercentileNanos(double pct) const;
  double PercentileMicros(double pct) const {
    return static_cast<double>(PercentileNanos(pct)) / 1e3;
  }

  void Reset() {
    // order: racy reset is advisory; buckets are stats only
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t BucketOf(std::uint64_t nanos) {
    if (nanos == 0) return 0;
    return 64 - static_cast<std::size_t>(__builtin_clzll(nanos));
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace platod2gl
