// Wall-clock timing helpers for benchmarks and examples.
#pragma once

#include <chrono>
#include <cstdint>

namespace platod2gl {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace platod2gl
