#include "common/histogram.h"

namespace platod2gl {

std::uint64_t HistogramSnapshot::PercentileNanos(double pct) const {
  bool valid = false;
  return PercentileNanos(pct, &valid);
}

std::uint64_t HistogramSnapshot::PercentileNanos(double pct,
                                                 bool* valid) const {
  const std::uint64_t total = Count();
  *valid = total != 0;
  if (total == 0) return 0;
  std::uint64_t target = static_cast<std::uint64_t>(
      (pct / 100.0) * static_cast<double>(total) + 0.5);
  // Rank 0 would satisfy the scan at the first (possibly empty) bucket;
  // any percentile of a non-empty histogram is at least the smallest
  // sample.
  if (target == 0) target = 1;

  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    running += in_bucket;
    if (running >= target) {
      // Bucket 0 holds the zeros; bucket i >= 1 spans [2^(i-1), 2^i - 1].
      if (i == 0) return 0;
      const std::uint64_t lo = 1ULL << (i - 1);
      const std::uint64_t hi = (1ULL << i) - 1;
      // Interpolate by rank within the bucket: the upper-edge estimate
      // alone is up to 2x off at the tail of a wide bucket.
      const std::uint64_t before = running - in_bucket;
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(in_bucket);
      return lo + static_cast<std::uint64_t>(frac *
                                             static_cast<double>(hi - lo));
    }
  }
  return ~0ULL;
}

}  // namespace platod2gl
