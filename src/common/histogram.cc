#include "common/histogram.h"

namespace platod2gl {

std::uint64_t LatencyHistogram::PercentileNanos(double pct) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0;
  const std::uint64_t target = static_cast<std::uint64_t>(
      (pct / 100.0) * static_cast<double>(total) + 0.5);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    // order: stat tally, read for reporting only
    running += buckets_[i].load(std::memory_order_relaxed);
    if (running >= target) {
      // Upper edge of bucket i: 2^i - 1 (bucket 0 holds the zeros).
      return i == 0 ? 0 : (1ULL << i) - 1;
    }
  }
  return ~0ULL;
}

}  // namespace platod2gl
