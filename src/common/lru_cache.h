// LruCache: a fixed-capacity least-recently-used cache.
//
// Training servers cache the vertex features they fetch from the remote
// attribute store (hot vertices recur across minibatches on skewed
// graphs), trading a bounded amount of trainer memory for most of the
// fetch RPCs. Single-threaded by design: each trainer worker owns one.
// There is no internal lock, so there is nothing for the thread-safety
// analysis to check statically; instead, builds with
// PD2GL_ENABLE_INVARIANTS assert the single-owner contract at runtime
// (every call must come from the thread that first used the cache) and
// CheckInvariants() validates the list/index cross-links.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#if defined(PD2GL_ENABLE_INVARIANTS)
#include <thread>
#endif

namespace platod2gl {

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  /// Pointer to the cached value (refreshing its recency), or nullptr.
  V* Get(const K& key) {
    AssertSingleOwner();
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);  // move to front
    return &it->second->second;
  }

  /// Insert or overwrite; evicts the least-recently-used entry at
  /// capacity. Returns the cached value.
  V* Put(const K& key, V value) {
    AssertSingleOwner();
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return &it->second->second;
    }
    if (index_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    return &order_.front().second;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

  void Clear() {
    AssertSingleOwner();
    order_.clear();
    index_.clear();
  }

  /// Structural self-check: the recency list and the index must describe
  /// the same key set, every index entry must point at the list node that
  /// carries its key, and the capacity bound must hold. O(n). Returns
  /// true when consistent, otherwise fills *error.
  bool CheckInvariants(std::string* error) const {
    auto fail = [&](const std::string& msg) {
      if (error) *error = msg;
      return false;
    };
    if (index_.size() != order_.size()) {
      return fail("index/order size mismatch (" +
                  std::to_string(index_.size()) + " vs " +
                  std::to_string(order_.size()) + ")");
    }
    if (index_.size() > capacity_) {
      return fail("size " + std::to_string(index_.size()) +
                  " exceeds capacity " + std::to_string(capacity_));
    }
    std::size_t walked = 0;
    for (auto it = order_.begin(); it != order_.end(); ++it, ++walked) {
      auto idx = index_.find(it->first);
      if (idx == index_.end()) return fail("list key missing from index");
      if (idx->second != it) return fail("index entry points at wrong node");
    }
    if (walked != index_.size()) return fail("list walk length mismatch");
    return true;
  }

 private:
#if defined(PD2GL_ENABLE_INVARIANTS)
  /// Latches the first mutating thread and asserts every later call comes
  /// from it — turns a silent cross-thread misuse of this intentionally
  /// unsynchronised class into an immediate failure.
  void AssertSingleOwner() {
    const std::thread::id self = std::this_thread::get_id();
    if (owner_ == std::thread::id{}) owner_ = self;
    assert(owner_ == self &&
           "LruCache is single-threaded; wrap it in a lock to share it");
  }
  std::thread::id owner_{};
#else
  void AssertSingleOwner() {}
#endif

  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace platod2gl
