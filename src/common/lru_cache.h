// LruCache: a fixed-capacity least-recently-used cache.
//
// Training servers cache the vertex features they fetch from the remote
// attribute store (hot vertices recur across minibatches on skewed
// graphs), trading a bounded amount of trainer memory for most of the
// fetch RPCs. Single-threaded by design: each trainer worker owns one.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace platod2gl {

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  /// Pointer to the cached value (refreshing its recency), or nullptr.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);  // move to front
    return &it->second->second;
  }

  /// Insert or overwrite; evicts the least-recently-used entry at
  /// capacity. Returns the cached value.
  V* Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return &it->second->second;
    }
    if (index_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    return &order_.front().second;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace platod2gl
