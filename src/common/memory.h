// Explicit, deterministic memory accounting.
//
// Table IV of the paper compares the memory footprint of the topology
// stores after graph building. Rather than relying on allocator hooks
// (which are noisy and platform-dependent), every storage structure in
// this library implements `MemoryUsage()` which walks the structure and
// sums the bytes of payload plus container overhead. The helpers here
// keep that accounting uniform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace platod2gl {

/// Bytes held by a std::vector's heap buffer (capacity, not size —
/// capacity is what the process actually pays for).
template <typename T>
std::size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes held by a std::string, accounting for the small-string
/// optimisation (no heap allocation below the SSO threshold).
std::size_t StringBytes(const std::string& s);

/// Pretty-print a byte count, e.g. "1.23 GB".
std::string HumanBytes(std::size_t bytes);

/// Aggregated memory report for a storage system.
struct MemoryBreakdown {
  std::size_t topology_bytes = 0;  ///< adjacency payloads (IDs + weights)
  std::size_t index_bytes = 0;     ///< sampling indexes (CSTable/FSTable/alias)
  std::size_t key_bytes = 0;       ///< key/indexing overhead of the map layer
  std::size_t other_bytes = 0;     ///< everything else (node headers, ...)

  std::size_t Total() const {
    return topology_bytes + index_bytes + key_bytes + other_bytes;
  }
};

/// Shard-local bump allocator with size-class free lists, built for
/// samtree nodes (docs/sampling_simd.md §arena).
///
/// The sampling descent walks root → leaf touching one node per level;
/// with nodes individually malloc'd, consecutive levels stride the whole
/// heap and every hop is a cold miss. A NodeArena instead carves nodes out
/// of large contiguous chunks in allocation order — BulkBuild and the
/// bottom-up rebuild allocate level by level, so the nodes a descent visits
/// end up near one another and the `__builtin_prefetch` of the next level
/// actually lands in an open row.
///
/// Design points:
///   * Allocate() bumps within the current chunk; frees go to a per-size
///     free list (node sizes are a handful of fixed classes) and are
///     reused before the bump pointer advances. Chunks are only returned
///     to the OS when the arena itself dies, so the arena must outlive
///     every node carved from it (TopologyStore declares it before the
///     tree map for exactly this reason).
///   * Thread safety: a spinlock guards the free lists and bump pointer.
///     The batch updater mutates distinct samtrees of one store from
///     several threads at once, and splits/merges allocate — so the arena
///     cannot rely on any per-tree exclusivity.
///   * Deallocate() needs the allocation size back (unique_ptr deleters
///     know their node type), which keeps headers off the fast path and
///     nodes tightly packed.
class NodeArena {
 public:
  /// Alignment of every returned block; node types must not over-align.
  static constexpr std::size_t kAlignment = 16;

  explicit NodeArena(std::size_t chunk_bytes = 64 * 1024);

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// A kAlignment-aligned block of at least `bytes` bytes. Never fails
  /// except by throwing std::bad_alloc.
  void* Allocate(std::size_t bytes);

  /// Return a block previously obtained from Allocate(bytes) — the same
  /// `bytes` value must be passed back.
  void Deallocate(void* p, std::size_t bytes);

  /// Total bytes reserved from the OS (chunks; an upper bound on live).
  std::size_t MemoryUsage() const;

  /// Bytes currently handed out to live allocations.
  std::size_t LiveBytes() const;

  /// Reserved-but-idle bytes (chunk slack + free lists) — what Memory()
  /// accounting should add on top of per-node logical sizes.
  std::size_t SlackBytes() const {
    const std::size_t total = MemoryUsage();
    const std::size_t live = LiveBytes();
    return total > live ? total - live : 0;
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static std::size_t SizeClass(std::size_t bytes) {
    // Classes are kAlignment-granular; class 0 is unused so every block
    // can hold the intrusive free-list pointer.
    const std::size_t cls = (bytes + kAlignment - 1) / kAlignment;
    return cls == 0 ? 1 : cls;
  }

  mutable Spinlock mu_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_ GUARDED_BY(mu_);
  std::vector<FreeBlock*> free_lists_ GUARDED_BY(mu_);  // index = size class
  std::byte* bump_ GUARDED_BY(mu_) = nullptr;
  std::size_t bump_remaining_ GUARDED_BY(mu_) = 0;
  std::size_t chunk_bytes_;
  std::size_t total_bytes_ GUARDED_BY(mu_) = 0;
  std::size_t live_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace platod2gl
