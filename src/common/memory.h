// Explicit, deterministic memory accounting.
//
// Table IV of the paper compares the memory footprint of the topology
// stores after graph building. Rather than relying on allocator hooks
// (which are noisy and platform-dependent), every storage structure in
// this library implements `MemoryUsage()` which walks the structure and
// sums the bytes of payload plus container overhead. The helpers here
// keep that accounting uniform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace platod2gl {

/// Bytes held by a std::vector's heap buffer (capacity, not size —
/// capacity is what the process actually pays for).
template <typename T>
std::size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes held by a std::string, accounting for the small-string
/// optimisation (no heap allocation below the SSO threshold).
std::size_t StringBytes(const std::string& s);

/// Pretty-print a byte count, e.g. "1.23 GB".
std::string HumanBytes(std::size_t bytes);

/// Aggregated memory report for a storage system.
struct MemoryBreakdown {
  std::size_t topology_bytes = 0;  ///< adjacency payloads (IDs + weights)
  std::size_t index_bytes = 0;     ///< sampling indexes (CSTable/FSTable/alias)
  std::size_t key_bytes = 0;       ///< key/indexing overhead of the map layer
  std::size_t other_bytes = 0;     ///< everything else (node headers, ...)

  std::size_t Total() const {
    return topology_bytes + index_bytes + key_bytes + other_bytes;
  }
};

}  // namespace platod2gl
