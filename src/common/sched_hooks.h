// Schedule-checker instrumentation hooks (docs/schedule_checker.md).
//
// The deterministic schedule-exploration harness in src/schedcheck/
// serialises the threads of a small concurrent scenario onto one
// controlled runner and explores their interleavings (exhaustive DFS with
// a preemption bound, or seeded random-walk / PCT). For that to mean
// anything, the production synchronisation surface must expose its
// decision points to the scheduler. This header is that seam:
//
//  * sched::Atomic<T> — what concurrent structures declare instead of
//    std::atomic<T>. In normal builds it IS std::atomic<T> (a template
//    alias: zero overhead, identical codegen — bench_sampling_batched
//    enforces this stays true). Under -DPD2GL_SCHEDCHECK it becomes
//    sched::InstrumentedAtomic<T>, which announces every load/store/RMW
//    to the active scheduler as a possible preemption point.
//  * entry points (Point, LockAcquire, ...) — called by the #ifdef'd
//    hooks in Spinlock / Mutex / CondVar. Every entry point no-ops
//    unless the calling thread is a registered scenario thread, so
//    ordinary tests in an instrumented build behave normally. While a
//    model is active the locks are *virtual*: ownership lives in the
//    scheduler (threads are serialised, so mutual exclusion is enforced
//    by construction) and the real primitive is never touched — which is
//    what makes forced teardown of a failing schedule UB-free.
//  * sched::NonAtomic<T> — a deliberately plain cell whose accesses span
//    two schedule points; the scheduler reports overlapping conflicting
//    accesses from different threads as a data race. Production code
//    never uses it except behind test toggles that reintroduce known
//    races (e.g. the pre-PR2 CuckooMap shard-size counter) so the
//    checker can prove it rediscovers them.
//
// Production code includes only this header. The scheduler itself lives
// in src/schedcheck/ (always compiled into the library — the entry
// points are cheap thread-local checks — but only scenario tests ever
// activate a model).
#pragma once

#include <atomic>
#include <cstdint>

namespace platod2gl::sched {

/// What kind of operation a schedule point announces. Trace lines and the
/// exploration heuristics both key off this.
enum class OpKind : std::uint8_t {
  kThreadStart,  ///< scenario thread about to run its first instruction
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kLockAcquire,  ///< about to (re)attempt taking a virtual lock
  kLockRelease,
  kCondWait,  ///< about to release the lock and block on a condvar
  kCondNotify,
  kPlainLoad,   ///< open a racy (non-atomic) read interval
  kPlainStore,  ///< open a racy (non-atomic) write interval
  kPlainEnd,    ///< close the racy interval opened by the same thread
  kYield,       ///< explicit sched::Yield in scenario code
};

const char* OpKindName(OpKind kind);

/// True when the calling thread is a scenario thread of an active model.
bool ModelActive();

/// Announce an operation and hand control to the scheduler, which may run
/// any other enabled thread before this one proceeds. No-op when no model
/// is active on this thread.
void Point(OpKind kind, const void* obj, const char* what);

/// Explicit preemption point for scenario code.
inline void Yield(const char* what = "yield") {
  Point(OpKind::kYield, nullptr, what);
}

// --- Virtual locks ---------------------------------------------------------
// Only meaningful while a model is active (callers gate on ModelActive()).
// The scheduler tracks ownership; blocked acquirers are descheduled until
// the owner releases, so modelled waiting never spins and never touches
// the real primitive.

void LockAcquire(const void* obj, const char* what);
bool LockTryAcquire(const void* obj, const char* what);
void LockRelease(const void* obj, const char* what);

/// Condvar wait body: the caller has already released the (virtual) lock;
/// blocks until CondNotify on `cv`. Lost wakeups are modelled faithfully:
/// a notify with no waiters does nothing, which is exactly how the
/// checker turns a lost-wakeup bug into a reported deadlock.
void CondBlock(const void* cv, const char* what);
void CondNotify(const void* cv, const char* what);
/// notify_one counterpart: wakes (or pre-signals) the earliest registered
/// waiter only — deterministic, since waiters register in schedule order.
void CondNotifyOne(const void* cv, const char* what);

/// CondBlock split in two so a modelled condvar wait can register BEFORE
/// releasing its lock — the atomic release-and-wait of a real condition
/// variable. A notify landing between the two halves is consumed, not
/// lost:
///   CondPrepareWait(cv); lock.unlock(); CondCommitWait(cv); lock.lock();
void CondPrepareWait(const void* cv, const char* what);
void CondCommitWait(const void* cv);

// --- Racy (plain) accesses -------------------------------------------------
// An access is modelled as an open interval spanning two schedule points;
// a conflicting access from another thread that lands inside the interval
// is reported as a data race (and fails the schedule deterministically).

void PlainBegin(const void* obj, bool is_write, const char* what);
void PlainEnd(const void* obj);

// --- Test toggles ----------------------------------------------------------

/// Reintroduce the pre-PR2 CuckooMap shard-size race (a plain counter
/// written under the shard lock but read lock-free by Size()). Only
/// consulted by code compiled under PD2GL_SCHEDCHECK; exists so
/// tests/test_schedcheck_scenarios.cc can prove the checker finds the
/// race that TSan originally caught by luck.
void SetCuckooShardSizeRace(bool reintroduce);
bool CuckooShardSizeRace();

// --- Instrumented cell types ----------------------------------------------

/// std::atomic<T> with a schedule point before every operation. Always
/// defined (the harness self-tests use it in every build); production
/// code reaches it through the sched::Atomic alias below.
template <typename T>
class InstrumentedAtomic {
 public:
  InstrumentedAtomic() noexcept = default;
  constexpr InstrumentedAtomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  InstrumentedAtomic(const InstrumentedAtomic&) = delete;
  InstrumentedAtomic& operator=(const InstrumentedAtomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    Point(OpKind::kAtomicLoad, this, "atomic");
    return v_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicStore, this, "atomic");
    v_.store(v, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.exchange(v, mo);
  }
  T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.fetch_add(v, mo);
  }
  T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.fetch_sub(v, mo);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.compare_exchange_weak(expected, desired, success, failure);
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.compare_exchange_weak(expected, desired, mo);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    Point(OpKind::kAtomicRmw, this, "atomic");
    return v_.compare_exchange_strong(expected, desired, mo);
  }

 private:
  std::atomic<T> v_{};
};

/// A deliberately plain cell: loads and stores are modelled as racy
/// intervals. Outside a model it behaves like a plain T (no atomicity —
/// this type exists to put known races back under the checker's eye, not
/// to be used in production paths).
template <typename T>
class NonAtomic {
 public:
  NonAtomic() noexcept = default;
  constexpr NonAtomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  NonAtomic(const NonAtomic&) = delete;
  NonAtomic& operator=(const NonAtomic&) = delete;

  T load() const {
    if (!ModelActive()) return v_;
    PlainBegin(this, /*is_write=*/false, "plain");
    T v = v_;
    PlainEnd(this);
    return v;
  }
  void store(T v) {
    if (!ModelActive()) {
      v_ = v;
      return;
    }
    PlainBegin(this, /*is_write=*/true, "plain");
    v_ = v;
    PlainEnd(this);
  }

 private:
  T v_{};
};

#if defined(PD2GL_SCHEDCHECK)
template <typename T>
using Atomic = InstrumentedAtomic<T>;
#else
/// Production alias: a sched::Atomic member IS a std::atomic member.
template <typename T>
using Atomic = std::atomic<T>;
#endif

}  // namespace platod2gl::sched
