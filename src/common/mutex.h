// Annotation-aware mutex wrapper.
//
// libstdc++'s std::mutex carries no Clang TSA attributes, so code locking
// it through std::lock_guard is invisible to -Wthread-safety. This thin
// wrapper gives the blocking mutex the same capability treatment as
// Spinlock: Mutex is a CAPABILITY, MutexLock is the SCOPED_CAPABILITY
// holder, and condition waits go through std::condition_variable_any,
// which accepts the Mutex itself as its lockable (wait() releases and
// reacquires, so the capability is held again when it returns — exactly
// what the analysis assumes).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace platod2gl {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII holder, the annotated counterpart of std::lock_guard<Mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable compatible with the annotated Mutex. wait(mu) is
/// called with the capability held; the transient release inside is
/// invisible to (and irrelevant for) the static analysis.
using CondVar = std::condition_variable_any;

}  // namespace platod2gl
