// Annotation-aware mutex wrapper.
//
// libstdc++'s std::mutex carries no Clang TSA attributes, so code locking
// it through std::lock_guard is invisible to -Wthread-safety. This thin
// wrapper gives the blocking mutex the same capability treatment as
// Spinlock: Mutex is a CAPABILITY, MutexLock is the SCOPED_CAPABILITY
// holder, and condition waits go through std::condition_variable_any,
// which accepts the Mutex itself as its lockable (wait() releases and
// reacquires, so the capability is held again when it returns — exactly
// what the analysis assumes).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"
#if defined(PD2GL_SCHEDCHECK)
#include "common/sched_hooks.h"
#endif

namespace platod2gl {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if defined(PD2GL_SCHEDCHECK)
    // Virtual while a schedule model is active: ownership lives in the
    // scheduler and the real mutex is never touched (see sched_hooks.h).
    if (sched::ModelActive()) {
      sched::LockAcquire(this, "Mutex");
      return;
    }
#endif
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
#if defined(PD2GL_SCHEDCHECK)
    if (sched::ModelActive()) return sched::LockTryAcquire(this, "Mutex");
#endif
    return mu_.try_lock();
  }
  void unlock() RELEASE() {
#if defined(PD2GL_SCHEDCHECK)
    if (sched::ModelActive()) {
      sched::LockRelease(this, "Mutex");
      return;
    }
#endif
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// RAII holder, the annotated counterpart of std::lock_guard<Mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

#if defined(PD2GL_SCHEDCHECK)
/// Condition variable compatible with the annotated Mutex. Under the
/// schedule checker, waits on a model-active thread are routed through
/// the scheduler: the waiter registers BEFORE releasing the lock (the
/// atomic release-and-wait of a real condvar, so notifies landing in the
/// gap are consumed, not lost), blocks until a modelled notify, then
/// reacquires. Notifies with no registered waiter do nothing — lost
/// wakeups surface as modelled deadlocks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Lock>
  void wait(Lock& lk) {
    if (sched::ModelActive()) {
      sched::CondPrepareWait(this, "CondVar");
      lk.unlock();
      sched::CondCommitWait(this);
      lk.lock();
      return;
    }
    impl_.wait(lk);
  }

  template <typename Lock, typename Pred>
  void wait(Lock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  void notify_one() {
    if (sched::ModelActive()) {
      sched::CondNotifyOne(this, "CondVar");
      return;
    }
    impl_.notify_one();
  }

  void notify_all() {
    if (sched::ModelActive()) {
      sched::CondNotify(this, "CondVar");
      return;
    }
    impl_.notify_all();
  }

 private:
  std::condition_variable_any impl_;
};
#else
/// Condition variable compatible with the annotated Mutex. wait(mu) is
/// called with the capability held; the transient release inside is
/// invisible to (and irrelevant for) the static analysis.
using CondVar = std::condition_variable_any;
#endif

}  // namespace platod2gl
