#include "common/memory.h"

#include <array>
#include <cstdio>

namespace platod2gl {

std::size_t StringBytes(const std::string& s) {
  // Heap allocation only happens above the SSO capacity.
  if (s.capacity() > std::string().capacity()) {
    return s.capacity() + 1;  // +1 for the NUL terminator.
  }
  return 0;
}

std::string HumanBytes(std::size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace platod2gl
