#include "common/memory.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <new>

namespace platod2gl {

NodeArena::NodeArena(std::size_t chunk_bytes)
    // Below one node-sized chunk the bump loop degenerates into one
    // allocation per chunk; clamp to something that amortises.
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 4096)) {}

void* NodeArena::Allocate(std::size_t bytes) {
  const std::size_t cls = SizeClass(bytes);
  const std::size_t rounded = cls * kAlignment;
  SpinlockGuard lock(mu_);
  if (cls < free_lists_.size() && free_lists_[cls] != nullptr) {
    FreeBlock* block = free_lists_[cls];
    free_lists_[cls] = block->next;
    live_bytes_ += rounded;
    return block;
  }
  if (rounded > bump_remaining_) {
    // Oversized requests get a dedicated chunk; the (now-abandoned) tail
    // of the previous chunk is counted as slack, not leaked list state.
    const std::size_t want = std::max(rounded, chunk_bytes_);
    chunks_.push_back(std::make_unique<std::byte[]>(want));
    bump_ = chunks_.back().get();
    bump_remaining_ = want;
    total_bytes_ += want;
  }
  void* p = bump_;
  bump_ += rounded;
  bump_remaining_ -= rounded;
  live_bytes_ += rounded;
  return p;
}

void NodeArena::Deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t cls = SizeClass(bytes);
  SpinlockGuard lock(mu_);
  if (cls >= free_lists_.size()) free_lists_.resize(cls + 1, nullptr);
  // The dead block itself stores the free-list link (kAlignment >=
  // sizeof(FreeBlock), so every class fits one).
  auto* block = new (p) FreeBlock{free_lists_[cls]};  // pd2gl-lint: allow-naked-new
  free_lists_[cls] = block;
  live_bytes_ -= cls * kAlignment;
}

std::size_t NodeArena::MemoryUsage() const {
  SpinlockGuard lock(mu_);
  return total_bytes_ + chunks_.capacity() * sizeof(chunks_[0]) +
         free_lists_.capacity() * sizeof(FreeBlock*);
}

std::size_t NodeArena::LiveBytes() const {
  SpinlockGuard lock(mu_);
  return live_bytes_;
}

std::size_t StringBytes(const std::string& s) {
  // Heap allocation only happens above the SSO capacity.
  if (s.capacity() > std::string().capacity()) {
    return s.capacity() + 1;  // +1 for the NUL terminator.
  }
  return 0;
}

std::string HumanBytes(std::size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace platod2gl
