// Fixed-size worker pool used by the batch updater, the distributed-shard
// simulation and the parallel samplers.
//
// All queue/bookkeeping state is guarded by one Mutex and annotated for
// Clang's thread-safety analysis; condition waits use the spurious-wakeup-
// safe while-loop form so every guarded read stays inside the capability
// scope.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace platod2gl {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Block until every submitted task has finished executing.
  void Wait() EXCLUDES(mu_);

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  /// Splits the range into one contiguous block per thread — lowest queue
  /// overhead, but a block of expensive indices stalls the whole call.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like ParallelFor but with an explicit block size: submits
  /// ceil(n / grain) tasks of `grain` consecutive indices each. Small
  /// grains rebalance skewed per-index costs across the pool; large grains
  /// amortise task-queue overhead. grain = 0 is treated as 1.
  void ParallelForBlocked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // immutable after construction
  Mutex mu_;
  CondVar task_cv_;  // signalled when a task is available
  CondVar done_cv_;  // signalled when all work drained
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace platod2gl
