// Core identifier and edge types shared by every PlatoD2GL module.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace platod2gl {

/// Unique 64-bit identifier of a vertex in the graph.
using VertexId = std::uint64_t;

/// Identifier of an edge relation (type) in a heterogeneous graph,
/// e.g. User-Live vs. Live-Tag in the WeChat dataset.
using EdgeType = std::uint32_t;

/// Edge weight. The paper assumes W : E -> R+.
using Weight = double;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// A directed weighted edge e(src, dst, weight) of a given relation.
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  Weight weight = 1.0;
  EdgeType type = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Kind of a dynamic topology mutation.
enum class UpdateKind : std::uint8_t {
  kInsert,         ///< insert a new edge (or refresh weight if it exists)
  kInPlaceUpdate,  ///< overwrite the weight of an existing edge
  kDelete,         ///< remove an edge
};

/// One entry in a dynamic update batch.
struct EdgeUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  Edge edge;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// A sampled neighbour: destination vertex plus the weight of the edge
/// that was traversed.
struct SampledNeighbor {
  VertexId vertex = kInvalidVertex;
  Weight weight = 0.0;

  friend bool operator==(const SampledNeighbor&,
                         const SampledNeighbor&) = default;
};

}  // namespace platod2gl
