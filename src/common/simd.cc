#include "common/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define PD2GL_X86 1
#include <immintrin.h>
#endif

namespace platod2gl {
namespace simd {
namespace {

bool DetectAvx2() {
#if defined(PD2GL_X86) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool EnvForcesScalar() {
  const char* v = std::getenv("PD2GL_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// -1 = undecided (resolve from CPUID + environment on first use),
//  0 = scalar, 1 = AVX2.
std::atomic<int> g_avx2_mode{-1};
std::atomic<bool> g_prefetch{true};

std::size_t FindFirstGreaterScalar(const Weight* a, std::size_t n,
                                   std::size_t start, Weight r) {
  for (std::size_t i = start; i < n; ++i) {
    if (a[i] > r) return i;
  }
  return n;
}

void AddToRangeScalar(Weight* a, std::size_t begin, std::size_t end,
                      Weight delta) {
  for (std::size_t i = begin; i < end; ++i) a[i] += delta;
}

#if defined(PD2GL_X86)

// _CMP_GT_OQ is the ordered >: exactly the scalar `a[i] > r`, including
// the all-false answer on NaN. movemask gives one bit per lane; the first
// set bit is the first qualifying element.
__attribute__((target("avx2"))) std::size_t FindFirstGreaterAvx2(
    const Weight* a, std::size_t n, std::size_t start, Weight r) {
  std::size_t i = start;
  const __m256d rv = _mm256_set1_pd(r);
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(v, rv, _CMP_GT_OQ));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] > r) return i;
  }
  return n;
}

// Elementwise vaddpd == the scalar `a[i] += delta` bit for bit (same IEEE
// operation per element, no reassociation, no FMA contraction).
__attribute__((target("avx2"))) void AddToRangeAvx2(Weight* a,
                                                    std::size_t begin,
                                                    std::size_t end,
                                                    Weight delta) {
  std::size_t i = begin;
  const __m256d dv = _mm256_set1_pd(delta);
  for (; i + 4 <= end; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_add_pd(_mm256_loadu_pd(a + i), dv));
  }
  for (; i < end; ++i) a[i] += delta;
}

#endif  // PD2GL_X86

int ResolveMode() {
  int mode = g_avx2_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    mode = (Avx2Supported() && !EnvForcesScalar()) ? 1 : 0;
    g_avx2_mode.store(mode, std::memory_order_release);
  }
  return mode;
}

}  // namespace

bool Avx2Supported() {
  static const bool supported = DetectAvx2();
  return supported;
}

bool Avx2Enabled() { return ResolveMode() == 1; }

void SetAvx2EnabledForTest(bool enabled) {
  g_avx2_mode.store(enabled && Avx2Supported() ? 1 : 0,
                    std::memory_order_release);
}

std::size_t FindFirstGreater(const Weight* a, std::size_t n,
                             std::size_t start, Weight r) {
#if defined(PD2GL_X86)
  if (ResolveMode() == 1) return FindFirstGreaterAvx2(a, n, start, r);
#endif
  return FindFirstGreaterScalar(a, n, start, r);
}

void AddToRange(Weight* a, std::size_t begin, std::size_t end, Weight delta) {
#if defined(PD2GL_X86)
  if (ResolveMode() == 1) {
    AddToRangeAvx2(a, begin, end, delta);
    return;
  }
#endif
  AddToRangeScalar(a, begin, end, delta);
}

// order: independent feature flag; no data is published through it
bool PrefetchEnabled() { return g_prefetch.load(std::memory_order_relaxed); }

void SetPrefetchEnabled(bool enabled) {
  // order: independent feature flag; no data is published through it
  g_prefetch.store(enabled, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace platod2gl
