#include "common/thread_pool.h"

#include <algorithm>

namespace platod2gl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  // while-loop form instead of a predicate lambda: the guarded read of
  // in_flight_ stays inside this function's capability scope, so the
  // thread-safety analysis can check it (a lambda body would need its own
  // annotation).
  while (in_flight_ != 0) done_cv_.wait(mu_);
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t shards = std::min(n, num_threads());
  const std::size_t chunk = (n + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::ParallelForBlocked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (grain >= n) {
    // One block: skip the queue round-trip entirely.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) task_cv_.wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace platod2gl
