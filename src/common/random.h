// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through Xoshiro256** instances seeded
// with SplitMix64 so that experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace platod2gl {

/// SplitMix64: used to expand a single seed into a full generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: a small, fast, high-quality PRNG (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, bound).
  double NextDouble(double bound) { return NextDouble() * bound; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        m = static_cast<__uint128_t>(Next()) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace platod2gl
