// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through Xoshiro256** instances seeded
// with SplitMix64 so that experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace platod2gl {

/// SplitMix64: used to expand a single seed into a full generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: a small, fast, high-quality PRNG (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, bound).
  double NextDouble(double bound) { return NextDouble() * bound; }

  /// Advance the state by 2^128 steps (Blackman & Vigna's jump
  /// polynomial): partitions one seed's stream into disjoint
  /// non-overlapping substreams. Parallel samplers hand worker chunk c
  /// a copy of the base generator jumped c times, which is both cheaper
  /// and statistically cleaner than re-seeding per chunk — and hoists
  /// generator construction out of the per-vertex fan-out loop entirely.
  void Jump() {
    static constexpr std::uint64_t kJump[4] = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t mask : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (mask & (1ULL << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        Next();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        m = static_cast<__uint128_t>(Next()) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace platod2gl
