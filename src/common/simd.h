// Runtime-dispatched SIMD kernels for the sampling hot path.
//
// The batched samtree descent (see docs/sampling_simd.md) leans on two
// primitive loops over node-resident prefix-sum spans:
//
//   FindFirstGreater — the ITS child search: smallest prefix sum
//       strictly above the residual draw (AVX2: compare + movemask,
//       4 doubles per step; bit-equal to std::upper_bound, which shares
//       the predicate);
//   AddToRange       — shift a contiguous span by a constant (the
//       CSTable's O(n) suffix rewrite on weight deltas).
//
// (The third hot kernel — the lane-parallel Fenwick descent — needs the
// FSTable's layout and lives with it in index/fstable.cc, dispatched
// through the same Avx2Enabled() switch.)
//
// Both kernels exist in a scalar and an AVX2 flavour. Dispatch is decided
// once per process from CPUID, overridable two ways so the fallback stays
// honest:
//
//   * environment: PD2GL_FORCE_SCALAR=1 (read once, before first use) —
//     what the no-AVX2 CI job sets;
//   * programmatic: SetAvx2EnabledForTest(bool) — what the bit-exactness
//     tests use to run both flavours in one process.
//
// The AVX2 flavours are *bit-exact* replicas of the scalar ones: the same
// IEEE comparisons against the same stored doubles (ordered predicates, so
// NaN behaves identically) and the same elementwise additions — no FMA, no
// reassociation. A forced-scalar run therefore produces byte-identical
// samples, which the `sampling`-labelled tests assert.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace platod2gl {
namespace simd {

/// True when the CPU reports AVX2 (CPUID, cached after the first call).
bool Avx2Supported();

/// True when the AVX2 kernels are actually dispatched: supported by the
/// CPU, not vetoed by PD2GL_FORCE_SCALAR, not overridden by a test hook.
bool Avx2Enabled();

/// Test/bench hook: force kernel dispatch scalar (false) or AVX2 (true —
/// silently clamped to scalar when the CPU lacks AVX2). Not thread-safe
/// against concurrent kernel calls; flip only around quiescent points.
void SetAvx2EnabledForTest(bool enabled);

/// Smallest i in [start, n) with a[i] > r; n when no such element. On a
/// non-decreasing span this is exactly std::upper_bound — the ITS child
/// search — as a branch-free left-to-right scan; `a` need not be sorted.
std::size_t FindFirstGreater(const Weight* a, std::size_t n,
                             std::size_t start, Weight r);

/// a[i] += delta for every i in [begin, end). Elementwise, so the result
/// is bit-identical across dispatch flavours.
void AddToRange(Weight* a, std::size_t begin, std::size_t end, Weight delta);

/// Software-prefetch switch for the samtree descent (benchmark ablation
/// knob; defaults to on).
bool PrefetchEnabled();
void SetPrefetchEnabled(bool enabled);

/// Hint the prefetcher at the next descent level (read, high locality).
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace simd
}  // namespace platod2gl
