// Minimal Status / Result types, in the spirit of absl::Status, so the
// public API can report failures without exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace platod2gl {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnavailable,        ///< target (e.g. a crashed shard) cannot serve now
  kDeadlineExceeded,   ///< retry budget / per-call deadline exhausted
  kDataLoss,           ///< integrity check failed (corrupt/truncated data)
  kUnimplemented,      ///< peer speaks a protocol version we do not
};

/// Lightweight status object: a code plus an optional human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m = "out of range") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "resource exhausted") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m = "internal error") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m = "unavailable") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m = "deadline exceeded") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m = "data loss") {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Unimplemented(std::string m = "unimplemented") {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status describing why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace platod2gl
