// Clang thread-safety-analysis (TSA) macros.
//
// The storage layer's correctness story — sharded spinlocks in the cuckoo
// map and sample cache, the PALM-style per-tree exclusivity of the batch
// updater — used to live in comments. These macros let the compiler check
// the locking discipline statically: every lock-protected field is tagged
// GUARDED_BY(its lock), every must-hold-the-lock helper REQUIRES(it), and
// the CI job building with `clang++ -Wthread-safety -Werror=thread-safety`
// turns an unguarded access into a build break.
//
// The attributes are a Clang extension; under GCC (the default toolchain)
// every macro expands to nothing, so annotated code builds identically.
// The macro set and spelling follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PD2GL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PD2GL_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) PD2GL_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY PD2GL_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define GUARDED_BY(x) PD2GL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) PD2GL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it).
#define REQUIRES(...) \
  PD2GL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability in shared (reader) mode.
#define REQUIRES_SHARED(...) \
  PD2GL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define ACQUIRE(...) PD2GL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PD2GL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define RELEASE(...) PD2GL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PD2GL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff it returned `ret`.
#define TRY_ACQUIRE(ret, ...) \
  PD2GL_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function may not be called while holding the capability (deadlock guard).
#define EXCLUDES(...) PD2GL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) PD2GL_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the calling thread already holds the capability.
#define ASSERT_CAPABILITY(x) PD2GL_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for functions whose synchronisation is deliberately
/// external to the analysis (e.g. CuckooMap::FindUnsafe, whose contract is
/// "only during read-only phases / under external partitioning"). Every
/// use must carry a comment citing the actual synchronisation argument.
#define NO_THREAD_SAFETY_ANALYSIS \
  PD2GL_THREAD_ANNOTATION(no_thread_safety_analysis)
