// Dataset presets: scaled-down synthetic stand-ins for the paper's
// evaluation graphs (Table III), keeping each relation's density and
// shape while shrinking vertex counts so the full experiment suite runs
// on one machine.
//
//   paper                      this repo (default scale)
//   ------------------------   --------------------------------------
//   OGBN   2.4M x2.4M, 61.9M   ogbn-mini   RMAT,      ~96K,   ~2.5M
//   Reddit 233K x233K, 114M    reddit-mini RMAT,      ~16K,   ~4.0M
//   WeChat 2.1B nodes, 63.9B   wechat-mini 4 bipartite relations, ~5M
//
// Every dataset is bi-directed, as in the paper. Sizes scale linearly
// with the PLATOD2GL_SCALE environment variable (default 1.0) so quick
// smoke runs and larger sweeps share one code path.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace platod2gl {

struct Dataset {
  std::string name;
  std::vector<Edge> edges;      ///< bi-directed edge stream, insert order
  std::size_t num_relations = 1;
};

/// Scale multiplier from PLATOD2GL_SCALE (clamped to [0.01, 100]).
double DatasetScale();

/// RMAT stand-in for OGBN-Products: ~96K vertices, avg degree ~26.
Dataset MakeOgbnMini();

/// RMAT stand-in for Reddit: small vertex set, very dense (avg degree
/// ~250 at default scale — Reddit's 489 halved to keep runtimes sane;
/// still an order denser than OGBN, which is the property that matters).
Dataset MakeRedditMini();

/// Heterogeneous stand-in for the WeChat production graph: four bipartite
/// relations (User-Live, User-Attr, Live-Live, Live-Tag) with the paper's
/// relative densities, IDs drawn from disjoint 64-bit namespaces.
Dataset MakeWeChatMini();

/// The WeChat relation IDs, for readability at call sites.
enum WeChatRelation : EdgeType {
  kUserLive = 0,
  kUserAttr = 1,
  kLiveLive = 2,
  kLiveTag = 3,
};

/// All three presets, in the order the paper's figures list them.
std::vector<Dataset> MakeAllDatasets();

}  // namespace platod2gl
