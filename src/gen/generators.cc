#include "gen/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <utility>

namespace platod2gl {

std::vector<Edge> GenerateRmat(const RmatParams& params) {
  Xoshiro256 rng(params.seed);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  const double ab = params.a + params.b;
  const double abc = params.a + params.b + params.c;

  for (std::size_t e = 0; e < params.num_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
      const double r = rng.NextDouble();
      // Pick one quadrant of the recursive adjacency matrix.
      const bool right = (r >= params.a && r < ab) || r >= abc;
      const bool down = r >= ab;
      src = (src << 1) | (down ? 1u : 0u);
      dst = (dst << 1) | (right ? 1u : 0u);
    }
    const Weight w = 0.1 + rng.NextDouble();  // positive weights
    edges.push_back(Edge{params.base + src, params.base + dst, w,
                         params.type});
  }
  return edges;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent, std::uint64_t) {
  assert(n > 0);
  cdf_.resize(n);
  double running = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    running += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = running;
  }
}

std::size_t ZipfSampler::Sample(Xoshiro256& rng) const {
  const double r = rng.NextDouble(cdf_.back());
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<Edge> GenerateBipartite(const BipartiteParams& params) {
  Xoshiro256 rng(params.seed);
  const ZipfSampler item_popularity(params.num_targets, params.zipf_exponent);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (std::size_t e = 0; e < params.num_edges; ++e) {
    const VertexId src =
        params.source_base + rng.NextUint64(params.num_sources);
    const VertexId dst = params.target_base + item_popularity.Sample(rng);
    const Weight w = 0.1 + rng.NextDouble();
    edges.push_back(Edge{src, dst, w, params.type});
  }
  return edges;
}

std::vector<Edge> GenerateUniform(const UniformParams& params) {
  Xoshiro256 rng(params.seed);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (std::size_t e = 0; e < params.num_edges; ++e) {
    const VertexId src = params.base + rng.NextUint64(params.num_vertices);
    const VertexId dst = params.base + rng.NextUint64(params.num_vertices);
    const Weight w = 0.1 + rng.NextDouble();
    edges.push_back(Edge{src, dst, w, params.type});
  }
  return edges;
}

void MakeBidirected(std::vector<Edge>* edges) {
  const std::size_t n = edges->size();
  edges->reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Edge& e = (*edges)[i];
    edges->push_back(Edge{e.dst, e.src, e.weight, e.type});
  }
}

void DedupEdges(std::vector<Edge>* edges) {
  struct PairHash {
    std::size_t operator()(const std::pair<VertexId, VertexId>& p) const {
      std::uint64_t z = p.first * 0x9E3779B97F4A7C15ULL ^ p.second;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return z ^ (z >> 27);
    }
  };
  // One seen-set per relation keeps the key a simple pair.
  std::vector<std::unordered_set<std::pair<VertexId, VertexId>, PairHash>>
      seen;
  seen.resize(1);
  seen[0].reserve(edges->size());  // avoid rehash churn on the hot relation
  std::vector<Edge> out;
  out.reserve(edges->size());
  for (const Edge& e : *edges) {
    if (e.type >= seen.size()) seen.resize(e.type + 1);
    if (seen[e.type].insert({e.src, e.dst}).second) out.push_back(e);
  }
  *edges = std::move(out);
}

std::vector<EdgeUpdate> MakeUpdateStream(const std::vector<Edge>& base,
                                         const UpdateStreamParams& params) {
  assert(!base.empty());
  assert(params.insert_fraction + params.update_fraction <= 1.0 + 1e-9);
  Xoshiro256 rng(params.seed);
  std::vector<EdgeUpdate> ops;
  ops.reserve(params.num_ops);

  // Brand-new destinations stay in the *same ID namespace* as existing
  // destinations (top 4 bytes preserved) — production ID allocators hand
  // out new live-rooms/items from the type's own range. The offset starts
  // at 2^31, far above any generator-assigned offset, so inserts are
  // guaranteed fresh.
  VertexId fresh_offset = 1ULL << 31;

  for (std::size_t i = 0; i < params.num_ops; ++i) {
    const double r = rng.NextDouble();
    const Edge& pick = base[rng.NextUint64(base.size())];
    if (r < params.insert_fraction) {
      const VertexId fresh =
          (pick.dst & 0xFFFFFFFF00000000ULL) | fresh_offset++;
      ops.push_back(EdgeUpdate{
          UpdateKind::kInsert,
          Edge{pick.src, fresh, 0.1 + rng.NextDouble(), pick.type}});
    } else if (r < params.insert_fraction + params.update_fraction) {
      ops.push_back(EdgeUpdate{
          UpdateKind::kInPlaceUpdate,
          Edge{pick.src, pick.dst, 0.1 + rng.NextDouble(), pick.type}});
    } else {
      ops.push_back(EdgeUpdate{UpdateKind::kDelete, pick});
    }
  }
  return ops;
}

}  // namespace platod2gl
