#include "gen/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "gen/generators.h"

namespace platod2gl {

double DatasetScale() {
  const char* env = std::getenv("PLATOD2GL_SCALE");
  if (!env) return 1.0;
  const double s = std::atof(env);
  return std::clamp(s, 0.01, 100.0);
}

namespace {

std::size_t Scaled(std::size_t n) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      static_cast<double>(n) *
                                      DatasetScale()));
}

}  // namespace

Dataset MakeOgbnMini() {
  RmatParams p;
  p.scale = 17;                    // ~131K ID space, ~96K touched
  p.num_edges = Scaled(1250000);   // x2 after MakeBidirected => avg deg ~26
  p.seed = 101;
  Dataset d{.name = "ogbn-mini", .edges = GenerateRmat(p)};
  MakeBidirected(&d.edges);
  DedupEdges(&d.edges);
  return d;
}

Dataset MakeRedditMini() {
  RmatParams p;
  p.scale = 14;                    // ~16K vertices
  p.num_edges = Scaled(2000000);   // x2 => avg degree ~250: the dense one
  p.a = 0.45;
  p.b = 0.22;
  p.c = 0.22;
  p.d = 0.11;                      // flatter matrix: Reddit is less skewed
  p.seed = 202;
  Dataset d{.name = "reddit-mini", .edges = GenerateRmat(p)};
  MakeBidirected(&d.edges);
  DedupEdges(&d.edges);
  return d;
}

Dataset MakeWeChatMini() {
  // Disjoint 64-bit ID namespaces per vertex type, mirroring production
  // ID allocation (and exercising CP-IDs compression the same way).
  constexpr VertexId kUserBase = 0x0001000000000000ULL;
  constexpr VertexId kLiveBase = 0x0002000000000000ULL;
  constexpr VertexId kAttrBase = 0x0003000000000000ULL;
  constexpr VertexId kTagBase = 0x0004000000000000ULL;

  Dataset d{.name = "wechat-mini", .num_relations = 4};

  {  // User-Live: the dominant relation (99% of paper edges, density 62).
    BipartiteParams p;
    p.num_sources = Scaled(32768);
    p.num_targets = Scaled(2048);
    p.num_edges = Scaled(2000000);
    p.zipf_exponent = 0.9;  // live-room popularity is heavily skewed
    p.source_base = kUserBase;
    p.target_base = kLiveBase;
    p.type = kUserLive;
    p.seed = 303;
    auto edges = GenerateBipartite(p);
    d.edges.insert(d.edges.end(), edges.begin(), edges.end());
  }
  {  // User-Attr: sparse (paper density 1.96).
    BipartiteParams p;
    p.num_sources = Scaled(32768);
    p.num_targets = Scaled(4096);
    p.num_edges = Scaled(65536);
    p.zipf_exponent = 0.5;
    p.source_base = kUserBase;
    p.target_base = kAttrBase;
    p.type = kUserAttr;
    p.seed = 304;
    auto edges = GenerateBipartite(p);
    d.edges.insert(d.edges.end(), edges.begin(), edges.end());
  }
  {  // Live-Live: medium density (paper 49.6).
    BipartiteParams p;
    p.num_sources = Scaled(2048);
    p.num_targets = Scaled(2048);
    p.num_edges = Scaled(100000);
    p.zipf_exponent = 0.7;
    p.source_base = kLiveBase;
    p.target_base = kLiveBase;
    p.type = kLiveLive;
    p.seed = 305;
    auto edges = GenerateBipartite(p);
    d.edges.insert(d.edges.end(), edges.begin(), edges.end());
  }
  {  // Live-Tag: sparse (paper 1.99).
    BipartiteParams p;
    p.num_sources = Scaled(2048);
    p.num_targets = Scaled(512);
    p.num_edges = Scaled(4096);
    p.zipf_exponent = 0.6;
    p.source_base = kLiveBase;
    p.target_base = kTagBase;
    p.type = kLiveTag;
    p.seed = 306;
    auto edges = GenerateBipartite(p);
    d.edges.insert(d.edges.end(), edges.begin(), edges.end());
  }

  MakeBidirected(&d.edges);
  DedupEdges(&d.edges);
  return d;
}

std::vector<Dataset> MakeAllDatasets() {
  std::vector<Dataset> out;
  out.push_back(MakeOgbnMini());
  out.push_back(MakeRedditMini());
  out.push_back(MakeWeChatMini());
  return out;
}

}  // namespace platod2gl
