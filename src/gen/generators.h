// Synthetic graph and workload generators.
//
// The paper evaluates on OGBN-Products, Reddit and the proprietary WeChat
// live-streaming graph. Those graphs cannot ship with this repo, so the
// experiments run on synthetic stand-ins that preserve what the measured
// costs actually depend on: degree distribution (power-law), density
// (average degree), bipartite shape for user-item relations, and vertex-ID
// locality (IDs allocated from per-type contiguous ranges, which is what
// makes CP-IDs compression effective in production).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace platod2gl {

/// R-MAT recursive-matrix generator (a=0.57 b=0.19 c=0.19 d=0.05 defaults
/// give the usual skewed social-graph shape). Vertices are [base,
/// base + 2^scale).
struct RmatParams {
  std::uint32_t scale = 16;  ///< 2^scale vertices
  std::size_t num_edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  VertexId base = 0;      ///< ID-space offset (models namespaced 64-bit IDs)
  EdgeType type = 0;
  std::uint64_t seed = 42;
};
std::vector<Edge> GenerateRmat(const RmatParams& params);

/// Bipartite user-item interaction stream with Zipf-skewed item
/// popularity — the shape of the WeChat User-Live relation.
struct BipartiteParams {
  std::size_t num_sources = 1 << 16;
  std::size_t num_targets = 1 << 14;
  std::size_t num_edges = 1 << 20;
  double zipf_exponent = 0.8;  ///< item-popularity skew
  VertexId source_base = 0;
  VertexId target_base = 1ULL << 32;  ///< distinct ID namespace for targets
  EdgeType type = 0;
  std::uint64_t seed = 42;
};
std::vector<Edge> GenerateBipartite(const BipartiteParams& params);

/// Uniform (Erdos-Renyi-style) edges — the unskewed control workload.
struct UniformParams {
  std::size_t num_vertices = 1 << 16;
  std::size_t num_edges = 1 << 20;
  VertexId base = 0;
  EdgeType type = 0;
  std::uint64_t seed = 42;
};
std::vector<Edge> GenerateUniform(const UniformParams& params);

/// Mirror every edge so the graph is bi-directed, as the paper's datasets
/// are ("all the datasets in our experiments are bi-directed").
void MakeBidirected(std::vector<Edge>* edges);

/// Drop repeated (src, dst, type) pairs, keeping the first occurrence and
/// the original stream order. Dataset presets apply this so bulk loaders
/// may use the duplicate-free AddEdgeFast path.
void DedupEdges(std::vector<Edge>* edges);

/// A timestamped stream of dynamic updates derived from a base edge set:
/// `insert_fraction` of the ops insert brand-new edges, the rest split
/// between in-place weight updates and deletions of already-present edges.
/// Fractions must sum to <= 1; the remainder becomes deletions.
struct UpdateStreamParams {
  std::size_t num_ops = 1 << 16;
  double insert_fraction = 0.6;
  double update_fraction = 0.3;  // deletions take the remaining 0.1
  std::uint64_t seed = 7;
};
std::vector<EdgeUpdate> MakeUpdateStream(const std::vector<Edge>& base,
                                         const UpdateStreamParams& params);

/// Zipf sampler over [0, n): P(k) ~ 1/(k+1)^s, built once in O(n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent, std::uint64_t seed_unused = 0);
  std::size_t Sample(Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace platod2gl
