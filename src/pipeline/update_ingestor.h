// UpdateIngestor: the producer-facing mouth of the streaming pipeline.
//
// The paper models the dynamic graph as a timestamped update series G^(t)
// (Section II-A); in the production deployment those updates arrive as
// live user-interaction traffic from many feed threads at once. This
// class is the bounded, backpressured funnel between them and the
// single-consumer MicroBatcher:
//
//  * MPSC sharding — producers hash their update's source vertex onto one
//    of `num_shards` bounded FIFO queues, so unrelated producers contend
//    on different locks and all updates of one edge stay in one queue
//    (per-edge FIFO, which the batcher's coalescing relies on).
//  * Backpressure — a full shard either blocks the producer (kBlock, the
//    lossless default), rejects the offer with kResourceExhausted
//    (kReject, for callers with their own retry/shedding loop), or drops
//    the oldest queued update to admit the new one (kDropOldest,
//    freshness-over-completeness; every drop is counted).
//  * Watermarks — the ingestor tracks the newest accepted event
//    timestamp. The trainer reports per-step graph staleness as this
//    ingest watermark minus the batcher's applied watermark.
//
// Accepted updates are stamped with a process-wide admission sequence
// number so the consumer can merge the shard queues into one
// deterministic (timestamp, seq) order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/sched_hooks.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "temporal/edge_log.h"

namespace platod2gl {

/// What a producer experiences when it offers into a full shard queue.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,      ///< wait for the consumer to drain (lossless, may stall)
  kReject,     ///< fail fast with kResourceExhausted (caller sheds/retries)
  kDropOldest  ///< evict the oldest queued update, admit the new one
};

struct IngestorConfig {
  std::size_t num_shards = 4;       ///< independent producer queues
  std::size_t shard_capacity = 4096;  ///< bound per shard, in updates
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// When > 0, offers whose edge type is >= num_relations are rejected
  /// with kInvalidArgument at the door instead of faulting deep inside
  /// the store's relation routing. 0 disables the check.
  std::size_t num_relations = 0;
};

/// Monotonic counters + a point-in-time queue snapshot.
struct IngestorStats {
  std::uint64_t accepted = 0;      ///< offers that entered a queue
  std::uint64_t rejected = 0;      ///< kReject policy refusals (queue full)
  std::uint64_t dropped = 0;       ///< kDropOldest evictions
  std::uint64_t invalid = 0;       ///< bad edge type, refused at the door
  std::uint64_t closed_rejects = 0;  ///< offers after Close()
  std::uint64_t watermark = 0;     ///< newest accepted event timestamp
  std::size_t queued = 0;          ///< updates currently waiting
};

/// An accepted update plus its admission sequence number (the global
/// arrival tiebreak for equal timestamps).
struct IngestedUpdate {
  TimedUpdate update;
  std::uint64_t seq = 0;
};

class UpdateIngestor {
 public:
  /// `metrics` hosts the pd2gl_ingest_* series so one registry can cover
  /// the whole pipeline; when null the ingestor owns a private registry.
  explicit UpdateIngestor(IngestorConfig config = {},
                          obs::MetricRegistry* metrics = nullptr);
  ~UpdateIngestor();

  UpdateIngestor(const UpdateIngestor&) = delete;
  UpdateIngestor& operator=(const UpdateIngestor&) = delete;

  /// Offer one timestamped update. Thread-safe, called by any number of
  /// producers. Returns Ok when queued; kResourceExhausted (kReject
  /// policy, queue full), kInvalidArgument (edge type out of range) or
  /// kUnavailable (after Close()) otherwise. Under kBlock the call waits
  /// until space frees up or the ingestor closes.
  Status Offer(const TimedUpdate& u);

  /// Convenience: offer an insertion.
  Status OfferInsert(std::uint64_t timestamp, const Edge& e) {
    return Offer(TimedUpdate{timestamp, EdgeUpdate{UpdateKind::kInsert, e}});
  }

  /// Stop admitting: every subsequent (and currently blocked) Offer
  /// returns kUnavailable. Already-queued updates remain drainable —
  /// Close() then Flush() is the clean shutdown sequence.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer side: move every queued update out of every shard, append
  /// to *out, and wake producers blocked on the freed space. Returns the
  /// number drained. Single consumer assumed (the MicroBatcher).
  std::size_t DrainAll(std::vector<IngestedUpdate>* out);

  /// Newest accepted event timestamp (0 before any accept).
  std::uint64_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// Updates currently queued across all shards.
  std::size_t QueueDepth() const {
    return queued_.load(std::memory_order_acquire);
  }

  IngestorStats Stats() const;

  const IngestorConfig& config() const { return config_; }

 private:
  struct Shard {
    Mutex mu;
    CondVar space_cv;  // kBlock producers wait here for drain or Close
    std::deque<IngestedUpdate> queue GUARDED_BY(mu);
  };

  /// Registry-backed monotone tallies (pd2gl_ingest_*).
  struct Counters {
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* invalid = nullptr;
    obs::Counter* closed_rejects = nullptr;
  };

  Shard& ShardFor(const EdgeUpdate& u);
  void NoteAccepted(std::uint64_t timestamp);

  IngestorConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::StatsBinding<IngestorStats> binding_;
  Counters counters_;
  // STATE atomics stay sched::Atomic (== std::atomic in production;
  // under PD2GL_SCHEDCHECK every access is a schedule point so the
  // checker can interleave producers, the consumer, and shutdown around
  // them). Pure tallies live in the registry counters above.
  sched::Atomic<bool> closed_{false};
  sched::Atomic<std::uint64_t> next_seq_{0};
  sched::Atomic<std::uint64_t> watermark_{0};
  sched::Atomic<std::size_t> queued_{0};
};

}  // namespace platod2gl
