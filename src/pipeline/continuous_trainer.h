// ContinuousTrainer: the end-to-end continuous-learning driver.
//
// This is the glue the paper's deployment implies but the library so far
// left to hand-written test harnesses: producers stream timestamped
// updates into the UpdateIngestor while this driver alternates
//
//   pump   — MicroBatcher::PumpOnce: drain, WAL-append, coalesce, apply
//            under the write barrier (epoch advances);
//   train  — pin the new epoch and run one GraphSAGE minibatch step
//            against the consistent snapshot G^(t) it names.
//
// Every step reports the *graph staleness* the model was trained at: the
// ingest watermark (newest event accepted from producers) minus the
// applied watermark (newest event the pinned snapshot contains). A
// healthy pipeline keeps this near zero; growing staleness means
// ingestion is outrunning the pump cadence (raise pumps_per_step or
// max_batch, or shed with kDropOldest).
//
// Run PumpOnce/Step from one driver thread; producers and extra pinned
// readers (evaluation threads) may run concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gnn/trainer.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/micro_batcher.h"
#include "pipeline/update_ingestor.h"

namespace platod2gl {

struct ContinuousTrainerConfig {
  /// Micro-batcher pumps attempted before each training step (the time
  /// trigger of the batcher: ingest is drained at least this often).
  std::size_t pumps_per_step = 1;
  /// Re-snapshot the trainer's node sampler after any pump that applied
  /// updates, so newly arrived vertices become sampleable seeds.
  bool refresh_node_sampler = true;
};

/// One-stop observable snapshot of the whole pipeline.
struct PipelineStats {
  IngestorStats ingest;
  MicroBatcherStats batcher;
  std::uint64_t epoch = 0;      ///< applied micro-batches
  std::uint64_t staleness = 0;  ///< ingest watermark - applied watermark
};

class ContinuousTrainer {
 public:
  /// All collaborators are borrowed and must outlive the driver.
  ContinuousTrainer(UpdateIngestor* ingestor, MicroBatcher* batcher,
                    EpochCoordinator* epochs, Trainer* trainer,
                    ContinuousTrainerConfig config = {});

  struct StepReport {
    std::size_t step = 0;          ///< 1-based step index
    double loss = 0.0;
    double accuracy = 0.0;
    std::uint64_t epoch = 0;       ///< snapshot the step trained on
    std::uint64_t staleness = 0;   ///< event-time lag of that snapshot
    std::size_t updates_applied = 0;  ///< raw updates pumped before it
  };

  /// Pump, then train one node-sampled minibatch on the pinned snapshot.
  StepReport Step(Xoshiro256& rng);

  /// Run `steps` pump+train iterations; returns the per-step reports.
  std::vector<StepReport> Run(std::size_t steps, Xoshiro256& rng);

  /// Drain the pipeline to empty (producers should be done or closed).
  /// Returns the raw updates applied.
  std::size_t Drain() { return batcher_->Flush(); }

  /// Current ingest-vs-applied event-time lag.
  std::uint64_t Staleness() const;

  PipelineStats Stats() const;

 private:
  UpdateIngestor* ingestor_;
  MicroBatcher* batcher_;
  EpochCoordinator* epochs_;
  Trainer* trainer_;
  ContinuousTrainerConfig config_;
  std::size_t steps_done_ = 0;
};

}  // namespace platod2gl
