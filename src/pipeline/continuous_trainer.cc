#include "pipeline/continuous_trainer.h"

#include <algorithm>

namespace platod2gl {

ContinuousTrainer::ContinuousTrainer(UpdateIngestor* ingestor,
                                     MicroBatcher* batcher,
                                     EpochCoordinator* epochs,
                                     Trainer* trainer,
                                     ContinuousTrainerConfig config)
    : ingestor_(ingestor),
      batcher_(batcher),
      epochs_(epochs),
      trainer_(trainer),
      config_(config) {
  config_.pumps_per_step = std::max<std::size_t>(1, config_.pumps_per_step);
}

std::uint64_t ContinuousTrainer::Staleness() const {
  const std::uint64_t ingested = ingestor_->watermark();
  const std::uint64_t applied = batcher_->applied_watermark();
  return ingested > applied ? ingested - applied : 0;
}

ContinuousTrainer::StepReport ContinuousTrainer::Step(Xoshiro256& rng) {
  std::size_t applied = 0;
  for (std::size_t p = 0; p < config_.pumps_per_step; ++p) {
    applied += batcher_->PumpOnce();
  }

  StepReport report;
  report.step = ++steps_done_;
  report.updates_applied = applied;
  {
    const EpochCoordinator::ReadGuard pin = epochs_->PinRead();
    if (applied > 0 && config_.refresh_node_sampler) {
      // Under the pin: the snapshot the refreshed sampler indexes is the
      // one this step trains on.
      trainer_->RefreshNodeSampler();
    }
    report.epoch = pin.epoch();
    report.staleness = Staleness();
    const GraphSageModel::StepResult result =
        trainer_->TrainStepSampled(rng);
    report.loss = result.loss;
    report.accuracy = result.accuracy;
  }
  return report;
}

std::vector<ContinuousTrainer::StepReport> ContinuousTrainer::Run(
    std::size_t steps, Xoshiro256& rng) {
  std::vector<StepReport> reports;
  reports.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) reports.push_back(Step(rng));
  return reports;
}

PipelineStats ContinuousTrainer::Stats() const {
  PipelineStats s;
  s.ingest = ingestor_->Stats();
  s.batcher = batcher_->Stats();
  s.epoch = epochs_->epoch();
  s.staleness = Staleness();
  return s;
}

}  // namespace platod2gl
