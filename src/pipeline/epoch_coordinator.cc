#include "pipeline/epoch_coordinator.h"

namespace platod2gl {

EpochCoordinator::ReadGuard EpochCoordinator::PinRead() {
  MutexLock lock(mu_);
  // Write preference: a waiting writer holds off new readers, so a
  // continuous sampling stream cannot starve the micro-batcher.
  while (writer_active_ || writers_waiting_ > 0) cv_.wait(mu_);
  ++active_readers_;
  return ReadGuard(this, epoch_.load(std::memory_order_acquire));
}

void EpochCoordinator::EndRead() {
  bool wake = false;
  {
    MutexLock lock(mu_);
    wake = (--active_readers_ == 0);
  }
  if (wake) cv_.notify_all();
}

EpochCoordinator::WriteGuard EpochCoordinator::BeginWrite() {
  MutexLock lock(mu_);
  ++writers_waiting_;
  while (writer_active_ || active_readers_ > 0) cv_.wait(mu_);
  --writers_waiting_;
  writer_active_ = true;
  return WriteGuard(this);
}

void EpochCoordinator::EndWrite() {
  {
    MutexLock lock(mu_);
    writer_active_ = false;
    // Publish while still serialised with the next BeginWrite, so a
    // reader admitted after this point pins the post-apply epoch.
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
}

std::size_t EpochCoordinator::readers_active() const {
  MutexLock lock(mu_);
  return active_readers_;
}

std::size_t EpochCoordinator::writers_waiting() const {
  MutexLock lock(mu_);
  return writers_waiting_;
}

}  // namespace platod2gl
