// EpochCoordinator: the read/write barrier that gives every training
// step a consistent G^(t).
//
// The samtree store is safe under concurrent *reads*, and the batch
// updater is safe against *itself* (per-source exclusivity), but a
// sampler walking a tree while the updater rewrites it is not a
// supported interleaving. The streaming pipeline therefore serialises
// whole micro-batch applies against whole sampling episodes with an
// epoch-stamped read/write barrier:
//
//  * readers (sampler / trainer steps) Pin() the current epoch, sample
//    freely, and unpin — many readers run concurrently;
//  * the writer (MicroBatcher) takes a WriteGuard around ApplyBatch:
//    acquisition waits for pinned readers to drain and holds off new
//    ones (write-preferring, so a steady reader stream cannot starve
//    ingestion); release advances the epoch and wakes readers.
//
// The epoch number names the snapshot: it increments once per applied
// micro-batch, so a reader's pinned epoch stays constant for its whole
// episode and equals the number of batches its G^(t) contains. Cache
// consistency within a snapshot is already handled one level down by
// Samtree::version() stamps (see sampling/sample_cache.h); this barrier
// adds the cross-structure atomicity those per-tree stamps cannot give.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/mutex.h"
#include "common/sched_hooks.h"
#include "common/thread_annotations.h"

namespace platod2gl {

class EpochCoordinator {
 public:
  EpochCoordinator() = default;
  EpochCoordinator(const EpochCoordinator&) = delete;
  EpochCoordinator& operator=(const EpochCoordinator&) = delete;

  /// RAII reader pin: the store cannot change between construction and
  /// destruction, and epoch() names the snapshot being read.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : coord_(other.coord_), epoch_(other.epoch_) {
      other.coord_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&&) = delete;
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() {
      if (coord_ != nullptr) coord_->EndRead();
    }

    /// The snapshot this reader observes (number of applied batches).
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochCoordinator;
    ReadGuard(EpochCoordinator* coord, std::uint64_t epoch)
        : coord_(coord), epoch_(epoch) {}

    EpochCoordinator* coord_;
    std::uint64_t epoch_;
  };

  /// RAII writer exclusivity; release publishes the new epoch.
  class WriteGuard {
   public:
    WriteGuard(WriteGuard&& other) noexcept : coord_(other.coord_) {
      other.coord_ = nullptr;
    }
    WriteGuard& operator=(WriteGuard&&) = delete;
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;
    ~WriteGuard() {
      if (coord_ != nullptr) coord_->EndWrite();
    }

   private:
    friend class EpochCoordinator;
    explicit WriteGuard(EpochCoordinator* coord) : coord_(coord) {}

    EpochCoordinator* coord_;
  };

  /// Pin the current epoch for shared (read) access. Blocks while a
  /// write is in progress or waiting (write preference).
  ReadGuard PinRead() EXCLUDES(mu_);

  /// Acquire exclusive (write) access; blocks until pinned readers
  /// drain. The returned guard's destruction advances the epoch.
  WriteGuard BeginWrite() EXCLUDES(mu_);

  /// Number of fully applied micro-batches (the version of G^(t) a new
  /// reader would pin right now).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Readers currently pinned (tests / stats).
  std::size_t readers_active() const EXCLUDES(mu_);

  /// Writers blocked in BeginWrite() right now (tests / schedcheck
  /// scenarios asserting that a promotion is parked behind pinned readers).
  std::size_t writers_waiting() const EXCLUDES(mu_);

 private:
  void EndRead() EXCLUDES(mu_);
  void EndWrite() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::size_t active_readers_ GUARDED_BY(mu_) = 0;
  std::size_t writers_waiting_ GUARDED_BY(mu_) = 0;
  bool writer_active_ GUARDED_BY(mu_) = false;
  // std::atomic in production; a schedule point under PD2GL_SCHEDCHECK.
  sched::Atomic<std::uint64_t> epoch_{0};
};

}  // namespace platod2gl
