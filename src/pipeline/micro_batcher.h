// MicroBatcher: the single consumer that turns the ingest stream into
// applied micro-batches.
//
// Each pump (1) drains every ingestor shard and merges the haul into one
// deterministic (timestamp, admission-seq) order, (2) appends the raw
// batch to the TemporalEdgeLog — durability first, so a sequential
// replay of the log always reproduces the live store, (3) coalesces
// insert/update/delete churn on the same edge down to one
// state-equivalent update per edge, and (4) applies the folded batch
// through the latch-free BatchUpdater of the edge's relation, inside the
// EpochCoordinator's write barrier so pinned readers never observe a
// half-applied batch.
//
// Batching triggers: `max_batch` is the size trigger (a pump applies at
// most that many updates and carries the rest), `min_batch` lets small
// dribbles accumulate across pumps; the *time* trigger is the driver's
// pump cadence itself (ContinuousTrainer pumps between training steps,
// and Flush(force) overrides min_batch at shutdown).
//
// Single consumer: PumpOnce/Flush must be called from one thread at a
// time. Stats and watermark reads are safe from any thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "concurrency/batch_updater.h"
#include "obs/metrics.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/update_ingestor.h"
#include "storage/graph_store.h"
#include "temporal/edge_log.h"

namespace platod2gl {

struct MicroBatcherConfig {
  std::size_t max_batch = 4096;  ///< size trigger: apply at most this many
  std::size_t min_batch = 1;     ///< accumulate until this many (unforced)
  bool coalesce = true;          ///< fold per-edge churn before applying
};

/// Monotonic counters (registry-backed, mirrored out via the shared
/// obs::StatsBinding fill loop) + point-in-time watermark/depth.
struct MicroBatcherStats {
  std::uint64_t batches_applied = 0;
  std::uint64_t updates_ingested = 0;   ///< raw updates drained
  std::uint64_t updates_applied = 0;    ///< after coalescing
  std::uint64_t coalesced = 0;          ///< updates folded away
  std::uint64_t log_rejected = 0;       ///< WAL monotonicity rejects
  std::uint64_t invalid_dropped = 0;    ///< edge type out of range
  std::uint64_t applied_watermark = 0;  ///< newest timestamp in the store
  std::size_t pending = 0;              ///< drained but not yet applied
};

class MicroBatcher {
 public:
  /// Everything is borrowed and must outlive the batcher. The log may be
  /// null (ephemeral pipeline with no durability/replay requirement).
  /// `metrics` hosts the pd2gl_micro_batcher_* series (typically the same
  /// registry the ingestor registered into); null = private registry.
  MicroBatcher(GraphStore* graph, ThreadPool* pool, UpdateIngestor* ingestor,
               EpochCoordinator* epochs, TemporalEdgeLog* log,
               MicroBatcherConfig config = {},
               obs::MetricRegistry* metrics = nullptr);

  /// Drain the ingestor and, if at least min_batch updates are pending
  /// (or `force`), log + coalesce + apply one micro-batch of up to
  /// max_batch updates. Returns the number of raw updates consumed (0
  /// when below min_batch or idle).
  std::size_t PumpOnce(bool force = false);

  /// Pump until the ingestor and the pending carry-over are both empty.
  /// Returns the total raw updates consumed.
  std::size_t Flush();

  /// Fold every run of updates touching the same (src, dst, type) into
  /// one state-equivalent update, in place (first-occurrence order of
  /// edges is kept; the fold is exact for any prior store state: e.g.
  /// insert-then-delete folds to delete, delete-then-insert to insert,
  /// insert-then-inplace to an insert carrying the final weight).
  /// Returns the number of updates eliminated. Exposed for tests.
  static std::size_t Coalesce(std::vector<EdgeUpdate>* batch);

  /// Newest event timestamp applied to the store (0 before any apply).
  std::uint64_t applied_watermark() const {
    return applied_watermark_.load(std::memory_order_acquire);
  }

  MicroBatcherStats Stats() const;

  const MicroBatcherConfig& config() const { return config_; }

 private:
  /// Registry-backed monotone tallies (pd2gl_micro_batcher_*).
  struct Counters {
    obs::Counter* batches_applied = nullptr;
    obs::Counter* updates_ingested = nullptr;
    obs::Counter* updates_applied = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* log_rejected = nullptr;
    obs::Counter* invalid_dropped = nullptr;
  };

  GraphStore* graph_;
  UpdateIngestor* ingestor_;
  EpochCoordinator* epochs_;
  TemporalEdgeLog* log_;
  MicroBatcherConfig config_;
  std::vector<std::unique_ptr<BatchUpdater>> updaters_;  // one per relation
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::StatsBinding<MicroBatcherStats> binding_;
  Counters counters_;

  // Consumer-thread state: drained-but-unapplied updates in (ts, seq)
  // order, plus the per-pump scratch batch.
  std::vector<IngestedUpdate> pending_;
  std::vector<TimedUpdate> scratch_;

  // STATE snapshots (cross-thread watermark/depth reads); tallies live in
  // the registry counters above.
  std::atomic<std::uint64_t> applied_watermark_{0};
  std::atomic<std::size_t> pending_size_{0};
};

}  // namespace platod2gl
