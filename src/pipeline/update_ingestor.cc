#include "pipeline/update_ingestor.h"

#include <algorithm>

namespace platod2gl {

UpdateIngestor::UpdateIngestor(IngestorConfig config,
                               obs::MetricRegistry* metrics)
    : config_(config) {
  config_.num_shards = std::max<std::size_t>(1, config_.num_shards);
  config_.shard_capacity = std::max<std::size_t>(1, config_.shard_capacity);
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  using S = IngestorStats;
  counters_.accepted =
      metrics_->BindCounter(&binding_, &S::accepted, "pd2gl_ingest_accepted");
  counters_.rejected =
      metrics_->BindCounter(&binding_, &S::rejected, "pd2gl_ingest_rejected");
  counters_.dropped =
      metrics_->BindCounter(&binding_, &S::dropped, "pd2gl_ingest_dropped");
  counters_.invalid =
      metrics_->BindCounter(&binding_, &S::invalid, "pd2gl_ingest_invalid");
  counters_.closed_rejects = metrics_->BindCounter(
      &binding_, &S::closed_rejects, "pd2gl_ingest_closed_rejects");
}

UpdateIngestor::~UpdateIngestor() { Close(); }

UpdateIngestor::Shard& UpdateIngestor::ShardFor(const EdgeUpdate& u) {
  // SplitMix64-style mix so consecutive vertex IDs spread across shards;
  // keyed by source only, so every update of one edge lands in the same
  // FIFO (per-edge order is what the coalescer folds).
  std::uint64_t h = u.edge.src + 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return *shards_[(h ^ (h >> 31)) % config_.num_shards];
}

void UpdateIngestor::NoteAccepted(std::uint64_t timestamp) {
  counters_.accepted->Add(1);
  queued_.fetch_add(1, std::memory_order_release);
  // order: monotonic-max update; the successful CAS publishes with
  // release, the failed order and the initial read only feed a retry.
  std::uint64_t seen = watermark_.load(std::memory_order_relaxed);
  while (timestamp > seen &&
         !watermark_.compare_exchange_weak(seen, timestamp,
                                           std::memory_order_release,
                                           // order: failed-CAS retry only
                                           std::memory_order_relaxed)) {
  }
}

Status UpdateIngestor::Offer(const TimedUpdate& u) {
  if (config_.num_relations > 0 &&
      u.update.edge.type >= config_.num_relations) {
    counters_.invalid->Add(1);
    return Status::InvalidArgument("edge type " +
                                   std::to_string(u.update.edge.type) +
                                   " out of range");
  }
  if (closed()) {
    counters_.closed_rejects->Add(1);
    return Status::Unavailable("ingestor closed");
  }

  Shard& shard = ShardFor(u.update);
  // order: uniqueness only; consumers order by (timestamp, seq) after drain
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(shard.mu);
    if (shard.queue.size() >= config_.shard_capacity) {
      switch (config_.policy) {
        case BackpressurePolicy::kBlock:
          while (shard.queue.size() >= config_.shard_capacity && !closed()) {
            shard.space_cv.wait(shard.mu);
          }
          if (closed()) {
            counters_.closed_rejects->Add(1);
            return Status::Unavailable("ingestor closed");
          }
          break;
        case BackpressurePolicy::kReject:
          counters_.rejected->Add(1);
          return Status::ResourceExhausted("ingest queue full");
        case BackpressurePolicy::kDropOldest:
          shard.queue.pop_front();
          counters_.dropped->Add(1);
          queued_.fetch_sub(1, std::memory_order_release);
          break;
      }
    }
    shard.queue.push_back(IngestedUpdate{u, seq});
  }
  NoteAccepted(u.timestamp);
  return Status::Ok();
}

void UpdateIngestor::Close() {
  closed_.store(true, std::memory_order_release);
  // Wake every producer blocked on space so it can observe the close.
  // The notify must happen under the shard lock: a kBlock producer
  // evaluates `!closed()` and calls wait() inside its critical section,
  // so an unlocked notify can land in the gap between its check and its
  // wait and be lost — the producer then sleeps forever because nothing
  // else will ever signal space_cv (found by the schedule checker,
  // tests/test_schedcheck_scenarios.cc IngestorScenario). Taking the
  // lock serialises this notify against that check-then-wait window.
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->space_cv.notify_all();
  }
}

std::size_t UpdateIngestor::DrainAll(std::vector<IngestedUpdate>* out) {
  std::size_t drained = 0;
  for (auto& shard : shards_) {
    std::size_t taken = 0;
    {
      MutexLock lock(shard->mu);
      taken = shard->queue.size();
      for (auto& e : shard->queue) out->push_back(e);
      shard->queue.clear();
    }
    if (taken > 0) {
      drained += taken;
      queued_.fetch_sub(taken, std::memory_order_release);
      shard->space_cv.notify_all();
    }
  }
  return drained;
}

IngestorStats UpdateIngestor::Stats() const {
  IngestorStats s = binding_.Read();
  s.watermark = watermark();
  s.queued = QueueDepth();
  return s;
}

}  // namespace platod2gl
