#include "pipeline/micro_batcher.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>

namespace platod2gl {

namespace {

bool ByTimeThenSeq(const IngestedUpdate& a, const IngestedUpdate& b) {
  return a.update.timestamp != b.update.timestamp
             ? a.update.timestamp < b.update.timestamp
             : a.seq < b.seq;
}

struct EdgeKey {
  VertexId src;
  VertexId dst;
  EdgeType type;

  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& k) const {
    std::uint64_t h = k.src * 0x9E3779B97F4A7C15ULL;
    h ^= (k.dst + 0xBF58476D1CE4E5B9ULL) + (h << 6) + (h >> 2);
    h ^= (static_cast<std::uint64_t>(k.type) + 0x94D049BB133111EBULL) +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

MicroBatcher::MicroBatcher(GraphStore* graph, ThreadPool* pool,
                           UpdateIngestor* ingestor, EpochCoordinator* epochs,
                           TemporalEdgeLog* log, MicroBatcherConfig config,
                           obs::MetricRegistry* metrics)
    : graph_(graph),
      ingestor_(ingestor),
      epochs_(epochs),
      log_(log),
      config_(config) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  config_.min_batch = std::max<std::size_t>(1, config_.min_batch);
  updaters_.reserve(graph_->num_relations());
  for (std::size_t rel = 0; rel < graph_->num_relations(); ++rel) {
    updaters_.push_back(std::make_unique<BatchUpdater>(
        &graph_->topology(static_cast<EdgeType>(rel)), pool));
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  using S = MicroBatcherStats;
  counters_.batches_applied = metrics_->BindCounter(
      &binding_, &S::batches_applied, "pd2gl_micro_batcher_batches_applied");
  counters_.updates_ingested = metrics_->BindCounter(
      &binding_, &S::updates_ingested, "pd2gl_micro_batcher_updates_ingested");
  counters_.updates_applied = metrics_->BindCounter(
      &binding_, &S::updates_applied, "pd2gl_micro_batcher_updates_applied");
  counters_.coalesced = metrics_->BindCounter(
      &binding_, &S::coalesced, "pd2gl_micro_batcher_coalesced");
  counters_.log_rejected = metrics_->BindCounter(
      &binding_, &S::log_rejected, "pd2gl_micro_batcher_log_rejected");
  counters_.invalid_dropped = metrics_->BindCounter(
      &binding_, &S::invalid_dropped, "pd2gl_micro_batcher_invalid_dropped");
}

std::size_t MicroBatcher::Coalesce(std::vector<EdgeUpdate>* batch) {
  if (batch->size() < 2) return 0;
  std::unordered_map<EdgeKey, std::size_t, EdgeKeyHash> slot;
  slot.reserve(batch->size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const EdgeUpdate& next = (*batch)[i];
    const EdgeKey key{next.edge.src, next.edge.dst, next.edge.type};
    const auto [it, inserted] = slot.try_emplace(key, out);
    if (inserted) {
      (*batch)[out++] = next;
      continue;
    }
    EdgeUpdate& folded = (*batch)[it->second];
    switch (next.kind) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete:
        // Inserts refresh and deletes clear regardless of what came
        // before: the newest op alone determines the edge's final state.
        folded = next;
        break;
      case UpdateKind::kInPlaceUpdate:
        // An in-place update only lands if the edge exists at that
        // point, which the folded op already decides: after an insert
        // the edge exists (carry the new weight in the insert), after a
        // delete it does not (the update was a no-op).
        if (folded.kind == UpdateKind::kInsert) {
          folded.edge.weight = next.edge.weight;
        } else if (folded.kind == UpdateKind::kInPlaceUpdate) {
          folded = next;
        }
        break;
    }
  }
  const std::size_t eliminated = batch->size() - out;
  batch->resize(out);
  return eliminated;
}

std::size_t MicroBatcher::PumpOnce(bool force) {
  // Drain every shard, then restore the global (timestamp, seq) order:
  // the haul is per-shard sorted already, so sort just the new tail and
  // merge it under the carried prefix.
  const std::size_t carried = pending_.size();
  const std::size_t drained = ingestor_->DrainAll(&pending_);
  if (drained > 0) {
    counters_.updates_ingested->Add(drained);
    const auto mid = pending_.begin() + static_cast<std::ptrdiff_t>(carried);
    std::sort(mid, pending_.end(), ByTimeThenSeq);
    std::inplace_merge(pending_.begin(), mid, pending_.end(), ByTimeThenSeq);
    pending_size_.store(pending_.size(), std::memory_order_release);
  }
  if (pending_.empty() || (!force && pending_.size() < config_.min_batch)) {
    return 0;
  }
  const std::size_t take = std::min(config_.max_batch, pending_.size());

  // The raw micro-batch, minus updates whose relation the store does not
  // have (counted, never applied — .at(type) would fault downstream).
  scratch_.clear();
  scratch_.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const TimedUpdate& u = pending_[i].update;
    if (u.update.edge.type >= graph_->num_relations()) {
      counters_.invalid_dropped->Add(1);
      continue;
    }
    scratch_.push_back(u);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  pending_size_.store(pending_.size(), std::memory_order_release);
  if (scratch_.empty()) return take;

  // Durability first: WAL-append the raw batch. The batch is sorted, so
  // the only entries the log's monotonicity contract can reject are a
  // prefix older than the log's tail (a producer violated monotone event
  // time). Cut that prefix off *before* appending — the store applies
  // exactly what the WAL accepted, keeping "live store == sequential
  // replay of the log" an invariant even on misbehaving input.
  std::size_t first_ok = 0;
  if (log_ != nullptr && !log_->empty()) {
    const std::uint64_t tail = log_->MaxTimestamp();
    while (first_ok < scratch_.size() &&
           scratch_[first_ok].timestamp < tail) {
      ++first_ok;
    }
  }
  const std::span<const TimedUpdate> accepted(scratch_.data() + first_ok,
                                              scratch_.size() - first_ok);
  if (log_ != nullptr) {
    log_->AppendBatch(accepted);
    counters_.log_rejected->Add(first_ok);
  }
  if (accepted.empty()) return take;

  // Coalesce per-edge churn, then split the folded batch by relation for
  // the per-relation latch-free updaters.
  std::vector<EdgeUpdate> folded;
  folded.reserve(accepted.size());
  for (const TimedUpdate& u : accepted) folded.push_back(u.update);
  if (config_.coalesce) {
    counters_.coalesced->Add(Coalesce(&folded));
  }
  std::vector<std::vector<EdgeUpdate>> by_relation(graph_->num_relations());
  if (graph_->num_relations() == 1) {
    by_relation[0] = std::move(folded);
  } else {
    for (const EdgeUpdate& u : folded) {
      by_relation[u.edge.type].push_back(u);
    }
  }

  {
    // Exclusive apply: pinned readers drained, new ones held out until
    // the epoch advances with the guard's release.
    EpochCoordinator::WriteGuard write = epochs_->BeginWrite();
    std::size_t applied = 0;
    for (std::size_t rel = 0; rel < by_relation.size(); ++rel) {
      if (by_relation[rel].empty()) continue;
      applied += by_relation[rel].size();
      updaters_[rel]->ApplyBatch(std::move(by_relation[rel]));
    }
    counters_.updates_applied->Add(applied);
    applied_watermark_.store(accepted.back().timestamp,
                             std::memory_order_release);
  }
  counters_.batches_applied->Add(1);
  return take;
}

std::size_t MicroBatcher::Flush() {
  std::size_t total = 0;
  while (true) {
    const std::size_t n = PumpOnce(/*force=*/true);
    if (n == 0) return total;
    total += n;
  }
}

MicroBatcherStats MicroBatcher::Stats() const {
  MicroBatcherStats s = binding_.Read();
  s.applied_watermark = applied_watermark();
  s.pending = pending_size_.load(std::memory_order_acquire);
  return s;
}

}  // namespace platod2gl
