// Checkpointing: binary save/load of a GraphStore.
//
// The production deployment periodically checkpoints the dynamic graph so
// graph servers can restart without replaying the full update history.
// The format is a simple length-prefixed binary stream:
//
//   magic "PD2G" | version u32 | num_relations u32
//   per relation: edge_count u64 | edge_count x (src u64, dst u64, w f64)
//   attr_count u64 | per vertex: id u64, has_label u8 [label i64],
//                     feat_len u32, feat_len x f32
//   crc32 u32 footer (v2+) over every preceding byte
//
// Loading streams edges through the duplicate-free bulk path
// (AddEdgeUnchecked), so a checkpoint restore costs the same as a bulk
// build. All failures are reported as Status, never exceptions.
//
// Integrity: v2 files end in a CRC-32 footer that is verified over the
// whole file BEFORE any record is applied, so truncated or bit-rotted
// checkpoints are rejected with kDataLoss instead of silently building a
// wrong store (the shard-recovery path in dist/ depends on this). v1
// files (no footer) still load for backward compatibility.
#pragma once

#include <string>

#include "common/status.h"
#include "gnn/model.h"
#include "storage/graph_store.h"

namespace platod2gl {

/// Serialise the topology of every relation plus all vertex attributes.
Status SaveGraph(const GraphStore& graph, const std::string& path);

/// Restore into an *empty* GraphStore. The store's num_relations must be
/// >= the checkpoint's relation count.
Status LoadGraph(const std::string& path, GraphStore* graph);

/// SaveGraph into an in-memory buffer — byte-identical to what SaveGraph
/// would write to disk (same format, same CRC-32 footer). Serialisation
/// order is deterministic, so two stores that applied the same updates in
/// the same order produce equal bytes: the replication layer uses this
/// both to ship snapshot-bootstrap images and to prove replica stores
/// bit-identical to a primary (docs/replication.md).
Status SaveGraphToBytes(const GraphStore& graph, std::string* out);

/// LoadGraph from an in-memory buffer (CRC verified first, like the file
/// path). The receive side of snapshot-bootstrap shipping.
Status LoadGraphFromBytes(const std::string& bytes, GraphStore* graph);

/// Serialise a trained GraphSAGE model (all weights and biases plus the
/// architecture dimensions, which are validated on load).
Status SaveModel(const GraphSageModel& model, const std::string& path);

/// Restore weights into a model constructed with the same
/// GraphSageConfig; dimension mismatches are rejected.
Status LoadModel(const std::string& path, GraphSageModel* model);

}  // namespace platod2gl
