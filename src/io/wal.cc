#include "io/wal.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "common/crc32.h"

namespace platod2gl {
namespace {

constexpr char kMagic[4] = {'P', 'D', '2', 'W'};
// ts u64 | kind u8 | type u32 | src u64 | dst u64 | w f64
constexpr std::size_t kEntryBytes = 8 + 1 + 4 + 8 + 8 + 8;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;  // magic, version, count
constexpr std::size_t kFooterBytes = 4;          // crc32 (v2)

template <typename T>
void Put(std::vector<unsigned char>* buf, T v) {
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  buf->insert(buf->end(), raw, raw + sizeof(T));
}

/// Bounds-checked read cursor: every Get validates remaining bytes first.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<unsigned char> EncodeWal(const std::vector<TimedUpdate>& entries,
                                     std::uint32_t version) {
  std::vector<unsigned char> buf;
  buf.reserve(kHeaderBytes + entries.size() * kEntryBytes + kFooterBytes);
  buf.insert(buf.end(), kMagic, kMagic + 4);
  Put<std::uint32_t>(&buf, version);
  Put<std::uint64_t>(&buf, entries.size());
  for (const TimedUpdate& t : entries) {
    Put<std::uint64_t>(&buf, t.timestamp);
    Put<std::uint8_t>(&buf, static_cast<std::uint8_t>(t.update.kind));
    Put<std::uint32_t>(&buf, t.update.edge.type);
    Put<std::uint64_t>(&buf, t.update.edge.src);
    Put<std::uint64_t>(&buf, t.update.edge.dst);
    Put<double>(&buf, t.update.edge.weight);
  }
  if (version >= 2) {
    Put<std::uint32_t>(&buf, Crc32(buf.data(), buf.size()));
  }
  return buf;
}

Status DecodeWal(const unsigned char* data, std::size_t size,
                 std::vector<TimedUpdate>* out) {
  out->clear();
  Reader r(data, size);
  char magic[4];
  if (!r.Get(&magic)) return Status::DataLoss("WAL: truncated header");
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::DataLoss("WAL: bad magic");
  }
  std::uint32_t version = 0;
  if (!r.Get(&version)) return Status::DataLoss("WAL: truncated header");
  if (version < 1 || version > kWalVersion) {
    return Status::InvalidArgument("WAL: unsupported version " +
                                   std::to_string(version));
  }
  if (version >= 2) {
    // Verify the footer over every preceding byte BEFORE decoding any
    // entry, mirroring the checkpoint v2 discipline: corrupt files are
    // rejected whole, never half-decoded.
    if (size < kHeaderBytes + kFooterBytes) {
      return Status::DataLoss("WAL: truncated footer");
    }
    std::uint32_t stored = 0;
    std::memcpy(&stored, data + size - kFooterBytes, kFooterBytes);
    const std::uint32_t computed = Crc32(data, size - kFooterBytes);
    if (stored != computed) {
      return Status::DataLoss("WAL: CRC mismatch (corrupt or truncated)");
    }
    size -= kFooterBytes;
    r = Reader(data, size);
    r.Get(&magic);
    r.Get(&version);
  }
  std::uint64_t count = 0;
  if (!r.Get(&count)) return Status::DataLoss("WAL: truncated count");
  // Exact size check before any allocation: a lying count cannot force a
  // huge reserve or a partial decode.
  if (count > r.remaining() / kEntryBytes || r.remaining() != count * kEntryBytes) {
    return Status::DataLoss("WAL: entry count disagrees with payload size");
  }
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TimedUpdate t;
    std::uint8_t kind = 0;
    r.Get(&t.timestamp);
    r.Get(&kind);
    r.Get(&t.update.edge.type);
    r.Get(&t.update.edge.src);
    r.Get(&t.update.edge.dst);
    r.Get(&t.update.edge.weight);
    if (kind > static_cast<std::uint8_t>(UpdateKind::kDelete)) {
      out->clear();
      return Status::DataLoss("WAL: invalid update kind " +
                              std::to_string(kind));
    }
    t.update.kind = static_cast<UpdateKind>(kind);
    out->push_back(t);
  }
  return Status::Ok();
}

Status SaveWal(const TemporalEdgeLog& log, const std::string& path) {
  const std::vector<TimedUpdate> entries =
      log.Window(0, std::numeric_limits<std::uint64_t>::max());
  const std::vector<unsigned char> buf = EncodeWal(entries);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::Unavailable("WAL: cannot open " + path);
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) return Status::Unavailable("WAL: short write to " + path);
  return Status::Ok();
}

Status LoadWal(const std::string& path, TemporalEdgeLog* log) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return Status::NotFound("WAL: cannot open " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<unsigned char> buf(static_cast<std::size_t>(size));
  if (size > 0) {
    f.read(reinterpret_cast<char*>(buf.data()), size);
    if (!f) return Status::DataLoss("WAL: short read from " + path);
  }
  std::vector<TimedUpdate> entries;
  if (Status s = DecodeWal(buf.data(), buf.size(), &entries); !s.ok()) {
    return s;
  }
  // Validate monotonicity before touching *log so a bad file leaves it
  // unchanged (Append would stop mid-way otherwise).
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].timestamp < entries[i - 1].timestamp) {
      return Status::DataLoss("WAL: timestamp regression at entry " +
                              std::to_string(i));
    }
  }
  if (!entries.empty() && !log->empty() &&
      entries.front().timestamp < log->MaxTimestamp()) {
    return Status::OutOfRange(
        "WAL: file starts before the log's current tail");
  }
  log->AppendBatch(entries);
  return Status::Ok();
}

}  // namespace platod2gl
