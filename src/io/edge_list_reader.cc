#include "io/edge_list_reader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace platod2gl {

bool ParseEdgeLine(const std::string& line, Edge* edge) {
  // Skip leading whitespace; reject blanks and comment lines.
  std::size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos) return false;
  if (line[start] == '#' || line[start] == '%') return false;

  std::istringstream in(line);
  VertexId src, dst;
  if (!(in >> src >> dst)) return false;

  Edge e;
  e.src = src;
  e.dst = dst;
  double weight;
  if (in >> weight) {
    if (weight <= 0.0) return false;  // W : E -> R+
    e.weight = weight;
    std::uint32_t type;
    if (in >> type) e.type = type;
  }
  *edge = e;
  return true;
}

Result<std::vector<Edge>> ReadEdgeList(const std::string& path,
                                       EdgeListStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  std::vector<Edge> edges;
  EdgeListStats local;
  std::string line;
  while (std::getline(in, line)) {
    Edge e;
    if (ParseEdgeLine(line, &e)) {
      edges.push_back(e);
      ++local.edges_loaded;
    } else {
      ++local.lines_skipped;
    }
  }
  if (stats) *stats = local;
  return edges;
}

Status LoadEdgeList(const std::string& path, GraphStore* graph,
                    EdgeListStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  EdgeListStats local;
  std::string line;
  while (std::getline(in, line)) {
    Edge e;
    if (!ParseEdgeLine(line, &e)) {
      ++local.lines_skipped;
      continue;
    }
    if (e.type >= graph->num_relations()) {
      ++local.lines_skipped;  // relation out of range for this store
      continue;
    }
    graph->AddEdge(e);
    ++local.edges_loaded;
  }
  if (stats) *stats = local;
  return Status::Ok();
}

}  // namespace platod2gl
