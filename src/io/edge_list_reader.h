// Text edge-list loader: the lowest-friction way to get a real graph into
// the store.
//
// Format: one edge per line, whitespace-separated —
//     src dst [weight] [type]
// with '#' or '%' starting a comment line (the conventions of SNAP and
// KONECT dumps). Weight defaults to 1.0, type to 0. Malformed lines are
// counted and skipped, never fatal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct EdgeListStats {
  std::size_t edges_loaded = 0;
  std::size_t lines_skipped = 0;  ///< comments, blanks and malformed lines
};

/// Parse a whole edge-list file into a vector.
Result<std::vector<Edge>> ReadEdgeList(const std::string& path,
                                       EdgeListStats* stats = nullptr);

/// Stream a file straight into a GraphStore (duplicate edges refresh
/// weights, exactly like AddEdge).
Status LoadEdgeList(const std::string& path, GraphStore* graph,
                    EdgeListStats* stats = nullptr);

/// Parse one line; returns false for comments/blank/malformed input.
bool ParseEdgeLine(const std::string& line, Edge* edge);

}  // namespace platod2gl
