// Durable write-ahead-log codec for TemporalEdgeLog.
//
// dist/shard.h keeps its WAL as an in-memory TemporalEdgeLog; until now
// there was no on-disk form, so a process restart depended entirely on
// the last checkpoint. This codec gives the update series a durable,
// integrity-checked format mirroring io/checkpoint:
//
//   magic "PD2W" | version u32 (1 | 2)
//   count u64
//   count x entry: ts u64 | kind u8 | type u32 | src u64 | dst u64 | w f64
//   crc32 u32 footer (v2 only) over every preceding byte
//
// Safety properties the loaders guarantee (and the fuzz harness in
// tests/fuzz/fuzz_wal.cc hammers):
//  * the declared count is bounds-checked against the actual byte count
//    BEFORE any allocation — an absurd count in a truncated file cannot
//    trigger a multi-gigabyte reserve;
//  * v2 files verify the CRC-32 footer before any entry is decoded, so a
//    bit-rotted file is rejected with kDataLoss as a whole instead of
//    half-applied;
//  * every entry's kind byte is validated against UpdateKind's range;
//  * trailing garbage after the declared payload is rejected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/edge_log.h"

namespace platod2gl {

/// Current on-disk WAL version (CRC-32 footer).
inline constexpr std::uint32_t kWalVersion = 2;

/// Serialise `entries` into the on-disk byte form. `version` must be 1 or
/// 2 (2 appends the CRC footer; 1 exists for back-compat tests).
std::vector<unsigned char> EncodeWal(const std::vector<TimedUpdate>& entries,
                                     std::uint32_t version = kWalVersion);

/// Decode an in-memory WAL image into *out (cleared first). This is the
/// pure function the fuzz harness drives; LoadWal is a thin file wrapper.
Status DecodeWal(const unsigned char* data, std::size_t size,
                 std::vector<TimedUpdate>* out);

/// Write every entry of `log` to `path` (version 2, atomic content: the
/// buffer is fully built, then written in one stream).
Status SaveWal(const TemporalEdgeLog& log, const std::string& path);

/// Read a WAL file and append its entries, in order, into *log. The log's
/// monotonicity contract still applies: a decoded series with a time
/// regression is rejected with kDataLoss (a valid writer never produces
/// one) and *log is left untouched.
Status LoadWal(const std::string& path, TemporalEdgeLog* log);

}  // namespace platod2gl
