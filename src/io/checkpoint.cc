#include "io/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "common/crc32.h"

namespace platod2gl {
namespace {

constexpr char kMagic[4] = {'P', 'D', '2', 'G'};
// v1: no integrity footer. v2: everything up to the last 4 bytes is
// covered by a CRC-32 footer, verified in full BEFORE any record is
// applied to the target store (truncated or bit-rotted checkpoints are
// rejected with kDataLoss instead of building a silently wrong store).
// v1 files are still loaded (no footer to check).
constexpr std::uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Write-side wrapper keeping a running CRC-32 of every byte written
/// through it; the footer itself is written raw at the end. Sinks either
/// to a FILE* or, when `buf` is set, to an in-memory string (the
/// snapshot-bootstrap shipping path) — both produce identical bytes.
struct CrcWriter {
  std::FILE* f = nullptr;
  std::uint32_t crc = 0;
  std::string* buf = nullptr;

  bool Write(const void* p, std::size_t n) {
    crc = Crc32(p, n, crc);
    if (n == 0) return true;
    if (buf != nullptr) {
      buf->append(static_cast<const char*>(p), n);
      return true;
    }
    return std::fwrite(p, 1, n, f) == n;
  }
  bool WriteFooter() {
    const std::uint32_t value = crc;
    if (buf != nullptr) {
      buf->append(reinterpret_cast<const char*>(&value), sizeof(value));
      return true;
    }
    return std::fwrite(&value, sizeof(value), 1, f) == 1;
  }
};

template <typename T>
bool WritePod(CrcWriter& w, const T& value) {
  return w.Write(&value, sizeof(T));
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

/// Bytes between the current position and EOF (0 on error). Length
/// prefixes are checked against this BEFORE allocating: v1 files carry no
/// CRC footer, so a lying prefix in a 13-byte file must not be allowed to
/// drive a multi-gigabyte vector reserve (fuzz-found hazard).
long RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(f);
  if (std::fseek(f, pos, SEEK_SET) != 0) return 0;
  return end >= pos ? end - pos : 0;
}

/// Verify the CRC-32 footer of an already-open file: checksum every byte
/// except the trailing 4, compare, and rewind to the start on success.
/// `min_size` guards the smallest structurally valid file.
Status VerifyCrcFooter(std::FILE* f, const std::string& path,
                       long min_size) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed: " + path);
  }
  const long size = std::ftell(f);
  if (size < min_size + 4) {
    return Status::DataLoss("checkpoint truncated: " + path);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::Internal("seek failed: " + path);
  }
  std::uint32_t crc = 0;
  long remaining = size - 4;
  char buf[4096];
  while (remaining > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<long>(remaining, static_cast<long>(sizeof(buf))));
    if (std::fread(buf, 1, chunk, f) != chunk) {
      return Status::Internal("read failed during checksum: " + path);
    }
    crc = Crc32(buf, chunk, crc);
    remaining -= static_cast<long>(chunk);
  }
  std::uint32_t stored = 0;
  if (!ReadPod(f, &stored)) {
    return Status::DataLoss("checkpoint footer unreadable: " + path);
  }
  if (stored != crc) {
    return Status::DataLoss(
        "checkpoint checksum mismatch (corrupt or truncated): " + path);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::Internal("seek failed: " + path);
  }
  return Status::Ok();
}

/// The shared serialisation body behind SaveGraph and SaveGraphToBytes:
/// everything between opening the sink and closing it.
Status SaveGraphInto(const GraphStore& graph, CrcWriter& w) {
  if (!w.Write(kMagic, sizeof(kMagic)) || !WritePod(w, kVersion) ||
      !WritePod(w, static_cast<std::uint32_t>(graph.num_relations()))) {
    return Status::Internal("short write (header)");
  }

  for (std::size_t r = 0; r < graph.num_relations(); ++r) {
    const TopologyStore& topo = graph.topology(static_cast<EdgeType>(r));
    if (!WritePod(w, static_cast<std::uint64_t>(topo.NumEdges()))) {
      return Status::Internal("short write (edge count)");
    }
    bool ok = true;
    std::uint64_t written = 0;
    topo.ForEachSource([&](VertexId src, const Samtree& tree) {
      tree.ForEachNeighbor([&](VertexId dst, Weight weight) {
        ok = ok && WritePod(w, src) && WritePod(w, dst) &&
             WritePod(w, weight);
        ++written;
      });
    });
    if (!ok) return Status::Internal("short write (edges)");
    if (written != topo.NumEdges()) {
      return Status::Internal("edge count drifted during save");
    }
  }

  // Attributes: collect IDs first (ForEach is not re-entrant with reads).
  struct AttrRow {
    VertexId id;
    std::optional<std::int64_t> label;
    std::vector<float> features;
  };
  std::vector<AttrRow> rows;
  const AttributeStore& attrs = graph.attributes();
  // AttributeStore has no generic iterator in its public face beyond
  // counting, so serialise through a collected snapshot.
  attrs.ForEachVertex([&](VertexId v, const std::vector<float>& feats,
                          const std::optional<std::int64_t>& label) {
    rows.push_back(AttrRow{v, label, feats});
  });
  if (!WritePod(w, static_cast<std::uint64_t>(rows.size()))) {
    return Status::Internal("short write (attr count)");
  }
  for (const AttrRow& row : rows) {
    const std::uint8_t has_label = row.label.has_value() ? 1 : 0;
    if (!WritePod(w, row.id) || !WritePod(w, has_label)) {
      return Status::Internal("short write (attr header)");
    }
    if (has_label && !WritePod(w, *row.label)) {
      return Status::Internal("short write (label)");
    }
    const std::uint32_t len = static_cast<std::uint32_t>(row.features.size());
    if (!WritePod(w, len)) return Status::Internal("short write");
    if (len > 0 &&
        !w.Write(row.features.data(), sizeof(float) * len)) {
      return Status::Internal("short write (features)");
    }
  }
  if (!w.WriteFooter()) return Status::Internal("short write (crc footer)");
  return Status::Ok();
}

/// The shared parse body behind LoadGraph and LoadGraphFromBytes: `f` is
/// positioned at the start; `path` only labels error messages.
Status LoadGraphStream(std::FILE* f, const std::string& path,
                       GraphStore* graph) {
  char magic[4];
  std::uint32_t version = 0, num_relations = 0;
  if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a PlatoD2GL checkpoint: " + path);
  }
  if (!ReadPod(f, &version) || version == 0 || version > kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (version >= 2) {
    // Integrity first: verify the whole file against its footer BEFORE
    // applying any record, then rewind and re-read the header.
    Status s = VerifyCrcFooter(f, path, /*min_size=*/12);
    if (!s.ok()) return s;
    char skip_magic[4];
    std::uint32_t skip_version;
    if (std::fread(skip_magic, sizeof(skip_magic), 1, f) != 1 ||
        !ReadPod(f, &skip_version)) {
      return Status::Internal("reread failed: " + path);
    }
  }
  if (!ReadPod(f, &num_relations)) {
    return Status::InvalidArgument("truncated header");
  }
  if (num_relations > graph->num_relations()) {
    return Status::InvalidArgument(
        "checkpoint has more relations than the target store");
  }
  if (graph->NumEdges() != 0) {
    return Status::InvalidArgument("target store is not empty");
  }

  for (std::uint32_t r = 0; r < num_relations; ++r) {
    std::uint64_t count = 0;
    if (!ReadPod(f, &count)) {
      return Status::InvalidArgument("truncated relation header");
    }
    TopologyStore& topo = graph->topology(static_cast<EdgeType>(r));
    // SaveGraph writes edges grouped by source, so whole neighbourhoods
    // arrive as runs and can be bulk-built bottom-up (O(n) per tree)
    // instead of inserted one by one. InstallTree merges gracefully if a
    // (foreign) file interleaves sources.
    VertexId run_src = kInvalidVertex;
    std::vector<std::pair<VertexId, Weight>> run;
    auto flush = [&]() {
      if (run.empty()) return;
      topo.InstallTree(run_src,
                       Samtree::BulkBuild(std::move(run), topo.config()));
      run.clear();
    };
    for (std::uint64_t i = 0; i < count; ++i) {
      VertexId src, dst;
      Weight weight;
      if (!ReadPod(f, &src) || !ReadPod(f, &dst) ||
          !ReadPod(f, &weight)) {
        return Status::InvalidArgument("truncated edge records");
      }
      if (src != run_src) {
        flush();
        run_src = src;
      }
      run.emplace_back(dst, weight);
    }
    flush();
  }

  std::uint64_t attr_count = 0;
  if (!ReadPod(f, &attr_count)) {
    return Status::InvalidArgument("truncated attribute header");
  }
  for (std::uint64_t i = 0; i < attr_count; ++i) {
    VertexId id;
    std::uint8_t has_label;
    if (!ReadPod(f, &id) || !ReadPod(f, &has_label)) {
      return Status::InvalidArgument("truncated attribute record");
    }
    if (has_label) {
      std::int64_t label;
      if (!ReadPod(f, &label)) {
        return Status::InvalidArgument("truncated label");
      }
      graph->attributes().SetLabel(id, label);
    }
    std::uint32_t len;
    if (!ReadPod(f, &len)) {
      return Status::InvalidArgument("truncated feature length");
    }
    if (len > 0) {
      if (static_cast<std::uint64_t>(RemainingBytes(f)) <
          static_cast<std::uint64_t>(len) * sizeof(float)) {
        return Status::InvalidArgument("feature length exceeds file size");
      }
      std::vector<float> feats(len);
      if (std::fread(feats.data(), sizeof(float), len, f) != len) {
        return Status::InvalidArgument("truncated features");
      }
      graph->attributes().SetFeatures(id, std::move(feats));
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveGraph(const GraphStore& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open " + path + " for writing");
  CrcWriter w{f.get()};
  return SaveGraphInto(graph, w);
}

Status SaveGraphToBytes(const GraphStore& graph, std::string* out) {
  out->clear();
  CrcWriter w;
  w.buf = out;
  return SaveGraphInto(graph, w);
}

Status LoadGraph(const std::string& path, GraphStore* graph) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);
  return LoadGraphStream(f.get(), path, graph);
}

Status LoadGraphFromBytes(const std::string& bytes, GraphStore* graph) {
  if (bytes.empty()) {
    return Status::InvalidArgument("empty checkpoint image");
  }
  // fmemopen (POSIX; the deployment is Linux) gives the stream parser —
  // and its CRC-footer verification — a read-only view of the buffer.
  FilePtr f(fmemopen(const_cast<char*>(bytes.data()), bytes.size(), "rb"));
  if (!f) return Status::Internal("fmemopen failed");
  return LoadGraphStream(f.get(), "<bytes>", graph);
}

namespace {

constexpr char kModelMagic[4] = {'P', 'D', '2', 'M'};
// v1 model files put the u32 in_dim straight after the magic; v2 inserts
// this sentinel (an impossible in_dim) so the two can be told apart, then
// appends a CRC-32 footer like graph checkpoints.
constexpr std::uint32_t kModelV2Tag = 0xFFFFFFFEu;

bool WriteTensor(CrcWriter& w, const Tensor& t) {
  const std::uint32_t rows = static_cast<std::uint32_t>(t.rows());
  const std::uint32_t cols = static_cast<std::uint32_t>(t.cols());
  return WritePod(w, rows) && WritePod(w, cols) &&
         (t.size() == 0 || w.Write(t.data(), sizeof(float) * t.size()));
}

bool ReadTensorInto(std::FILE* f, Tensor* t) {
  std::uint32_t rows = 0, cols = 0;
  if (!ReadPod(f, &rows) || !ReadPod(f, &cols)) return false;
  if (rows != t->rows() || cols != t->cols()) return false;
  return t->size() == 0 ||
         std::fread(t->data(), sizeof(float), t->size(), f) == t->size();
}

bool WriteDense(CrcWriter& w, const Dense& d) {
  const std::uint32_t blen = static_cast<std::uint32_t>(d.bias().size());
  return WriteTensor(w, d.weights()) && WritePod(w, blen) &&
         w.Write(d.bias().data(), sizeof(float) * blen);
}

bool ReadDenseInto(std::FILE* f, Dense* d) {
  if (!ReadTensorInto(f, &d->weights())) return false;
  std::uint32_t blen = 0;
  if (!ReadPod(f, &blen) || blen != d->bias().size()) return false;
  return std::fread(d->bias().data(), sizeof(float), blen, f) == blen;
}

}  // namespace

Status SaveModel(const GraphSageModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open " + path + " for writing");
  CrcWriter w{f.get()};

  const GraphSageConfig& cfg = model.config();
  const std::uint32_t dims[3] = {
      static_cast<std::uint32_t>(cfg.in_dim),
      static_cast<std::uint32_t>(cfg.hidden_dim),
      static_cast<std::uint32_t>(cfg.num_classes)};
  if (!w.Write(kModelMagic, sizeof(kModelMagic)) ||
      !WritePod(w, kModelV2Tag) || !w.Write(dims, sizeof(dims))) {
    return Status::Internal("short write (model header)");
  }
  const bool ok = WriteDense(w, model.sage1().self_fc()) &&
                  WriteDense(w, model.sage1().neigh_fc()) &&
                  WriteDense(w, model.sage2().self_fc()) &&
                  WriteDense(w, model.sage2().neigh_fc()) &&
                  WriteDense(w, model.classifier());
  if (!ok) return Status::Internal("short write (model weights)");
  if (!w.WriteFooter()) return Status::Internal("short write (crc footer)");
  return Status::Ok();
}

Status LoadModel(const std::string& path, GraphSageModel* model) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);

  char magic[4];
  std::uint32_t probe = 0;
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) != 0) {
    return Status::InvalidArgument("not a PlatoD2GL model: " + path);
  }
  if (!ReadPod(f.get(), &probe)) {
    return Status::InvalidArgument("truncated model header");
  }

  std::uint32_t dims[3];
  if (probe == kModelV2Tag) {
    Status s = VerifyCrcFooter(f.get(), path, /*min_size=*/20);
    if (!s.ok()) return s;
    // Rewind past magic + tag, then read the real dims.
    if (std::fseek(f.get(), sizeof(kModelMagic) + sizeof(kModelV2Tag),
                   SEEK_SET) != 0) {
      return Status::Internal("seek failed: " + path);
    }
    if (std::fread(dims, sizeof(dims), 1, f.get()) != 1) {
      return Status::InvalidArgument("truncated model header");
    }
  } else {
    // v1 layout: the probe WAS in_dim.
    dims[0] = probe;
    if (std::fread(&dims[1], sizeof(std::uint32_t), 2, f.get()) != 2) {
      return Status::InvalidArgument("truncated model header");
    }
  }
  const GraphSageConfig& cfg = model->config();
  if (dims[0] != cfg.in_dim || dims[1] != cfg.hidden_dim ||
      dims[2] != cfg.num_classes) {
    return Status::InvalidArgument(
        "model architecture mismatch (checkpoint vs target)");
  }
  const bool ok = ReadDenseInto(f.get(), &model->sage1().self_fc()) &&
                  ReadDenseInto(f.get(), &model->sage1().neigh_fc()) &&
                  ReadDenseInto(f.get(), &model->sage2().self_fc()) &&
                  ReadDenseInto(f.get(), &model->sage2().neigh_fc()) &&
                  ReadDenseInto(f.get(), &model->classifier());
  return ok ? Status::Ok()
            : Status::InvalidArgument("truncated or mismatched model data");
}

}  // namespace platod2gl
