#include "io/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

namespace platod2gl {
namespace {

constexpr char kMagic[4] = {'P', 'D', '2', 'G'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

}  // namespace

Status SaveGraph(const GraphStore& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open " + path + " for writing");

  if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(),
                static_cast<std::uint32_t>(graph.num_relations()))) {
    return Status::Internal("short write (header)");
  }

  for (std::size_t r = 0; r < graph.num_relations(); ++r) {
    const TopologyStore& topo = graph.topology(static_cast<EdgeType>(r));
    if (!WritePod(f.get(), static_cast<std::uint64_t>(topo.NumEdges()))) {
      return Status::Internal("short write (edge count)");
    }
    bool ok = true;
    std::uint64_t written = 0;
    topo.ForEachSource([&](VertexId src, const Samtree& tree) {
      tree.ForEachNeighbor([&](VertexId dst, Weight w) {
        ok = ok && WritePod(f.get(), src) && WritePod(f.get(), dst) &&
             WritePod(f.get(), w);
        ++written;
      });
    });
    if (!ok) return Status::Internal("short write (edges)");
    if (written != topo.NumEdges()) {
      return Status::Internal("edge count drifted during save");
    }
  }

  // Attributes: collect IDs first (ForEach is not re-entrant with reads).
  struct AttrRow {
    VertexId id;
    std::optional<std::int64_t> label;
    std::vector<float> features;
  };
  std::vector<AttrRow> rows;
  const AttributeStore& attrs = graph.attributes();
  // AttributeStore has no generic iterator in its public face beyond
  // counting, so serialise through a collected snapshot.
  attrs.ForEachVertex([&](VertexId v, const std::vector<float>& feats,
                          const std::optional<std::int64_t>& label) {
    rows.push_back(AttrRow{v, label, feats});
  });
  if (!WritePod(f.get(), static_cast<std::uint64_t>(rows.size()))) {
    return Status::Internal("short write (attr count)");
  }
  for (const AttrRow& row : rows) {
    const std::uint8_t has_label = row.label.has_value() ? 1 : 0;
    if (!WritePod(f.get(), row.id) || !WritePod(f.get(), has_label)) {
      return Status::Internal("short write (attr header)");
    }
    if (has_label && !WritePod(f.get(), *row.label)) {
      return Status::Internal("short write (label)");
    }
    const std::uint32_t len = static_cast<std::uint32_t>(row.features.size());
    if (!WritePod(f.get(), len)) return Status::Internal("short write");
    if (len > 0 && std::fwrite(row.features.data(), sizeof(float), len,
                               f.get()) != len) {
      return Status::Internal("short write (features)");
    }
  }
  return Status::Ok();
}

Status LoadGraph(const std::string& path, GraphStore* graph) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);

  char magic[4];
  std::uint32_t version = 0, num_relations = 0;
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a PlatoD2GL checkpoint: " + path);
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(f.get(), &num_relations)) {
    return Status::InvalidArgument("truncated header");
  }
  if (num_relations > graph->num_relations()) {
    return Status::InvalidArgument(
        "checkpoint has more relations than the target store");
  }
  if (graph->NumEdges() != 0) {
    return Status::InvalidArgument("target store is not empty");
  }

  for (std::uint32_t r = 0; r < num_relations; ++r) {
    std::uint64_t count = 0;
    if (!ReadPod(f.get(), &count)) {
      return Status::InvalidArgument("truncated relation header");
    }
    TopologyStore& topo = graph->topology(static_cast<EdgeType>(r));
    // SaveGraph writes edges grouped by source, so whole neighbourhoods
    // arrive as runs and can be bulk-built bottom-up (O(n) per tree)
    // instead of inserted one by one. InstallTree merges gracefully if a
    // (foreign) file interleaves sources.
    VertexId run_src = kInvalidVertex;
    std::vector<std::pair<VertexId, Weight>> run;
    auto flush = [&]() {
      if (run.empty()) return;
      topo.InstallTree(run_src,
                       Samtree::BulkBuild(std::move(run), topo.config()));
      run.clear();
    };
    for (std::uint64_t i = 0; i < count; ++i) {
      VertexId src, dst;
      Weight w;
      if (!ReadPod(f.get(), &src) || !ReadPod(f.get(), &dst) ||
          !ReadPod(f.get(), &w)) {
        return Status::InvalidArgument("truncated edge records");
      }
      if (src != run_src) {
        flush();
        run_src = src;
      }
      run.emplace_back(dst, w);
    }
    flush();
  }

  std::uint64_t attr_count = 0;
  if (!ReadPod(f.get(), &attr_count)) {
    return Status::InvalidArgument("truncated attribute header");
  }
  for (std::uint64_t i = 0; i < attr_count; ++i) {
    VertexId id;
    std::uint8_t has_label;
    if (!ReadPod(f.get(), &id) || !ReadPod(f.get(), &has_label)) {
      return Status::InvalidArgument("truncated attribute record");
    }
    if (has_label) {
      std::int64_t label;
      if (!ReadPod(f.get(), &label)) {
        return Status::InvalidArgument("truncated label");
      }
      graph->attributes().SetLabel(id, label);
    }
    std::uint32_t len;
    if (!ReadPod(f.get(), &len)) {
      return Status::InvalidArgument("truncated feature length");
    }
    if (len > 0) {
      std::vector<float> feats(len);
      if (std::fread(feats.data(), sizeof(float), len, f.get()) != len) {
        return Status::InvalidArgument("truncated features");
      }
      graph->attributes().SetFeatures(id, std::move(feats));
    }
  }
  return Status::Ok();
}

namespace {

constexpr char kModelMagic[4] = {'P', 'D', '2', 'M'};

bool WriteTensor(std::FILE* f, const Tensor& t) {
  const std::uint32_t rows = static_cast<std::uint32_t>(t.rows());
  const std::uint32_t cols = static_cast<std::uint32_t>(t.cols());
  return WritePod(f, rows) && WritePod(f, cols) &&
         (t.size() == 0 ||
          std::fwrite(t.data(), sizeof(float), t.size(), f) == t.size());
}

bool ReadTensorInto(std::FILE* f, Tensor* t) {
  std::uint32_t rows = 0, cols = 0;
  if (!ReadPod(f, &rows) || !ReadPod(f, &cols)) return false;
  if (rows != t->rows() || cols != t->cols()) return false;
  return t->size() == 0 ||
         std::fread(t->data(), sizeof(float), t->size(), f) == t->size();
}

bool WriteDense(std::FILE* f, const Dense& d) {
  const std::uint32_t blen = static_cast<std::uint32_t>(d.bias().size());
  return WriteTensor(f, d.weights()) && WritePod(f, blen) &&
         std::fwrite(d.bias().data(), sizeof(float), blen, f) == blen;
}

bool ReadDenseInto(std::FILE* f, Dense* d) {
  if (!ReadTensorInto(f, &d->weights())) return false;
  std::uint32_t blen = 0;
  if (!ReadPod(f, &blen) || blen != d->bias().size()) return false;
  return std::fread(d->bias().data(), sizeof(float), blen, f) == blen;
}

}  // namespace

Status SaveModel(const GraphSageModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open " + path + " for writing");

  const GraphSageConfig& cfg = model.config();
  const std::uint32_t dims[3] = {
      static_cast<std::uint32_t>(cfg.in_dim),
      static_cast<std::uint32_t>(cfg.hidden_dim),
      static_cast<std::uint32_t>(cfg.num_classes)};
  if (std::fwrite(kModelMagic, sizeof(kModelMagic), 1, f.get()) != 1 ||
      std::fwrite(dims, sizeof(dims), 1, f.get()) != 1) {
    return Status::Internal("short write (model header)");
  }
  const bool ok = WriteDense(f.get(), model.sage1().self_fc()) &&
                  WriteDense(f.get(), model.sage1().neigh_fc()) &&
                  WriteDense(f.get(), model.sage2().self_fc()) &&
                  WriteDense(f.get(), model.sage2().neigh_fc()) &&
                  WriteDense(f.get(), model.classifier());
  return ok ? Status::Ok() : Status::Internal("short write (model weights)");
}

Status LoadModel(const std::string& path, GraphSageModel* model) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);

  char magic[4];
  std::uint32_t dims[3];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) != 0) {
    return Status::InvalidArgument("not a PlatoD2GL model: " + path);
  }
  if (std::fread(dims, sizeof(dims), 1, f.get()) != 1) {
    return Status::InvalidArgument("truncated model header");
  }
  const GraphSageConfig& cfg = model->config();
  if (dims[0] != cfg.in_dim || dims[1] != cfg.hidden_dim ||
      dims[2] != cfg.num_classes) {
    return Status::InvalidArgument(
        "model architecture mismatch (checkpoint vs target)");
  }
  const bool ok = ReadDenseInto(f.get(), &model->sage1().self_fc()) &&
                  ReadDenseInto(f.get(), &model->sage1().neigh_fc()) &&
                  ReadDenseInto(f.get(), &model->sage2().self_fc()) &&
                  ReadDenseInto(f.get(), &model->sage2().neigh_fc()) &&
                  ReadDenseInto(f.get(), &model->classifier());
  return ok ? Status::Ok()
            : Status::InvalidArgument("truncated or mismatched model data");
}

}  // namespace platod2gl
