// BatchUpdater: the batch-based latch-free concurrent update mechanism of
// PlatoD2GL (paper Section VI-B and Appendix B), modelled on PALM.
//
// The latch-free flow works in two phases:
//   1. sort  — the batch is stably sorted by source vertex, so all
//              updates touching one samtree become contiguous and their
//              original order (insert-then-delete etc.) is preserved;
//   2. apply — source groups are partitioned across worker threads; each
//              group's samtree is looked up (or created) once under its
//              map-shard lock — samtree values are heap-pinned, so the
//              pointer survives rehashes — and then, because every tree
//              is owned by exactly one thread for the whole phase, the
//              group is applied bottom-up with no latches at all.
//
// The latch-based reference mode (Fig. 11(c)'s implicit baseline) skips
// the sort/partition and lets threads race over the raw batch, taking the
// per-shard latch for every single update.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "storage/topology_store.h"

namespace platod2gl {

class BatchUpdater {
 public:
  /// The updater borrows the store and the pool; both must outlive it.
  BatchUpdater(TopologyStore* store, ThreadPool* pool);

  /// Latch-free batch application (phases 1-3 above). The batch is taken
  /// by value because phase 1 sorts it.
  void ApplyBatch(std::vector<EdgeUpdate> batch);

  /// Latch-based reference: threads contend on per-shard spinlocks for
  /// every update.
  void ApplyBatchLatchBased(const std::vector<EdgeUpdate>& batch);

  /// Single-threaded application, for measuring parallel speedup.
  void ApplySequential(const std::vector<EdgeUpdate>& batch);

 private:
  /// Post-batch structural sweep, compiled in by
  /// -DPD2GL_ENABLE_INVARIANTS=ON (no-op otherwise): after the workers
  /// drain, the whole store is quiescent, so the PALM-style "prose"
  /// guarantee — per-tree exclusivity kept every tree and the shared edge
  /// counter consistent — is re-proven after every batch.
  void MaybeVerifyStore();

  TopologyStore* store_;
  ThreadPool* pool_;
};

}  // namespace platod2gl
