#include "concurrency/batch_updater.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/profile.h"

namespace platod2gl {

BatchUpdater::BatchUpdater(TopologyStore* store, ThreadPool* pool)
    : store_(store), pool_(pool) {}

void BatchUpdater::ApplyBatch(std::vector<EdgeUpdate> batch) {
  if (batch.empty()) return;
  PD2GL_PROFILE_SCOPE(obs::ProfileSite::kBatchApply);

  // Phase 1 — sort an index array by (source, arrival position): cheaper
  // than moving 40-byte updates, and the position tiebreak keeps the
  // per-edge update order semantic (stable).
  std::vector<std::uint32_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const VertexId sa = batch[a].edge.src;
              const VertexId sb = batch[b].edge.src;
              return sa != sb ? sa < sb : a < b;
            });

  // Group boundaries: one group per source vertex.
  std::vector<std::size_t> group_starts;
  group_starts.push_back(0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (batch[order[i]].edge.src != batch[order[i - 1]].edge.src) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(order.size());
  const std::size_t num_groups = group_starts.size() - 1;

  // Phase 2 — each thread owns a dynamic range of source groups; a
  // samtree is looked up (and created if new) once per group under its
  // map-shard lock, then the whole group is applied to it with no
  // per-update latching at all — two threads never touch the same tree.
  std::atomic<std::size_t> next_group{0};
  const std::size_t num_workers = pool_->num_threads();
  const std::size_t stride =
      std::max<std::size_t>(1, num_groups / (num_workers * 4));
  for (std::size_t wkr = 0; wkr < num_workers; ++wkr) {
    pool_->Submit([&] {
      while (true) {
        const std::size_t begin =
            // order: ticket draw only; group results are published by the join, not this counter
            next_group.fetch_add(stride, std::memory_order_relaxed);
        if (begin >= num_groups) return;
        const std::size_t end = std::min(num_groups, begin + stride);
        for (std::size_t g = begin; g < end; ++g) {
          // The only synchronisation is the shard-locked lookup; the tree
          // itself is owned by this thread for the whole group.
          Samtree* tree = store_->GetOrCreateTree(
              batch[order[group_starts[g]]].edge.src);
          for (std::size_t i = group_starts[g]; i < group_starts[g + 1];
               ++i) {
            const EdgeUpdate& u = batch[order[i]];
            switch (u.kind) {
              case UpdateKind::kInsert: {
                const std::size_t before = tree->size();
                tree->Insert(u.edge.dst, u.edge.weight);
                if (tree->size() != before) store_->NoteEdgeInserted();
                break;
              }
              case UpdateKind::kInPlaceUpdate:
                tree->Update(u.edge.dst, u.edge.weight);
                break;
              case UpdateKind::kDelete:
                if (tree->Remove(u.edge.dst)) store_->NoteEdgeRemoved();
                break;
            }
          }
        }
      }
    });
  }
  pool_->Wait();
  MaybeVerifyStore();
}

void BatchUpdater::ApplyBatchLatchBased(const std::vector<EdgeUpdate>& batch) {
  PD2GL_PROFILE_SCOPE(obs::ProfileSite::kBatchApply);
  // Blocked submission: ~8 blocks per worker keeps the task queue cold
  // while still letting the pool rebalance when a block lands on a run of
  // expensive updates (deep trees, splits).
  const std::size_t grain = std::max<std::size_t>(
      16, batch.size() / (pool_->num_threads() * 8));
  pool_->ParallelForBlocked(batch.size(), grain,
                            [&](std::size_t i) { store_->Apply(batch[i]); });
  MaybeVerifyStore();
}

void BatchUpdater::ApplySequential(const std::vector<EdgeUpdate>& batch) {
  for (const EdgeUpdate& u : batch) store_->Apply(u);
  MaybeVerifyStore();
}

void BatchUpdater::MaybeVerifyStore() {
#if defined(PD2GL_ENABLE_INVARIANTS)
  std::string err;
  if (!store_->CheckAllInvariants(&err)) {
    std::fprintf(stderr, "PD2GL invariant violation after batch: %s\n",
                 err.c_str());
    std::abort();
  }
#endif
}

}  // namespace platod2gl
