#include "core/alpha_split.h"

#include <cassert>
#include <utility>

namespace platod2gl {
namespace {

/// Partition [lo, hi) around the element at the median position of the
/// range (paper Algorithm 1 lines 1-3): after the call the pivot sits at
/// the returned index, smaller IDs before it, larger IDs after it.
std::size_t PartitionAroundMedianPos(std::vector<VertexId>& ids,
                                     std::vector<Weight>& weights,
                                     std::size_t lo, std::size_t hi) {
  const std::size_t mid = lo + (hi - lo) / 2;
  std::swap(ids[mid], ids[lo]);
  std::swap(weights[mid], weights[lo]);
  const VertexId pivot = ids[lo];

  // Lomuto-style sweep that leaves the pivot at its exact sorted position,
  // which is the property lines 4-11 of Algorithm 1 rely on.
  std::size_t store = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    if (ids[i] < pivot) {
      ++store;
      std::swap(ids[i], ids[store]);
      std::swap(weights[i], weights[store]);
    }
  }
  std::swap(ids[lo], ids[store]);
  std::swap(weights[lo], weights[store]);
  return store;
}

}  // namespace

std::size_t AlphaSplit(std::vector<VertexId>& ids,
                       std::vector<Weight>& weights, std::size_t target,
                       std::size_t alpha) {
  assert(ids.size() == weights.size());
  assert(!ids.empty());
  assert(target < ids.size());

  std::size_t lo = 0;
  std::size_t hi = ids.size();
  while (true) {
    const std::size_t pos = PartitionAroundMedianPos(ids, weights, lo, hi);
    // α-relaxed acceptance (Eq. 3): any pivot within `alpha` of the target
    // is good enough — but never accept a degenerate split that would leave
    // one side empty.
    const std::size_t dist = pos > target ? pos - target : target - pos;
    if (dist <= alpha && pos > 0 && pos < ids.size() - 1) return pos;
    if (pos == target) return pos;  // exact hit at a boundary target
    if (target < pos) {
      hi = pos;
    } else {
      lo = pos + 1;
    }
    if (lo >= hi) return pos;  // range exhausted: pos is the closest pivot
  }
}

}  // namespace platod2gl
