#include "core/compressed_ids.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace platod2gl {

VertexId CompressedIdList::Get(std::size_t i) const {
  assert(i < count_);
  const std::size_t w = SuffixWidth();
  VertexId suffix = ReadSuffix(i * w);
  if (z_ == 0) return suffix;
  return (prefix_ << (8 * w)) | suffix;
}

std::uint8_t CompressedIdList::SharedBytesWith(VertexId id) const {
  if (z_ == 0) return 0;
  // XOR the reconstructed prefix base with the candidate: the number of
  // equal leading bytes is the count of leading zero bytes of the XOR.
  const std::size_t w = SuffixWidth();
  const VertexId base = prefix_ << (8 * w);
  const VertexId diff = (base ^ id) >> (8 * w) << (8 * w);  // high z bytes
  if (diff == 0) return z_;
  const int lead_bits = __builtin_clzll(diff);
  return static_cast<std::uint8_t>(
      std::min<int>(z_, lead_bits / 8));
}

std::uint8_t CompressedIdList::SnapToAllowed(std::uint8_t limit) {
  for (std::uint8_t z : kAllowedPrefixBytes) {
    if (z <= limit) return z;
  }
  return 0;
}

void CompressedIdList::Reencode(std::uint8_t new_z) {
  assert(new_z <= z_);
  if (new_z == z_) return;
  std::vector<VertexId> decoded = Decode();
  z_ = new_z;
  prefix_ =
      (count_ == 0 || z_ == 0) ? 0 : decoded[0] >> (8 * SuffixWidth());
  const std::size_t w = SuffixWidth();
  bytes_.assign(decoded.size() * w, 0);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    WriteSuffix(i * w, decoded[i]);
  }
}

// Suffix widths are always 8 - z with z in {0,4,6,7}, i.e. exactly
// {8,4,2,1} bytes — each maps to one unaligned load/store plus a byte
// swap, which keeps the hot leaf-scan path off a per-byte loop.
void CompressedIdList::WriteSuffix(std::size_t byte_pos, VertexId id) {
  std::uint8_t* p = bytes_.data() + byte_pos;
  switch (SuffixWidth()) {
    case 1: {
      *p = static_cast<std::uint8_t>(id);
      return;
    }
    case 2: {
      const std::uint16_t v = __builtin_bswap16(static_cast<std::uint16_t>(id));
      std::memcpy(p, &v, 2);
      return;
    }
    case 4: {
      const std::uint32_t v = __builtin_bswap32(static_cast<std::uint32_t>(id));
      std::memcpy(p, &v, 4);
      return;
    }
    default: {
      const std::uint64_t v = __builtin_bswap64(id);
      std::memcpy(p, &v, 8);
      return;
    }
  }
}

VertexId CompressedIdList::ReadSuffix(std::size_t byte_pos) const {
  const std::uint8_t* p = bytes_.data() + byte_pos;
  switch (SuffixWidth()) {
    case 1:
      return *p;
    case 2: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return __builtin_bswap16(v);
    }
    case 4: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return __builtin_bswap32(v);
    }
    default: {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      return __builtin_bswap64(v);
    }
  }
}

void CompressedIdList::Append(VertexId id) {
  if (count_ == 0) {
    z_ = enable_ ? kAllowedPrefixBytes.front() : 0;
    prefix_ = z_ == 0 ? 0 : id >> (8 * SuffixWidth());
    bytes_.clear();
  } else if (enable_) {
    const std::uint8_t shared = SharedBytesWith(id);
    if (shared < z_) Reencode(SnapToAllowed(shared));
  }
  const std::size_t w = SuffixWidth();
  bytes_.resize(bytes_.size() + w);
  WriteSuffix(count_ * w, id);
  ++count_;
}

void CompressedIdList::Insert(std::size_t pos, VertexId id) {
  assert(pos <= count_);
  if (pos == count_) {
    Append(id);
    return;
  }
  if (count_ == 0) {
    Append(id);
    return;
  }
  if (enable_) {
    const std::uint8_t shared = SharedBytesWith(id);
    if (shared < z_) Reencode(SnapToAllowed(shared));
  }
  const std::size_t w = SuffixWidth();
  bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(pos * w), w, 0);
  WriteSuffix(pos * w, id);
  ++count_;
}

void CompressedIdList::Set(std::size_t i, VertexId id) {
  assert(i < count_);
  if (enable_) {
    const std::uint8_t shared = SharedBytesWith(id);
    if (shared < z_) Reencode(SnapToAllowed(shared));
  } else if (z_ != 0) {
    Reencode(0);
  }
  WriteSuffix(i * SuffixWidth(), id);
}

void CompressedIdList::RemoveAt(std::size_t i) {
  assert(i < count_);
  const std::size_t w = SuffixWidth();
  bytes_.erase(bytes_.begin() + static_cast<std::ptrdiff_t>(i * w),
               bytes_.begin() + static_cast<std::ptrdiff_t>((i + 1) * w));
  --count_;
}

void CompressedIdList::RemoveSwapLast(std::size_t i) {
  assert(i < count_);
  const std::size_t w = SuffixWidth();
  const std::size_t last = count_ - 1;
  if (i != last) {
    std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(last * w), w,
                bytes_.begin() + static_cast<std::ptrdiff_t>(i * w));
  }
  bytes_.resize(last * w);
  --count_;
}

std::size_t CompressedIdList::Find(VertexId id) const {
  if (count_ == 0) return npos;
  const std::size_t w = SuffixWidth();
  // Fast reject: an ID that does not share the prefix cannot be present.
  if (z_ != 0 && (id >> (8 * w)) != prefix_) return npos;
  const VertexId target =
      id & (w == 8 ? ~0ULL : ((1ULL << (8 * w)) - 1));
  for (std::size_t i = 0, pos = 0; i < count_; ++i, pos += w) {
    if (ReadSuffix(pos) == target) return i;
  }
  return npos;
}

std::vector<VertexId> CompressedIdList::Decode() const {
  std::vector<VertexId> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) out.push_back(Get(i));
  return out;
}

void CompressedIdList::Clear() {
  bytes_.clear();
  count_ = 0;
  z_ = 0;
  prefix_ = 0;
}

bool CompressedIdList::CheckConsistent(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (std::find(kAllowedPrefixBytes.begin(), kAllowedPrefixBytes.end(), z_) ==
      kAllowedPrefixBytes.end()) {
    return fail("prefix width z=" + std::to_string(z_) + " not in {0,4,6,7}");
  }
  if (!enable_ && z_ != 0) {
    return fail("compression disabled but z=" + std::to_string(z_));
  }
  if (bytes_.size() != static_cast<std::size_t>(count_) * SuffixWidth()) {
    return fail("encoded byte count " + std::to_string(bytes_.size()) +
                " != count * suffix width " +
                std::to_string(static_cast<std::size_t>(count_) *
                               SuffixWidth()));
  }
  if (z_ > 0 && z_ < 8 && (prefix_ >> (8 * z_)) != 0) {
    return fail("stored prefix wider than z bytes");
  }
  // Decode -> re-encode round-trip: a fresh list fed this list's IDs must
  // reproduce them exactly, with at least as wide a prefix (Append only
  // ever narrows z, so the live list may be narrower than optimal but
  // never wider).
  CompressedIdList fresh(enable_);
  for (std::size_t i = 0; i < count_; ++i) fresh.Append(Get(i));
  if (fresh.size() != count_) return fail("round-trip size mismatch");
  for (std::size_t i = 0; i < count_; ++i) {
    if (fresh.Get(i) != Get(i)) {
      return fail("round-trip mismatch at position " + std::to_string(i));
    }
  }
  if (fresh.prefix_bytes() < z_) {
    return fail("stored prefix wider than the IDs share (z=" +
                std::to_string(z_) + ", achievable " +
                std::to_string(fresh.prefix_bytes()) + ")");
  }
  return true;
}

}  // namespace platod2gl
