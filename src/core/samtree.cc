#include "core/samtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <set>
#include <sstream>

#include "common/simd.h"
#include "obs/profile.h"
#include "core/alpha_split.h"

namespace platod2gl {

// ---------------------------------------------------------------------------
// Node layout
// ---------------------------------------------------------------------------

struct Samtree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  const bool is_leaf;
  // Where this node's storage came from (nullptr = heap). NodeDeleter
  // reads it back on destruction, so trees can mix heap and arena nodes.
  NodeArena* arena = nullptr;
};

struct Samtree::LeafNode : Samtree::Node {
  explicit LeafNode(bool compress) : Node(true), ids(compress) {}

  CompressedIdList ids;  // unordered neighbour IDs (samtree constraint 2)
  FSTable fstable;       // weights index for FTS (samtree constraint 4)

  /// Replace the contents from parallel (id, weight) arrays.
  void Assign(const std::vector<VertexId>& new_ids,
              const std::vector<Weight>& new_weights, bool compress) {
    ids = CompressedIdList(compress);
    for (VertexId v : new_ids) ids.Append(v);
    fstable = FSTable(new_weights);
  }
};

struct Samtree::InternalNode : Samtree::Node {
  explicit InternalNode(bool compress) : Node(false), min_ids(compress) {}

  CompressedIdList min_ids;  // ordered: i-th entry = min ID in child i
  CSTable cstable;           // prefix sums of per-child subtree weights
  std::vector<std::uint64_t> counts;  // per-child subtree neighbour counts
  std::vector<NodePtr> children;
};

void Samtree::NodeDeleter::operator()(Node* n) const {
  if (n == nullptr) return;
  NodeArena* arena = n->arena;
  if (arena == nullptr) {
    delete n;  // pd2gl-lint: allow-naked-new (heap half of the arena deleter)
    return;
  }
  const std::size_t bytes =
      n->is_leaf ? sizeof(LeafNode) : sizeof(InternalNode);
  n->~Node();  // virtual: destroys the derived node
  arena->Deallocate(n, bytes);
}

namespace {

using LeafNode = Samtree::LeafNode;
using InternalNode = Samtree::InternalNode;

/// Construct a node on the configured arena (heap when arena == nullptr)
/// and stamp its origin for NodeDeleter. Converts implicitly to NodePtr.
template <typename T, typename... Args>
std::unique_ptr<T, Samtree::NodeDeleter> AllocNode(NodeArena* arena,
                                                   Args&&... args) {
  static_assert(alignof(T) <= NodeArena::kAlignment,
                "samtree nodes must fit the arena alignment");
  T* n = nullptr;
  if (arena != nullptr) {
    void* mem = arena->Allocate(sizeof(T));
    n = new (mem) T(std::forward<Args>(args)...);  // pd2gl-lint: allow-naked-new
  } else {
    n = new T(std::forward<Args>(args)...);  // pd2gl-lint: allow-naked-new
  }
  n->arena = arena;
  return std::unique_ptr<T, Samtree::NodeDeleter>(n);
}

}  // namespace

// Per-node helpers ----------------------------------------------------------

namespace {

std::size_t NodeEntryCount(const Samtree::Node* n);
Weight NodeTotalWeight(const Samtree::Node* n);
std::uint64_t NodeNeighborCount(const Samtree::Node* n);
VertexId NodeMinId(const Samtree::Node* n);

std::size_t NodeEntryCount(const Samtree::Node* n) {
  if (n->is_leaf) return static_cast<const LeafNode*>(n)->ids.size();
  return static_cast<const InternalNode*>(n)->children.size();
}

Weight NodeTotalWeight(const Samtree::Node* n) {
  if (n->is_leaf) return static_cast<const LeafNode*>(n)->fstable.TotalWeight();
  return static_cast<const InternalNode*>(n)->cstable.TotalWeight();
}

std::uint64_t NodeNeighborCount(const Samtree::Node* n) {
  if (n->is_leaf) return static_cast<const LeafNode*>(n)->ids.size();
  const auto* in = static_cast<const InternalNode*>(n);
  std::uint64_t total = 0;
  for (std::uint64_t c : in->counts) total += c;
  return total;
}

VertexId NodeMinId(const Samtree::Node* n) {
  if (!n->is_leaf) {
    return static_cast<const InternalNode*>(n)->min_ids.Get(0);
  }
  const auto* leaf = static_cast<const LeafNode*>(n);
  VertexId min = kInvalidVertex;
  for (std::size_t i = 0; i < leaf->ids.size(); ++i) {
    min = std::min(min, leaf->ids.Get(i));
  }
  return min;
}

/// Routing (paper Algorithm 2, DFS step): rightmost child whose minimum ID
/// is <= v; child 0 is the catch-all for v below every key.
std::size_t ChildIndexFor(const InternalNode* node, VertexId v) {
  std::size_t lo = 0;
  std::size_t hi = node->min_ids.size();  // invariant: answer in [lo, hi)
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (node->min_ids.Get(mid) <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

// Outcome structs -----------------------------------------------------------

struct Samtree::InsertOutcome {
  bool inserted = false;  // false when an existing weight was refreshed
  Weight delta = 0.0;     // subtree total-weight change
  NodePtr sibling;        // right sibling when this node split
  VertexId sibling_min = kInvalidVertex;
};

struct Samtree::RemoveOutcome {
  bool removed = false;
  Weight delta = 0.0;
  bool underflow = false;
};

// ---------------------------------------------------------------------------
// Construction / special members
// ---------------------------------------------------------------------------

std::uint64_t Samtree::NextVersion() {
  // Process-wide clock: every value is handed out exactly once, so a
  // version can never collide across trees — a fresh tree landing at a
  // reused heap address cannot revalidate a cache entry of its
  // predecessor.
  static std::atomic<std::uint64_t> clock{0};
  // order: unique-stamp draw; publication happens via the version_ release store
  return clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

Samtree::Samtree(SamtreeConfig config)
    : config_(config), version_(NextVersion()) {
  // Capacities below 4 make the merge/split dance degenerate.
  config_.node_capacity = std::max<std::uint32_t>(4, config_.node_capacity);
}

Samtree::~Samtree() = default;

Samtree::Samtree(Samtree&& other) noexcept
    : config_(other.config_),
      root_(std::move(other.root_)),
      count_(other.count_),
      stats_(other.stats_),
      // order: moves are externally synchronised; no concurrent observer of either tree
      version_(other.version_.load(std::memory_order_relaxed)) {
  other.count_ = 0;
  other.stats_ = {};
  other.BumpVersion();  // the moved-from shell is a different (empty) tree
}

Samtree& Samtree::operator=(Samtree&& other) noexcept {
  if (this != &other) {
    config_ = other.config_;
    root_ = std::move(other.root_);
    count_ = other.count_;
    stats_ = other.stats_;
    // Adopt the source's stamp: it uniquely identifies the moved content,
    // while any entry cached against this tree's old stamp now mismatches.
    // order: moves are externally synchronised; no concurrent observer of either tree
    version_.store(other.version_.load(std::memory_order_relaxed),
                   std::memory_order_release);
    other.count_ = 0;
    other.stats_ = {};
    other.BumpVersion();
  }
  return *this;
}

Samtree Samtree::BulkBuild(std::vector<std::pair<VertexId, Weight>> neighbors,
                           SamtreeConfig config) {
  Samtree tree(config);
  if (neighbors.empty()) return tree;
  const std::size_t capacity = tree.config_.node_capacity;

  // Stable sort: equal IDs keep their arrival order, so the dedup below
  // keeps the *last* weight (AddEdge semantics).
  std::stable_sort(
      neighbors.begin(), neighbors.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t w = 0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (w > 0 && neighbors[i].first == neighbors[w - 1].first) {
      neighbors[w - 1].second = neighbors[i].second;
    } else {
      neighbors[w++] = neighbors[i];
    }
  }
  neighbors.resize(w);
  const std::size_t n = neighbors.size();

  // Pack leaves: ceil(n / capacity) even chunks keeps every leaf within
  // [capacity/2, capacity] (Definition 1) while staying one pass.
  // With an arena configured, the left-to-right, level-by-level
  // allocation order below is what makes descents stride contiguous
  // memory instead of the heap.
  std::vector<NodePtr> level;
  std::vector<VertexId> level_mins;
  const std::size_t num_leaves = (n + capacity - 1) / capacity;
  std::size_t cursor = 0;
  for (std::size_t leaf_idx = 0; leaf_idx < num_leaves; ++leaf_idx) {
    const std::size_t remaining_leaves = num_leaves - leaf_idx;
    const std::size_t take =
        (n - cursor + remaining_leaves - 1) / remaining_leaves;
    auto leaf =
        AllocNode<LeafNode>(tree.config_.arena, tree.config_.compress_ids);
    std::vector<VertexId> ids;
    std::vector<Weight> weights;
    ids.reserve(take);
    weights.reserve(take);
    for (std::size_t i = 0; i < take; ++i, ++cursor) {
      ids.push_back(neighbors[cursor].first);
      weights.push_back(neighbors[cursor].second);
    }
    leaf->Assign(ids, weights, tree.config_.compress_ids);
    level_mins.push_back(ids.front());  // sorted: front is the minimum
    level.push_back(std::move(leaf));
  }

  // Assemble internal levels until one root remains.
  while (level.size() > 1) {
    std::vector<NodePtr> parents;
    std::vector<VertexId> parent_mins;
    const std::size_t m = level.size();
    const std::size_t num_parents = (m + capacity - 1) / capacity;
    std::size_t child = 0;
    for (std::size_t p = 0; p < num_parents; ++p) {
      const std::size_t remaining = num_parents - p;
      const std::size_t take = (m - child + remaining - 1) / remaining;
      auto node = AllocNode<InternalNode>(tree.config_.arena,
                                          tree.config_.compress_ids);
      parent_mins.push_back(level_mins[child]);
      for (std::size_t i = 0; i < take; ++i, ++child) {
        node->min_ids.Append(level_mins[child]);
        node->children.push_back(std::move(level[child]));
      }
      tree.RebuildParentAggregates(node.get());
      parents.push_back(std::move(node));
    }
    level = std::move(parents);
    level_mins = std::move(parent_mins);
  }

  tree.root_ = std::move(level.front());
  tree.count_ = n;
  return tree;
}

std::size_t Samtree::MinFill() const {
  const std::size_t half = config_.node_capacity / 2;
  // α-Split may legally produce nodes of size c/2 - α (paper Remark after
  // Theorem 2), so the underflow threshold relaxes with alpha.
  return half > config_.alpha ? half - config_.alpha : 1;
}

// ---------------------------------------------------------------------------
// Splits
// ---------------------------------------------------------------------------

Samtree::NodePtr Samtree::SplitLeaf(LeafNode* leaf, VertexId* sibling_min) {
  std::vector<VertexId> ids = leaf->ids.Decode();
  std::vector<Weight> weights = leaf->fstable.DecodeWeights();

  // Best balance = split at the median (Algorithm 2 line 8).
  const std::size_t pivot =
      AlphaSplit(ids, weights, ids.size() / 2, config_.alpha);

  // Left keeps [0, pivot), the sibling takes [pivot, n): the pivot element
  // itself is the sibling's minimum, so no extra scan is needed.
  std::vector<VertexId> right_ids(ids.begin() + static_cast<std::ptrdiff_t>(pivot),
                                  ids.end());
  std::vector<Weight> right_weights(
      weights.begin() + static_cast<std::ptrdiff_t>(pivot), weights.end());
  ids.resize(pivot);
  weights.resize(pivot);

  leaf->Assign(ids, weights, config_.compress_ids);
  auto sibling = AllocNode<LeafNode>(config_.arena, config_.compress_ids);
  sibling->Assign(right_ids, right_weights, config_.compress_ids);
  *sibling_min = right_ids.front();

  ++stats_.leaf_splits;
  stats_.leaf_ops += 2;
  return sibling;
}

Samtree::NodePtr Samtree::SplitInternal(InternalNode* node,
                                        VertexId* sibling_min) {
  // Internal entries are ordered, so the split is an exact median cut
  // (Section IV-C, "our method is much simpler").
  const std::size_t mid = node->children.size() / 2;
  auto sibling = AllocNode<InternalNode>(config_.arena, config_.compress_ids);
  *sibling_min = node->min_ids.Get(mid);

  for (std::size_t i = mid; i < node->children.size(); ++i) {
    sibling->children.push_back(std::move(node->children[i]));
    sibling->min_ids.Append(node->min_ids.Get(i));
  }
  node->children.resize(mid);
  while (node->min_ids.size() > mid) {
    node->min_ids.RemoveAt(node->min_ids.size() - 1);
  }

  RebuildParentAggregates(node);
  RebuildParentAggregates(sibling.get());

  ++stats_.internal_splits;
  stats_.internal_ops += 2;
  return sibling;
}

void Samtree::RebuildParentAggregates(InternalNode* node) {
  std::vector<Weight> sums;
  sums.reserve(node->children.size());
  node->counts.clear();
  node->counts.reserve(node->children.size());
  for (const auto& child : node->children) {
    sums.push_back(NodeTotalWeight(child.get()));
    node->counts.push_back(NodeNeighborCount(child.get()));
  }
  node->cstable = CSTable(sums);
}

// ---------------------------------------------------------------------------
// Insertion (paper Algorithm 2)
// ---------------------------------------------------------------------------

Samtree::InsertOutcome Samtree::InsertRec(Node* node, VertexId v, Weight w,
                                          bool check_existing) {
  InsertOutcome out;

  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    ++stats_.leaf_ops;
    if (check_existing) {
      const std::size_t pos = leaf->ids.Find(v);
      if (pos != CompressedIdList::npos) {
        // Algorithm 2 line 4: v already present — refresh its weight.
        const Weight old = leaf->fstable.WeightAt(pos);
        leaf->fstable.UpdateWeight(pos, w);
        out.delta = w - old;
        return out;
      }
    }
    // Algorithm 2 line 6: append to the unordered leaf.
    leaf->ids.Append(v);
    leaf->fstable.Append(w);
    out.inserted = true;
    out.delta = w;
    if (leaf->ids.size() > config_.node_capacity) {
      out.sibling = SplitLeaf(leaf, &out.sibling_min);
    }
    return out;
  }

  auto* in = static_cast<InternalNode*>(node);
  const std::size_t j = ChildIndexFor(in, v);
  InsertOutcome child_out =
      InsertRec(in->children[j].get(), v, w, check_existing);

  out.inserted = child_out.inserted;
  out.delta = child_out.delta;

  // Keep the routing key tight when v became the new subtree minimum.
  if (child_out.inserted && v < in->min_ids.Get(j)) {
    in->min_ids.Set(j, v);
  }

  if (child_out.sibling) {
    // Adopt the split-off sibling right of child j.
    in->children.insert(
        in->children.begin() + static_cast<std::ptrdiff_t>(j + 1),
        std::move(child_out.sibling));
    in->min_ids.Insert(j + 1, child_out.sibling_min);
    RebuildParentAggregates(in);
    ++stats_.internal_ops;
    if (in->children.size() > config_.node_capacity) {
      out.sibling = SplitInternal(in, &out.sibling_min);
    }
  } else {
    // Aggregation-only maintenance (Algorithm 2 line 9): propagate the
    // weight delta into this level's CSTable and the per-child counts.
    in->cstable.AddDelta(j, child_out.delta);
    if (child_out.inserted) ++in->counts[j];
  }
  return out;
}

void Samtree::Insert(VertexId v, Weight w) {
  InsertImpl(v, w, /*check_existing=*/true);
}

void Samtree::InsertUnchecked(VertexId v, Weight w) {
  InsertImpl(v, w, /*check_existing=*/false);
}

void Samtree::InsertImpl(VertexId v, Weight w, bool check_existing) {
  BumpVersion();
  if (!root_) {
    auto leaf = AllocNode<LeafNode>(config_.arena, config_.compress_ids);
    leaf->ids.Append(v);
    leaf->fstable.Append(w);
    root_ = std::move(leaf);
    count_ = 1;
    ++stats_.leaf_ops;
    return;
  }

  InsertOutcome out = InsertRec(root_.get(), v, w, check_existing);
  if (out.inserted) ++count_;
  if (out.sibling) {
    // Grow a new root above the split (the only way a samtree gains height).
    auto new_root = AllocNode<InternalNode>(config_.arena, config_.compress_ids);
    new_root->min_ids.Append(NodeMinId(root_.get()));
    new_root->min_ids.Append(out.sibling_min);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(out.sibling));
    RebuildParentAggregates(new_root.get());
    root_ = std::move(new_root);
    ++stats_.internal_ops;
  }
  MaybeSelfCheck();
}

std::optional<Weight> Samtree::UpdateRec(Node* node, VertexId v, Weight w) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    const std::size_t pos = leaf->ids.Find(v);
    if (pos == CompressedIdList::npos) return std::nullopt;
    const Weight old = leaf->fstable.WeightAt(pos);
    leaf->fstable.UpdateWeight(pos, w);  // Algorithm 3: O(log n_L)
    ++stats_.leaf_ops;
    return w - old;
  }
  auto* in = static_cast<InternalNode*>(node);
  const std::size_t j = ChildIndexFor(in, v);
  const std::optional<Weight> delta = UpdateRec(in->children[j].get(), v, w);
  if (delta) in->cstable.AddDelta(j, *delta);
  return delta;
}

bool Samtree::Update(VertexId v, Weight w) {
  if (!root_) return false;
  BumpVersion();
  const bool updated = UpdateRec(root_.get(), v, w).has_value();
  if (updated) MaybeSelfCheck();
  return updated;
}

// ---------------------------------------------------------------------------
// Deletion (paper Section IV-D)
// ---------------------------------------------------------------------------

void Samtree::MergeChildInto(InternalNode* parent, std::size_t child_idx) {
  // Merge with the nearest sibling: prefer the right one, fall back left.
  const std::size_t right_idx =
      (child_idx + 1 < parent->children.size()) ? child_idx + 1 : child_idx;
  const std::size_t lo = right_idx == child_idx ? child_idx - 1 : child_idx;
  const std::size_t hi = lo + 1;

  Node* left = parent->children[lo].get();
  Node* right = parent->children[hi].get();
  ++stats_.merges;

  if (left->is_leaf) {
    auto* ll = static_cast<LeafNode*>(left);
    auto* rl = static_cast<LeafNode*>(right);
    std::vector<VertexId> ids = ll->ids.Decode();
    std::vector<Weight> weights = ll->fstable.DecodeWeights();
    const std::vector<VertexId> rids = rl->ids.Decode();
    const std::vector<Weight> rweights = rl->fstable.DecodeWeights();
    ids.insert(ids.end(), rids.begin(), rids.end());
    weights.insert(weights.end(), rweights.begin(), rweights.end());
    ll->Assign(ids, weights, config_.compress_ids);
    stats_.leaf_ops += 2;
  } else {
    auto* li = static_cast<InternalNode*>(left);
    auto* ri = static_cast<InternalNode*>(right);
    for (std::size_t i = 0; i < ri->children.size(); ++i) {
      li->min_ids.Append(ri->min_ids.Get(i));
      li->children.push_back(std::move(ri->children[i]));
    }
    RebuildParentAggregates(li);
    stats_.internal_ops += 2;
  }

  parent->children.erase(parent->children.begin() +
                         static_cast<std::ptrdiff_t>(hi));
  parent->min_ids.RemoveAt(hi);
  ++stats_.internal_ops;

  // The merge may have been triggered by deleting the left child's minimum
  // out of an (about-to-be-)empty leaf, leaving its routing key stale.
  if (NodeNeighborCount(parent->children[lo].get()) > 0) {
    parent->min_ids.Set(lo, NodeMinId(parent->children[lo].get()));
  }

  // If the merged node overflows, split it back — this is how the samtree
  // "borrows" from a sibling while reusing the α-Split machinery.
  Node* merged = parent->children[lo].get();
  if (NodeEntryCount(merged) > config_.node_capacity) {
    VertexId sibling_min = kInvalidVertex;
    NodePtr sibling;
    if (merged->is_leaf) {
      sibling = SplitLeaf(static_cast<LeafNode*>(merged), &sibling_min);
    } else {
      sibling = SplitInternal(static_cast<InternalNode*>(merged), &sibling_min);
    }
    parent->children.insert(
        parent->children.begin() + static_cast<std::ptrdiff_t>(lo + 1),
        std::move(sibling));
    parent->min_ids.Insert(lo + 1, sibling_min);
  }
  RebuildParentAggregates(parent);
}

Samtree::RemoveOutcome Samtree::RemoveRec(Node* node, VertexId v) {
  RemoveOutcome out;

  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    const std::size_t pos = leaf->ids.Find(v);
    if (pos == CompressedIdList::npos) return out;
    const Weight w = leaf->fstable.WeightAt(pos);
    // Unordered leaf: swap in the last element and truncate (Section IV-D).
    leaf->fstable.RemoveSwapLast(pos);
    leaf->ids.RemoveSwapLast(pos);
    ++stats_.leaf_ops;
    out.removed = true;
    out.delta = -w;
    out.underflow = leaf->ids.size() < MinFill();
    return out;
  }

  auto* in = static_cast<InternalNode*>(node);
  const std::size_t j = ChildIndexFor(in, v);
  RemoveOutcome child_out = RemoveRec(in->children[j].get(), v);
  if (!child_out.removed) return child_out;

  out.removed = true;
  out.delta = child_out.delta;

  in->cstable.AddDelta(j, child_out.delta);
  --in->counts[j];

  // Refresh the routing key if we deleted the child's minimum.
  if (in->min_ids.Get(j) == v && in->counts[j] > 0) {
    in->min_ids.Set(j, NodeMinId(in->children[j].get()));
  }

  if (child_out.underflow && in->children.size() > 1) {
    MergeChildInto(in, j);
  }
  out.underflow = in->children.size() < std::max<std::size_t>(2, MinFill());
  return out;
}

bool Samtree::Remove(VertexId v) {
  if (!root_) return false;
  BumpVersion();
  RemoveOutcome out = RemoveRec(root_.get(), v);
  if (!out.removed) return false;
  --count_;

  if (count_ == 0) {
    root_.reset();
    return true;
  }
  // Collapse a root that lost all but one child (height shrink).
  while (root_ && !root_->is_leaf) {
    auto* in = static_cast<InternalNode*>(root_.get());
    if (in->children.size() != 1) break;
    root_ = std::move(in->children[0]);
  }
  MaybeSelfCheck();
  return true;
}

// ---------------------------------------------------------------------------
// Lookups
// ---------------------------------------------------------------------------

bool Samtree::Contains(VertexId v) const { return GetWeight(v).has_value(); }

std::optional<Weight> Samtree::GetWeight(VertexId v) const {
  const Node* n = root_.get();
  if (!n) return std::nullopt;
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternalNode*>(n);
    n = in->children[ChildIndexFor(in, v)].get();
  }
  const auto* leaf = static_cast<const LeafNode*>(n);
  const std::size_t pos = leaf->ids.Find(v);
  if (pos == CompressedIdList::npos) return std::nullopt;
  return leaf->fstable.WeightAt(pos);
}

Weight Samtree::TotalWeight() const {
  return root_ ? NodeTotalWeight(root_.get()) : 0.0;
}

std::size_t Samtree::Height() const {
  std::size_t h = 0;
  const Node* n = root_.get();
  while (n) {
    ++h;
    n = n->is_leaf
            ? nullptr
            : static_cast<const InternalNode*>(n)->children.front().get();
  }
  return h;
}

// ---------------------------------------------------------------------------
// Sampling (paper Section V-C)
// ---------------------------------------------------------------------------

VertexId Samtree::SampleWeighted(Xoshiro256& rng) const {
  assert(root_ && "SampleWeighted on an empty samtree");
  Weight r = rng.NextDouble(TotalWeight());
  const Node* n = root_.get();
  while (!n->is_leaf) {
    // ITS over the internal CSTable: smallest child i with C[i] > r.
    const auto* in = static_cast<const InternalNode*>(n);
    const std::size_t i = in->cstable.FindIndex(r);
    if (i > 0) r -= in->cstable.Prefix(i - 1);
    n = in->children[i].get();
  }
  // FTS inside the leaf.
  const auto* leaf = static_cast<const LeafNode*>(n);
  return leaf->ids.Get(leaf->fstable.FindIndex(r));
}

VertexId Samtree::SampleUniform(Xoshiro256& rng) const {
  assert(root_ && "SampleUniform on an empty samtree");
  std::uint64_t r = rng.NextUint64(count_);
  const Node* n = root_.get();
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternalNode*>(n);
    std::size_t i = 0;
    while (r >= in->counts[i]) {
      r -= in->counts[i];
      ++i;
    }
    n = in->children[i].get();
  }
  return static_cast<const LeafNode*>(n)->ids.Get(r);
}

namespace {

/// Below this many draws, the batch set-up (scratch sizing, the
/// level-synchronous routing pass) costs more than it saves and the
/// plain per-draw loop wins. The cutoff is a pure-perf knob: both sides
/// produce identical samples, so it never affects results.
constexpr std::size_t kBatchMinDraws = 4;

/// Per-thread reusable buffers for the batched descent — sampling is the
/// serving hot path, so steady state must not allocate.
struct BatchScratch {
  std::vector<Weight> r;         // residual of each draw, original order
  std::vector<std::uint64_t> u;  // uniform draws, original order
  std::vector<const Samtree::Node*> nodes;  // current node of each draw
  std::vector<FenwickView> views;           // leaf Fenwick of each draw
  std::vector<std::uint32_t> leaf_idx;
};

BatchScratch& Scratch() {
  static thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace

void Samtree::SampleWeightedBatch(std::size_t k, Xoshiro256& rng,
                                  std::vector<VertexId>* out) const {
  assert(root_ && "SampleWeightedBatch on an empty samtree");
  // Batch granularity on purpose: a per-draw timer would cost a
  // comparable order to the descent itself (obs/profile.h).
  PD2GL_PROFILE_SCOPE(obs::ProfileSite::kSamtreeDescent);
  if (k == 0) return;
  if (k < kBatchMinDraws) {
    out->reserve(out->size() + k);
    for (std::size_t i = 0; i < k; ++i) out->push_back(SampleWeighted(rng));
    return;
  }
  const Weight total = TotalWeight();
  BatchScratch& s = Scratch();
  s.r.resize(k);
  s.leaf_idx.resize(k);
  // Draw everything up front, consuming the RNG in exactly the order the
  // one-draw-at-a-time loop would — the determinism contract callers
  // (and the distributed retry path) rely on. Draws keep their original
  // slots throughout; nothing is reordered.
  for (std::size_t i = 0; i < k; ++i) s.r[i] = rng.NextDouble(total);
  out->reserve(out->size() + k);

  if (root_->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(root_.get());
    leaf->fstable.FindIndices(s.r.data(), s.leaf_idx.data(), k);
    for (std::size_t d = 0; d < k; ++d) {
      out->push_back(leaf->ids.Get(s.leaf_idx[d]));
    }
    return;
  }

  // Route all k draws down the internal levels together,
  // level-synchronously (Definition 1 puts every leaf on one level, so
  // all draws cross the same number of levels). Per draw this is the
  // exact scalar ITS step — same CSTable::FindIndex, same Prefix
  // subtraction — but batching it keeps one node's CSTable hot for every
  // draw routed through it and gives each child prefetch a full pass
  // worth of latency to land before the next level touches it.
  const bool prefetch = simd::PrefetchEnabled();
  s.nodes.assign(k, root_.get());
  const std::size_t height = Height();
  for (std::size_t level = 0; level + 1 < height; ++level) {
    for (std::size_t d = 0; d < k; ++d) {
      const auto* in = static_cast<const InternalNode*>(s.nodes[d]);
      const std::size_t j = in->cstable.FindIndex(s.r[d]);
      if (j > 0) s.r[d] -= in->cstable.Prefix(j - 1);
      const Node* child = in->children[j].get();
      if (prefetch) simd::PrefetchRead(child);
      s.nodes[d] = child;
    }
  }

  // All draws sit at their leaves: resolve the k Fenwick descents in
  // parallel lanes — draws in different leaves included — then decode.
  s.views.resize(k);
  for (std::size_t d = 0; d < k; ++d) {
    s.views[d] = static_cast<const LeafNode*>(s.nodes[d])->fstable.View();
  }
  FenwickFindIndices(s.views.data(), s.r.data(), s.leaf_idx.data(), k);
  for (std::size_t d = 0; d < k; ++d) {
    out->push_back(
        static_cast<const LeafNode*>(s.nodes[d])->ids.Get(s.leaf_idx[d]));
  }
}

void Samtree::SampleUniformBatch(std::size_t k, Xoshiro256& rng,
                                 std::vector<VertexId>* out) const {
  assert(root_ && "SampleUniformBatch on an empty samtree");
  PD2GL_PROFILE_SCOPE(obs::ProfileSite::kSamtreeDescent);
  if (k == 0) return;
  if (k < kBatchMinDraws) {
    out->reserve(out->size() + k);
    for (std::size_t i = 0; i < k; ++i) out->push_back(SampleUniform(rng));
    return;
  }
  BatchScratch& s = Scratch();
  s.u.resize(k);
  for (std::size_t i = 0; i < k; ++i) s.u[i] = rng.NextUint64(count_);
  out->reserve(out->size() + k);

  if (root_->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(root_.get());
    for (std::size_t d = 0; d < k; ++d) {
      out->push_back(leaf->ids.Get(s.u[d]));
    }
    return;
  }

  // Same level-synchronous routing as the weighted batch, over the
  // per-child counts (exact integer arithmetic — trivially bit-equal to
  // the scalar count walk). The leaf draw itself is already O(1), so
  // routing is the only thing a uniform batch can amortise.
  const bool prefetch = simd::PrefetchEnabled();
  s.nodes.assign(k, root_.get());
  const std::size_t height = Height();
  for (std::size_t level = 0; level + 1 < height; ++level) {
    for (std::size_t d = 0; d < k; ++d) {
      const auto* in = static_cast<const InternalNode*>(s.nodes[d]);
      std::uint64_t r = s.u[d];
      std::size_t j = 0;
      while (r >= in->counts[j]) {
        r -= in->counts[j];
        ++j;
      }
      s.u[d] = r;
      const Node* child = in->children[j].get();
      if (prefetch) simd::PrefetchRead(child);
      s.nodes[d] = child;
    }
  }
  for (std::size_t d = 0; d < k; ++d) {
    out->push_back(static_cast<const LeafNode*>(s.nodes[d])->ids.Get(s.u[d]));
  }
}

void Samtree::SampleWeighted(std::size_t k, Xoshiro256& rng,
                             std::vector<VertexId>* out) const {
  if (root_ && k >= kBatchMinDraws) {
    SampleWeightedBatch(k, rng, out);
    return;
  }
  out->reserve(out->size() + k);
  for (std::size_t i = 0; i < k; ++i) out->push_back(SampleWeighted(rng));
}

void Samtree::SampleUniform(std::size_t k, Xoshiro256& rng,
                            std::vector<VertexId>* out) const {
  if (root_ && k >= kBatchMinDraws) {
    SampleUniformBatch(k, rng, out);
    return;
  }
  out->reserve(out->size() + k);
  for (std::size_t i = 0; i < k; ++i) out->push_back(SampleUniform(rng));
}

std::vector<VertexId> Samtree::SampleWeightedDistinct(std::size_t k,
                                                      Xoshiro256& rng) {
  std::vector<VertexId> out;
  if (!root_) return out;
  k = std::min(k, count_);
  out.reserve(k);

  // Floating-point floor: once the remaining mass drops to rounding
  // noise relative to the original total, further draws would be
  // arbitrary.
  const Weight floor = std::max(1e-12, TotalWeight() * 1e-12);

  std::vector<std::pair<VertexId, Weight>> drawn;
  drawn.reserve(k);
  while (out.size() < k && TotalWeight() > floor) {
    const VertexId v = SampleWeighted(rng);
    const std::optional<Weight> w = GetWeight(v);
    if (!w || *w <= 0.0) break;  // rounding residue selected a spent edge
    Update(v, 0.0);              // take v out of the distribution
    drawn.emplace_back(v, *w);
    out.push_back(v);
  }
  for (const auto& [v, w] : drawn) Update(v, w);  // restore
  return out;
}

namespace {

struct RangeQuery {
  VertexId lo;
  VertexId hi;
  std::size_t count = 0;
  std::vector<std::pair<VertexId, Weight>>* collect = nullptr;
};

/// [subtree_lo, subtree_hi] is a conservative bound on the IDs under n.
void RangeVisit(const Samtree::Node* n, VertexId subtree_lo,
                VertexId subtree_hi, RangeQuery* q) {
  if (subtree_lo > q->hi || subtree_hi < q->lo) return;  // disjoint

  if (n->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(n);
    const bool contained = subtree_lo >= q->lo && subtree_hi <= q->hi;
    if (contained && !q->collect) {
      q->count += leaf->ids.size();
      return;
    }
    const std::vector<Weight> weights =
        q->collect ? leaf->fstable.DecodeWeights() : std::vector<Weight>();
    for (std::size_t i = 0; i < leaf->ids.size(); ++i) {
      const VertexId v = leaf->ids.Get(i);
      if (v < q->lo || v > q->hi) continue;
      ++q->count;
      if (q->collect) q->collect->emplace_back(v, weights[i]);
    }
    return;
  }

  const auto* in = static_cast<const InternalNode*>(n);
  for (std::size_t j = 0; j < in->children.size(); ++j) {
    const VertexId child_lo = in->min_ids.Get(j);
    // The next child's minimum bounds this child's maximum from above.
    const VertexId child_hi = (j + 1 < in->children.size())
                                  ? in->min_ids.Get(j + 1) - 1
                                  : subtree_hi;
    if (child_lo > q->hi || child_hi < q->lo) continue;
    if (child_lo >= q->lo && child_hi <= q->hi && !q->collect) {
      q->count += in->counts[j];  // fully covered: O(1)
      continue;
    }
    RangeVisit(in->children[j].get(), child_lo, child_hi, q);
  }
}

}  // namespace

std::size_t Samtree::CountInRange(VertexId lo, VertexId hi) const {
  if (!root_ || lo > hi) return 0;
  RangeQuery q{lo, hi};
  RangeVisit(root_.get(), 0, kInvalidVertex, &q);
  return q.count;
}

std::vector<std::pair<VertexId, Weight>> Samtree::NeighborsInRange(
    VertexId lo, VertexId hi) const {
  std::vector<std::pair<VertexId, Weight>> out;
  if (!root_ || lo > hi) return out;
  RangeQuery q{lo, hi, 0, &out};
  RangeVisit(root_.get(), 0, kInvalidVertex, &q);
  return out;
}

// ---------------------------------------------------------------------------
// Enumeration / memory / invariants
// ---------------------------------------------------------------------------

namespace {

void VisitNeighbors(const Samtree::Node* n,
                    const std::function<void(VertexId, Weight)>& fn) {
  if (n->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(n);
    const std::vector<Weight> weights = leaf->fstable.DecodeWeights();
    for (std::size_t i = 0; i < leaf->ids.size(); ++i) {
      fn(leaf->ids.Get(i), weights[i]);
    }
    return;
  }
  for (const auto& child : static_cast<const InternalNode*>(n)->children) {
    VisitNeighbors(child.get(), fn);
  }
}

void AccumulateMemory(const Samtree::Node* n, MemoryBreakdown* mem) {
  if (n->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(n);
    mem->topology_bytes += leaf->ids.MemoryUsage();
    mem->index_bytes += leaf->fstable.MemoryUsage();
    mem->other_bytes += sizeof(LeafNode);
    return;
  }
  const auto* in = static_cast<const InternalNode*>(n);
  mem->topology_bytes += in->min_ids.MemoryUsage();
  mem->index_bytes += in->cstable.MemoryUsage();
  mem->other_bytes += sizeof(InternalNode) + VectorBytes(in->counts) +
                      in->children.capacity() * sizeof(void*);
  for (const auto& child : in->children) AccumulateMemory(child.get(), mem);
}

}  // namespace

std::vector<std::pair<VertexId, Weight>> Samtree::Neighbors() const {
  std::vector<std::pair<VertexId, Weight>> out;
  out.reserve(count_);
  ForEachNeighbor([&](VertexId v, Weight w) { out.emplace_back(v, w); });
  return out;
}

void Samtree::ForEachNeighbor(
    const std::function<void(VertexId, Weight)>& fn) const {
  if (root_) VisitNeighbors(root_.get(), fn);
}

namespace {

void CollectSorted(const Samtree::Node* n, std::vector<VertexId>* out) {
  if (n->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(n);
    const std::size_t begin = out->size();
    for (std::size_t i = 0; i < leaf->ids.size(); ++i) {
      out->push_back(leaf->ids.Get(i));
    }
    // Only the leaf's own entries are unordered; leaves arrive in ID
    // order because internal children are ID-partitioned.
    std::sort(out->begin() + static_cast<std::ptrdiff_t>(begin), out->end());
    return;
  }
  for (const auto& child : static_cast<const InternalNode*>(n)->children) {
    CollectSorted(child.get(), out);
  }
}

}  // namespace

std::vector<VertexId> Samtree::SortedIds() const {
  std::vector<VertexId> out;
  out.reserve(count_);
  if (root_) CollectSorted(root_.get(), &out);
  return out;
}

MemoryBreakdown Samtree::Memory() const {
  MemoryBreakdown mem;
  mem.other_bytes += sizeof(Samtree);
  if (root_) AccumulateMemory(root_.get(), &mem);
  return mem;
}

namespace {

struct SubtreeInfo {
  bool ok = true;
  std::size_t depth = 0;
  VertexId min = kInvalidVertex;
  VertexId max = 0;
  std::uint64_t count = 0;
  Weight weight = 0.0;
};

bool NearlyEqual(Weight a, Weight b) {
  const Weight scale = std::max({std::fabs(a), std::fabs(b), Weight{1.0}});
  return std::fabs(a - b) <= 1e-6 * scale;
}

SubtreeInfo CheckNode(const Samtree::Node* n, const SamtreeConfig& cfg,
                      std::size_t min_fill, bool is_root, std::ostream& err) {
  SubtreeInfo info;
  if (n->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(n);
    info.depth = 1;
    info.count = leaf->ids.size();
    info.weight = leaf->fstable.TotalWeight();
    if (leaf->ids.size() != leaf->fstable.size()) {
      err << "leaf ids/fstable size mismatch; ";
      info.ok = false;
    }
    std::string sub;
    if (!leaf->ids.CheckConsistent(&sub)) {
      err << "leaf CP-IDs: " << sub << "; ";
      info.ok = false;
    }
    if (!leaf->fstable.CheckConsistent(&sub)) {
      err << "leaf fstable: " << sub << "; ";
      info.ok = false;
    }
    if (leaf->ids.size() > cfg.node_capacity) {
      err << "leaf overflow; ";
      info.ok = false;
    }
    if (!is_root && leaf->ids.size() < min_fill) {
      err << "leaf underflow (" << leaf->ids.size() << " < " << min_fill
          << "); ";
      info.ok = false;
    }
    std::set<VertexId> seen;
    for (std::size_t i = 0; i < leaf->ids.size(); ++i) {
      const VertexId v = leaf->ids.Get(i);
      if (!seen.insert(v).second) {
        err << "duplicate neighbour " << v << "; ";
        info.ok = false;
      }
      info.min = std::min(info.min, v);
      info.max = std::max(info.max, v);
    }
    return info;
  }

  const auto* in = static_cast<const InternalNode*>(n);
  if (in->children.size() != in->min_ids.size() ||
      in->children.size() != in->counts.size() ||
      in->children.size() != in->cstable.size()) {
    err << "internal parallel-array size mismatch; ";
    info.ok = false;
    return info;
  }
  if (in->children.size() > cfg.node_capacity) {
    err << "internal overflow; ";
    info.ok = false;
  }
  std::string sub;
  if (!in->min_ids.CheckConsistent(&sub)) {
    err << "internal CP-IDs: " << sub << "; ";
    info.ok = false;
  }
  if (!in->cstable.CheckConsistent(&sub)) {
    err << "internal cstable: " << sub << "; ";
    info.ok = false;
  }
  for (std::size_t i = 1; i < in->min_ids.size(); ++i) {
    if (in->min_ids.Get(i) <= in->min_ids.Get(i - 1)) {
      err << "routing IDs not strictly increasing at " << i << "; ";
      info.ok = false;
      break;
    }
  }
  if (is_root && in->children.size() < 2) {
    err << "internal root with <2 children; ";
    info.ok = false;
  }
  if (!is_root && in->children.size() < std::max<std::size_t>(2, min_fill)) {
    err << "internal underflow; ";
    info.ok = false;
  }

  VertexId prev_max = 0;
  bool first = true;
  for (std::size_t i = 0; i < in->children.size(); ++i) {
    const SubtreeInfo child =
        CheckNode(in->children[i].get(), cfg, min_fill, false, err);
    info.ok = info.ok && child.ok;
    if (i == 0) {
      info.depth = child.depth + 1;
    } else if (child.depth + 1 != info.depth) {
      err << "uneven leaf depth; ";
      info.ok = false;
    }
    if (in->min_ids.Get(i) != child.min) {
      err << "min_ids[" << i << "] stale; ";
      info.ok = false;
    }
    if (!first && child.min <= prev_max) {
      err << "child ranges overlap; ";
      info.ok = false;
    }
    if (!NearlyEqual(in->cstable.WeightAt(i), child.weight)) {
      err << "cstable[" << i << "] drifted; ";
      info.ok = false;
    }
    if (in->counts[i] != child.count) {
      err << "counts[" << i << "] stale; ";
      info.ok = false;
    }
    prev_max = child.max;
    first = false;
    info.min = std::min(info.min, child.min);
    info.max = std::max(info.max, child.max);
    info.count += child.count;
    info.weight += child.weight;
  }
  return info;
}

}  // namespace

bool Samtree::CheckInvariants(std::string* error) const {
  std::ostringstream err;
  if (!root_) {
    if (count_ != 0) {
      if (error) *error = "empty tree with non-zero count";
      return false;
    }
    return true;
  }
  const SubtreeInfo info =
      CheckNode(root_.get(), config_, MinFill(), /*is_root=*/true, err);
  bool ok = info.ok;
  if (info.count != count_) {
    err << "count_ mismatch (" << count_ << " vs " << info.count << "); ";
    ok = false;
  }
  if (!ok && error) *error = err.str();
  return ok;
}

void Samtree::MaybeSelfCheck() {
#if defined(PD2GL_ENABLE_INVARIANTS)
  if (count_ >= 512 && (self_check_tick_++ & 63) != 0) return;
  std::string err;
  if (!CheckInvariants(&err)) {
    std::fprintf(stderr, "PD2GL invariant violation after mutation: %s\n",
                 err.c_str());
    std::abort();
  }
#endif
}

bool Samtree::CorruptForTest(TestCorruption kind) {
  if (!root_) return false;
  switch (kind) {
    case TestCorruption::kFSTableEntry: {
      Node* n = root_.get();
      while (!n->is_leaf) {
        n = static_cast<InternalNode*>(n)->children.front().get();
      }
      auto* leaf = static_cast<LeafNode*>(n);
      if (leaf->fstable.empty()) return false;
      // A positive skew: caught by the parent CSTable cross-check (or, if
      // negated below zero, by FSTable::CheckConsistent directly).
      leaf->fstable.CorruptRawEntryForTest(0,
                                           leaf->fstable.RawEntry(0) + 7.25);
      return true;
    }
    case TestCorruption::kCSTableEntry: {
      if (root_->is_leaf) return false;
      auto* in = static_cast<InternalNode*>(root_.get());
      in->cstable.CorruptEntryForTest(0, in->cstable.Prefix(0) + 3.5);
      return true;
    }
    case TestCorruption::kChildCount: {
      if (root_->is_leaf) return false;
      auto* in = static_cast<InternalNode*>(root_.get());
      in->counts[0] += 1;
      return true;
    }
    case TestCorruption::kMinId: {
      if (root_->is_leaf) return false;
      auto* in = static_cast<InternalNode*>(root_.get());
      // Duplicate child 0's key into slot 1: breaks strict ordering and
      // stales the child-minimum cross-check at once.
      in->min_ids.Set(1, in->min_ids.Get(0));
      return true;
    }
  }
  return false;
}

}  // namespace platod2gl
