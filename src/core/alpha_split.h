// α-Split (paper Algorithm 1): quickselect-style approximate-median
// partitioning of a leaf node's unordered (id, weight) pairs.
//
// A sort-based leaf split costs O(n log n). α-Split instead recursively
// Hoare-partitions around median-position pivots until a pivot lands within
// `alpha` positions of the requested split point, giving an O(n) average
// split (paper Theorem 1). With alpha == 0 this degenerates to exact
// QuickSelect; larger alpha trades balance for speed (Fig. 11(d)).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace platod2gl {

/// Partition `ids` (with `weights` permuted in lockstep) around an
/// approximate pivot: on return there is a position p with
/// |p - target| <= alpha such that ids[j] < ids[p] for all j < p and
/// ids[j] > ids[p] for all j > p (IDs are unique within a neighbour list).
///
/// Returns p. Requires ids.size() == weights.size() and
/// 0 < target < ids.size().
std::size_t AlphaSplit(std::vector<VertexId>& ids,
                       std::vector<Weight>& weights, std::size_t target,
                       std::size_t alpha);

}  // namespace platod2gl
