// Samtree: the per-vertex dynamic neighbourhood store of PlatoD2GL
// (paper Section IV).
//
// A samtree with node capacity c is a B-tree-like structure (Definition 1):
// every node has at most c children, internal nodes at least ceil(c/2), the
// root at least two unless it is a leaf, and all leaves sit on one level.
//
//  * Leaves hold the neighbours of the source vertex: an *unordered*
//    CP-ID list plus an FSTable over the edge weights, so in-place weight
//    changes and swap-deletes cost O(log n_L) (Section V).
//  * Internal nodes hold an *ordered* list of each child's minimum ID (for
//    routing) plus a CSTable over per-child subtree weight sums (for the
//    ITS descent during sampling) and per-child element counts (for uniform
//    sampling).
//  * Leaf overflow triggers the α-Split partition (Algorithm 1); leaf
//    underflow merges with the nearest sibling and re-splits if the merge
//    overflows, preserving Definition 1.
//  * Weighted sampling runs ITS over the CSTables down the internal levels
//    and FTS inside the leaf (Section V-C).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/sched_hooks.h"
#include "common/types.h"
#include "core/compressed_ids.h"
#include "index/cstable.h"
#include "index/fstable.h"

namespace platod2gl {

/// Tunables of a samtree (paper defaults: capacity 256, alpha 0,
/// compression on).
struct SamtreeConfig {
  std::uint32_t node_capacity = 256;  ///< c in the paper
  std::uint32_t alpha = 0;            ///< α-Split slackness
  bool compress_ids = true;           ///< CP-IDs compression (Section VI-A)

  /// Optional shard-local node arena (docs/sampling_simd.md). When set,
  /// every node this tree allocates from now on is carved out of the
  /// arena in allocation order — contiguous for BulkBuild — instead of
  /// individually heap-allocated. Each node remembers its origin, so a
  /// tree may legally hold a mix of heap and arena nodes (e.g. after
  /// InstallTree moves a heap-built tree into an arena-owning store).
  /// The arena must outlive every tree configured with it.
  NodeArena* arena = nullptr;
};

/// Ways Samtree::CorruptForTest can deliberately damage a tree so the
/// invariant checker's negative tests can prove CheckInvariants catches
/// real corruption (not just returns true on healthy trees).
enum class TestCorruption {
  kFSTableEntry,  ///< raw Fenwick entry in the leftmost leaf
  kCSTableEntry,  ///< root CSTable prefix sum (needs an internal root)
  kChildCount,    ///< root per-child count (needs an internal root)
  kMinId,         ///< root routing-ID ordering (needs an internal root)
};

/// Counters for Table V: how many structural node modifications the
/// dynamic updates performed, split by node kind.
struct SamtreeOpStats {
  std::uint64_t leaf_ops = 0;      ///< leaf appends / removals / splits
  std::uint64_t internal_ops = 0;  ///< internal child-list changes / splits
  std::uint64_t leaf_splits = 0;
  std::uint64_t internal_splits = 0;
  std::uint64_t merges = 0;
};

class Samtree {
 public:
  // Node layout — an implementation detail, exposed so the translation
  // unit's file-local helpers (and white-box tests) can traverse the tree.
  struct Node;
  struct LeafNode;
  struct InternalNode;

  /// Deleter that returns a node to the arena it was carved from (plain
  /// `delete` for heap nodes) — each node records its origin, so trees
  /// can mix the two freely.
  struct NodeDeleter {
    void operator()(Node* n) const;
  };
  using NodePtr = std::unique_ptr<Node, NodeDeleter>;

  explicit Samtree(SamtreeConfig config = {});
  ~Samtree();

  /// Construct a samtree from a whole neighbourhood at once: neighbours
  /// are sorted by ID (O(n log n)), packed into evenly-filled leaves and
  /// assembled bottom-up in O(n), skipping the per-insert descent/split
  /// work entirely. Duplicate IDs keep their last weight. This is what
  /// checkpoint restore and re-partitioning use.
  static Samtree BulkBuild(std::vector<std::pair<VertexId, Weight>> neighbors,
                           SamtreeConfig config = {});

  /// Deep copy (Samtree is move-only; copies are explicit). Built via
  /// BulkBuild, so the clone is freshly balanced.
  Samtree Clone() const { return BulkBuild(Neighbors(), config_); }

  Samtree(Samtree&&) noexcept;
  Samtree& operator=(Samtree&&) noexcept;
  Samtree(const Samtree&) = delete;
  Samtree& operator=(const Samtree&) = delete;

  /// Insert neighbour v with weight w; if v is already present its weight
  /// is overwritten (paper Algorithm 2).
  void Insert(VertexId v, Weight w);

  /// Bulk-load insert: the caller guarantees v is not present, so the
  /// O(n_L) duplicate scan in the leaf is skipped. Inserting a duplicate
  /// through this path corrupts the tree — use only on deduplicated
  /// streams (see NeighborStore::AddEdgeFast).
  void InsertUnchecked(VertexId v, Weight w);

  /// In-place weight update; returns false if v is absent.
  bool Update(VertexId v, Weight w);

  /// Delete neighbour v; returns false if v is absent.
  bool Remove(VertexId v);

  bool Contains(VertexId v) const;

  /// Edge weight to v, or nullopt if absent.
  std::optional<Weight> GetWeight(VertexId v) const;

  /// Number of neighbours stored.
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Sum of all edge weights.
  Weight TotalWeight() const;

  /// Height of the tree (number of levels; 0 when empty, 1 for a lone
  /// leaf).
  std::size_t Height() const;

  /// Draw one neighbour with probability w / W (ITS over internal
  /// CSTables + FTS in the leaf). Tree must be non-empty.
  VertexId SampleWeighted(Xoshiro256& rng) const;

  /// Draw one neighbour uniformly at random. Tree must be non-empty.
  VertexId SampleUniform(Xoshiro256& rng) const;

  /// Draw k neighbours with replacement (weighted or uniform). Delegates
  /// to the batched descent below once k is large enough to amortise its
  /// set-up; the output is identical either way.
  void SampleWeighted(std::size_t k, Xoshiro256& rng,
                      std::vector<VertexId>* out) const;
  void SampleUniform(std::size_t k, Xoshiro256& rng,
                     std::vector<VertexId>* out) const;

  /// Batched multi-draw descent (docs/sampling_simd.md): draw all k
  /// variates up front — consuming the RNG in exactly the order the
  /// k-iteration loop over SampleWeighted(rng) would — then route them
  /// down the tree level-synchronously (every leaf sits on one level, so
  /// all draws cross the same number of internal levels): each routing
  /// step is the scalar ITS step, but the next node is prefetched a full
  /// pass before it is touched, and at the bottom the k leaf Fenwick
  /// descents resolve four at a time in AVX2 lanes (FenwickFindIndices).
  /// Draws never leave their original slots, so out[i] is bit-identical
  /// to the i-th draw of the one-at-a-time loop under the same seed, with
  /// or without SIMD dispatch. Tree must be non-empty.
  void SampleWeightedBatch(std::size_t k, Xoshiro256& rng,
                           std::vector<VertexId>* out) const;

  /// Uniform flavour of the batched descent: the same level-synchronous
  /// routing over the per-child counts (exact integer arithmetic). Same
  /// output as the loop over SampleUniform(rng). Tree must be non-empty.
  void SampleUniformBatch(std::size_t k, Xoshiro256& rng,
                          std::vector<VertexId>* out) const;

  /// Draw up to k *distinct* neighbours, weighted, without replacement:
  /// each draw temporarily zeroes the drawn edge's weight (an O(log n)
  /// FSTable delta — the operation that makes this affordable at all;
  /// a CSTable-based store would pay O(n) per draw) and every weight is
  /// restored before returning. May return fewer than k when the
  /// remaining weight mass is zero. Non-const because of the temporary
  /// mutation; the tree is bit-identical afterwards up to floating-point
  /// rounding.
  std::vector<VertexId> SampleWeightedDistinct(std::size_t k,
                                               Xoshiro256& rng);

  /// Number of neighbours with ID in [lo, hi] — O(H + n_L) thanks to the
  /// ID-partitioned internal nodes and per-child counts.
  std::size_t CountInRange(VertexId lo, VertexId hi) const;

  /// All (neighbour, weight) pairs with ID in [lo, hi].
  std::vector<std::pair<VertexId, Weight>> NeighborsInRange(
      VertexId lo, VertexId hi) const;

  /// All (neighbour, weight) pairs, in arbitrary order — O(n).
  std::vector<std::pair<VertexId, Weight>> Neighbors() const;

  /// Visit every (neighbour, weight) pair without materialising the
  /// whole neighbourhood — O(n) time, O(n_L) transient space (one leaf's
  /// decoded weights at a time).
  void ForEachNeighbor(
      const std::function<void(VertexId, Weight)>& fn) const;

  /// All neighbour IDs in ascending order. Leaves are ID-disjoint
  /// intervals, so only each leaf's n_L entries need sorting:
  /// O(n log n_L) instead of O(n log n). Feeds merge-join set operations
  /// (common neighbours, intersections).
  std::vector<VertexId> SortedIds() const;

  /// Bytes used, split into topology / index / other.
  MemoryBreakdown Memory() const;
  std::size_t MemoryUsage() const { return Memory().Total(); }

  /// Modification stamp for external derived structures (the hot-vertex
  /// sampling cache). Every construction and every mutation — Insert,
  /// InsertUnchecked, Update, Remove, SampleWeightedDistinct (which
  /// temporarily zeroes weights) and move-assignment — stores a fresh
  /// value drawn from a process-wide monotonic clock, so a stamp observed
  /// here is never reused by any other tree or any later state of this
  /// tree. A cache entry tagged with version() is valid exactly while the
  /// tree still reports the same value; the update path pays one relaxed
  /// fetch_add.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  const SamtreeOpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  const SamtreeConfig& config() const { return config_; }

  /// Redirect *future* node allocations to `arena` (nullptr = heap).
  /// Existing nodes keep their origin — NodeDeleter routes each one back
  /// correctly — so this is safe on a live tree. TopologyStore calls it
  /// when InstallTree adopts an externally-built tree, so splits after
  /// adoption land in the shard arena.
  void SetArena(NodeArena* arena) { config_.arena = arena; }

  /// Verify every Definition-1 / ordering / aggregation invariant:
  /// node-capacity and fill bounds, uniform leaf depth, routing-ID order
  /// and child-range disjointness, per-child counts and CSTable sums
  /// against recomputed subtree aggregates, FSTable weight sanity, and
  /// CP-ID encoding round-trips (see FSTable/CSTable/CompressedIdList
  /// ::CheckConsistent). Returns true when consistent; otherwise fills
  /// *error. Used by the property-test suites, the PD2GL_ENABLE_INVARIANTS
  /// self-check hook and `pd2gl verify-store`.
  bool CheckInvariants(std::string* error) const;

  /// Deliberately damage the tree (invariant-checker negative tests only).
  /// Returns false when the tree is too small for the requested damage —
  /// the internal-node kinds need a multi-level tree.
  bool CorruptForTest(TestCorruption kind);

 private:
  struct InsertOutcome;
  struct RemoveOutcome;

  void InsertImpl(VertexId v, Weight w, bool check_existing);
  InsertOutcome InsertRec(Node* node, VertexId v, Weight w,
                          bool check_existing);
  /// Single-descent in-place update; returns the weight delta or nullopt
  /// when v is absent.
  std::optional<Weight> UpdateRec(Node* node, VertexId v, Weight w);
  RemoveOutcome RemoveRec(Node* node, VertexId v);

  NodePtr SplitLeaf(LeafNode* leaf, VertexId* sibling_min);
  NodePtr SplitInternal(InternalNode* node, VertexId* sibling_min);
  void MergeChildInto(InternalNode* parent, std::size_t child_idx);
  void RebuildParentAggregates(InternalNode* node);

  std::size_t MinFill() const;

  static std::uint64_t NextVersion();
  void BumpVersion() {
    version_.store(NextVersion(), std::memory_order_release);
  }

  /// Post-mutation self-check, compiled in by -DPD2GL_ENABLE_INVARIANTS=ON
  /// (a no-op otherwise): re-validates the whole tree after every mutation
  /// while it is small, sampled 1-in-64 above 512 entries so instrumented
  /// builds stay usable, and aborts with the violation on failure.
  void MaybeSelfCheck();

  SamtreeConfig config_;
  NodePtr root_;
  std::size_t count_ = 0;
  std::uint32_t self_check_tick_ = 0;  // sampling counter for MaybeSelfCheck
  SamtreeOpStats stats_;
  // sched::Atomic == std::atomic outside PD2GL_SCHEDCHECK builds.
  sched::Atomic<std::uint64_t> version_{0};  // assigned in the constructor
};

}  // namespace platod2gl
