// CP-IDs: dynamic shared-prefix compression of vertex IDs (paper Section
// VI-A).
//
// All IDs inside one samtree node tend to share high bytes (IDs are
// allocated with locality in production graphs), so a node stores
//
//   z | prefix | suf(v_0) | suf(v_1) | ... | suf(v_{n-1})
//
// where `prefix` is the z leading bytes common to every ID and suf(v) is
// the remaining (8 - z) bytes, big-endian. Following the paper, z is
// restricted to {0, 4, 6, 7} bytes so prefix selection is a couple of
// comparisons. When an inserted ID does not share the current prefix the
// list is re-encoded with the widest allowed prefix that still fits — a
// rare O(n) event (the paper's "Updates" rule in Appendix A).
//
// With compression disabled (the paper's "w/o CP" ablation) the list
// behaves identically but always encodes with z = 0, i.e. 8 bytes per ID.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace platod2gl {

class CompressedIdList {
 public:
  /// Prefix lengths (bytes) the encoder may choose from.
  static constexpr std::array<std::uint8_t, 4> kAllowedPrefixBytes = {7, 6, 4,
                                                                      0};

  explicit CompressedIdList(bool enable_compression = true)
      : enable_(enable_compression) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Current shared-prefix length in bytes (z).
  std::uint8_t prefix_bytes() const { return z_; }

  /// Decode the ID at position i — O(1).
  VertexId Get(std::size_t i) const;

  /// Append an ID at the end — amortised O(1); O(n) if the shared prefix
  /// must shrink.
  void Append(VertexId id);

  /// Insert an ID at `pos`, shifting later entries — O(n). Used by the
  /// *ordered* ID lists of internal samtree nodes.
  void Insert(std::size_t pos, VertexId id);

  /// Overwrite the ID at position i.
  void Set(std::size_t i, VertexId id);

  /// Remove position i by shifting later entries forward — O(n) (ordered
  /// lists).
  void RemoveAt(std::size_t i);

  /// Remove position i by swapping in the last entry — O(1) (unordered
  /// leaf lists; mirrors FSTable::RemoveSwapLast).
  void RemoveSwapLast(std::size_t i);

  /// Linear scan for an ID; returns its position or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t Find(VertexId id) const;

  /// Decode the whole list — O(n).
  std::vector<VertexId> Decode() const;

  void Clear();

  /// Heap bytes held by the encoded list (plus the fixed header the paper's
  /// string format carries: 1 byte of z + z bytes of prefix).
  std::size_t MemoryUsage() const {
    return bytes_.capacity() + 1 + z_;
  }

  /// Structural self-check for the samtree invariant sweep: z must be one
  /// of the paper's allowed widths (and 0 when compression is disabled),
  /// the encoded byte count must match count * (8 - z), the stored prefix
  /// must fit in z bytes, and every ID must survive a decode -> re-encode
  /// round-trip through a fresh list (exercising prefix selection and
  /// re-encoding against the stored representation). Returns true when
  /// consistent, otherwise fills *error.
  bool CheckConsistent(std::string* error) const;

 private:
  std::size_t SuffixWidth() const { return 8u - z_; }

  /// Number of leading bytes `id` shares with the current prefix
  /// (only meaningful when count_ > 0).
  std::uint8_t SharedBytesWith(VertexId id) const;

  /// Largest allowed prefix length <= `limit`.
  static std::uint8_t SnapToAllowed(std::uint8_t limit);

  /// Re-encode every suffix with a new (smaller) prefix length.
  void Reencode(std::uint8_t new_z);

  void WriteSuffix(std::size_t byte_pos, VertexId id);
  VertexId ReadSuffix(std::size_t byte_pos) const;

  bool enable_;
  std::uint8_t z_ = 0;       // shared prefix length in bytes
  std::uint64_t prefix_ = 0; // top z bytes of every ID (right-aligned)
  std::uint32_t count_ = 0;
  std::vector<std::uint8_t> bytes_;  // count_ * (8 - z_) big-endian suffixes
};

}  // namespace platod2gl
