// GraphSageModel: a two-layer GraphSAGE network with a linear classifier,
// consuming the layered subgraphs produced by SubgraphSampler.
//
// Layer structure for a 2-hop sample {seeds, hop1, hop2}:
//   H1(hop1)  = Sage1(X(hop1),  mean X(hop2)   grouped by parent)
//   H0(seeds) = Sage2(X(seeds), mean H1(hop1)  grouped by parent)
//   logits    = H0 Wc + bc
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gnn/layers.h"
#include "gnn/tensor.h"
#include "sampling/subgraph_sampler.h"

namespace platod2gl {

struct GraphSageConfig {
  std::size_t in_dim = 32;
  std::size_t hidden_dim = 32;
  std::size_t num_classes = 8;
};

class GraphSageModel {
 public:
  GraphSageModel(GraphSageConfig config, std::uint64_t seed = 1234);

  /// Features per subgraph layer: features[l] has one row per vertex of
  /// sg.layers[l], in order.
  struct Inputs {
    const SampledSubgraph* sg = nullptr;
    std::vector<Tensor> features;  // size == sg->layers.size() (must be 3)
  };

  /// Forward pass; returns logits for the seed layer. If `cache` is
  /// non-null, intermediate state for Backward is stored.
  struct Cache {
    SageLayer::Cache sage1, sage2;
    SegmentMeanResult agg2, agg1;  // hop2->hop1 and hop1->seed aggregations
    Tensor h1;                     // hop1 embeddings (post-activation)
    Tensor h0;                     // seed embeddings
  };
  Tensor Forward(const Inputs& in, Cache* cache) const;

  /// Full train step: forward, softmax-CE loss vs seed labels, backward,
  /// optimiser step (Adam). Returns loss and accuracy over labelled seeds.
  struct StepResult {
    double loss = 0.0;
    double accuracy = 0.0;
    std::size_t labelled = 0;
  };
  StepResult TrainStep(const Inputs& in,
                       const std::vector<std::int64_t>& seed_labels,
                       float lr);

  /// Loss/accuracy without parameter updates.
  StepResult Evaluate(const Inputs& in,
                      const std::vector<std::int64_t>& seed_labels) const;

  const GraphSageConfig& config() const { return config_; }
  SageLayer& sage1() { return sage1_; }
  SageLayer& sage2() { return sage2_; }
  Dense& classifier() { return classifier_; }
  const SageLayer& sage1() const { return sage1_; }
  const SageLayer& sage2() const { return sage2_; }
  const Dense& classifier() const { return classifier_; }

 private:
  GraphSageConfig config_;
  SageLayer sage1_;  // self: in_dim,  neigh: in_dim  -> hidden
  SageLayer sage2_;  // self: in_dim,  neigh: hidden  -> hidden
  Dense classifier_;  // hidden -> num_classes
};

}  // namespace platod2gl
