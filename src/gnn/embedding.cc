#include "gnn/embedding.h"

namespace platod2gl {

EmbeddingTable::EmbeddingTable(std::size_t dim, std::uint64_t seed)
    : dim_(dim), seed_(seed) {}

float* EmbeddingTable::Row(VertexId v) {
  RowData* row = rows_.GetOrCreate(v);
  if (row->values.empty()) {
    // Deterministic per-vertex init so training runs are reproducible
    // regardless of the order vertices are first touched in.
    Xoshiro256 rng(seed_ ^ (v * 0x9E3779B97F4A7C15ULL));
    row->values.resize(dim_);
    const float scale = 1.0f / static_cast<float>(dim_);
    for (float& x : row->values) {
      x = (static_cast<float>(rng.NextDouble()) - 0.5f) * scale;
    }
  }
  return row->values.data();
}

const float* EmbeddingTable::RowIfExists(VertexId v) const {
  const RowData* row = rows_.FindUnsafe(v);
  if (!row || row->values.empty()) return nullptr;
  return row->values.data();
}

float EmbeddingTable::Dot(VertexId a, VertexId b) {
  const float* ra = Row(a);
  const float* rb = Row(b);
  float s = 0.0f;
  for (std::size_t d = 0; d < dim_; ++d) s += ra[d] * rb[d];
  return s;
}

void EmbeddingTable::Accumulate(VertexId v, const float* grad, float lr) {
  float* row = Row(v);
  for (std::size_t d = 0; d < dim_; ++d) row[d] += lr * grad[d];
}

std::size_t EmbeddingTable::MemoryUsage() const {
  std::size_t bytes = rows_.MemoryUsage();
  rows_.ForEach([&](VertexId, const RowData& r) {
    bytes += sizeof(RowData) + r.values.capacity() * sizeof(float);
  });
  return bytes;
}

}  // namespace platod2gl
