// TwoTowerModel: embedding-based retrieval for recommendation — the
// paper's motivating workload (live-streaming recommendation in WeChat).
//
// Users and items each get an embedding row (lazily created, so new
// users/rooms appearing in the dynamic graph train seamlessly); training
// minimises the BPR pairwise loss: for a user u with observed item i and
// sampled negative j,  loss = -log sigmoid(u·i - u·j). Positives come
// straight from the dynamic topology (weighted edge sampling), negatives
// from a popularity^0.75 NegativeSampler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "gnn/embedding.h"
#include "sampling/negative_sampler.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct TwoTowerConfig {
  std::size_t dim = 32;
  float learning_rate = 0.05f;
  float l2 = 1e-4f;          ///< weight decay on touched rows
  int negatives = 1;         ///< BPR pairs per positive
  EdgeType edge_type = 0;    ///< the user->item relation
};

class TwoTowerModel {
 public:
  /// `item_range` restricts the negative-sampling population to the item
  /// namespace (items appear as sources of the mirrored relation in a
  /// bi-directed graph).
  TwoTowerModel(const GraphStore* graph, TwoTowerConfig config,
                VertexId item_range_lo = 0,
                VertexId item_range_hi = kInvalidVertex,
                std::uint64_t seed = 99);

  /// One epoch over the given users: for each user, draw one observed
  /// item (weighted) and `negatives` BPR negatives, take SGD steps.
  /// Returns the mean BPR loss.
  double TrainEpoch(const std::vector<VertexId>& users, Xoshiro256& rng);

  /// Preference score u·i.
  float Score(VertexId user, VertexId item) {
    return embeddings_.Dot(user, item);
  }

  /// Rank `candidates` for a user, best first.
  std::vector<VertexId> Recommend(VertexId user,
                                  std::vector<VertexId> candidates);

  /// AUC-style evaluation: fraction of (observed, random-negative) pairs
  /// the model orders correctly, over users' held-out edges.
  double PairwiseAccuracy(const std::vector<VertexId>& users,
                          std::size_t pairs_per_user, Xoshiro256& rng);

  /// Re-snapshot the negative-sampling population after topology changes.
  void RefreshNegatives() { negatives_.Refresh(); }

  EmbeddingTable& embeddings() { return embeddings_; }

 private:
  /// One BPR step on (user, pos, neg); returns the loss term.
  double BprStep(VertexId user, VertexId pos, VertexId neg);

  const GraphStore* graph_;
  TwoTowerConfig config_;
  EmbeddingTable embeddings_;
  NegativeSampler negatives_;
  std::vector<float> scratch_;
};

}  // namespace platod2gl
