#include "gnn/model.h"

#include <cassert>

namespace platod2gl {

GraphSageModel::GraphSageModel(GraphSageConfig config, std::uint64_t seed)
    : config_(config) {
  Xoshiro256 rng(seed);
  sage1_ = SageLayer(config_.in_dim, config_.in_dim, config_.hidden_dim, rng);
  sage2_ =
      SageLayer(config_.in_dim, config_.hidden_dim, config_.hidden_dim, rng);
  classifier_ = Dense(config_.hidden_dim, config_.num_classes, rng);
}

Tensor GraphSageModel::Forward(const Inputs& in, Cache* cache) const {
  assert(in.sg && in.sg->layers.size() == 3 && in.features.size() == 3);
  const SampledSubgraph& sg = *in.sg;

  // hop2 features -> mean per hop1 vertex.
  SegmentMeanResult agg2 =
      SegmentMean(in.features[2], sg.parents[1], sg.layers[1].size());

  // H1 = Sage1(X1, agg2).
  SageLayer::Cache c1;
  Tensor h1 = sage1_.Forward(in.features[1], agg2.mean, &c1);

  // hop1 embeddings -> mean per seed.
  SegmentMeanResult agg1 = SegmentMean(h1, sg.parents[0], sg.layers[0].size());

  // H0 = Sage2(X0, agg1).
  SageLayer::Cache c2;
  Tensor h0 = sage2_.Forward(in.features[0], agg1.mean, &c2);

  Tensor logits = classifier_.Forward(h0);
  if (cache) {
    cache->sage1 = std::move(c1);
    cache->sage2 = std::move(c2);
    cache->agg2 = std::move(agg2);
    cache->agg1 = std::move(agg1);
    cache->h1 = std::move(h1);
    cache->h0 = std::move(h0);
  }
  return logits;
}

GraphSageModel::StepResult GraphSageModel::TrainStep(
    const Inputs& in, const std::vector<std::int64_t>& seed_labels,
    float lr) {
  Cache cache;
  const Tensor logits = Forward(in, &cache);
  SoftmaxCEResult ce = SoftmaxCrossEntropy(logits, seed_labels);

  sage1_.ZeroGrad();
  sage2_.ZeroGrad();
  classifier_.ZeroGrad();

  // Backward: classifier -> sage2 -> segment-mean -> sage1.
  const Tensor grad_h0 = classifier_.Backward(cache.h0, ce.grad_logits);

  Tensor grad_x0, grad_agg1;
  sage2_.Backward(cache.sage2, grad_h0, &grad_x0, &grad_agg1);

  const Tensor grad_h1 =
      SegmentMeanGrad(grad_agg1, in.sg->parents[0], cache.agg1.counts,
                      in.sg->layers[1].size());

  Tensor grad_x1, grad_agg2;
  sage1_.Backward(cache.sage1, grad_h1, &grad_x1, &grad_agg2);
  // grad w.r.t. hop2 features is not needed (features are constants).

  sage1_.AdamStep(lr);
  sage2_.AdamStep(lr);
  classifier_.AdamStep(lr);

  StepResult r;
  r.loss = ce.loss;
  r.labelled = ce.labelled;
  r.accuracy = ce.labelled == 0 ? 0.0
                                : static_cast<double>(ce.correct) /
                                      static_cast<double>(ce.labelled);
  return r;
}

GraphSageModel::StepResult GraphSageModel::Evaluate(
    const Inputs& in, const std::vector<std::int64_t>& seed_labels) const {
  const Tensor logits = Forward(in, nullptr);
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(logits, seed_labels);
  StepResult r;
  r.loss = ce.loss;
  r.labelled = ce.labelled;
  r.accuracy = ce.labelled == 0 ? 0.0
                                : static_cast<double>(ce.correct) /
                                      static_cast<double>(ce.labelled);
  return r;
}

}  // namespace platod2gl
