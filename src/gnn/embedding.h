// EmbeddingTable: a dynamic per-vertex embedding store.
//
// Vertex embeddings are the other model-side artefact of graph learning
// (DeepWalk / node2vec / two-tower retrieval). Unlike a dense matrix, a
// dynamic graph needs create-on-first-touch rows — new vertices appear
// mid-training — so rows live in the same concurrent cuckoo map the
// topology uses and are initialised lazily.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "storage/cuckoo_map.h"

namespace platod2gl {

class EmbeddingTable {
 public:
  EmbeddingTable(std::size_t dim, std::uint64_t seed = 0x5EED);

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return rows_.Size(); }

  /// The row of v, created (uniform in [-0.5/dim, 0.5/dim], word2vec
  /// style) on first touch. The pointer is heap-pinned: stable until the
  /// table is destroyed. Thread-safe creation; concurrent *writes to the
  /// same row* are the caller's problem (hogwild-style training accepts
  /// them).
  float* Row(VertexId v);

  /// Read-only row or nullptr when the vertex has no embedding yet.
  const float* RowIfExists(VertexId v) const;

  /// Dot product of two rows (both created on demand).
  float Dot(VertexId a, VertexId b);

  /// SGD step: row(v) += lr * grad.
  void Accumulate(VertexId v, const float* grad, float lr);

  std::size_t MemoryUsage() const;

 private:
  struct RowData {
    std::vector<float> values;
  };

  std::size_t dim_;
  std::uint64_t seed_;
  CuckooMap<RowData> rows_;
};

}  // namespace platod2gl
