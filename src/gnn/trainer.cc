#include "gnn/trainer.h"

#include <limits>

namespace platod2gl {

Trainer::Trainer(const GraphStore* graph, GraphSageModel* model,
                 TrainerConfig config)
    : graph_(graph),
      model_(model),
      config_(config),
      subgraph_sampler_(graph),
      node_sampler_(&graph->topology(config.edge_type)) {}

void Trainer::Prepare(const std::vector<VertexId>& seeds, Xoshiro256& rng,
                      GraphSageModel::Inputs* in,
                      std::vector<std::int64_t>* labels) const {
  static thread_local SampledSubgraph sg;
  sg = subgraph_sampler_.Sample(
      seeds,
      {{.fanout = config_.fanout_hop1,
        .edge_type = config_.edge_type,
        .weighted = config_.weighted_sampling},
       {.fanout = config_.fanout_hop2,
        .edge_type = config_.edge_type,
        .weighted = config_.weighted_sampling}},
      rng);

  const std::size_t dim = model_->config().in_dim;
  in->sg = &sg;
  in->features.clear();
  std::vector<float> buf;
  for (const auto& layer : sg.layers) {
    graph_->attributes().GatherFeatures(layer, dim, &buf);
    Tensor t(layer.size(), dim);
    std::copy(buf.begin(), buf.end(), t.data());
    in->features.push_back(std::move(t));
  }

  labels->clear();
  labels->reserve(seeds.size());
  for (VertexId v : seeds) {
    labels->push_back(graph_->attributes().GetLabel(v).value_or(-1));
  }
}

GraphSageModel::StepResult Trainer::TrainStep(
    const std::vector<VertexId>& seeds, Xoshiro256& rng) {
  GraphSageModel::Inputs in;
  std::vector<std::int64_t> labels;
  Prepare(seeds, rng, &in, &labels);
  return model_->TrainStep(in, labels, config_.learning_rate);
}

GraphSageModel::StepResult Trainer::TrainStepSampled(Xoshiro256& rng) {
  return TrainStep(node_sampler_.SampleUniform(config_.batch_size, rng), rng);
}

std::vector<Trainer::EvalPoint> Trainer::Fit(
    const std::vector<VertexId>& eval_seeds, const FitOptions& options,
    Xoshiro256& rng) {
  std::vector<EvalPoint> history;
  double best_loss = std::numeric_limits<double>::infinity();
  int since_best = 0;

  // Honour the deprecated `epochs` alias when a caller still sets it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const int total_steps = options.epochs >= 0 ? options.epochs : options.steps;
#pragma GCC diagnostic pop

  for (int step = 1; step <= total_steps; ++step) {
    TrainStepSampled(rng);
    if (step % options.eval_every != 0 && step != total_steps) continue;

    const auto eval = Evaluate(eval_seeds, rng);
    history.push_back(EvalPoint{step, eval.loss, eval.accuracy});
    if (eval.loss < best_loss * (1.0 - options.min_delta) - 1e-12) {
      best_loss = eval.loss;
      since_best = 0;
    } else if (options.patience > 0 && ++since_best >= options.patience) {
      break;  // converged (or diverging): stop early
    }
  }
  return history;
}

GraphSageModel::StepResult Trainer::Evaluate(
    const std::vector<VertexId>& seeds, Xoshiro256& rng) const {
  GraphSageModel::Inputs in;
  std::vector<std::int64_t> labels;
  Prepare(seeds, rng, &in, &labels);
  return model_->Evaluate(in, labels);
}

}  // namespace platod2gl
