// GcnModel: a two-layer GCN node classifier over sampled subgraphs — the
// half-parameter alternative to GraphSageModel (one shared weight matrix
// per layer; the self vertex joins its own mean aggregation).
//
// Minibatch GCN needs layer-1 representations for the seeds AND the hop-1
// vertices (both feed layer 2), so the first GcnLayer is applied twice
// with shared weights; gradients from both applications accumulate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gnn/layers.h"
#include "gnn/model.h"
#include "gnn/tensor.h"
#include "sampling/subgraph_sampler.h"

namespace platod2gl {

class GcnModel {
 public:
  GcnModel(GraphSageConfig config, std::uint64_t seed = 1234);

  /// Same input contract as GraphSageModel: a 2-hop SampledSubgraph plus
  /// per-layer feature tensors.
  Tensor Forward(const GraphSageModel::Inputs& in) const;

  GraphSageModel::StepResult TrainStep(
      const GraphSageModel::Inputs& in,
      const std::vector<std::int64_t>& seed_labels, float lr);

  GraphSageModel::StepResult Evaluate(
      const GraphSageModel::Inputs& in,
      const std::vector<std::int64_t>& seed_labels) const;

  const GraphSageConfig& config() const { return config_; }

 private:
  struct Cache;
  Tensor ForwardImpl(const GraphSageModel::Inputs& in, Cache* cache) const;

  GraphSageConfig config_;
  GcnLayer gcn1_;     // in_dim -> hidden, applied to seeds and hop-1
  GcnLayer gcn2_;     // hidden -> hidden
  Dense classifier_;  // hidden -> num_classes
};

}  // namespace platod2gl
