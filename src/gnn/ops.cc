#include "gnn/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace platod2gl {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      float* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor MatMulATB(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      float* crow = c.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor MatMulABT(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      c(i, j) = dot;
    }
  }
  return c;
}

void AddBiasRows(Tensor* x, const std::vector<float>& bias) {
  assert(x->cols() == bias.size());
  for (std::size_t r = 0; r < x->rows(); ++r) {
    float* row = x->row(r);
    for (std::size_t c = 0; c < bias.size(); ++c) row[c] += bias[c];
  }
}

std::vector<float> ColumnSums(const Tensor& x) {
  std::vector<float> sums(x.cols(), 0.0f);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

Tensor Relu(const Tensor& x) {
  Tensor out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::max(0.0f, row[c]);
    }
  }
  return out;
}

Tensor ReluGrad(const Tensor& upstream, const Tensor& pre) {
  assert(upstream.rows() == pre.rows() && upstream.cols() == pre.cols());
  Tensor g = upstream;
  for (std::size_t r = 0; r < g.rows(); ++r) {
    float* grow = g.row(r);
    const float* prow = pre.row(r);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (prow[c] <= 0.0f) grow[c] = 0.0f;
    }
  }
  return g;
}

SegmentMeanResult SegmentMean(
    const Tensor& values, const std::vector<std::uint32_t>& segment_of_row,
    std::size_t num_segments) {
  assert(values.rows() == segment_of_row.size());
  SegmentMeanResult out;
  out.mean = Tensor(num_segments, values.cols());
  out.counts.assign(num_segments, 0);
  for (std::size_t r = 0; r < values.rows(); ++r) {
    const std::uint32_t s = segment_of_row[r];
    assert(s < num_segments);
    ++out.counts[s];
    float* mrow = out.mean.row(s);
    const float* vrow = values.row(r);
    for (std::size_t c = 0; c < values.cols(); ++c) mrow[c] += vrow[c];
  }
  for (std::size_t s = 0; s < num_segments; ++s) {
    if (out.counts[s] == 0) continue;
    const float inv = 1.0f / static_cast<float>(out.counts[s]);
    float* mrow = out.mean.row(s);
    for (std::size_t c = 0; c < values.cols(); ++c) mrow[c] *= inv;
  }
  return out;
}

Tensor SegmentMeanGrad(const Tensor& upstream,
                       const std::vector<std::uint32_t>& segment_of_row,
                       const std::vector<std::uint32_t>& counts,
                       std::size_t num_rows) {
  assert(num_rows == segment_of_row.size());
  Tensor g(num_rows, upstream.cols());
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint32_t s = segment_of_row[r];
    const float inv = 1.0f / static_cast<float>(counts[s]);
    const float* urow = upstream.row(s);
    float* grow = g.row(r);
    for (std::size_t c = 0; c < upstream.cols(); ++c) {
      grow[c] = urow[c] * inv;
    }
  }
  return g;
}

SoftmaxCEResult SoftmaxCrossEntropy(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  assert(logits.rows() == labels.size());
  SoftmaxCEResult out;
  out.grad_logits = Tensor(logits.rows(), logits.cols());

  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] < 0) continue;  // unlabeled row
    ++out.labelled;
    const float* row = logits.row(r);
    float* grow = out.grad_logits.row(r);

    float max = row[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > max) {
        max = row[c];
        argmax = c;
      }
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      denom += std::exp(static_cast<double>(row[c] - max));
    }
    const auto label = static_cast<std::size_t>(labels[r]);
    assert(label < logits.cols());
    const double logp =
        static_cast<double>(row[label] - max) - std::log(denom);
    out.loss -= logp;
    if (argmax == label) ++out.correct;

    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max)) / denom;
      grow[c] = static_cast<float>(p) - (c == label ? 1.0f : 0.0f);
    }
  }

  if (out.labelled > 0) {
    out.loss /= static_cast<double>(out.labelled);
    out.grad_logits *= 1.0f / static_cast<float>(out.labelled);
  }
  return out;
}

}  // namespace platod2gl
