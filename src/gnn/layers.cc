#include "gnn/layers.h"

#include <cassert>
#include <cmath>

namespace platod2gl {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Xoshiro256& rng)
    : w_(Tensor::Glorot(in_dim, out_dim, rng)),
      gw_(in_dim, out_dim),
      b_(out_dim, 0.0f),
      gb_(out_dim, 0.0f) {}

Tensor Dense::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, w_);
  AddBiasRows(&y, b_);
  return y;
}

Tensor Dense::Backward(const Tensor& x, const Tensor& grad_out) {
  gw_ += MatMulATB(x, grad_out);
  const std::vector<float> gb = ColumnSums(grad_out);
  for (std::size_t i = 0; i < gb_.size(); ++i) gb_[i] += gb[i];
  return MatMulABT(grad_out, w_);
}

void Dense::ZeroGrad() {
  gw_ *= 0.0f;
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void Dense::SgdStep(float lr) {
  for (std::size_t r = 0; r < w_.rows(); ++r) {
    for (std::size_t c = 0; c < w_.cols(); ++c) {
      w_(r, c) -= lr * gw_(r, c);
    }
  }
  for (std::size_t i = 0; i < b_.size(); ++i) b_[i] -= lr * gb_[i];
}

void Dense::AdamStep(float lr, float beta1, float beta2, float eps) {
  if (mw_.empty()) {
    mw_ = Tensor(w_.rows(), w_.cols());
    vw_ = Tensor(w_.rows(), w_.cols());
    mb_.assign(b_.size(), 0.0f);
    vb_.assign(b_.size(), 0.0f);
  }
  ++adam_t_;
  const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(adam_t_));
  const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(adam_t_));

  for (std::size_t r = 0; r < w_.rows(); ++r) {
    for (std::size_t c = 0; c < w_.cols(); ++c) {
      const float g = gw_(r, c);
      float& m = mw_(r, c);
      float& v = vw_(r, c);
      m = beta1 * m + (1 - beta1) * g;
      v = beta2 * v + (1 - beta2) * g * g;
      w_(r, c) -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
    }
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    const float g = gb_[i];
    mb_[i] = beta1 * mb_[i] + (1 - beta1) * g;
    vb_[i] = beta2 * vb_[i] + (1 - beta2) * g * g;
    b_[i] -= lr * (mb_[i] / bc1) / (std::sqrt(vb_[i] / bc2) + eps);
  }
}

SageLayer::SageLayer(std::size_t self_in_dim, std::size_t neigh_in_dim,
                     std::size_t out_dim, Xoshiro256& rng)
    : self_fc_(self_in_dim, out_dim, rng),
      neigh_fc_(neigh_in_dim, out_dim, rng) {}

Tensor SageLayer::Forward(const Tensor& x_self, const Tensor& neigh_mean,
                          Cache* cache) const {
  assert(x_self.rows() == neigh_mean.rows());
  Tensor pre = self_fc_.Forward(x_self);
  pre += neigh_fc_.Forward(neigh_mean);
  if (cache) {
    cache->x_self = x_self;
    cache->neigh_mean = neigh_mean;
    cache->pre = pre;
  }
  return Relu(pre);
}

void SageLayer::Backward(const Cache& cache, const Tensor& grad_out,
                         Tensor* grad_self, Tensor* grad_neigh_mean) {
  const Tensor grad_pre = ReluGrad(grad_out, cache.pre);
  *grad_self = self_fc_.Backward(cache.x_self, grad_pre);
  *grad_neigh_mean = neigh_fc_.Backward(cache.neigh_mean, grad_pre);
}

void SageLayer::ZeroGrad() {
  self_fc_.ZeroGrad();
  neigh_fc_.ZeroGrad();
}

void SageLayer::SgdStep(float lr) {
  self_fc_.SgdStep(lr);
  neigh_fc_.SgdStep(lr);
}

void SageLayer::AdamStep(float lr) {
  self_fc_.AdamStep(lr);
  neigh_fc_.AdamStep(lr);
}

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, Xoshiro256& rng)
    : fc_(in_dim, out_dim, rng) {}

Tensor GcnLayer::Forward(const Tensor& x_self, const Tensor& neigh_mean,
                         const std::vector<std::uint32_t>& neigh_counts,
                         Cache* cache) const {
  assert(x_self.rows() == neigh_mean.rows());
  assert(x_self.rows() == neigh_counts.size());
  Tensor combined(x_self.rows(), x_self.cols());
  for (std::size_t r = 0; r < x_self.rows(); ++r) {
    const float n = static_cast<float>(neigh_counts[r]);
    const float inv = 1.0f / (n + 1.0f);
    const float* self_row = x_self.row(r);
    const float* mean_row = neigh_mean.row(r);
    float* out_row = combined.row(r);
    for (std::size_t c = 0; c < x_self.cols(); ++c) {
      out_row[c] = (self_row[c] + n * mean_row[c]) * inv;
    }
  }
  Tensor pre = fc_.Forward(combined);
  if (cache) {
    cache->combined = combined;
    cache->pre = pre;
    cache->counts = neigh_counts;
  }
  return Relu(pre);
}

void GcnLayer::Backward(const Cache& cache, const Tensor& grad_out,
                        Tensor* grad_self, Tensor* grad_neigh_mean) {
  const Tensor grad_pre = ReluGrad(grad_out, cache.pre);
  const Tensor grad_combined = fc_.Backward(cache.combined, grad_pre);
  *grad_self = Tensor(grad_combined.rows(), grad_combined.cols());
  *grad_neigh_mean = Tensor(grad_combined.rows(), grad_combined.cols());
  for (std::size_t r = 0; r < grad_combined.rows(); ++r) {
    const float n = static_cast<float>(cache.counts[r]);
    const float inv = 1.0f / (n + 1.0f);
    const float* g = grad_combined.row(r);
    float* gs = grad_self->row(r);
    float* gm = grad_neigh_mean->row(r);
    for (std::size_t c = 0; c < grad_combined.cols(); ++c) {
      gs[c] = g[c] * inv;
      gm[c] = g[c] * n * inv;
    }
  }
}

}  // namespace platod2gl
