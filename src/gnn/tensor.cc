#include "gnn/tensor.h"

#include <cmath>

namespace platod2gl {

Tensor Tensor::Glorot(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Tensor t(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (float& v : t.data_) {
    v = static_cast<float>((rng.NextDouble() * 2.0 - 1.0) * limit);
  }
  return t;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

double Tensor::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

}  // namespace platod2gl
