#include "gnn/deepwalk.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace platod2gl {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

DeepWalkTrainer::DeepWalkTrainer(const GraphStore* graph,
                                 std::vector<VertexId> vocabulary,
                                 DeepWalkConfig config, std::uint64_t seed)
    : graph_(graph),
      vocabulary_(std::move(vocabulary)),
      config_(config),
      walker_(graph),
      embeddings_(config.dim, seed),
      neg_rng_(seed ^ 0xA5A5A5A5ULL),
      grad_scratch_(config.dim) {
  assert(!vocabulary_.empty());
}

double DeepWalkTrainer::PairStep(VertexId center, VertexId other,
                                 bool positive) {
  float* c = embeddings_.Row(center);
  float* o = embeddings_.Row(other);
  double dot = 0.0;
  for (std::size_t d = 0; d < config_.dim; ++d) dot += c[d] * o[d];
  const double prob = Sigmoid(dot);
  const double target = positive ? 1.0 : 0.0;
  const float g =
      static_cast<float>(target - prob) * config_.learning_rate;
  // d loss / d c = (target - p) * o  (and symmetrically for o); the
  // scratch keeps c's old value so the two updates don't feed each other.
  for (std::size_t d = 0; d < config_.dim; ++d) grad_scratch_[d] = c[d];
  for (std::size_t d = 0; d < config_.dim; ++d) c[d] += g * o[d];
  for (std::size_t d = 0; d < config_.dim; ++d) {
    o[d] += g * grad_scratch_[d];
  }
  return positive ? -std::log(std::max(1e-9, prob))
                  : -std::log(std::max(1e-9, 1.0 - prob));
}

double DeepWalkTrainer::TrainEpoch(const std::vector<VertexId>& seeds,
                                   Xoshiro256& rng) {
  const WalkBatch walks = walker_.Walk(
      seeds,
      {.walk_length = config_.walk_length,
       .edge_type = config_.edge_type,
       .p = config_.p,
       .q = config_.q},
      rng);

  double loss = 0.0;
  std::size_t terms = 0;
  for (const auto& walk : walks) {
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const std::size_t hi = std::min(walk.size(), i + config_.window);
      for (std::size_t j = i + 1; j < hi; ++j) {
        loss += PairStep(walk[i], walk[j], /*positive=*/true);
        ++terms;
        for (int n = 0; n < config_.negatives; ++n) {
          const VertexId neg =
              vocabulary_[neg_rng_.NextUint64(vocabulary_.size())];
          loss += PairStep(walk[i], neg, /*positive=*/false);
          ++terms;
        }
      }
    }
  }
  return terms == 0 ? 0.0 : loss / static_cast<double>(terms);
}

}  // namespace platod2gl
