// DeepWalkTrainer: skip-gram-with-negative-sampling representation
// learning over the dynamic graph's random walks (DeepWalk when
// p = q = 1, node2vec otherwise).
//
// This is the classic graph-embedding workload the weighted-sampling
// machinery serves: every walk transition is a weighted neighbour draw,
// and embeddings train directly against the live topology — vertices
// inserted mid-training get rows on first touch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "gnn/embedding.h"
#include "storage/graph_store.h"
#include "walk/random_walk.h"

namespace platod2gl {

struct DeepWalkConfig {
  std::size_t dim = 32;
  std::size_t walk_length = 12;
  std::size_t window = 3;      ///< skip-gram context radius (in walk steps)
  int negatives = 4;           ///< negative samples per positive pair
  float learning_rate = 0.05f;
  double p = 1.0;              ///< node2vec return parameter
  double q = 1.0;              ///< node2vec in-out parameter
  EdgeType edge_type = 0;
};

class DeepWalkTrainer {
 public:
  /// The graph is borrowed and must outlive the trainer. Negative samples
  /// are drawn uniformly from `vocabulary` (usually every vertex).
  DeepWalkTrainer(const GraphStore* graph, std::vector<VertexId> vocabulary,
                  DeepWalkConfig config, std::uint64_t seed = 11);

  /// One epoch: walk from each seed, then run skip-gram SGD over all
  /// (center, context) pairs inside the window. Returns the mean
  /// per-pair loss (positive + negatives averaged).
  double TrainEpoch(const std::vector<VertexId>& seeds, Xoshiro256& rng);

  /// Embedding similarity (dot product) of two vertices.
  float Similarity(VertexId a, VertexId b) { return embeddings_.Dot(a, b); }

  EmbeddingTable& embeddings() { return embeddings_; }
  const DeepWalkConfig& config() const { return config_; }

 private:
  /// One positive-or-negative SGD step; returns its loss contribution.
  double PairStep(VertexId center, VertexId other, bool positive);

  const GraphStore* graph_;
  std::vector<VertexId> vocabulary_;
  DeepWalkConfig config_;
  RandomWalker walker_;
  EmbeddingTable embeddings_;
  Xoshiro256 neg_rng_;
  std::vector<float> grad_scratch_;
};

}  // namespace platod2gl
