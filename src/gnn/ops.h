// Dense kernels and their gradients for the GNN layer (Eq. 1 of the
// paper: message f, aggregation ⊕ as segment-mean, combination g as a
// dense layer + ReLU).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gnn/tensor.h"

namespace platod2gl {

/// C = A * B.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B (used for weight gradients).
Tensor MatMulATB(const Tensor& a, const Tensor& b);
/// C = A * B^T (used for input gradients).
Tensor MatMulABT(const Tensor& a, const Tensor& b);

/// x[r] += bias, for every row r.
void AddBiasRows(Tensor* x, const std::vector<float>& bias);
/// Column sums — the bias gradient.
std::vector<float> ColumnSums(const Tensor& x);

Tensor Relu(const Tensor& x);
/// Gradient through ReLU: upstream masked by (pre > 0).
Tensor ReluGrad(const Tensor& upstream, const Tensor& pre);

/// Mean of `values` rows grouped by segment: out[s] = mean of rows r with
/// segment_of_row[r] == s. Segments with no rows yield zeros.
struct SegmentMeanResult {
  Tensor mean;                        // [num_segments, cols]
  std::vector<std::uint32_t> counts;  // rows per segment
};
SegmentMeanResult SegmentMean(const Tensor& values,
                              const std::vector<std::uint32_t>& segment_of_row,
                              std::size_t num_segments);

/// Backward of SegmentMean: grad_values[r] = upstream[seg(r)] / count.
Tensor SegmentMeanGrad(const Tensor& upstream,
                       const std::vector<std::uint32_t>& segment_of_row,
                       const std::vector<std::uint32_t>& counts,
                       std::size_t num_rows);

/// Softmax + cross-entropy against integer labels (label < 0 = unlabeled,
/// skipped). grad_logits is averaged over the labelled rows.
struct SoftmaxCEResult {
  double loss = 0.0;
  std::size_t correct = 0;
  std::size_t labelled = 0;
  Tensor grad_logits;
};
SoftmaxCEResult SoftmaxCrossEntropy(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels);

}  // namespace platod2gl
