#include "gnn/two_tower.h"

#include <algorithm>
#include <cmath>

namespace platod2gl {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

TwoTowerModel::TwoTowerModel(const GraphStore* graph, TwoTowerConfig config,
                             VertexId item_range_lo, VertexId item_range_hi,
                             std::uint64_t seed)
    : graph_(graph),
      config_(config),
      embeddings_(config.dim, seed),
      negatives_(&graph->topology(config.edge_type), 0.75, item_range_lo,
                 item_range_hi),
      scratch_(config.dim) {}

double TwoTowerModel::BprStep(VertexId user, VertexId pos, VertexId neg) {
  float* u = embeddings_.Row(user);
  float* i = embeddings_.Row(pos);
  float* j = embeddings_.Row(neg);

  double margin = 0.0;
  for (std::size_t d = 0; d < config_.dim; ++d) {
    margin += static_cast<double>(u[d]) * (i[d] - j[d]);
  }
  const double p = Sigmoid(margin);
  // dL/dmargin = -(1 - p); SGD with L2 on the touched rows.
  const float g = static_cast<float>(1.0 - p) * config_.learning_rate;
  const float decay = 1.0f - config_.learning_rate * config_.l2;
  for (std::size_t d = 0; d < config_.dim; ++d) scratch_[d] = u[d];
  for (std::size_t d = 0; d < config_.dim; ++d) {
    u[d] = u[d] * decay + g * (i[d] - j[d]);
    i[d] = i[d] * decay + g * scratch_[d];
    j[d] = j[d] * decay - g * scratch_[d];
  }
  return -std::log(std::max(1e-9, p));
}

double TwoTowerModel::TrainEpoch(const std::vector<VertexId>& users,
                                 Xoshiro256& rng) {
  double loss = 0.0;
  std::size_t terms = 0;
  std::vector<VertexId> pos;
  for (VertexId user : users) {
    pos.clear();
    if (!graph_->SampleNeighbors(user, 1, /*weighted=*/true, rng, &pos,
                                 config_.edge_type)) {
      continue;  // user without interactions (yet)
    }
    const auto negs = negatives_.Sample(
        static_cast<std::size_t>(config_.negatives), rng,
        [&](VertexId cand) {
          return graph_->HasEdge(user, cand, config_.edge_type);
        });
    for (VertexId neg : negs) {
      loss += BprStep(user, pos[0], neg);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : loss / static_cast<double>(terms);
}

std::vector<VertexId> TwoTowerModel::Recommend(
    VertexId user, std::vector<VertexId> candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](VertexId a, VertexId b) {
                     return Score(user, a) > Score(user, b);
                   });
  return candidates;
}

double TwoTowerModel::PairwiseAccuracy(const std::vector<VertexId>& users,
                                       std::size_t pairs_per_user,
                                       Xoshiro256& rng) {
  std::size_t correct = 0, total = 0;
  std::vector<VertexId> pos;
  for (VertexId user : users) {
    for (std::size_t k = 0; k < pairs_per_user; ++k) {
      pos.clear();
      if (!graph_->SampleNeighbors(user, 1, true, rng, &pos,
                                   config_.edge_type)) {
        break;
      }
      const auto negs =
          negatives_.Sample(1, rng, [&](VertexId cand) {
            return graph_->HasEdge(user, cand, config_.edge_type);
          });
      if (negs.empty()) continue;
      correct += (Score(user, pos[0]) > Score(user, negs[0]));
      ++total;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace platod2gl
