// Trainer: the end-to-end dynamic GNN training loop of Figure 1 —
// node-sample a minibatch, subgraph-sample its 2-hop neighbourhood from
// the (possibly concurrently updated) dynamic graph store, gather
// features, and run a GraphSAGE step.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gnn/model.h"
#include "sampling/node_sampler.h"
#include "sampling/subgraph_sampler.h"
#include "storage/graph_store.h"

namespace platod2gl {

struct TrainerConfig {
  std::size_t batch_size = 128;
  std::size_t fanout_hop1 = 10;
  std::size_t fanout_hop2 = 10;
  bool weighted_sampling = true;
  EdgeType edge_type = 0;
  float learning_rate = 0.01f;
};

class Trainer {
 public:
  /// The graph (topology + attributes) and model are borrowed and must
  /// outlive the trainer.
  Trainer(const GraphStore* graph, GraphSageModel* model,
          TrainerConfig config);

  /// One minibatch step on the given seeds; labels/features come from the
  /// graph's attribute store.
  GraphSageModel::StepResult TrainStep(const std::vector<VertexId>& seeds,
                                       Xoshiro256& rng);

  /// One step on a uniformly node-sampled minibatch.
  GraphSageModel::StepResult TrainStepSampled(Xoshiro256& rng);

  /// Full training loop: `steps` node-sampled minibatch steps,
  /// evaluating on `eval_seeds` every `eval_every` steps. Stops early
  /// when evaluation loss has not improved for `patience` evaluations
  /// (patience 0 disables early stopping). Returns the evaluation
  /// history in order.
  struct FitOptions {
    /// Total minibatch steps (one TrainStepSampled call each). This is
    /// NOT dataset epochs: with batch_size seeds per step, one pass over
    /// n training vertices takes roughly n / batch_size steps.
    int steps = 100;
    int eval_every = 10;
    int patience = 0;
    /// Relative loss improvement below which an evaluation does NOT
    /// count as progress (evaluations are stochastic; without a margin,
    /// noise keeps resetting the patience counter).
    double min_delta = 0.0;
    /// Deprecated alias for `steps` — the old name counted minibatch
    /// steps all along, never epochs. When set (>= 0) it overrides
    /// `steps` so `.epochs = N` designated initializers keep working.
    [[deprecated("FitOptions::epochs always counted minibatch steps; "
                 "use FitOptions::steps")]]
    int epochs = -1;
  };
  struct EvalPoint {
    int step = 0;
    double loss = 0.0;
    double accuracy = 0.0;
  };
  std::vector<EvalPoint> Fit(const std::vector<VertexId>& eval_seeds,
                             const FitOptions& options, Xoshiro256& rng);

  GraphSageModel::StepResult Evaluate(const std::vector<VertexId>& seeds,
                                      Xoshiro256& rng) const;

  /// Re-snapshot the node sampler after topology changes.
  void RefreshNodeSampler() { node_sampler_.Refresh(); }

 private:
  /// Build model inputs (subgraph + per-layer feature tensors + labels).
  void Prepare(const std::vector<VertexId>& seeds, Xoshiro256& rng,
               GraphSageModel::Inputs* in,
               std::vector<std::int64_t>* labels) const;

  const GraphStore* graph_;
  GraphSageModel* model_;
  TrainerConfig config_;
  SubgraphSampler subgraph_sampler_;
  NodeSampler node_sampler_;
};

}  // namespace platod2gl
