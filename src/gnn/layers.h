// Trainable layers: Dense (fully connected) and SageLayer (GraphSAGE
// convolution) with explicit forward caches and hand-derived backward
// passes, plus a small SGD/Adam optimiser state per parameter.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "gnn/ops.h"
#include "gnn/tensor.h"

namespace platod2gl {

/// Fully connected layer y = x W + b with gradient accumulation.
class Dense {
 public:
  Dense() = default;
  Dense(std::size_t in_dim, std::size_t out_dim, Xoshiro256& rng);

  Tensor Forward(const Tensor& x) const;

  /// Accumulates dW/db from (x, grad_out) and returns grad_x.
  Tensor Backward(const Tensor& x, const Tensor& grad_out);

  void ZeroGrad();
  /// Vanilla SGD step: p -= lr * dp.
  void SgdStep(float lr);
  /// Adam step (state is lazily allocated on first use).
  void AdamStep(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);

  std::size_t in_dim() const { return w_.rows(); }
  std::size_t out_dim() const { return w_.cols(); }
  Tensor& weights() { return w_; }
  const Tensor& weights() const { return w_; }
  std::vector<float>& bias() { return b_; }
  const std::vector<float>& bias() const { return b_; }
  const Tensor& weight_grad() const { return gw_; }
  const std::vector<float>& bias_grad() const { return gb_; }

 private:
  Tensor w_, gw_;
  std::vector<float> b_, gb_;
  // Adam moments.
  Tensor mw_, vw_;
  std::vector<float> mb_, vb_;
  std::size_t adam_t_ = 0;
};

/// GraphSAGE convolution (Eq. 1 with ⊕ = mean):
///   h = ReLU(x_self W_self + mean(x_neigh) W_neigh + b)
class SageLayer {
 public:
  SageLayer() = default;
  /// Self and neighbour inputs may have different widths (the seed layer
  /// combines raw features with hidden-dim neighbour embeddings).
  SageLayer(std::size_t self_in_dim, std::size_t neigh_in_dim,
            std::size_t out_dim, Xoshiro256& rng);

  /// Forward state needed by Backward.
  struct Cache {
    Tensor x_self;
    Tensor neigh_mean;
    Tensor pre;  // pre-activation
  };

  /// `neigh_mean` is the segment-mean of neighbour embeddings per self
  /// row (rows must align with x_self).
  Tensor Forward(const Tensor& x_self, const Tensor& neigh_mean,
                 Cache* cache) const;

  /// Returns gradients w.r.t. x_self and neigh_mean; accumulates
  /// parameter gradients.
  void Backward(const Cache& cache, const Tensor& grad_out,
                Tensor* grad_self, Tensor* grad_neigh_mean);

  void ZeroGrad();
  void SgdStep(float lr);
  void AdamStep(float lr);

  Dense& self_fc() { return self_fc_; }
  Dense& neigh_fc() { return neigh_fc_; }
  const Dense& self_fc() const { return self_fc_; }
  const Dense& neigh_fc() const { return neigh_fc_; }

 private:
  Dense self_fc_;
  Dense neigh_fc_;
};

/// GCN convolution (Kipf & Welling, adapted to sampled neighbourhoods):
///   h = ReLU( (x_self + n * neigh_mean) / (n + 1)  W + b )
/// i.e. the self vertex participates in its own mean aggregation with
/// one shared weight matrix — half the parameters of a SageLayer.
class GcnLayer {
 public:
  GcnLayer() = default;
  GcnLayer(std::size_t in_dim, std::size_t out_dim, Xoshiro256& rng);

  struct Cache {
    Tensor combined;  // pre-projection averaged features
    Tensor pre;       // pre-activation
    std::vector<std::uint32_t> counts;
  };

  /// `neigh_counts[r]` is the number of sampled neighbours behind
  /// neigh_mean row r (0 for dangling vertices, whose rows then pass
  /// through as pure self features).
  Tensor Forward(const Tensor& x_self, const Tensor& neigh_mean,
                 const std::vector<std::uint32_t>& neigh_counts,
                 Cache* cache) const;

  void Backward(const Cache& cache, const Tensor& grad_out,
                Tensor* grad_self, Tensor* grad_neigh_mean);

  void ZeroGrad() { fc_.ZeroGrad(); }
  void SgdStep(float lr) { fc_.SgdStep(lr); }
  void AdamStep(float lr) { fc_.AdamStep(lr); }

  Dense& fc() { return fc_; }

 private:
  Dense fc_;
};

}  // namespace platod2gl
