#include "gnn/gcn_model.h"

#include <cassert>

namespace platod2gl {

struct GcnModel::Cache {
  GcnLayer::Cache g1_seed, g1_hop1, g2;
  SegmentMeanResult agg_x1, agg_x2, agg_h1;
  Tensor h1_seed, h1_hop1, h0;
};

GcnModel::GcnModel(GraphSageConfig config, std::uint64_t seed)
    : config_(config) {
  Xoshiro256 rng(seed);
  gcn1_ = GcnLayer(config_.in_dim, config_.hidden_dim, rng);
  gcn2_ = GcnLayer(config_.hidden_dim, config_.hidden_dim, rng);
  classifier_ = Dense(config_.hidden_dim, config_.num_classes, rng);
}

Tensor GcnModel::ForwardImpl(const GraphSageModel::Inputs& in,
                             Cache* cache) const {
  assert(in.sg && in.sg->layers.size() == 3 && in.features.size() == 3);
  const SampledSubgraph& sg = *in.sg;

  // Layer 1 on the seeds: aggregate hop-1 raw features per seed.
  SegmentMeanResult agg_x1 =
      SegmentMean(in.features[1], sg.parents[0], sg.layers[0].size());
  GcnLayer::Cache c1_seed;
  Tensor h1_seed =
      gcn1_.Forward(in.features[0], agg_x1.mean, agg_x1.counts, &c1_seed);

  // Layer 1 on hop-1: aggregate hop-2 raw features per hop-1 vertex.
  SegmentMeanResult agg_x2 =
      SegmentMean(in.features[2], sg.parents[1], sg.layers[1].size());
  GcnLayer::Cache c1_hop1;
  Tensor h1_hop1 =
      gcn1_.Forward(in.features[1], agg_x2.mean, agg_x2.counts, &c1_hop1);

  // Layer 2 on the seeds: aggregate hop-1 hidden states per seed.
  SegmentMeanResult agg_h1 =
      SegmentMean(h1_hop1, sg.parents[0], sg.layers[0].size());
  GcnLayer::Cache c2;
  Tensor h0 = gcn2_.Forward(h1_seed, agg_h1.mean, agg_h1.counts, &c2);

  Tensor logits = classifier_.Forward(h0);
  if (cache) {
    cache->g1_seed = std::move(c1_seed);
    cache->g1_hop1 = std::move(c1_hop1);
    cache->g2 = std::move(c2);
    cache->agg_x1 = std::move(agg_x1);
    cache->agg_x2 = std::move(agg_x2);
    cache->agg_h1 = std::move(agg_h1);
    cache->h1_seed = std::move(h1_seed);
    cache->h1_hop1 = std::move(h1_hop1);
    cache->h0 = std::move(h0);
  }
  return logits;
}

Tensor GcnModel::Forward(const GraphSageModel::Inputs& in) const {
  return ForwardImpl(in, nullptr);
}

GraphSageModel::StepResult GcnModel::TrainStep(
    const GraphSageModel::Inputs& in,
    const std::vector<std::int64_t>& seed_labels, float lr) {
  Cache cache;
  const Tensor logits = ForwardImpl(in, &cache);
  SoftmaxCEResult ce = SoftmaxCrossEntropy(logits, seed_labels);

  gcn1_.ZeroGrad();
  gcn2_.ZeroGrad();
  classifier_.ZeroGrad();

  const Tensor grad_h0 = classifier_.Backward(cache.h0, ce.grad_logits);

  Tensor grad_h1_seed, grad_agg_h1;
  gcn2_.Backward(cache.g2, grad_h0, &grad_h1_seed, &grad_agg_h1);

  const Tensor grad_h1_hop1 =
      SegmentMeanGrad(grad_agg_h1, in.sg->parents[0], cache.agg_h1.counts,
                      in.sg->layers[1].size());

  // Shared layer-1 weights: both applications accumulate into gcn1_.
  Tensor sink_self, sink_neigh;
  gcn1_.Backward(cache.g1_seed, grad_h1_seed, &sink_self, &sink_neigh);
  gcn1_.Backward(cache.g1_hop1, grad_h1_hop1, &sink_self, &sink_neigh);

  gcn1_.AdamStep(lr);
  gcn2_.AdamStep(lr);
  classifier_.AdamStep(lr);

  GraphSageModel::StepResult r;
  r.loss = ce.loss;
  r.labelled = ce.labelled;
  r.accuracy = ce.labelled == 0 ? 0.0
                                : static_cast<double>(ce.correct) /
                                      static_cast<double>(ce.labelled);
  return r;
}

GraphSageModel::StepResult GcnModel::Evaluate(
    const GraphSageModel::Inputs& in,
    const std::vector<std::int64_t>& seed_labels) const {
  const SoftmaxCEResult ce =
      SoftmaxCrossEntropy(Forward(in), seed_labels);
  GraphSageModel::StepResult r;
  r.loss = ce.loss;
  r.labelled = ce.labelled;
  r.accuracy = ce.labelled == 0 ? 0.0
                                : static_cast<double>(ce.correct) /
                                      static_cast<double>(ce.labelled);
  return r;
}

}  // namespace platod2gl
