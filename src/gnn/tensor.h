// Tensor: a minimal dense row-major float matrix.
//
// The paper's top layer is a set of TensorFlow operators; this repo
// substitutes a small native tensor (see DESIGN.md) that is just enough
// to run GraphSAGE-style training end-to-end on top of the samplers —
// which is the code path the storage layer exists to feed.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/random.h"

namespace platod2gl {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Glorot/Xavier-uniform initialisation for weight matrices.
  static Tensor Glorot(std::size_t rows, std::size_t cols, Xoshiro256& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// this += other (elementwise; shapes must match).
  Tensor& operator+=(const Tensor& other);
  /// this *= scalar.
  Tensor& operator*=(float s);

  /// Frobenius norm — handy for gradient tests.
  double Norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace platod2gl
