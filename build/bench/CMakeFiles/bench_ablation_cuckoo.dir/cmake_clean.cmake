file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cuckoo.dir/bench_ablation_cuckoo.cc.o"
  "CMakeFiles/bench_ablation_cuckoo.dir/bench_ablation_cuckoo.cc.o.d"
  "bench_ablation_cuckoo"
  "bench_ablation_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
