# Empty compiler generated dependencies file for bench_ablation_cuckoo.
# This may be replaced when dependencies are built.
