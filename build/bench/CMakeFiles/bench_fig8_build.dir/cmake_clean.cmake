file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_build.dir/bench_fig8_build.cc.o"
  "CMakeFiles/bench_fig8_build.dir/bench_fig8_build.cc.o.d"
  "bench_fig8_build"
  "bench_fig8_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
