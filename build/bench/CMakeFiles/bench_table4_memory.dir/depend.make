# Empty dependencies file for bench_table4_memory.
# This may be replaced when dependencies are built.
