file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_walks.dir/bench_ext_walks.cc.o"
  "CMakeFiles/bench_ext_walks.dir/bench_ext_walks.cc.o.d"
  "bench_ext_walks"
  "bench_ext_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
