# Empty dependencies file for bench_ext_walks.
# This may be replaced when dependencies are built.
