file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_opdist.dir/bench_table5_opdist.cc.o"
  "CMakeFiles/bench_table5_opdist.dir/bench_table5_opdist.cc.o.d"
  "bench_table5_opdist"
  "bench_table5_opdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_opdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
