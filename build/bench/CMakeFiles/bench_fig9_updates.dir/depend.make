# Empty dependencies file for bench_fig9_updates.
# This may be replaced when dependencies are built.
