file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_queries.dir/bench_ext_queries.cc.o"
  "CMakeFiles/bench_ext_queries.dir/bench_ext_queries.cc.o.d"
  "bench_ext_queries"
  "bench_ext_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
