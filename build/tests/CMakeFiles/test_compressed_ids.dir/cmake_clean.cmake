file(REMOVE_RECURSE
  "CMakeFiles/test_compressed_ids.dir/test_compressed_ids.cc.o"
  "CMakeFiles/test_compressed_ids.dir/test_compressed_ids.cc.o.d"
  "test_compressed_ids"
  "test_compressed_ids.pdb"
  "test_compressed_ids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
