# Empty compiler generated dependencies file for test_compressed_ids.
# This may be replaced when dependencies are built.
