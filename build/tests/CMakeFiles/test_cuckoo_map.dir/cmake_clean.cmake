file(REMOVE_RECURSE
  "CMakeFiles/test_cuckoo_map.dir/test_cuckoo_map.cc.o"
  "CMakeFiles/test_cuckoo_map.dir/test_cuckoo_map.cc.o.d"
  "test_cuckoo_map"
  "test_cuckoo_map.pdb"
  "test_cuckoo_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuckoo_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
