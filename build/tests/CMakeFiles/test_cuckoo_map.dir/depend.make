# Empty dependencies file for test_cuckoo_map.
# This may be replaced when dependencies are built.
