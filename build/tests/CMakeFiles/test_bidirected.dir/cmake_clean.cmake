file(REMOVE_RECURSE
  "CMakeFiles/test_bidirected.dir/test_bidirected.cc.o"
  "CMakeFiles/test_bidirected.dir/test_bidirected.cc.o.d"
  "test_bidirected"
  "test_bidirected.pdb"
  "test_bidirected[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bidirected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
