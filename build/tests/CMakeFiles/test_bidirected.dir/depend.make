# Empty dependencies file for test_bidirected.
# This may be replaced when dependencies are built.
