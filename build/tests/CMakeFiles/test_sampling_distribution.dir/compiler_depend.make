# Empty compiler generated dependencies file for test_sampling_distribution.
# This may be replaced when dependencies are built.
