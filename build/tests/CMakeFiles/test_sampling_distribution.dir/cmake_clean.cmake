file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_distribution.dir/test_sampling_distribution.cc.o"
  "CMakeFiles/test_sampling_distribution.dir/test_sampling_distribution.cc.o.d"
  "test_sampling_distribution"
  "test_sampling_distribution.pdb"
  "test_sampling_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
