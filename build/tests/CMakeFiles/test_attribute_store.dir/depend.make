# Empty dependencies file for test_attribute_store.
# This may be replaced when dependencies are built.
