file(REMOVE_RECURSE
  "CMakeFiles/test_attribute_store.dir/test_attribute_store.cc.o"
  "CMakeFiles/test_attribute_store.dir/test_attribute_store.cc.o.d"
  "test_attribute_store"
  "test_attribute_store.pdb"
  "test_attribute_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribute_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
