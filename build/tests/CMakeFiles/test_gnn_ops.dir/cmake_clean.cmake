file(REMOVE_RECURSE
  "CMakeFiles/test_gnn_ops.dir/test_gnn_ops.cc.o"
  "CMakeFiles/test_gnn_ops.dir/test_gnn_ops.cc.o.d"
  "test_gnn_ops"
  "test_gnn_ops.pdb"
  "test_gnn_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
