# Empty dependencies file for test_samtree_property.
# This may be replaced when dependencies are built.
