file(REMOVE_RECURSE
  "CMakeFiles/test_samtree_property.dir/test_samtree_property.cc.o"
  "CMakeFiles/test_samtree_property.dir/test_samtree_property.cc.o.d"
  "test_samtree_property"
  "test_samtree_property.pdb"
  "test_samtree_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_samtree_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
