file(REMOVE_RECURSE
  "CMakeFiles/test_graph_store.dir/test_graph_store.cc.o"
  "CMakeFiles/test_graph_store.dir/test_graph_store.cc.o.d"
  "test_graph_store"
  "test_graph_store.pdb"
  "test_graph_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
