# Empty dependencies file for test_graph_store.
# This may be replaced when dependencies are built.
