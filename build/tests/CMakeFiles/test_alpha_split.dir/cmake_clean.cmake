file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_split.dir/test_alpha_split.cc.o"
  "CMakeFiles/test_alpha_split.dir/test_alpha_split.cc.o.d"
  "test_alpha_split"
  "test_alpha_split.pdb"
  "test_alpha_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
