file(REMOVE_RECURSE
  "CMakeFiles/test_gnn_model.dir/test_gnn_model.cc.o"
  "CMakeFiles/test_gnn_model.dir/test_gnn_model.cc.o.d"
  "test_gnn_model"
  "test_gnn_model.pdb"
  "test_gnn_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
