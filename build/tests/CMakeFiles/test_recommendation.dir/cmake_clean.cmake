file(REMOVE_RECURSE
  "CMakeFiles/test_recommendation.dir/test_recommendation.cc.o"
  "CMakeFiles/test_recommendation.dir/test_recommendation.cc.o.d"
  "test_recommendation"
  "test_recommendation.pdb"
  "test_recommendation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
