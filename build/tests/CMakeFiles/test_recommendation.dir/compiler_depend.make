# Empty compiler generated dependencies file for test_recommendation.
# This may be replaced when dependencies are built.
