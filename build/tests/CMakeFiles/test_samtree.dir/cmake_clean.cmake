file(REMOVE_RECURSE
  "CMakeFiles/test_samtree.dir/test_samtree.cc.o"
  "CMakeFiles/test_samtree.dir/test_samtree.cc.o.d"
  "test_samtree"
  "test_samtree.pdb"
  "test_samtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_samtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
