# Empty compiler generated dependencies file for test_samtree.
# This may be replaced when dependencies are built.
