# Empty dependencies file for test_cstable.
# This may be replaced when dependencies are built.
