file(REMOVE_RECURSE
  "CMakeFiles/test_cstable.dir/test_cstable.cc.o"
  "CMakeFiles/test_cstable.dir/test_cstable.cc.o.d"
  "test_cstable"
  "test_cstable.pdb"
  "test_cstable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cstable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
