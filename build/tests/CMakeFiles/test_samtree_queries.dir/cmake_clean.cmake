file(REMOVE_RECURSE
  "CMakeFiles/test_samtree_queries.dir/test_samtree_queries.cc.o"
  "CMakeFiles/test_samtree_queries.dir/test_samtree_queries.cc.o.d"
  "test_samtree_queries"
  "test_samtree_queries.pdb"
  "test_samtree_queries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_samtree_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
