# Empty compiler generated dependencies file for test_samtree_queries.
# This may be replaced when dependencies are built.
