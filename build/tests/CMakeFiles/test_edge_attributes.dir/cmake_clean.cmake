file(REMOVE_RECURSE
  "CMakeFiles/test_edge_attributes.dir/test_edge_attributes.cc.o"
  "CMakeFiles/test_edge_attributes.dir/test_edge_attributes.cc.o.d"
  "test_edge_attributes"
  "test_edge_attributes.pdb"
  "test_edge_attributes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
