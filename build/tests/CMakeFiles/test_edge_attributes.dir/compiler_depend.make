# Empty compiler generated dependencies file for test_edge_attributes.
# This may be replaced when dependencies are built.
