file(REMOVE_RECURSE
  "CMakeFiles/test_lru_remote.dir/test_lru_remote.cc.o"
  "CMakeFiles/test_lru_remote.dir/test_lru_remote.cc.o.d"
  "test_lru_remote"
  "test_lru_remote.pdb"
  "test_lru_remote[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lru_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
