# Empty dependencies file for test_lru_remote.
# This may be replaced when dependencies are built.
