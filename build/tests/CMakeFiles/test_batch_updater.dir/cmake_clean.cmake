file(REMOVE_RECURSE
  "CMakeFiles/test_batch_updater.dir/test_batch_updater.cc.o"
  "CMakeFiles/test_batch_updater.dir/test_batch_updater.cc.o.d"
  "test_batch_updater"
  "test_batch_updater.pdb"
  "test_batch_updater[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_updater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
