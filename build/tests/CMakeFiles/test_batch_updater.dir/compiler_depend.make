# Empty compiler generated dependencies file for test_batch_updater.
# This may be replaced when dependencies are built.
