file(REMOVE_RECURSE
  "CMakeFiles/test_fstable.dir/test_fstable.cc.o"
  "CMakeFiles/test_fstable.dir/test_fstable.cc.o.d"
  "test_fstable"
  "test_fstable.pdb"
  "test_fstable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fstable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
