# Empty dependencies file for test_fstable.
# This may be replaced when dependencies are built.
