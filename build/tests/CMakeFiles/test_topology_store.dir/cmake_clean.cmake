file(REMOVE_RECURSE
  "CMakeFiles/test_topology_store.dir/test_topology_store.cc.o"
  "CMakeFiles/test_topology_store.dir/test_topology_store.cc.o.d"
  "test_topology_store"
  "test_topology_store.pdb"
  "test_topology_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
