# Empty dependencies file for test_topology_store.
# This may be replaced when dependencies are built.
