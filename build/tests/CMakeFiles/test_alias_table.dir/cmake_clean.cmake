file(REMOVE_RECURSE
  "CMakeFiles/test_alias_table.dir/test_alias_table.cc.o"
  "CMakeFiles/test_alias_table.dir/test_alias_table.cc.o.d"
  "test_alias_table"
  "test_alias_table.pdb"
  "test_alias_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alias_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
