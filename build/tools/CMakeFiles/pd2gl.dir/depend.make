# Empty dependencies file for pd2gl.
# This may be replaced when dependencies are built.
