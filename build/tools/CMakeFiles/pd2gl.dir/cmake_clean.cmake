file(REMOVE_RECURSE
  "CMakeFiles/pd2gl.dir/pd2gl_cli.cc.o"
  "CMakeFiles/pd2gl.dir/pd2gl_cli.cc.o.d"
  "pd2gl"
  "pd2gl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd2gl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
