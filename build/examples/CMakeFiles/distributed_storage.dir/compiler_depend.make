# Empty compiler generated dependencies file for distributed_storage.
# This may be replaced when dependencies are built.
