file(REMOVE_RECURSE
  "CMakeFiles/distributed_storage.dir/distributed_storage.cc.o"
  "CMakeFiles/distributed_storage.dir/distributed_storage.cc.o.d"
  "distributed_storage"
  "distributed_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
