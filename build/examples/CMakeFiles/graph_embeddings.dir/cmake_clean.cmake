file(REMOVE_RECURSE
  "CMakeFiles/graph_embeddings.dir/graph_embeddings.cc.o"
  "CMakeFiles/graph_embeddings.dir/graph_embeddings.cc.o.d"
  "graph_embeddings"
  "graph_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
