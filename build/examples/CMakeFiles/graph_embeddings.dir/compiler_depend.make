# Empty compiler generated dependencies file for graph_embeddings.
# This may be replaced when dependencies are built.
