file(REMOVE_RECURSE
  "CMakeFiles/dynamic_recommendation.dir/dynamic_recommendation.cc.o"
  "CMakeFiles/dynamic_recommendation.dir/dynamic_recommendation.cc.o.d"
  "dynamic_recommendation"
  "dynamic_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
