# Empty dependencies file for dynamic_recommendation.
# This may be replaced when dependencies are built.
