file(REMOVE_RECURSE
  "CMakeFiles/temporal_snapshots.dir/temporal_snapshots.cc.o"
  "CMakeFiles/temporal_snapshots.dir/temporal_snapshots.cc.o.d"
  "temporal_snapshots"
  "temporal_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
