# Empty compiler generated dependencies file for temporal_snapshots.
# This may be replaced when dependencies are built.
