file(REMOVE_RECURSE
  "libplatod2gl.a"
)
