# Empty compiler generated dependencies file for platod2gl.
# This may be replaced when dependencies are built.
