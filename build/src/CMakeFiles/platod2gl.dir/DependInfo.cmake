
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/graph_metrics.cc" "src/CMakeFiles/platod2gl.dir/analytics/graph_metrics.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/analytics/graph_metrics.cc.o.d"
  "/root/repo/src/baselines/aligraph_store.cc" "src/CMakeFiles/platod2gl.dir/baselines/aligraph_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/baselines/aligraph_store.cc.o.d"
  "/root/repo/src/baselines/platogl_store.cc" "src/CMakeFiles/platod2gl.dir/baselines/platogl_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/baselines/platogl_store.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/platod2gl.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/memory.cc" "src/CMakeFiles/platod2gl.dir/common/memory.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/common/memory.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/platod2gl.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/concurrency/batch_updater.cc" "src/CMakeFiles/platod2gl.dir/concurrency/batch_updater.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/concurrency/batch_updater.cc.o.d"
  "/root/repo/src/core/alpha_split.cc" "src/CMakeFiles/platod2gl.dir/core/alpha_split.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/core/alpha_split.cc.o.d"
  "/root/repo/src/core/compressed_ids.cc" "src/CMakeFiles/platod2gl.dir/core/compressed_ids.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/core/compressed_ids.cc.o.d"
  "/root/repo/src/core/samtree.cc" "src/CMakeFiles/platod2gl.dir/core/samtree.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/core/samtree.cc.o.d"
  "/root/repo/src/dist/cluster.cc" "src/CMakeFiles/platod2gl.dir/dist/cluster.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/dist/cluster.cc.o.d"
  "/root/repo/src/dist/partitioner.cc" "src/CMakeFiles/platod2gl.dir/dist/partitioner.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/dist/partitioner.cc.o.d"
  "/root/repo/src/dist/remote_sampler.cc" "src/CMakeFiles/platod2gl.dir/dist/remote_sampler.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/dist/remote_sampler.cc.o.d"
  "/root/repo/src/dist/shard.cc" "src/CMakeFiles/platod2gl.dir/dist/shard.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/dist/shard.cc.o.d"
  "/root/repo/src/dist/wire.cc" "src/CMakeFiles/platod2gl.dir/dist/wire.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/dist/wire.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/platod2gl.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/generators.cc" "src/CMakeFiles/platod2gl.dir/gen/generators.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gen/generators.cc.o.d"
  "/root/repo/src/gnn/deepwalk.cc" "src/CMakeFiles/platod2gl.dir/gnn/deepwalk.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/deepwalk.cc.o.d"
  "/root/repo/src/gnn/embedding.cc" "src/CMakeFiles/platod2gl.dir/gnn/embedding.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/embedding.cc.o.d"
  "/root/repo/src/gnn/gcn_model.cc" "src/CMakeFiles/platod2gl.dir/gnn/gcn_model.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/gcn_model.cc.o.d"
  "/root/repo/src/gnn/layers.cc" "src/CMakeFiles/platod2gl.dir/gnn/layers.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/layers.cc.o.d"
  "/root/repo/src/gnn/model.cc" "src/CMakeFiles/platod2gl.dir/gnn/model.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/model.cc.o.d"
  "/root/repo/src/gnn/ops.cc" "src/CMakeFiles/platod2gl.dir/gnn/ops.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/ops.cc.o.d"
  "/root/repo/src/gnn/tensor.cc" "src/CMakeFiles/platod2gl.dir/gnn/tensor.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/tensor.cc.o.d"
  "/root/repo/src/gnn/trainer.cc" "src/CMakeFiles/platod2gl.dir/gnn/trainer.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/trainer.cc.o.d"
  "/root/repo/src/gnn/two_tower.cc" "src/CMakeFiles/platod2gl.dir/gnn/two_tower.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/gnn/two_tower.cc.o.d"
  "/root/repo/src/index/alias_table.cc" "src/CMakeFiles/platod2gl.dir/index/alias_table.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/index/alias_table.cc.o.d"
  "/root/repo/src/index/cstable.cc" "src/CMakeFiles/platod2gl.dir/index/cstable.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/index/cstable.cc.o.d"
  "/root/repo/src/index/fstable.cc" "src/CMakeFiles/platod2gl.dir/index/fstable.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/index/fstable.cc.o.d"
  "/root/repo/src/io/checkpoint.cc" "src/CMakeFiles/platod2gl.dir/io/checkpoint.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/io/checkpoint.cc.o.d"
  "/root/repo/src/io/edge_list_reader.cc" "src/CMakeFiles/platod2gl.dir/io/edge_list_reader.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/io/edge_list_reader.cc.o.d"
  "/root/repo/src/sampling/negative_sampler.cc" "src/CMakeFiles/platod2gl.dir/sampling/negative_sampler.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/sampling/negative_sampler.cc.o.d"
  "/root/repo/src/sampling/neighbor_sampler.cc" "src/CMakeFiles/platod2gl.dir/sampling/neighbor_sampler.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/sampling/neighbor_sampler.cc.o.d"
  "/root/repo/src/sampling/node_sampler.cc" "src/CMakeFiles/platod2gl.dir/sampling/node_sampler.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/sampling/node_sampler.cc.o.d"
  "/root/repo/src/sampling/subgraph_sampler.cc" "src/CMakeFiles/platod2gl.dir/sampling/subgraph_sampler.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/sampling/subgraph_sampler.cc.o.d"
  "/root/repo/src/storage/attribute_store.cc" "src/CMakeFiles/platod2gl.dir/storage/attribute_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/attribute_store.cc.o.d"
  "/root/repo/src/storage/bidirected_store.cc" "src/CMakeFiles/platod2gl.dir/storage/bidirected_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/bidirected_store.cc.o.d"
  "/root/repo/src/storage/cuckoo_map.cc" "src/CMakeFiles/platod2gl.dir/storage/cuckoo_map.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/cuckoo_map.cc.o.d"
  "/root/repo/src/storage/edge_attributes.cc" "src/CMakeFiles/platod2gl.dir/storage/edge_attributes.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/edge_attributes.cc.o.d"
  "/root/repo/src/storage/graph_store.cc" "src/CMakeFiles/platod2gl.dir/storage/graph_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/graph_store.cc.o.d"
  "/root/repo/src/storage/topology_store.cc" "src/CMakeFiles/platod2gl.dir/storage/topology_store.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/storage/topology_store.cc.o.d"
  "/root/repo/src/temporal/edge_log.cc" "src/CMakeFiles/platod2gl.dir/temporal/edge_log.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/temporal/edge_log.cc.o.d"
  "/root/repo/src/walk/random_walk.cc" "src/CMakeFiles/platod2gl.dir/walk/random_walk.cc.o" "gcc" "src/CMakeFiles/platod2gl.dir/walk/random_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
