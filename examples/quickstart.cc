// Quickstart: the 5-minute tour of the PlatoD2GL public API.
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/examples/quickstart
//
// Covers: building a dynamic graph, weighted/uniform neighbour sampling,
// in-place updates and deletions, and memory introspection.
#include <cstdio>

#include "platod2gl.h"

using namespace platod2gl;

int main() {
  std::printf("PlatoD2GL quickstart\n====================\n\n");

  // 1. A GraphStore holds the dynamic topology (one samtree per source
  //    vertex) plus vertex attributes. Everything is mutable at any time.
  GraphStore graph;
  graph.AddEdge({.src = 1, .dst = 2, .weight = 0.1});
  graph.AddEdge({.src = 1, .dst = 3, .weight = 0.4});
  graph.AddEdge({.src = 1, .dst = 5, .weight = 0.2});
  graph.AddEdge({.src = 3, .dst = 4, .weight = 0.6});
  graph.AddEdge({.src = 3, .dst = 7, .weight = 0.7});
  std::printf("built the paper's Example-1 graph: %zu edges, degree(1) = %zu\n",
              graph.NumEdges(), graph.Degree(1));

  // 2. Weighted neighbour sampling (ITS over internal CSTables + FTS in
  //    the leaves). Vertex 3 (weight 0.4) is sampled ~4x as often as
  //    vertex 2 (weight 0.1).
  Xoshiro256 rng(42);
  std::vector<VertexId> out;
  graph.SampleNeighbors(1, 10000, /*weighted=*/true, rng, &out);
  int hits3 = 0;
  for (VertexId v : out) hits3 += (v == 3);
  std::printf("weighted sampling: vertex 3 drawn %.1f%% of the time "
              "(expect ~57%%)\n",
              100.0 * hits3 / out.size());

  // 3. Dynamic updates are cheap: O(log n) FSTable maintenance.
  graph.topology().UpdateEdge(1, 2, 5.0);  // in-place weight change
  graph.topology().RemoveEdge(1, 5);       // deletion
  graph.AddEdge({.src = 1, .dst = 9, .weight = 1.0});  // insertion
  std::printf("after updates: degree(1) = %zu, weight(1->2) = %.1f\n",
              graph.Degree(1), *graph.EdgeWeight(1, 2));

  // 4. Uniform sampling ignores weights entirely.
  out.clear();
  graph.SampleNeighbors(1, 5, /*weighted=*/false, rng, &out);
  std::printf("uniform sample of 5 neighbours of vertex 1:");
  for (VertexId v : out) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");

  // 5. Attributes live next to the topology.
  graph.attributes().SetFeatures(1, {0.5f, -0.5f});
  graph.attributes().SetLabel(1, 3);
  std::printf("vertex 1 has %zu features and label %lld\n",
              graph.attributes().GetFeatures(1)->size(),
              (long long)*graph.attributes().GetLabel(1));

  // 6. Deterministic memory accounting (what Table IV measures).
  const MemoryBreakdown mem = graph.TopologyMemory();
  std::printf("topology memory: %s (ids %s, sampling indexes %s)\n",
              HumanBytes(mem.Total()).c_str(),
              HumanBytes(mem.topology_bytes).c_str(),
              HumanBytes(mem.index_bytes).c_str());

  std::printf("\ndone.\n");
  return 0;
}
