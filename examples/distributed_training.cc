// Distributed training scenario: the full deployment of the paper's
// Figure 1 — a training server drives GraphSAGE against remote graph
// servers.
//
// Topology lives sharded across a GraphCluster; the trainer issues one
// batched sampling RPC round per hop (RemoteSubgraphSampler) and fetches
// vertex features through an LRU cache, so hot vertices stop costing
// feature RPCs. The run reports model quality alongside the operational
// numbers a deployment watches: RPC counts, bytes on the wire, per-RPC
// latency percentiles and feature-cache hit rate.
#include <cstdio>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

namespace {

constexpr std::size_t kCommunities = 4;
constexpr std::size_t kSize = 250;
constexpr std::size_t kDim = 8;

/// The "remote" attribute store with RPC counting: one feature fetch per
/// cache miss.
struct RemoteFeatures {
  AttributeStore store;
  LruCache<VertexId, std::vector<float>> cache{4096};
  std::uint64_t fetch_rpcs = 0;

  const std::vector<float>* Fetch(VertexId v) {
    if (const auto* hit = cache.Get(v)) return hit;
    ++fetch_rpcs;  // would be a network round-trip in production
    const std::vector<float>* f = store.GetFeatures(v);
    if (!f) return nullptr;
    return cache.Put(v, *f);
  }
};

Tensor GatherCached(RemoteFeatures& feats,
                    const std::vector<VertexId>& ids) {
  Tensor t(ids.size(), kDim);
  for (std::size_t row = 0; row < ids.size(); ++row) {
    if (const std::vector<float>* f = feats.Fetch(ids[row])) {
      for (std::size_t d = 0; d < kDim && d < f->size(); ++d) {
        t(row, d) = (*f)[d];
      }
    }
  }
  return t;
}

}  // namespace

int main() {
  std::printf("Distributed GNN training (training server <-> graph "
              "servers)\n");
  std::printf("==========================================================="
              "\n\n");

  // Graph servers: 8 shards holding a community graph.
  GraphCluster cluster(ClusterConfig{.num_shards = 8,
                                     .rpc_latency_us = 150,
                                     .num_client_threads = 4});
  RemoteFeatures features;
  Xoshiro256 rng(3);
  std::vector<VertexId> all_vertices, train_seeds, test_seeds;
  std::vector<EdgeUpdate> bootstrap;
  for (VertexId v = 0; v < kCommunities * kSize; ++v) {
    const std::size_t comm = v / kSize;
    for (int k = 0; k < 8; ++k) {
      const VertexId u = comm * kSize + rng.NextUint64(kSize);
      if (u != v) {
        bootstrap.push_back({UpdateKind::kInsert, Edge{v, u, 1.0, 0}});
      }
    }
    std::vector<float> f(kDim);
    for (auto& x : f) x = static_cast<float>(rng.NextDouble() * 0.4 - 0.2);
    f[comm % kDim] += 1.2f;
    features.store.SetFeatures(v, std::move(f));
    all_vertices.push_back(v);
    (v % 5 == 0 ? test_seeds : train_seeds).push_back(v);
  }
  cluster.ApplyBatch(bootstrap);
  std::printf("graph servers hold %zu edges across %zu shards "
              "(imbalance %.2f)\n\n",
              cluster.NumEdges(), cluster.num_shards(),
              cluster.LoadImbalance());

  // Training server: GraphSAGE fed by remote sampling + cached features.
  GraphSageModel model(
      GraphSageConfig{.in_dim = kDim, .hidden_dim = 16,
                      .num_classes = kCommunities},
      7);
  RemoteSubgraphSampler sampler(&cluster);

  auto run_batch = [&](const std::vector<VertexId>& seeds,
                       std::uint64_t round, bool train) {
    const SampledSubgraph sg = sampler.Sample(
        seeds, {{.fanout = 8}, {.fanout = 8}}, /*seed=*/round);
    GraphSageModel::Inputs in;
    in.sg = &sg;
    for (const auto& layer : sg.layers) {
      in.features.push_back(GatherCached(features, layer));
    }
    std::vector<std::int64_t> labels;
    for (VertexId v : seeds) {
      labels.push_back(static_cast<std::int64_t>(v / kSize));
    }
    return train ? model.TrainStep(in, labels, 0.01f)
                 : model.Evaluate(in, labels);
  };

  Xoshiro256 pick(11);
  const auto before = run_batch(test_seeds, 0, /*train=*/false);
  for (std::uint64_t step = 1; step <= 60; ++step) {
    std::vector<VertexId> seeds;
    for (int i = 0; i < 64; ++i) {
      seeds.push_back(train_seeds[pick.NextUint64(train_seeds.size())]);
    }
    run_batch(seeds, step, /*train=*/true);
  }
  const auto after = run_batch(test_seeds, 61, /*train=*/false);

  std::printf("test accuracy: %.1f%% -> %.1f%% after 60 remote "
              "minibatches\n\n",
              100.0 * before.accuracy, 100.0 * after.accuracy);

  // The operational view.
  const ClusterStats& s = cluster.stats();
  std::printf("sampling RPCs: %llu (%.1f per minibatch; one round per hop, "
              "not per vertex)\n",
              (unsigned long long)s.rpcs, s.rpcs / 62.0);
  std::printf("wire traffic:  %s sent, %s received\n",
              HumanBytes(s.bytes_sent).c_str(),
              HumanBytes(s.bytes_received).c_str());
  std::printf("virtual network time: %.1f ms; per-RPC compute p50/p99: "
              "%.0f/%.0f us\n",
              s.virtual_network_us / 1e3,
              cluster.rpc_latency().PercentileMicros(50),
              cluster.rpc_latency().PercentileMicros(99));
  std::printf("feature cache: %.1f%% hit rate (%llu fetch RPCs avoided of "
              "%llu lookups)\n",
              100.0 * features.cache.HitRate(),
              (unsigned long long)features.cache.hits(),
              (unsigned long long)(features.cache.hits() +
                                   features.cache.misses()));

  std::printf("\ndone.\n");
  return 0;
}
