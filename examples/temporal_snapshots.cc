// Temporal scenario: the dynamic graph as a G^(t) series (paper Section
// II-A), plus checkpoint save/restore.
//
// A day of user-item interactions streams into a TemporalEdgeLog. We
// build G^(morning) and G^(evening) snapshots, show how a vertex's
// sampled neighbourhood drifts over the day, roll a live store forward
// incrementally, and finally checkpoint + restore it.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

int main() {
  std::printf("Temporal snapshots and checkpointing\n");
  std::printf("====================================\n\n");

  // A day of interactions: in the morning user 1 watches rooms 10x, in
  // the evening their interest moves to rooms 20x. Plus background
  // traffic all day.
  TemporalEdgeLog log;
  Xoshiro256 rng(3);
  std::uint64_t t = 0;
  auto background = [&](int n) {
    for (int i = 0; i < n; ++i) {
      log.AppendInsert(++t, {100 + rng.NextUint64(500),
                             1000 + rng.NextUint64(200),
                             0.1 + rng.NextDouble(), 0});
    }
  };
  background(5000);
  for (int k = 0; k < 5; ++k) {
    log.AppendInsert(++t, {1, 100 + static_cast<VertexId>(k), 5.0, 0});
  }
  const std::uint64_t morning = t;
  background(5000);
  for (int k = 0; k < 5; ++k) {
    log.AppendInsert(++t, {1, 200 + static_cast<VertexId>(k), 8.0, 0});
  }
  const std::uint64_t evening = t;
  background(2000);
  std::printf("logged %zu timestamped updates (t = 1 .. %llu)\n\n",
              log.size(), (unsigned long long)log.MaxTimestamp());

  auto dominant_range = [&](GraphStore& g) {
    std::vector<VertexId> out;
    Xoshiro256 r(1);
    if (!g.SampleNeighbors(1, 1000, true, r, &out)) return 0;
    int in_100s = 0, in_200s = 0;
    for (VertexId v : out) {
      in_100s += (v >= 100 && v < 110);
      in_200s += (v >= 200 && v < 210);
    }
    return in_200s > in_100s ? 200 : 100;
  };

  // Snapshot G^(morning) and G^(evening).
  GraphStore g_morning, g_evening;
  log.SnapshotInto(&g_morning, morning);
  log.SnapshotInto(&g_evening, evening);
  std::printf("G^(morning): %zu edges; user 1 samples mostly the %d-range "
              "rooms\n",
              g_morning.NumEdges(), dominant_range(g_morning));
  std::printf("G^(evening): %zu edges; user 1 samples mostly the %d-range "
              "rooms\n\n",
              g_evening.NumEdges(), dominant_range(g_evening));

  // Roll the morning store forward instead of rebuilding.
  const std::size_t applied = log.ReplayInto(&g_morning, morning, evening);
  std::printf("rolled the morning store forward with %zu updates; user 1 "
              "now samples the %d-range: %s\n\n",
              applied, dominant_range(g_morning),
              dominant_range(g_morning) == 200 ? "consistent" : "BUG");

  // Checkpoint the evening state and restore it elsewhere.
  const auto path = std::filesystem::temp_directory_path() /
                    "platod2gl_example.ckpt";
  const Status saved = SaveGraph(g_evening, path.string());
  std::printf("checkpoint save: %s\n", saved.ToString().c_str());
  GraphStore restored;
  const Status loaded = LoadGraph(path.string(), &restored);
  std::printf("checkpoint load: %s (%zu edges, matches: %s)\n",
              loaded.ToString().c_str(), restored.NumEdges(),
              restored.NumEdges() == g_evening.NumEdges() ? "yes" : "no");
  std::filesystem::remove(path);

  std::printf("\ndone.\n");
  return 0;
}
