// Dynamic recommendation scenario: the live-streaming workload the paper's
// introduction motivates.
//
// A heterogeneous user/live-room graph receives a continuous stream of
// interaction batches (applied latch-free through the PALM-style batch
// updater) while recommendation queries concurrently sample fresh
// neighbourhoods. Demonstrates that new interactions influence the
// sampling distribution immediately — the freshness property a dynamic
// store exists for.
#include <cstdio>
#include <map>
#include <utility>

#include "platod2gl.h"

using namespace platod2gl;

namespace {

constexpr VertexId kUserBase = 0x0001000000000000ULL;
constexpr VertexId kLiveBase = 0x0002000000000000ULL;
constexpr std::size_t kUsers = 20000;
constexpr std::size_t kLives = 512;

}  // namespace

int main() {
  std::printf("Dynamic live-streaming recommendation\n");
  std::printf("=====================================\n\n");

  // Bootstrap a user->live interaction graph: room popularity is
  // Zipf-skewed (like the production User-Live relation) and every user
  // has a genre preference — 80% of their interactions stay inside one of
  // four room genres, which is the signal the retrieval model later
  // learns.
  constexpr int kGenres = 4;
  std::vector<Edge> bootstrap;
  {
    Xoshiro256 gen(99);
    const ZipfSampler in_genre(kLives / kGenres, 0.9);
    bootstrap.reserve(400000);
    for (int e = 0; e < 400000; ++e) {
      const VertexId u = gen.NextUint64(kUsers);
      const int genre = (gen.NextDouble() < 0.8)
                            ? static_cast<int>(u % kGenres)
                            : static_cast<int>(gen.NextUint64(kGenres));
      const VertexId room = genre * (kLives / kGenres) + in_genre.Sample(gen);
      bootstrap.push_back(Edge{kUserBase + u, kLiveBase + room,
                               0.1 + gen.NextDouble(), 0});
    }
  }
  MakeBidirected(&bootstrap);  // rooms link back to their viewers
  DedupEdges(&bootstrap);

  GraphStore graph;
  ThreadPool pool(4);
  BatchUpdater updater(&graph.topology(0), &pool);
  {
    std::vector<EdgeUpdate> batch;
    batch.reserve(bootstrap.size());
    for (const Edge& e : bootstrap) batch.push_back({UpdateKind::kInsert, e});
    Timer t;
    updater.ApplyBatch(std::move(batch));
    std::printf("bootstrap: %zu interactions ingested in %.1f ms "
                "(latch-free, %zu threads)\n\n",
                graph.NumEdges(), t.ElapsedMillis(), pool.num_threads());
  }

  // One user we will watch: what does the recommender sample for them?
  const VertexId user = kUserBase + 7;
  Xoshiro256 rng(1);
  auto top_sampled = [&](int draws) {
    std::vector<VertexId> out;
    graph.SampleNeighbors(user, draws, /*weighted=*/true, rng, &out);
    std::map<VertexId, int> hist;
    for (VertexId v : out) ++hist[v];
    VertexId best = kInvalidVertex;
    int best_n = -1;
    for (const auto& [v, n] : hist) {
      if (n > best_n) {
        best = v;
        best_n = n;
      }
    }
    return std::pair<VertexId, double>(best, 100.0 * best_n / draws);
  };

  auto [before_room, before_pct] = top_sampled(2000);
  std::printf("user %llu's dominant sampled room: live-%llu (%.0f%% of "
              "draws)\n",
              (unsigned long long)(user - kUserBase),
              (unsigned long long)(before_room - kLiveBase), before_pct);

  // The user suddenly binges a new room: a burst of heavily-weighted
  // interactions arrives in the next dynamic batch.
  const VertexId new_room = kLiveBase + 300;
  std::vector<EdgeUpdate> burst;
  burst.push_back(
      {UpdateKind::kInsert, Edge{user, new_room, 50.0, 0}});
  // ... amid 10k unrelated interactions from other users.
  Xoshiro256 noise(2);
  for (int i = 0; i < 10000; ++i) {
    burst.push_back({UpdateKind::kInsert,
                     Edge{kUserBase + noise.NextUint64(kUsers),
                          kLiveBase + noise.NextUint64(kLives),
                          0.1 + noise.NextDouble(), 0}});
  }
  Timer t;
  updater.ApplyBatch(std::move(burst));
  std::printf("burst of %d interactions applied in %.1f ms\n", 10001,
              t.ElapsedMillis());

  auto [after_room, after_pct] = top_sampled(2000);
  std::printf("user %llu's dominant sampled room is now: live-%llu "
              "(%.0f%% of draws)\n",
              (unsigned long long)(user - kUserBase),
              (unsigned long long)(after_room - kLiveBase), after_pct);
  std::printf("-> the brand-new interest dominates instantly: %s\n\n",
              after_room == new_room ? "OK" : "unexpected!");

  // Interest decays: in-place weight update, O(log n) via FSTable.
  graph.topology(0).UpdateEdge(user, new_room, 0.01);
  auto [decayed_room, decayed_pct] = top_sampled(2000);
  std::printf("after decaying that edge to 0.01, dominant room: live-%llu "
              "(%.0f%%)\n",
              (unsigned long long)(decayed_room - kLiveBase), decayed_pct);

  // 2-hop recommendation candidates via subgraph sampling on the
  // bi-directed graph: user -> rooms -> co-watching users.
  SubgraphSampler sampler(&graph);
  const SampledSubgraph sg =
      sampler.Sample({user}, {{.fanout = 10}, {.fanout = 5}}, rng);
  std::printf("\n2-hop candidate pool: %zu rooms -> %zu co-watching "
              "viewers\n",
              sg.layers[1].size(), sg.layers[2].size());

  // Finally: train a two-tower retrieval model (BPR) straight off the
  // live topology — positives are weighted edge samples, negatives come
  // from a popularity^0.75 sampler over the room namespace.
  std::printf("\ntraining a two-tower retrieval model on the live graph "
              "...\n");
  std::vector<VertexId> all_users;
  for (VertexId u = 0; u < kUsers; ++u) all_users.push_back(kUserBase + u);
  TwoTowerModel tower(&graph,
                      TwoTowerConfig{.dim = 32, .learning_rate = 0.05f},
                      kLiveBase, kLiveBase + kLives);
  const double auc_before = tower.PairwiseAccuracy(all_users, 2, rng);
  for (int epoch = 0; epoch < 15; ++epoch) tower.TrainEpoch(all_users, rng);
  const double auc_after = tower.PairwiseAccuracy(all_users, 2, rng);
  std::printf("pairwise ranking accuracy: %.3f before -> %.3f after "
              "training\n",
              auc_before, auc_after);

  // Retrieval: rank every room for our user, before and after the model
  // catches up with the binge (its weight restored + a burst of
  // single-user training steps on the fresh topology).
  std::vector<VertexId> rooms;
  for (VertexId r = 0; r < kLives; ++r) rooms.push_back(kLiveBase + r);
  auto rank_of = [&](VertexId room) {
    const auto ranked = tower.Recommend(user, rooms);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i] == room) return i + 1;
    }
    return ranked.size();
  };
  const std::size_t rank_before = rank_of(new_room);
  graph.topology(0).UpdateEdge(user, new_room, 50.0);
  for (int step = 0; step < 300; ++step) tower.TrainEpoch({user}, rng);
  const std::size_t rank_after = rank_of(new_room);
  std::printf("the binged room's rank for user %llu: #%zu -> #%zu of %zu "
              "after the model sees the fresh interactions\n",
              (unsigned long long)(user - kUserBase), rank_before,
              rank_after, rooms.size());

  std::printf("\ndone.\n");
  return 0;
}
