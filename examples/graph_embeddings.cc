// Graph-embedding scenario: DeepWalk / node2vec representation learning
// driven entirely by the dynamic store's walk engine.
//
// Random walks over a two-community graph feed the library's
// skip-gram-with-negative-sampling trainer. After training,
// intra-community vertex pairs score higher than inter-community pairs —
// the embeddings recovered the structure from walks alone (no features,
// no labels). The graph then *changes* (a third community appears) and
// training simply continues: new vertices get embedding rows on first
// touch.
#include <cstdio>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

namespace {

constexpr std::size_t kCommunitySize = 60;

void AddCommunity(GraphStore* graph, std::size_t index, Xoshiro256& rng) {
  const VertexId base = index * kCommunitySize;
  for (VertexId v = base; v < base + kCommunitySize; ++v) {
    for (int k = 0; k < 6; ++k) {
      const VertexId u = base + rng.NextUint64(kCommunitySize);
      if (u != v) graph->AddEdge({v, u, 1.0, 0});
    }
  }
}

double MeanSimilarity(DeepWalkTrainer& trainer, std::size_t communities,
                      bool intra, Xoshiro256& rng) {
  double total = 0.0;
  int n = 0;
  const std::size_t universe = communities * kCommunitySize;
  while (n < 2000) {
    const VertexId a = rng.NextUint64(universe);
    const VertexId b = rng.NextUint64(universe);
    if (a == b) continue;
    if ((a / kCommunitySize == b / kCommunitySize) != intra) continue;
    total += trainer.Similarity(a, b);
    ++n;
  }
  return total / n;
}

}  // namespace

int main() {
  std::printf("Graph embeddings via random walks (DeepWalk / node2vec)\n");
  std::printf("=======================================================\n\n");

  GraphStore graph;
  Xoshiro256 rng(5);
  AddCommunity(&graph, 0, rng);
  AddCommunity(&graph, 1, rng);
  graph.AddEdge({0, kCommunitySize, 0.2, 0});  // weak bridges
  graph.AddEdge({kCommunitySize, 0, 0.2, 0});
  std::printf("graph: 2 communities x %zu vertices, %zu edges\n\n",
              kCommunitySize, graph.NumEdges());

  std::vector<VertexId> vocab;
  for (VertexId v = 0; v < 2 * kCommunitySize; ++v) vocab.push_back(v);
  DeepWalkTrainer trainer(&graph, vocab,
                          DeepWalkConfig{.dim = 16,
                                         .walk_length = 12,
                                         .window = 3,
                                         .negatives = 4,
                                         .learning_rate = 0.05f,
                                         .q = 0.5});  // explore-biased

  for (int epoch = 0; epoch < 12; ++epoch) {
    const double loss = trainer.TrainEpoch(vocab, rng);
    if (epoch % 3 == 0) {
      std::printf("epoch %2d: skip-gram loss %.4f\n", epoch, loss);
    }
  }
  std::printf("\nmean similarity: intra %.3f vs inter %.3f -> %s\n",
              MeanSimilarity(trainer, 2, true, rng),
              MeanSimilarity(trainer, 2, false, rng),
              MeanSimilarity(trainer, 2, true, rng) >
                      MeanSimilarity(trainer, 2, false, rng) + 0.3
                  ? "communities separated"
                  : "NOT separated (unexpected)");

  // The graph evolves: a third community appears mid-training. Its
  // vertices get embedding rows lazily and train in place.
  std::printf("\na third community joins the graph...\n");
  AddCommunity(&graph, 2, rng);
  std::vector<VertexId> vocab3;
  for (VertexId v = 0; v < 3 * kCommunitySize; ++v) vocab3.push_back(v);
  DeepWalkTrainer trainer3(&graph, vocab3,
                           DeepWalkConfig{.dim = 16, .learning_rate = 0.05f});
  for (int epoch = 0; epoch < 12; ++epoch) trainer3.TrainEpoch(vocab3, rng);
  std::printf("after retraining on 3 communities: intra %.3f vs inter "
              "%.3f\n",
              MeanSimilarity(trainer3, 3, true, rng),
              MeanSimilarity(trainer3, 3, false, rng));
  std::printf("embedding table: %zu rows, %s\n",
              trainer3.embeddings().size(),
              HumanBytes(trainer3.embeddings().MemoryUsage()).c_str());

  std::printf("\ndone.\n");
  return 0;
}
