// GNN training scenario: end-to-end GraphSAGE training on a dynamic
// graph (paper Figure 1's full loop).
//
// Trains a 2-layer GraphSAGE node classifier on a synthetic community
// graph while the topology keeps evolving between epochs, showing loss
// and accuracy improving on held-out vertices.
#include <cstdio>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

int main() {
  std::printf("Dynamic GNN training with GraphSAGE\n");
  std::printf("===================================\n\n");

  // Synthetic task: 4 communities of 300 vertices, intra-community edges,
  // noisy community indicator features, community id as the label.
  constexpr std::size_t kCommunities = 4;
  constexpr std::size_t kSize = 300;
  constexpr std::size_t kDim = 16;
  GraphStore graph;
  Xoshiro256 rng(7);
  std::vector<VertexId> train_seeds, test_seeds;
  for (VertexId v = 0; v < kCommunities * kSize; ++v) {
    const std::size_t comm = v / kSize;
    for (int k = 0; k < 10; ++k) {
      const VertexId u = comm * kSize + rng.NextUint64(kSize);
      if (u != v) graph.AddEdge({v, u, 1.0, 0});
    }
    std::vector<float> f(kDim);
    for (auto& x : f) x = static_cast<float>(rng.NextDouble() - 0.5);
    f[comm] += 1.5f;
    graph.attributes().SetFeatures(v, std::move(f));
    graph.attributes().SetLabel(v, static_cast<std::int64_t>(comm));
    (v % 5 == 0 ? test_seeds : train_seeds).push_back(v);
  }
  std::printf("graph: %zu vertices, %zu edges, %zu train / %zu test seeds\n\n",
              kCommunities * kSize, graph.NumEdges(), train_seeds.size(),
              test_seeds.size());

  GraphSageModel model(
      GraphSageConfig{.in_dim = kDim, .hidden_dim = 32, .num_classes = 4},
      /*seed=*/3);
  Trainer trainer(&graph, &model,
                  TrainerConfig{.batch_size = 128,
                                .fanout_hop1 = 10,
                                .fanout_hop2 = 10,
                                .learning_rate = 0.01f});

  std::printf("%-8s %12s %12s %14s\n", "epoch", "train loss", "test loss",
              "test accuracy");
  for (int epoch = 0; epoch <= 30; ++epoch) {
    if (epoch % 5 == 0) {
      const auto eval = trainer.Evaluate(test_seeds, rng);
      double train_loss = 0.0;
      if (epoch > 0) {
        const auto tr = trainer.Evaluate(train_seeds, rng);
        train_loss = tr.loss;
      }
      std::printf("%-8d %12.4f %12.4f %13.1f%%\n", epoch, train_loss,
                  eval.loss, 100.0 * eval.accuracy);
    }
    trainer.TrainStepSampled(rng);

    // The graph keeps evolving while we train: fresh intra-community
    // interactions arrive every epoch and are picked up by the samplers
    // immediately — no re-partitioning, no rebuild.
    for (int k = 0; k < 50; ++k) {
      const VertexId v = rng.NextUint64(kCommunities * kSize);
      const VertexId u = (v / kSize) * kSize + rng.NextUint64(kSize);
      if (u != v) graph.AddEdge({v, u, 1.0, 0});
    }
  }

  const auto final_eval = trainer.Evaluate(test_seeds, rng);
  std::printf("\nfinal test accuracy: %.1f%% (random baseline: 25%%)\n",
              100.0 * final_eval.accuracy);

  // The GCN variant (one shared weight matrix per layer — half the
  // parameters) on the same task, driven by the same samplers.
  GcnModel gcn(
      GraphSageConfig{.in_dim = kDim, .hidden_dim = 32, .num_classes = 4},
      5);
  SubgraphSampler sampler(&graph);
  NodeSampler nodes(&graph.topology(0));
  auto gcn_batch = [&](const std::vector<VertexId>& seeds, bool train) {
    const SampledSubgraph sg =
        sampler.Sample(seeds, {{.fanout = 10}, {.fanout = 10}}, rng);
    GraphSageModel::Inputs in;
    in.sg = &sg;
    std::vector<float> buf;
    for (const auto& layer : sg.layers) {
      graph.attributes().GatherFeatures(layer, kDim, &buf);
      Tensor t(layer.size(), kDim);
      std::copy(buf.begin(), buf.end(), t.data());
      in.features.push_back(std::move(t));
    }
    std::vector<std::int64_t> labels;
    for (VertexId v : seeds) {
      labels.push_back(graph.attributes().GetLabel(v).value_or(-1));
    }
    return train ? gcn.TrainStep(in, labels, 0.01f)
                 : gcn.Evaluate(in, labels);
  };
  for (int step = 0; step < 30; ++step) {
    gcn_batch(nodes.SampleUniform(128, rng), /*train=*/true);
  }
  const auto gcn_eval = gcn_batch(test_seeds, /*train=*/false);
  std::printf("GCN variant after 30 minibatches: %.1f%% test accuracy\n",
              100.0 * gcn_eval.accuracy);

  std::printf("done.\n");
  return 0;
}
