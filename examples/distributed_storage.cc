// Distributed storage scenario: the multi-server deployment of Figure 1,
// simulated in-process (see DESIGN.md, substitutions).
//
// A GraphCluster partitions the topology hash-by-source across shards,
// routes dynamic update batches and batched sampling RPCs, and reports
// load balance plus virtual network cost — the operational concerns the
// production deployment is built around.
#include <cstdio>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

int main() {
  std::printf("Distributed graph storage simulation\n");
  std::printf("====================================\n\n");

  GraphCluster cluster(ClusterConfig{
      .num_shards = 8,
      .rpc_latency_us = 150,  // virtual per-RPC cost, accounted not slept
      .num_client_threads = 4,
  });

  // Ingest an RMAT social graph in dynamic batches.
  RmatParams p;
  p.scale = 15;
  p.num_edges = 500000;
  p.seed = 5;
  std::vector<Edge> edges = GenerateRmat(p);
  MakeBidirected(&edges);
  DedupEdges(&edges);

  Timer build;
  std::vector<EdgeUpdate> batch;
  for (const Edge& e : edges) {
    batch.push_back({UpdateKind::kInsert, e});
    if (batch.size() == 65536) {
      cluster.ApplyBatch(batch);
      batch.clear();
    }
  }
  cluster.ApplyBatch(batch);
  std::printf("ingested %zu edges across %zu shards in %.2f s\n",
              cluster.NumEdges(), cluster.num_shards(),
              build.ElapsedSeconds());

  // Hash-by-source keeps shards balanced without any re-partitioning.
  std::printf("\nper-shard load:\n");
  for (std::size_t s = 0; s < cluster.num_shards(); ++s) {
    std::printf("  shard %zu: %9zu edges, %8llu requests served\n", s,
                cluster.shard(s).store().NumEdges(),
                (unsigned long long)cluster.shard(s).requests_served());
  }
  std::printf("load imbalance (max/min edges): %.3f\n",
              cluster.LoadImbalance());

  // Batched cross-shard sampling: one RPC per shard per batch instead of
  // one per seed.
  std::vector<VertexId> seeds;
  Xoshiro256 rng(11);
  for (int i = 0; i < 4096; ++i) seeds.push_back(rng.NextUint64(1u << 15));
  const ClusterStats before = cluster.stats();
  Timer t;
  const NeighborBatch nb =
      cluster.SampleNeighbors(seeds, /*fanout=*/25, /*weighted=*/true,
                              /*seed=*/17);
  const ClusterStats after = cluster.stats();
  std::printf("\nsampled 25 neighbours for %zu seeds in %.1f ms compute "
              "+ %llu us virtual network (%llu RPCs for %zu seeds)\n",
              nb.NumSeeds(), t.ElapsedMillis(),
              (unsigned long long)(after.virtual_network_us -
                                   before.virtual_network_us),
              (unsigned long long)(after.rpcs - before.rpcs), seeds.size());

  // A per-seed (unbatched) design would have paid one RPC per seed:
  std::printf("an unbatched design would have paid %zu RPCs = %zu us of "
              "network instead\n",
              seeds.size(), seeds.size() * 150);

  std::printf("\ndone.\n");
  return 0;
}
