#!/usr/bin/env python3
"""Project lint pass for PlatoD2GL (CI tier 4, see docs/static_analysis.md).

Fast, dependency-free checks for project conventions that neither the
compiler nor clang-tidy enforces:

  naked-new         `new` / `delete` expressions outside src/common/memory.h.
                    Ownership flows through std::unique_ptr /
                    std::make_unique; a naked allocation is either a leak
                    waiting to happen or belongs in the arena helpers.
  std-rand          std::rand / srand / random_shuffle. All randomness goes
                    through common/random.h (Xoshiro256) so experiments are
                    reproducible from a seed.
  raw-lock-guard    std::lock_guard / std::unique_lock / std::scoped_lock
                    in src/. libstdc++'s guards are invisible to clang
                    -Wthread-safety; use SpinlockGuard / MutexLock (or
                    CondVar::wait on the annotated Mutex) instead.
  unguarded-mutex   a Spinlock / Mutex / std::mutex *member* declared in a
                    file with no GUARDED_BY / REQUIRES / ACQUIRE annotation
                    anywhere: either annotate what the lock protects or
                    mark the file `// pd2gl-lint: allow-unguarded-mutex`
                    with a rationale.
  include-guard     headers must start protection with `#pragma once`.

Comments and string literals are stripped before matching, so prose about
"new insertions" does not trip the allocator rule. Suppress a single line
with `// pd2gl-lint: allow-<rule>`.

Usage: tools/pd2gl_lint.py [paths...]   (default: src tools tests bench examples)
Exit status 0 = clean, 1 = findings printed one per line.
"""

import re
import sys
from pathlib import Path

DEFAULT_PATHS = ["src", "tools", "tests", "bench", "examples"]
SOURCE_SUFFIXES = {".h", ".cc"}

# Files exempt per rule (repo-relative, POSIX slashes).
EXEMPT = {
    "naked-new": {"src/common/memory.h"},
    # The annotated wrappers themselves, and the macro definitions.
    "unguarded-mutex": {
        "src/common/spinlock.h",
        "src/common/mutex.h",
        "src/common/thread_annotations.h",
    },
}

RE_SUPPRESS = re.compile(r"pd2gl-lint:\s*allow-([a-z-]+)")

RE_NAKED_NEW = re.compile(r"\bnew\b\s+[A-Za-z_:<(]")
RE_NAKED_DELETE = re.compile(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_*(]")
RE_STD_RAND = re.compile(r"\b(?:std::)?s?rand\s*\(|\bstd::random_shuffle\b")
RE_RAW_GUARD = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b")
RE_MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:Spinlock|Mutex|std::(?:shared_)?mutex)\s+"
    r"[a-z_][A-Za-z0-9_]*_?\s*(?:\{[^}]*\})?\s*;")
RE_TSA_ANNOTATION = re.compile(
    r"\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES)\b")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line breaks
    (and the lint-suppression markers, which live in comments)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            marker = RE_SUPPRESS.search(text[i:j])
            out.append(marker.group(0) if marker else "")
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path, rel):
    findings = []
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()

    def check(rule, lineno, message):
        if rel in EXEMPT.get(rule, set()):
            return
        line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if f"allow-{rule}" in line:
            return
        findings.append((rel, lineno, rule, message))

    in_tests = rel.startswith("tests/")
    for lineno, line in enumerate(lines, 1):
        if RE_NAKED_NEW.search(line):
            check("naked-new", lineno,
                  "naked `new`: use std::make_unique or the helpers in "
                  "src/common/memory.h")
        if RE_NAKED_DELETE.search(line) and "= delete" not in line:
            check("naked-new", lineno,
                  "naked `delete`: ownership belongs in a smart pointer")
        if RE_STD_RAND.search(line):
            check("std-rand", lineno,
                  "non-seedable randomness: use Xoshiro256 from "
                  "common/random.h")
        if not in_tests and RE_RAW_GUARD.search(line):
            check("raw-lock-guard", lineno,
                  "std lock guards are invisible to -Wthread-safety: use "
                  "SpinlockGuard / MutexLock")

    if path.suffix == ".h":
        head = "\n".join(raw.splitlines()[:40])
        if "#pragma once" not in head:
            check("include-guard", 1, "header is missing `#pragma once`")

    if not RE_TSA_ANNOTATION.search(code):
        for lineno, line in enumerate(lines, 1):
            if RE_MUTEX_MEMBER.match(line):
                check("unguarded-mutex", lineno,
                      "mutex member in a file with no thread-safety "
                      "annotations: add GUARDED_BY on the protected state")
                break

    return findings


def main(argv):
    root = Path(__file__).resolve().parent.parent
    targets = argv[1:] or DEFAULT_PATHS
    files = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in SOURCE_SUFFIXES))
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)

    findings = []
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
            else str(f)
        findings.extend(lint_file(f, rel))

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(f"pd2gl_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
