#!/usr/bin/env python3
"""Project lint pass for PlatoD2GL (CI tier 4, see docs/static_analysis.md).

Fast, dependency-free checks for project conventions that neither the
compiler nor clang-tidy enforces:

  naked-new         `new` / `delete` expressions outside src/common/memory.h.
                    Ownership flows through std::unique_ptr /
                    std::make_unique; a naked allocation is either a leak
                    waiting to happen or belongs in the arena helpers.
  std-rand          std::rand / srand / random_shuffle. All randomness goes
                    through common/random.h (Xoshiro256) so experiments are
                    reproducible from a seed.
  raw-lock-guard    std::lock_guard / std::unique_lock / std::scoped_lock
                    in src/. libstdc++'s guards are invisible to clang
                    -Wthread-safety; use SpinlockGuard / MutexLock (or
                    CondVar::wait on the annotated Mutex) instead.
  unguarded-mutex   a Spinlock / Mutex / std::mutex *member* declared in a
                    file with no GUARDED_BY / REQUIRES / ACQUIRE annotation
                    anywhere: either annotate what the lock protects or
                    mark the file `// pd2gl-lint: allow-unguarded-mutex`
                    with a rationale.
  include-guard     headers must start protection with `#pragma once`.
  relaxed-order     `memory_order_relaxed` on an atomic that is not a
                    plain counter (name suffix _count/_counts/_stat/_stats)
                    needs an adjacent `// order:` comment saying why the
                    relaxation is sound — relaxed loads/stores carry no
                    happens-before edge, and the schedule checker
                    (src/schedcheck/) explores interleavings but not weak
                    memory, so the reasoning must live next to the code.
  nts-comment       NO_THREAD_SAFETY_ANALYSIS without an adjacent comment
                    explaining why the analysis is opted out. An
                    unexplained opt-out is indistinguishable from a
                    silenced bug.
  atomic-tally      a raw std::atomic / sched::Atomic integer *member*
                    in src/ whose name reads as an event tally (hits,
                    rejects, rounds, ...). Monotone statistics belong in
                    obs::MetricRegistry counters (src/obs/metrics.h) so
                    they are named, exportable, and covered by the shared
                    StatsBinding fill loop; raw atomics are for STATE
                    (watermarks, depths, closed flags, snapshots), which
                    the name list deliberately does not match.

Comments and string literals are stripped before matching, so prose about
"new insertions" does not trip the allocator rule. Suppress a single line
with `// pd2gl-lint: allow-<rule>`.

Usage: tools/pd2gl_lint.py [paths...]   (default: src tools tests bench examples)
Exit status 0 = clean, 1 = findings printed one per line.
"""

import re
import sys
from pathlib import Path

DEFAULT_PATHS = ["src", "tools", "tests", "bench", "examples"]
SOURCE_SUFFIXES = {".h", ".cc"}

# Files exempt per rule (repo-relative, POSIX slashes).
EXEMPT = {
    "naked-new": {
        "src/common/memory.h",
        # TestMutex pimpl: one raw std::mutex behind a pointer so sched.h
        # stays <mutex>-free in production translation units.
        "src/schedcheck/sched.cc",
    },
    # The annotated wrappers themselves, and the macro definitions.
    "unguarded-mutex": {
        "src/common/spinlock.h",
        "src/common/mutex.h",
        "src/common/thread_annotations.h",
        # The schedule checker's own runtime. It is the thing Spinlock /
        # Mutex route *into* under PD2GL_SCHEDCHECK — its internals must
        # use raw std primitives or every lock would recurse into the
        # model being run.
        "src/schedcheck/sched.cc",
    },
    "raw-lock-guard": {
        "src/schedcheck/sched.cc",  # same reason as unguarded-mutex
    },
    "atomic-tally": {
        # The registry's own Counter/Gauge internals.
        "src/obs/metrics.h",
        # Shard-local served-request tally predating the cluster registry;
        # the cluster exports the per-shard pd2gl_shard_* series, and
        # GraphShard deliberately has no registry dependency.
        "src/dist/shard.h",
    },
}

RE_SUPPRESS = re.compile(r"pd2gl-lint:\s*allow-([a-z-]+)")

RE_NAKED_NEW = re.compile(r"\bnew\b\s+[A-Za-z_:<(]")
RE_NAKED_DELETE = re.compile(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_*(]")
RE_STD_RAND = re.compile(r"\b(?:std::)?s?rand\s*\(|\bstd::random_shuffle\b")
RE_RAW_GUARD = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b")
RE_MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:Spinlock|Mutex|std::(?:shared_)?mutex)\s+"
    r"[a-z_][A-Za-z0-9_]*_?\s*(?:\{[^}]*\})?\s*;")
RE_TSA_ANNOTATION = re.compile(
    r"\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES)\b")
RE_RELAXED = re.compile(r"\bmemory_order_relaxed\b")
# The atomic variable an operation targets: `name.load(...)`,
# `name->fetch_add(...)`, etc. Searched over a small window of joined
# lines so multi-line compare_exchange calls still resolve their target.
RE_ATOMIC_OP_TARGET = re.compile(
    r"(\w+)\s*(?:\.|->)\s*(?:load|store|exchange|fetch_(?:add|sub|and|or|"
    r"xor)|compare_exchange_(?:weak|strong))\s*\(")
# Counter suffixes that are self-evidently relaxed-safe: the value is a
# monotonic tally read for reporting, never used to publish other state.
RE_COUNTER_NAME = re.compile(r"(?:_counts?|_stats?)_?$")
RE_ORDER_COMMENT = re.compile(r"//\s*order:")
RE_NTS = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
# An atomic integer member declaration and its name. Arrays (histogram
# bucket banks) intentionally do not match.
RE_ATOMIC_INT_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:std::atomic|sched::Atomic)<\s*"
    r"std::(?:u?int\d+_t|size_t)\s*>\s+(\w+)\s*(?:\{[^}]*\})?\s*;")
# Names that read as event tallies — the vocabulary the obs migration
# moved into registry counters. STATE names (watermark_, queued_,
# *_snapshot_, next_seq_, epoch_...) deliberately do not match.
RE_TALLY_NAME = re.compile(
    r"(?:^|_)(?:requests|hits|misses|drops|dropped|rejects|rejected|"
    r"accepted|admitted|shed|evicted|published|retries|faults|rounds|"
    r"batches|totals?|tall(?:y|ies)|counts?)_?$")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line breaks
    (and the lint-suppression markers, which live in comments)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            marker = RE_SUPPRESS.search(text[i:j])
            out.append(marker.group(0) if marker else "")
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path, rel):
    findings = []
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    raw_lines = raw.splitlines()

    def has_nearby_comment(lineno, pattern, reach):
        """True when `pattern` matches a raw line in [lineno-reach, lineno]
        (1-based; comments live in raw, not in the stripped code)."""
        lo = max(0, lineno - 1 - reach)
        return any(pattern.search(raw_lines[k])
                   for k in range(lo, min(lineno, len(raw_lines))))

    def check(rule, lineno, message):
        if rel in EXEMPT.get(rule, set()):
            return
        line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if f"allow-{rule}" in line:
            return
        findings.append((rel, lineno, rule, message))

    in_tests = rel.startswith("tests/")
    for lineno, line in enumerate(lines, 1):
        if RE_NAKED_NEW.search(line):
            check("naked-new", lineno,
                  "naked `new`: use std::make_unique or the helpers in "
                  "src/common/memory.h")
        if RE_NAKED_DELETE.search(line) and "= delete" not in line:
            check("naked-new", lineno,
                  "naked `delete`: ownership belongs in a smart pointer")
        if RE_STD_RAND.search(line):
            check("std-rand", lineno,
                  "non-seedable randomness: use Xoshiro256 from "
                  "common/random.h")
        if not in_tests and RE_RAW_GUARD.search(line):
            check("raw-lock-guard", lineno,
                  "std lock guards are invisible to -Wthread-safety: use "
                  "SpinlockGuard / MutexLock")
        if RE_RELAXED.search(line):
            # Resolve the atomic this relaxation targets; a multi-line
            # call keeps the target a few lines up.
            window = " ".join(lines[max(0, lineno - 4):lineno])
            targets = RE_ATOMIC_OP_TARGET.findall(window)
            name = targets[-1] if targets else ""
            # One comment may head an unbroken run of relaxed operations
            # (stats snapshot/reset blocks): walk up through the run.
            k = lineno
            while not has_nearby_comment(k, RE_ORDER_COMMENT, 3) and \
                    k >= 2 and RE_RELAXED.search(lines[k - 2]):
                k -= 1
            if not RE_COUNTER_NAME.search(name) and \
                    not has_nearby_comment(k, RE_ORDER_COMMENT, 3):
                check("relaxed-order", lineno,
                      "memory_order_relaxed on non-counter atomic "
                      f"`{name or '?'}`: add an adjacent `// order:` "
                      "comment justifying the relaxation")
        if rel.startswith("src/") and not rel.startswith("src/obs/"):
            m = RE_ATOMIC_INT_MEMBER.match(line)
            if m and RE_TALLY_NAME.search(m.group(1)):
                check("atomic-tally", lineno,
                      f"atomic tally member `{m.group(1)}`: monotone "
                      "statistics belong in an obs::MetricRegistry "
                      "Counter (src/obs/metrics.h), not a raw atomic")
        if RE_NTS.search(line) and \
                not has_nearby_comment(lineno, re.compile(r"//"), 3):
            check("nts-comment", lineno,
                  "NO_THREAD_SAFETY_ANALYSIS without an explanation: add "
                  "a comment saying why the analysis is opted out")

    if path.suffix == ".h":
        head = "\n".join(raw.splitlines()[:40])
        if "#pragma once" not in head:
            check("include-guard", 1, "header is missing `#pragma once`")

    if not RE_TSA_ANNOTATION.search(code):
        for lineno, line in enumerate(lines, 1):
            if RE_MUTEX_MEMBER.match(line):
                check("unguarded-mutex", lineno,
                      "mutex member in a file with no thread-safety "
                      "annotations: add GUARDED_BY on the protected state")
                break

    return findings


def main(argv):
    root = Path(__file__).resolve().parent.parent
    targets = argv[1:] or DEFAULT_PATHS
    files = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in SOURCE_SUFFIXES))
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)

    findings = []
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
            else str(f)
        findings.extend(lint_file(f, rel))

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(f"pd2gl_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
