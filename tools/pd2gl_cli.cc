// pd2gl: command-line utility around the PlatoD2GL library.
//
//   pd2gl gen <rmat|bipartite|uniform> <edges> <out.txt> [seed]
//       write a synthetic edge list (text format, see io/edge_list_reader)
//   pd2gl load <edges.txt> <out.ckpt>
//       parse a text edge list and write a binary checkpoint
//   pd2gl stats <edges.txt | graph.ckpt>
//       degree distribution, components, PageRank top-10, triangles
//   pd2gl sample <edges.txt | graph.ckpt> <vertex> <k>
//       draw k weighted neighbours of a vertex
//   pd2gl verify-store <edges.txt | graph.ckpt>
//       run the full structural invariant sweep over every samtree of
//       every relation (Definition-1 bounds, routing order, FSTable /
//       CSTable sum agreement, CP-ID round-trips, edge-counter drift),
//       then a replication echo drill: stream the graph through a
//       replicated 2-shard cluster and require anti-entropy to find
//       zero divergence (docs/replication.md)
//   pd2gl stream-train <steps> [producers] [rate] [block|reject|drop] [seed]
//       run the streaming pipeline end to end: `producers` threads feed
//       timestamped edge updates into the UpdateIngestor while the
//       ContinuousTrainer interleaves micro-batch application with
//       GraphSAGE minibatch steps, reporting loss / staleness / epoch
//       (docs/streaming_pipeline.md)
//   pd2gl serve-bench <requests> [rate] [max_batch] [seed]
//       replay an open-loop Zipf query mix (4 tenants) against the
//       online serving layer over a 4-shard cluster while an ingest
//       thread churns edges; reports virtual-time p50/p99, throughput,
//       batching and admission counters, and a one-screen registry
//       summary (hottest shards, cache hit rate, worst trace)
//   pd2gl metrics [requests] [seed] [prom|json]
//       run a small deterministic serving workload and export the merged
//       registry page — serve + cluster + per-shard + sample-cache
//       series plus the profiling sites — in Prometheus text (default)
//       or JSON (docs/observability.md)
//   pd2gl trace <request_id|worst> [requests] [seed]
//       run the same canned workload and pretty-print one request's span
//       tree (serve root -> plan steps -> per-shard RPCs) on the virtual
//       clock; `worst` picks the highest-latency retained trace
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "platod2gl.h"

using namespace platod2gl;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pd2gl gen <rmat|bipartite|uniform> <edges> <out.txt> "
               "[seed]\n"
               "  pd2gl load <edges.txt> <out.ckpt>\n"
               "  pd2gl stats <edges.txt | graph.ckpt>\n"
               "  pd2gl sample <edges.txt | graph.ckpt> <vertex> <k>\n"
               "  pd2gl verify-store <edges.txt | graph.ckpt>\n"
               "  pd2gl stream-train <steps> [producers] [rate] "
               "[block|reject|drop] [seed]\n"
               "  pd2gl serve-bench <requests> [rate] [max_batch] "
               "[seed]\n"
               "  pd2gl metrics [requests] [seed] [prom|json]\n"
               "  pd2gl trace <request_id|worst> [requests] [seed]\n");
  return 2;
}

/// The CLI's default store shape: headroom for multi-relation inputs.
GraphStoreConfig EightRelations() {
  GraphStoreConfig cfg;
  cfg.num_relations = 8;
  return cfg;
}

bool LooksLikeCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char magic[4] = {};
  const bool got = std::fread(magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  return got && std::memcmp(magic, "PD2G", 4) == 0;
}

/// Load a graph from either format; returns false on failure.
bool LoadAnyGraph(const std::string& path, GraphStore* graph) {
  Status s = LooksLikeCheckpoint(path) ? LoadGraph(path, graph)
                                       : LoadEdgeList(path, graph);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

int CmdGen(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string kind = argv[0];
  const std::size_t edges = std::strtoull(argv[1], nullptr, 10);
  const std::string out_path = argv[2];
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 42;

  std::vector<Edge> edge_list;
  if (kind == "rmat") {
    RmatParams p;
    p.num_edges = edges;
    p.seed = seed;
    edge_list = GenerateRmat(p);
  } else if (kind == "bipartite") {
    BipartiteParams p;
    p.num_edges = edges;
    p.seed = seed;
    edge_list = GenerateBipartite(p);
  } else if (kind == "uniform") {
    UniformParams p;
    p.num_edges = edges;
    p.seed = seed;
    edge_list = GenerateUniform(p);
  } else {
    return Usage();
  }
  DedupEdges(&edge_list);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "# pd2gl gen %s, %zu edges after dedup, seed %llu\n",
               kind.c_str(), edge_list.size(),
               (unsigned long long)seed);
  for (const Edge& e : edge_list) {
    std::fprintf(f, "%llu %llu %.6f %u\n", (unsigned long long)e.src,
                 (unsigned long long)e.dst, e.weight, e.type);
  }
  std::fclose(f);
  std::printf("wrote %zu edges to %s\n", edge_list.size(),
              out_path.c_str());
  return 0;
}

int CmdLoad(int argc, char** argv) {
  if (argc < 2) return Usage();
  GraphStore graph(EightRelations());
  EdgeListStats stats;
  const Status read = LoadEdgeList(argv[0], &graph, &stats);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
    return 1;
  }
  const Status write = SaveGraph(graph, argv[1]);
  if (!write.ok()) {
    std::fprintf(stderr, "error: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu edges (%zu lines skipped), checkpoint: %s\n",
              stats.edges_loaded, stats.lines_skipped, argv[1]);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 1) return Usage();
  GraphStore graph(EightRelations());
  if (!LoadAnyGraph(argv[0], &graph)) return 1;

  const TopologyStore& topo = graph.topology(0);
  const DegreeStats deg = ComputeDegreeStats(topo);
  std::printf("sources: %zu   edges: %zu   mean degree: %.2f   max "
              "degree: %zu\n",
              deg.num_sources, deg.num_edges, deg.mean_degree,
              deg.max_degree);
  std::printf("degree histogram (log2 buckets):");
  for (std::size_t b = 0; b < deg.log2_histogram.size(); ++b) {
    std::printf(" [2^%zu]=%zu", b, deg.log2_histogram[b]);
  }
  std::printf("\n");

  const auto cc = ConnectedComponents(topo);
  std::printf("vertices: %zu   connected components (undirected view): "
              "%zu\n",
              cc.size(), NumComponents(cc));

  const auto pr = PageRank(topo);
  std::vector<std::pair<double, VertexId>> top;
  for (const auto& [v, r] : pr) top.emplace_back(r, v);
  std::sort(top.rbegin(), top.rend());
  std::printf("PageRank top-10:");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    std::printf(" %llu(%.4f)", (unsigned long long)top[i].second,
                top[i].first);
  }
  std::printf("\n");

  Xoshiro256 rng(7);
  std::printf("triangle estimate (50k wedge samples): %.0f\n",
              EstimateTriangles(topo, 50000, rng));
  const MemoryBreakdown mem = graph.TopologyMemory();
  std::printf("topology memory: %s\n", HumanBytes(mem.Total()).c_str());
  return 0;
}

int CmdSample(int argc, char** argv) {
  if (argc < 3) return Usage();
  GraphStore graph(EightRelations());
  if (!LoadAnyGraph(argv[0], &graph)) return 1;
  const VertexId v = std::strtoull(argv[1], nullptr, 10);
  const std::size_t k = std::strtoull(argv[2], nullptr, 10);

  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  if (!graph.SampleNeighbors(v, k, /*weighted=*/true, rng, &out)) {
    std::fprintf(stderr, "vertex %llu has no out-edges\n",
                 (unsigned long long)v);
    return 1;
  }
  std::printf("%zu weighted samples from N(%llu):", out.size(),
              (unsigned long long)v);
  for (VertexId u : out) std::printf(" %llu", (unsigned long long)u);
  std::printf("\n");
  return 0;
}

/// Replication echo drill (docs/replication.md): stream every edge of
/// the verified graph through a 2-shard, 1-replica cluster with sync
/// WAL shipping, flush, and run one anti-entropy round. A structurally
/// sound store must replicate with zero digest mismatches and zero
/// repairs — a divergence here means the log-shipping path mangled an
/// update the local invariant sweep cannot see. Prints the replication
/// counters; returns false on any divergence.
bool ReplicationEchoDrill(const GraphStore& graph) {
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.shard_config = EightRelations();
  cfg.replication.num_replicas = 1;
  GraphCluster cluster(cfg);

  std::vector<EdgeUpdate> batch;
  batch.reserve(4096);
  std::uint64_t streamed = 0;
  Status apply = Status::Ok();
  for (std::size_t rel = 0; rel < graph.num_relations(); ++rel) {
    const TopologyStore& topo = graph.topology(static_cast<EdgeType>(rel));
    topo.ForEachSource([&](VertexId src, const Samtree&) {
      for (const auto& [dst, w] : topo.Neighbors(src)) {
        batch.push_back(EdgeUpdate{
            UpdateKind::kInsert,
            Edge{src, dst, w, static_cast<EdgeType>(rel)}});
        if (batch.size() == 4096) {
          if (Status s = cluster.ApplyBatch(batch); !s.ok()) apply = s;
          streamed += batch.size();
          batch.clear();
        }
      }
    });
  }
  if (!batch.empty()) {
    if (Status s = cluster.ApplyBatch(batch); !s.ok()) apply = s;
    streamed += batch.size();
  }
  if (!apply.ok()) {
    std::fprintf(stderr, "replication drill: apply failed: %s\n",
                 apply.ToString().c_str());
    return false;
  }
  if (Status s = cluster.FlushReplication(); !s.ok()) {
    std::fprintf(stderr, "replication drill: flush failed: %s\n",
                 s.ToString().c_str());
    return false;
  }
  (void)cluster.RunAntiEntropy();

  const ReplicationStats rs = cluster.replication_stats();
  const ClusterStats& cs = cluster.stats();
  std::printf(
      "replication drill: %llu updates shipped in %llu appends "
      "(%llu bytes), %llu applied, %llu retransmits\n",
      (unsigned long long)streamed, (unsigned long long)rs.append_messages,
      (unsigned long long)rs.bytes_shipped,
      (unsigned long long)rs.entries_applied,
      (unsigned long long)(rs.rejected_appends + rs.duplicate_entries));
  std::printf(
      "replication drill: digest rounds %llu, mismatches %llu, repairs "
      "%llu, failovers %llu\n",
      (unsigned long long)cs.digest_rounds,
      (unsigned long long)cs.digest_mismatches,
      (unsigned long long)cs.antientropy_repairs,
      (unsigned long long)cs.failovers);
  if (cs.digest_mismatches != 0 || cs.antientropy_repairs != 0 ||
      cs.failovers != 0) {
    std::fprintf(stderr,
                 "replication drill: DIVERGENCE (clean stream must "
                 "replicate with zero mismatches/repairs/failovers)\n");
    return false;
  }
  return true;
}

int CmdVerifyStore(int argc, char** argv) {
  if (argc < 1) return Usage();
  GraphStore graph(EightRelations());
  if (!LoadAnyGraph(argv[0], &graph)) return 1;

  bool all_ok = true;
  std::size_t total_sources = 0;
  std::size_t total_edges = 0;
  for (std::size_t rel = 0; rel < graph.num_relations(); ++rel) {
    const TopologyStore& topo = graph.topology(static_cast<EdgeType>(rel));
    total_sources += topo.NumSources();
    total_edges += topo.NumEdges();
    std::string err;
    if (topo.CheckAllInvariants(&err)) {
      if (topo.NumSources() > 0) {
        std::printf("relation %zu: OK (%zu sources, %zu edges)\n", rel,
                    topo.NumSources(), topo.NumEdges());
      }
    } else {
      all_ok = false;
      std::fprintf(stderr, "relation %zu: INVARIANT VIOLATION: %s\n", rel,
                   err.c_str());
    }
  }
  all_ok = ReplicationEchoDrill(graph) && all_ok;
  std::printf("%s: %zu sources, %zu edges across %zu relations\n",
              all_ok ? "verify-store PASSED" : "verify-store FAILED",
              total_sources, total_edges, graph.num_relations());
  return all_ok ? 0 : 1;
}

int CmdStreamTrain(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::size_t steps = std::strtoull(argv[0], nullptr, 10);
  const std::size_t producers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  const std::size_t rate =  // updates per producer per training step
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  if (argc > 3) {
    const std::string p = argv[3];
    if (p == "reject") policy = BackpressurePolicy::kReject;
    else if (p == "drop") policy = BackpressurePolicy::kDropOldest;
    else if (p != "block") return Usage();
  }
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  if (steps == 0 || producers == 0) return Usage();

  // A seeded community graph with features/labels so the trainer has a
  // task; streamed traffic then keeps rewiring it mid-training.
  constexpr std::size_t kVertices = 1000;
  constexpr std::size_t kFeatDim = 8;
  constexpr std::size_t kClasses = 4;
  GraphStore graph;
  Xoshiro256 init_rng(seed);
  for (VertexId v = 0; v < kVertices; ++v) {
    for (int k = 0; k < 6; ++k) {
      const VertexId u = init_rng.NextUint64(kVertices);
      if (u != v) graph.AddEdge({v, u, 1.0, 0});
    }
    std::vector<float> f(kFeatDim);
    for (auto& x : f) x = static_cast<float>(init_rng.NextDouble() - 0.5);
    f[v % kClasses] += 1.5f;
    graph.attributes().SetFeatures(v, std::move(f));
    graph.attributes().SetLabel(v, static_cast<std::int64_t>(v % kClasses));
  }

  ThreadPool pool(4);
  UpdateIngestor ingestor(IngestorConfig{.policy = policy,
                                         .num_relations = 1});
  EpochCoordinator epochs;
  TemporalEdgeLog log;
  MicroBatcher batcher(&graph, &pool, &ingestor, &epochs, &log,
                       MicroBatcherConfig{});
  GraphSageModel model(GraphSageConfig{.in_dim = kFeatDim,
                                       .hidden_dim = 16,
                                       .num_classes = kClasses},
                       seed + 1);
  Trainer trainer(&graph, &model,
                  TrainerConfig{.batch_size = 64, .fanout_hop1 = 5,
                                .fanout_hop2 = 5});
  ContinuousTrainer driver(&ingestor, &batcher, &epochs, &trainer);

  // Producers: event time is a shared admission counter, so the merged
  // stream is monotone and the WAL accepts everything.
  std::atomic<std::uint64_t> clock{0};
  const std::size_t per_producer = steps * rate;
  std::vector<std::thread> feeds;
  feeds.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    feeds.emplace_back([&, p] {
      Xoshiro256 rng(seed + 100 + p);
      for (std::size_t i = 0; i < per_producer; ++i) {
        const std::uint64_t ts = 1 + clock.fetch_add(1);
        EdgeUpdate u;
        const std::uint64_t roll = rng.NextUint64(10);
        u.kind = roll < 6   ? UpdateKind::kInsert
                 : roll < 8 ? UpdateKind::kInPlaceUpdate
                            : UpdateKind::kDelete;
        u.edge = {rng.NextUint64(kVertices), rng.NextUint64(kVertices),
                  1.0 + static_cast<double>(rng.NextUint64(100)), 0};
        (void)ingestor.Offer(TimedUpdate{ts, u});  // reject/drop counted
      }
    });
  }

  Xoshiro256 train_rng(seed + 7);
  Timer timer;
  const std::size_t report_every = steps <= 10 ? 1 : steps / 10;
  for (std::size_t s = 0; s < steps; ++s) {
    const ContinuousTrainer::StepReport r = driver.Step(train_rng);
    if ((s + 1) % report_every == 0 || s + 1 == steps) {
      std::printf("step %4zu  loss %.4f  acc %.3f  epoch %llu  "
                  "staleness %llu  applied %zu\n",
                  r.step, r.loss, r.accuracy,
                  (unsigned long long)r.epoch,
                  (unsigned long long)r.staleness, r.updates_applied);
    }
  }
  for (auto& t : feeds) t.join();
  ingestor.Close();
  driver.Drain();
  const double secs = timer.ElapsedSeconds();

  const PipelineStats stats = driver.Stats();
  std::printf("\n%zu producers x %zu updates, %zu training steps in "
              "%.2fs\n",
              producers, per_producer, steps, secs);
  std::printf("ingest: accepted %llu  rejected %llu  dropped %llu  "
              "(%.0f updates/s)\n",
              (unsigned long long)stats.ingest.accepted,
              (unsigned long long)stats.ingest.rejected,
              (unsigned long long)stats.ingest.dropped,
              static_cast<double>(stats.ingest.accepted) / secs);
  std::printf("batcher: %llu micro-batches, %llu applied "
              "(%llu coalesced away), final staleness %llu\n",
              (unsigned long long)stats.batcher.batches_applied,
              (unsigned long long)stats.batcher.updates_applied,
              (unsigned long long)stats.batcher.coalesced,
              (unsigned long long)stats.staleness);
  std::printf("store: %zu edges   WAL: %zu entries (%llu rejected)\n",
              graph.NumEdges(), log.size(),
              (unsigned long long)log.rejected());

  std::string err;
  if (!graph.topology(0).CheckAllInvariants(&err)) {
    std::fprintf(stderr, "INVARIANT VIOLATION after stream: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("post-stream invariant sweep: OK\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Observability commands: `pd2gl metrics` and `pd2gl trace` run the same
// small deterministic serving workload and expose two views of it — the
// merged registry page and a single request's span tree. Deterministic by
// construction (virtual clock, fixed seed, no concurrent ingest) so two
// runs with the same arguments print the same numbers.
// ---------------------------------------------------------------------------

struct DemoServe {
  std::unique_ptr<GraphCluster> cluster;
  std::unique_ptr<EpochCoordinator> epochs;
  std::unique_ptr<serve::GraphServer> server;
};

/// Build a 4-shard cluster and serve `requests` mixed-plan queries
/// through a batching GraphServer. Keeps every completed trace.
DemoServe RunDemoWorkload(std::size_t requests, std::uint64_t seed) {
  constexpr std::size_t kVertices = 1000;
  DemoServe demo;
  demo.cluster = std::make_unique<GraphCluster>(ClusterConfig{.num_shards = 4});
  {
    Xoshiro256 rng(seed);
    std::vector<EdgeUpdate> batch;
    for (VertexId v = 0; v < kVertices; ++v) {
      for (int k = 0; k < 8; ++k) {
        batch.push_back({UpdateKind::kInsert,
                         Edge{v, rng.NextUint64(kVertices),
                              1.0 + static_cast<double>(k), 0}});
      }
    }
    (void)demo.cluster->ApplyBatch(batch);
    for (VertexId v = 0; v < kVertices; ++v) {
      const std::size_t s = demo.cluster->partitioner().ShardOf(v);
      demo.cluster->shard(s).store().attributes().SetFeatures(
          v, {static_cast<float>(v % 97), static_cast<float>(v % 31)});
    }
  }
  demo.epochs = std::make_unique<EpochCoordinator>();
  serve::ServeConfig scfg;
  scfg.batcher.max_batch = 8;
  scfg.batcher.window_us = 200;
  scfg.slo_target_p99_us = 5000;
  scfg.trace_capacity = requests > 0 ? requests : 1;  // keep every trace
  demo.server = std::make_unique<serve::GraphServer>(demo.cluster.get(),
                                                     demo.epochs.get(), scfg);

  Xoshiro256 rng(seed + 1);
  std::uint64_t now_us = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    now_us += 50 + rng.NextUint64(200);
    serve::QueryRequest req;
    req.tenant = static_cast<std::uint32_t>(rng.NextUint64(4));
    req.request_id = i;
    req.rng_seed = seed ^ (i * 0x9E3779B97F4A7C15ULL);
    const std::size_t num_seeds = 2 + rng.NextUint64(4);
    for (std::size_t s = 0; s < num_seeds; ++s) {
      req.seeds.push_back(rng.NextUint64(kVertices));
    }
    switch (rng.NextUint64(3)) {
      case 0:
        req.plan.Sample(8).Sample(4, true, 0).Gather(1);
        break;
      case 1:
        req.plan.Sample(8).NegativeSample(16, 0, kVertices, 0);
        break;
      default:
        req.plan.Sample(10).Gather(0);
        break;
    }
    (void)demo.server->Submit(req, now_us);
    demo.server->Pump(now_us);
  }
  demo.server->Drain(now_us + 1);
  return demo;
}

/// The whole-process registry page: serving + cluster (per-shard, cache,
/// replication when enabled) + the profiling sites.
obs::RegistrySnapshot MergedSnapshot(const DemoServe& demo) {
  obs::RegistrySnapshot merged = demo.server->metrics().Snapshot();
  merged.MergeFrom(demo.cluster->metrics().Snapshot());
  merged.MergeFrom(obs::ProfileSnapshot());
  return merged;
}

int CmdMetrics(int argc, char** argv) {
  const std::size_t requests =
      argc > 0 ? std::strtoull(argv[0], nullptr, 10) : 64;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::string format = argc > 2 ? argv[2] : "prom";
  if (requests == 0 || (format != "prom" && format != "json")) {
    return Usage();
  }
  const DemoServe demo = RunDemoWorkload(requests, seed);
  const obs::RegistrySnapshot merged = MergedSnapshot(demo);
  const std::string page = format == "json" ? obs::ToJson(merged)
                                            : obs::ToPrometheusText(merged);
  std::fputs(page.c_str(), stdout);
  return 0;
}

void PrintTrace(const obs::Trace& trace) {
  std::printf("trace %016llx  tenant %u  request %llu  status %u  %llu spans"
              "  %lluus\n",
              (unsigned long long)trace.trace_id, trace.tenant,
              (unsigned long long)trace.request_id, trace.status,
              (unsigned long long)trace.spans.size(),
              (unsigned long long)trace.DurationUs());
  // Spans are in creation order and parents precede children, so one
  // forward pass computes depths.
  std::vector<int> depth(trace.spans.size(), 0);
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const obs::Span& s = trace.spans[i];
    if (s.parent != obs::kNoParentSpan && s.parent < i) {
      depth[i] = depth[s.parent] + 1;
    }
    std::printf("  %*s%-13s [%6llu, %6llu)us", depth[i] * 2, "",
                obs::SpanKindName(s.kind), (unsigned long long)s.start_us,
                (unsigned long long)s.end_us);
    if (s.kind == obs::SpanKind::kRpcShard) {
      std::printf("  step %u  shard %u", s.step, s.shard);
    } else if (s.kind != obs::SpanKind::kServeRequest) {
      std::printf("  step %u", s.step);
    }
    std::printf("  items %llu%s\n", (unsigned long long)s.items,
                s.closed ? "" : "  OPEN");
  }
}

int CmdTrace(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string which = argv[0];
  const std::size_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  if (requests == 0) return Usage();

  const DemoServe demo = RunDemoWorkload(requests, seed);
  const std::vector<obs::Trace> all = demo.server->traces().Snapshot();
  if (all.empty()) {
    std::fprintf(stderr, "no traces retained\n");
    return 1;
  }
  const obs::Trace* pick = nullptr;
  if (which == "worst") {
    for (const obs::Trace& t : all) {
      if (pick == nullptr || t.DurationUs() > pick->DurationUs()) pick = &t;
    }
  } else {
    const std::uint64_t request_id = std::strtoull(which.c_str(), nullptr, 10);
    for (const obs::Trace& t : all) {
      if (t.request_id == request_id) pick = &t;
    }
    if (pick == nullptr) {
      std::fprintf(stderr, "request %llu has no retained trace "
                   "(%zu retained; try `worst`)\n",
                   (unsigned long long)request_id, all.size());
      return 1;
    }
  }
  PrintTrace(*pick);
  return 0;
}

int CmdServeBench(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::size_t requests = std::strtoull(argv[0], nullptr, 10);
  const double rate =  // open-loop arrivals per virtual second
      argc > 1 ? std::strtod(argv[1], nullptr) : 8000.0;
  const std::size_t max_batch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  if (requests == 0 || rate <= 0.0 || max_batch == 0) return Usage();

  constexpr std::size_t kVertices = 5000;
  constexpr std::uint32_t kTenants = 4;
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  {
    Xoshiro256 rng(seed);
    std::vector<EdgeUpdate> batch;
    for (VertexId v = 0; v < kVertices; ++v) {
      for (int k = 0; k < 8; ++k) {
        batch.push_back({UpdateKind::kInsert,
                         Edge{v, rng.NextUint64(kVertices),
                              1.0 + static_cast<double>(k), 0}});
      }
    }
    (void)cluster.ApplyBatch(batch);
    for (VertexId v = 0; v < kVertices; ++v) {
      const std::size_t s = cluster.partitioner().ShardOf(v);
      cluster.shard(s).store().attributes().SetFeatures(
          v, {static_cast<float>(v % 97), static_cast<float>(v % 31)});
    }
  }

  EpochCoordinator epochs;
  serve::ServeConfig scfg;
  scfg.num_tenants = kTenants;
  scfg.admission.policy = serve::AdmissionPolicy::kShedOldest;
  scfg.batcher.max_batch = max_batch;
  scfg.batcher.window_us = max_batch > 1 ? 400 : 0;
  scfg.slo_target_p99_us = 5000;
  serve::GraphServer server(&cluster, &epochs, scfg);

  // Concurrent edge churn through the cluster's real update path.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};
  std::thread ingest([&] {
    Xoshiro256 rng(seed + 1);
    std::vector<EdgeUpdate> batch(256);
    // order: stop flag polled per batch; join() below synchronizes.
    while (!stop.load(std::memory_order_relaxed)) {
      for (EdgeUpdate& u : batch) {
        u.kind = rng.NextUint64(4) == 0 ? UpdateKind::kDelete
                                        : UpdateKind::kInsert;
        u.edge = {rng.NextUint64(kVertices), rng.NextUint64(kVertices),
                  1.0, 0};
      }
      (void)cluster.ApplyBatch(batch);
      // order: stat tally, read for reporting only after join().
      ingested.fetch_add(batch.size(), std::memory_order_relaxed);
    }
  });

  // Zipf-ish seeds (hot head): rank = floor(U^2 * n) concentrates a
  // quarter of the draws on the first 6% of ids — close enough for a
  // smoke; the bench binary uses an exact Zipf CDF.
  Xoshiro256 rng(seed + 2);
  Timer wall;
  double clock_us = 0.0;
  const double mean_gap_us = 1e6 / rate;
  std::uint64_t last_us = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    clock_us += -mean_gap_us * std::log(1.0 - rng.NextDouble());
    last_us = static_cast<std::uint64_t>(clock_us);
    serve::QueryRequest req;
    req.tenant = static_cast<std::uint32_t>(rng.NextUint64(kTenants));
    req.request_id = i;
    req.rng_seed = seed ^ (i * 0x9E3779B97F4A7C15ULL);
    const std::size_t num_seeds = 2 + rng.NextUint64(4);
    for (std::size_t s = 0; s < num_seeds; ++s) {
      const double u = rng.NextDouble();
      req.seeds.push_back(
          static_cast<VertexId>(u * u * static_cast<double>(kVertices)));
    }
    if (rng.NextUint64(10) < 7) {
      req.plan.Sample(10).Sample(5, true, 0);
    } else {
      req.plan.Sample(10).Gather(0);
    }
    (void)server.Submit(req, last_us);
    server.Pump(last_us);
  }
  server.Drain(last_us + 1);
  const double secs = wall.ElapsedSeconds();
  stop.store(true);
  ingest.join();

  const serve::ServeStats stats = server.Stats();
  const serve::SloReport slo = server.EndSloWindow();
  std::printf("serve-bench: %zu requests at %.0f rps (virtual), "
              "max_batch %zu, %.2fs wall\n",
              requests, rate, max_batch, secs);
  std::printf("latency: p50 %.1fus  p99 %.1fus  (SLO p99<%lluus: %s)\n",
              slo.p50_us, slo.p99_us,
              (unsigned long long)scfg.slo_target_p99_us,
              slo.violated ? "VIOLATED" : "ok");
  std::printf("admitted %llu  completed %llu  shed %llu  rejected %llu  "
              "invalid %llu\n",
              (unsigned long long)stats.admission.admitted,
              (unsigned long long)stats.completed,
              (unsigned long long)stats.shed,
              (unsigned long long)stats.rejected,
              (unsigned long long)stats.invalid);
  std::printf("batches %llu (mean %.1f req)  rpc rounds %llu  "
              "virtual busy %.1fms\n",
              (unsigned long long)stats.batches,
              stats.batches ? static_cast<double>(stats.batched_requests) /
                                  static_cast<double>(stats.batches)
                            : 0.0,
              (unsigned long long)stats.rpc_rounds,
              static_cast<double>(stats.virtual_busy_us) / 1e3);
  std::printf("concurrent ingest: %llu updates (%.0f/s wall)\n",
              (unsigned long long)ingested.load(),
              secs > 0 ? static_cast<double>(ingested.load()) / secs : 0.0);
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    const LatencyHistogram* h = server.tenant_latency(t);
    std::printf("tenant %u: %llu served, p50 %.1fus p99 %.1fus\n", t,
                (unsigned long long)h->Count(), h->PercentileMicros(50),
                h->PercentileMicros(99));
  }

  // One-screen registry summary: the same numbers `pd2gl metrics`
  // exports, folded down to what an operator scans first.
  {
    obs::RegistrySnapshot reg = server.metrics().Snapshot();
    reg.MergeFrom(cluster.metrics().Snapshot());
    std::printf("--- registry summary ---\n");
    std::vector<std::pair<std::uint64_t, std::string>> shard_seeds;
    for (const obs::MetricPoint& p : reg.points) {
      if (p.name == "pd2gl_shard_sample_seeds" && !p.labels.empty()) {
        shard_seeds.emplace_back(p.value, p.labels[0].value);
      }
    }
    std::sort(shard_seeds.rbegin(), shard_seeds.rend());
    std::printf("hottest shards (sample seeds):");
    for (std::size_t i = 0; i < shard_seeds.size() && i < 4; ++i) {
      std::printf("  #%s %llu", shard_seeds[i].second.c_str(),
                  (unsigned long long)shard_seeds[i].first);
    }
    std::printf("\n");
    const std::uint64_t hits = reg.SumAcrossLabels("pd2gl_sample_cache_hits");
    const std::uint64_t misses =
        reg.SumAcrossLabels("pd2gl_sample_cache_misses");
    if (hits + misses > 0) {
      std::printf("sample cache: %.1f%% hit (%llu/%llu)\n",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses),
                  (unsigned long long)hits,
                  (unsigned long long)(hits + misses));
    }
    const obs::TraceSink& sink = server.traces();
    const obs::Trace* worst = nullptr;
    const std::vector<obs::Trace> retained = sink.Snapshot();
    for (const obs::Trace& t : retained) {
      if (worst == nullptr || t.DurationUs() > worst->DurationUs()) {
        worst = &t;
      }
    }
    std::printf("traces: %llu published, %zu retained",
                (unsigned long long)sink.published(), retained.size());
    if (worst != nullptr) {
      std::printf(", worst %016llx (%lluus, request %llu)",
                  (unsigned long long)worst->trace_id,
                  (unsigned long long)worst->DurationUs(),
                  (unsigned long long)worst->request_id);
    }
    std::printf("\n");
  }

  // Smoke gate: every submitted request must be accounted for.
  const std::uint64_t accounted =
      stats.completed + stats.rejected + stats.invalid;
  if (accounted != stats.submitted) {
    std::fprintf(stderr, "FAIL: %llu submitted but %llu accounted\n",
                 (unsigned long long)stats.submitted,
                 (unsigned long long)accounted);
    return 1;
  }
  std::printf("request accounting: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "load") return CmdLoad(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  if (cmd == "sample") return CmdSample(argc - 2, argv + 2);
  if (cmd == "verify-store") return CmdVerifyStore(argc - 2, argv + 2);
  if (cmd == "stream-train") return CmdStreamTrain(argc - 2, argv + 2);
  if (cmd == "serve-bench") return CmdServeBench(argc - 2, argv + 2);
  if (cmd == "metrics") return CmdMetrics(argc - 2, argv + 2);
  if (cmd == "trace") return CmdTrace(argc - 2, argv + 2);
  return Usage();
}
