// BidirectedGraphStore and InducedSubgraph tests.
#include "storage/bidirected_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(BidirectedStoreTest, MirrorMaintainedOnInsert) {
  BidirectedGraphStore g;
  g.AddEdge({1, 2, 0.5, 0});
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_EQ(g.NumEdges(), 1u);  // mirrors counted once
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(BidirectedStoreTest, UpdateAndRemoveBothDirections) {
  BidirectedGraphStore g;
  g.AddEdge({1, 2, 0.5, 0});
  EXPECT_TRUE(g.UpdateEdge(1, 2, 3.0));
  EXPECT_NEAR(*g.graph().EdgeWeight(1, 2), 3.0, 1e-12);
  EXPECT_NEAR(*g.graph().EdgeWeight(2, 1), 3.0, 1e-12);

  EXPECT_TRUE(g.RemoveEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.RemoveEdge(1, 2));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(BidirectedStoreTest, InNeighborsSampled) {
  BidirectedGraphStore g;
  for (VertexId u = 1; u <= 5; ++u) g.AddEdge({u, 100, 1.0, 0});
  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  ASSERT_TRUE(g.SampleInNeighbors(100, 50, true, rng, &out));
  for (VertexId v : out) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 5u);
  }
}

TEST(BidirectedStoreTest, SelfLoopStaysConsistent) {
  BidirectedGraphStore g;
  g.AddEdge({7, 7, 2.0, 0});
  EXPECT_TRUE(g.HasEdge(7, 7));
  EXPECT_EQ(g.OutDegree(7), 1u);
  EXPECT_TRUE(g.RemoveEdge(7, 7));
  EXPECT_EQ(g.OutDegree(7), 0u);
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 3, 1.0, 0});
  g.AddEdge({3, 4, 1.0, 0});  // 4 is outside the set
  g.AddEdge({4, 1, 1.0, 0});  // source outside the set

  const auto sub = InducedSubgraph(g, {1, 2, 3});
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const Edge& e : sub) pairs.insert({e.src, e.dst});
  EXPECT_EQ(pairs, (std::set<std::pair<VertexId, VertexId>>{{1, 2},
                                                            {2, 3}}));
}

TEST(InducedSubgraphTest, MultiRelationAndDuplicatedInput) {
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  g.AddEdge({1, 2, 0.5, 0});
  g.AddEdge({1, 2, 1.5, 1});
  const auto sub = InducedSubgraph(g, {1, 2, 1, 2, 2});  // dups in input
  ASSERT_EQ(sub.size(), 2u);
  std::set<EdgeType> types;
  for (const Edge& e : sub) {
    EXPECT_EQ(e.src, 1u);
    EXPECT_EQ(e.dst, 2u);
    types.insert(e.type);
  }
  EXPECT_EQ(types.size(), 2u);
}

TEST(InducedSubgraphTest, EmptyCases) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  EXPECT_TRUE(InducedSubgraph(g, {}).empty());
  EXPECT_TRUE(InducedSubgraph(g, {99, 98}).empty());
  EXPECT_TRUE(InducedSubgraph(g, {1}).empty()) << "no 1->1 edge";
}

TEST(InducedSubgraphTest, WeightsPreserved) {
  GraphStore g;
  g.AddEdge({1, 2, 0.25, 0});
  const auto sub = InducedSubgraph(g, {1, 2});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_NEAR(sub[0].weight, 0.25, 1e-12);
}

}  // namespace
}  // namespace platod2gl
