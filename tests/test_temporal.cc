// TemporalEdgeLog tests: the G^(t) dynamic-graph series semantics.
#include "temporal/edge_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "common/random.h"
#include "gen/generators.h"

namespace platod2gl {
namespace {

TEST(TemporalLogTest, AppendEnforcesMonotoneTime) {
  TemporalEdgeLog log;
  EXPECT_TRUE(log.AppendInsert(5, {1, 2, 1.0, 0}).ok());
  EXPECT_TRUE(log.AppendInsert(5, {1, 3, 1.0, 0}).ok());  // equal time is fine
  EXPECT_TRUE(log.AppendInsert(9, {1, 4, 1.0, 0}).ok());
  const Status rejected = log.AppendInsert(7, {1, 5, 1.0, 0});
  EXPECT_FALSE(rejected.ok());  // regression rejected, not silently dropped
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.MinTimestamp(), 5u);
  EXPECT_EQ(log.MaxTimestamp(), 9u);
}

TEST(TemporalLogTest, RejectedAppendsAreCounted) {
  TemporalEdgeLog log;
  EXPECT_EQ(log.rejected(), 0u);
  ASSERT_TRUE(log.AppendInsert(10, {1, 2, 1.0, 0}).ok());
  EXPECT_FALSE(log.AppendInsert(9, {1, 3, 1.0, 0}).ok());
  EXPECT_FALSE(log.AppendInsert(3, {1, 4, 1.0, 0}).ok());
  EXPECT_EQ(log.rejected(), 2u);
  EXPECT_EQ(log.size(), 1u);  // rejected updates are not stored
  EXPECT_TRUE(log.AppendInsert(10, {1, 5, 1.0, 0}).ok());
  EXPECT_EQ(log.rejected(), 2u);
}

TEST(TemporalLogTest, TruncateThroughDropsCoveredPrefix) {
  TemporalEdgeLog log;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(log.AppendInsert(t, {1, 100 + t, 1.0, 0}).ok());
  }
  // A checkpoint at t=6 makes the prefix redundant for recovery.
  EXPECT_EQ(log.TruncateThrough(6), 6u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.MinTimestamp(), 7u);
  // Replay past the checkpoint still works unchanged.
  GraphStore g;
  EXPECT_EQ(log.ReplayInto(&g, 6, 10), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  // Truncating everything leaves an empty but usable log.
  EXPECT_EQ(log.TruncateThrough(99), 4u);
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.AppendInsert(50, {2, 3, 1.0, 0}).ok());
}

TEST(TemporalLogTest, TruncationWatermarkSurvivesEmptyTruncates) {
  TemporalEdgeLog log;
  EXPECT_EQ(log.truncated_through(), 0u);
  for (std::uint64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(log.AppendInsert(t, {1, 100 + t, 1.0, 0}).ok());
  }
  log.TruncateThrough(6);
  EXPECT_EQ(log.truncated_through(), 6u);
  // Truncating an already-erased prefix drops nothing but must keep the
  // watermark monotone (a second checkpoint at the same sequence).
  log.TruncateThrough(6);
  EXPECT_EQ(log.truncated_through(), 6u);
  log.TruncateThrough(3);  // older checkpoint replayed late: no regression
  EXPECT_EQ(log.truncated_through(), 6u);
  log.TruncateThrough(8);
  EXPECT_EQ(log.truncated_through(), 8u);
}

TEST(TemporalLogTest, CheckedReplayRefusesWindowBelowTruncation) {
  // Regression for the checkpoint/TruncateThrough off-by-one: a bootstrap
  // covering sequences <= 6 may replay (6, head] — but a caller whose
  // coverage ends at 5 must be refused when the prefix through 6 is gone,
  // or entry 6 would be silently skipped (a watermark gap).
  TemporalEdgeLog log;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(log.AppendInsert(t, {1, 100 + t, 1.0, 0}).ok());
  }
  log.TruncateThrough(6);

  GraphStore ok_store;
  std::size_t applied = 0;
  // Boundary-legal: from == truncated_through() — nothing missing.
  ASSERT_TRUE(log.CheckedReplayInto(&ok_store, 6, 10, &applied).ok());
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ(ok_store.NumEdges(), 4u);

  // The off-by-one: from == truncated_through() - 1 needs entry 6, which
  // the truncation erased. This must surface as data loss, not a replay
  // of 4 entries that quietly lost one.
  GraphStore gap_store;
  applied = 1234;
  const Status s = log.CheckedReplayInto(&gap_store, 5, 10, &applied);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(gap_store.NumEdges(), 0u) << "no partial replay on refusal";

  // Far below the watermark: refused just the same.
  EXPECT_EQ(log.CheckedReplayInto(&gap_store, 0, 10, nullptr).code(),
            StatusCode::kDataLoss);
}

TEST(TemporalLogTest, SnapshotReconstructsGraphAtT) {
  TemporalEdgeLog log;
  log.AppendInsert(1, {1, 2, 1.0, 0});
  log.AppendInsert(2, {1, 3, 1.0, 0});
  log.Append(3, {UpdateKind::kInPlaceUpdate, Edge{1, 2, 9.0, 0}});
  log.Append(4, {UpdateKind::kDelete, Edge{1, 3, 0.0, 0}});

  // G^(2): both edges, original weights.
  GraphStore g2;
  EXPECT_EQ(log.SnapshotInto(&g2, 2), 2u);
  EXPECT_NEAR(*g2.EdgeWeight(1, 2), 1.0, 1e-12);
  EXPECT_TRUE(g2.HasEdge(1, 3));

  // G^(3): weight updated.
  GraphStore g3;
  EXPECT_EQ(log.SnapshotInto(&g3, 3), 3u);
  EXPECT_NEAR(*g3.EdgeWeight(1, 2), 9.0, 1e-12);

  // G^(4): edge 1->3 gone.
  GraphStore g4;
  EXPECT_EQ(log.SnapshotInto(&g4, 4), 4u);
  EXPECT_FALSE(g4.HasEdge(1, 3));
  EXPECT_EQ(g4.NumEdges(), 1u);
}

TEST(TemporalLogTest, ReplayRollsForwardIncrementally) {
  // Snapshot at t then replay (t, t'] must equal a snapshot at t'.
  TemporalEdgeLog log;
  Xoshiro256 rng(3);
  UniformParams p;
  p.num_vertices = 50;
  p.num_edges = 400;
  auto base = GenerateUniform(p);
  DedupEdges(&base);
  std::uint64_t t = 0;
  for (const Edge& e : base) log.AppendInsert(++t, e);
  UpdateStreamParams sp;
  sp.num_ops = 300;
  for (const EdgeUpdate& u : MakeUpdateStream(base, sp)) {
    log.Append(++t, u);
  }

  const std::uint64_t mid = t / 2;
  GraphStore rolled;
  log.SnapshotInto(&rolled, mid);
  log.ReplayInto(&rolled, mid, t);

  GraphStore direct;
  log.SnapshotInto(&direct, t);

  EXPECT_EQ(rolled.NumEdges(), direct.NumEdges());
  std::map<VertexId, std::map<VertexId, Weight>> a, b;
  rolled.topology(0).ForEachSource([&](VertexId s, const Samtree& tr) {
    for (const auto& [d, w] : tr.Neighbors()) a[s][d] = w;
  });
  direct.topology(0).ForEachSource([&](VertexId s, const Samtree& tr) {
    for (const auto& [d, w] : tr.Neighbors()) b[s][d] = w;
  });
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [s, nbrs] : a) {
    for (const auto& [d, w] : nbrs) {
      ASSERT_NEAR(b.at(s).at(d), w, 1e-9) << s << "->" << d;
    }
  }
}

TEST(TemporalLogTest, WindowReturnsHalfOpenRange) {
  TemporalEdgeLog log;
  for (std::uint64_t ts : {1u, 2u, 2u, 5u, 7u}) {
    log.AppendInsert(ts, {ts, ts + 1, 1.0, 0});
  }
  const auto window = log.Window(2, 5);  // (2, 5] -> only ts=5
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].timestamp, 5u);
  const auto all = log.Window(0, 100);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(log.Window(7, 100).empty());
}

TEST(TemporalLogTest, EmptyLogBehaviour) {
  TemporalEdgeLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.MinTimestamp(), 0u);
  GraphStore g;
  EXPECT_EQ(log.SnapshotInto(&g, 100), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(TemporalLogTest, AppendBatchMatchesPerEntryAppend) {
  // AppendBatch must be entry-for-entry equivalent to Append in a loop:
  // same accepted entries, same rejected count, in one reserve + scan.
  Xoshiro256 rng(21);
  std::vector<TimedUpdate> batch;
  std::uint64_t ts = 5;
  for (int i = 0; i < 500; ++i) {
    // Mostly monotone, with occasional regressions to exercise rejects.
    ts = rng.NextUint64(20) == 0 ? ts - std::min<std::uint64_t>(ts, 3)
                                 : ts + rng.NextUint64(3);
    batch.push_back(TimedUpdate{
        ts, EdgeUpdate{UpdateKind::kInsert,
                       {rng.NextUint64(50), rng.NextUint64(50), 1.0, 0}}});
  }

  TemporalEdgeLog batched, looped;
  ASSERT_TRUE(batched.AppendInsert(4, {1, 2, 1.0, 0}).ok());
  ASSERT_TRUE(looped.AppendInsert(4, {1, 2, 1.0, 0}).ok());
  const std::size_t accepted =
      batched.AppendBatch(std::span<const TimedUpdate>(batch));
  std::size_t accepted_loop = 0;
  for (const TimedUpdate& e : batch) {
    if (looped.Append(e.timestamp, e.update).ok()) ++accepted_loop;
  }

  EXPECT_EQ(accepted, accepted_loop);
  ASSERT_EQ(batched.size(), looped.size());
  EXPECT_EQ(batched.rejected(), looped.rejected());
  EXPECT_GT(batched.rejected(), 0u);  // the trace did regress somewhere
  const auto wa = batched.Window(0, ts + 10);
  const auto wb = looped.Window(0, ts + 10);
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].timestamp, wb[i].timestamp);
    EXPECT_EQ(wa[i].update.edge.src, wb[i].update.edge.src);
    EXPECT_EQ(wa[i].update.edge.dst, wb[i].update.edge.dst);
  }
}

TEST(TemporalLogTest, AppendBatchOnEmptyLogAndEmptyBatch) {
  TemporalEdgeLog log;
  EXPECT_EQ(log.AppendBatch({}), 0u);
  EXPECT_TRUE(log.empty());

  const std::vector<TimedUpdate> batch{
      {7, EdgeUpdate{UpdateKind::kInsert, {1, 2, 1.0, 0}}},
      {7, EdgeUpdate{UpdateKind::kInsert, {1, 3, 1.0, 0}}},
      {9, EdgeUpdate{UpdateKind::kDelete, {1, 2, 0.0, 0}}}};
  EXPECT_EQ(log.AppendBatch(std::span<const TimedUpdate>(batch)), 3u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.MinTimestamp(), 7u);
  EXPECT_EQ(log.MaxTimestamp(), 9u);
  EXPECT_EQ(log.rejected(), 0u);

  // A later batch starting below the tail loses its stale prefix only.
  const std::vector<TimedUpdate> late{
      {8, EdgeUpdate{UpdateKind::kInsert, {2, 1, 1.0, 0}}},
      {9, EdgeUpdate{UpdateKind::kInsert, {2, 2, 1.0, 0}}},
      {12, EdgeUpdate{UpdateKind::kInsert, {2, 3, 1.0, 0}}}};
  EXPECT_EQ(log.AppendBatch(std::span<const TimedUpdate>(late)), 2u);
  EXPECT_EQ(log.rejected(), 1u);
  EXPECT_EQ(log.MaxTimestamp(), 12u);
}

}  // namespace
}  // namespace platod2gl
