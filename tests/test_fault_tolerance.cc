// Chaos suite: fault injection, retry/backoff/deadline semantics,
// degraded sampling and WAL-based shard recovery (DESIGN.md §9,
// docs/fault_tolerance.md). The headline guarantees pinned here:
//
//   * transient faults within the retry budget are INVISIBLE — sampling
//     results are bit-identical to a fault-free run and no seed degrades;
//   * faults past the budget degrade per seed (flagged empty ranges),
//     never throw and never hang;
//   * a crashed shard recovered from checkpoint + WAL replay matches a
//     never-crashed control cluster exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dist/cluster.h"
#include "dist/fault_injector.h"
#include "dist/remote_sampler.h"
#include "dist/shard.h"
#include "dist/wire.h"

namespace platod2gl {
namespace {

// --- FaultInjector unit tests ---------------------------------------------

FaultConfig NoisyConfig() {
  FaultConfig f;
  f.failure_prob = 0.15;
  f.timeout_prob = 0.10;
  f.corrupt_prob = 0.10;
  f.slow_prob = 0.10;
  return f;
}

TEST(FaultInjectorTest, FaultSequenceIsDeterministicPerShard) {
  FaultInjector a(NoisyConfig(), 4);
  FaultInjector b(NoisyConfig(), 4);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(a.NextFault(shard), b.NextFault(shard))
          << "shard " << shard << " draw " << i;
    }
  }
}

TEST(FaultInjectorTest, ShardsDrawIndependentStreams) {
  // Draining shard 0 must not advance shard 1's sequence: replay shard 1
  // against a fresh injector where shard 0 was never touched.
  FaultInjector mixed(NoisyConfig(), 2);
  for (int i = 0; i < 100; ++i) mixed.NextFault(0);
  std::vector<FaultInjector::Fault> shard1;
  for (int i = 0; i < 100; ++i) shard1.push_back(mixed.NextFault(1));

  FaultInjector clean(NoisyConfig(), 2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(clean.NextFault(1), shard1[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(FaultInjectorTest, PassiveWhenAllProbabilitiesZero) {
  FaultInjector quiet(FaultConfig{}, 2);
  EXPECT_TRUE(quiet.PassiveExceptCrashes());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(quiet.NextFault(0), FaultInjector::Fault::kNone);
  }
  EXPECT_FALSE(FaultInjector(NoisyConfig(), 2).PassiveExceptCrashes());
}

TEST(FaultInjectorTest, CrashLifecycle) {
  FaultInjector inj(FaultConfig{}, 3);
  EXPECT_EQ(inj.NumCrashed(), 0u);
  inj.CrashShard(1);
  EXPECT_TRUE(inj.IsCrashed(1));
  EXPECT_FALSE(inj.IsCrashed(0));
  EXPECT_EQ(inj.NumCrashed(), 1u);
  inj.RestoreShard(1);
  EXPECT_FALSE(inj.IsCrashed(1));
  EXPECT_EQ(inj.NumCrashed(), 0u);
}

TEST(FaultInjectorTest, CorruptBytesAlwaysRejectedByHardenedDecoders) {
  // CorruptBytes promises structural damage; the hardened decoders must
  // reject every single corruption, whatever mode the draw picks.
  NeighborBatch resp;
  resp.offsets = {0, 3, 3, 5};
  resp.neighbors = {10, 11, 12, 20, 21};
  const std::string clean = wire::EncodeSampleResponse(resp);

  FaultInjector inj(NoisyConfig(), 1);
  for (int i = 0; i < 400; ++i) {
    std::string damaged = clean;
    inj.CorruptBytes(0, &damaged);
    ASSERT_NE(damaged, clean) << "corruption must change the bytes";
    NeighborBatch decoded;
    ASSERT_FALSE(wire::DecodeSampleResponse(damaged, &decoded))
        << "iteration " << i << ": structurally damaged response decoded";
  }
}

// --- Cluster-level transient-fault tests -----------------------------------

/// Insert degree-5 neighbourhoods for vertices 1..100 so weighted
/// sampling has real randomness to get wrong under faults.
void PopulateFanout(GraphCluster* c) {
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 100; ++s) {
    for (VertexId k = 0; k < 5; ++k) {
      batch.push_back({UpdateKind::kInsert,
                       Edge{s, s * 10 + k, 1.0 + static_cast<double>(k), 0}});
    }
  }
  ASSERT_TRUE(c->ApplyBatch(batch).ok());
}

ClusterConfig FaultyConfig(FaultConfig fault) {
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.fault = fault;
  cfg.retry.max_attempts = 6;
  cfg.retry.deadline_us = 100'000'000;  // generous: the budget is attempts
  return cfg;
}

TEST(ClusterFaultTest, TransientFaultsWithinBudgetAreInvisible) {
  GraphCluster control(FaultyConfig(FaultConfig{}));  // no faults
  GraphCluster faulty(FaultyConfig(NoisyConfig()));
  PopulateFanout(&control);
  PopulateFanout(&faulty);
  ASSERT_EQ(control.NumEdges(), faulty.NumEdges());

  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 100; ++s) seeds.push_back(s);
  for (std::uint64_t round = 0; round < 20; ++round) {
    const SampleReport want =
        control.SampleNeighborsChecked(seeds, 3, /*weighted=*/true, round);
    const SampleReport got =
        faulty.SampleNeighborsChecked(seeds, 3, /*weighted=*/true, round);
    // Retries re-derive the per-shard RNG stream, so the faulty run is
    // bit-identical to the fault-free control.
    ASSERT_EQ(got.batch.offsets, want.batch.offsets) << "round " << round;
    ASSERT_EQ(got.batch.neighbors, want.batch.neighbors) << "round " << round;
    ASSERT_TRUE(got.complete());
  }

  // The faults really happened — they were just absorbed by retries.
  const ClusterStats& st = faulty.stats();
  EXPECT_GT(st.transient_faults, 0u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_EQ(st.degraded_seeds, 0u);
  EXPECT_EQ(st.deadline_hits, 0u);
  EXPECT_GT(st.rpcs, control.stats().rpcs);
  // Slow RPCs and retries both inflate virtual time, never wall time.
  EXPECT_GT(st.virtual_network_us, control.stats().virtual_network_us);
}

TEST(ClusterFaultTest, CorruptResponsesAreDetectedAndRetried) {
  FaultConfig fault;
  fault.corrupt_prob = 0.5;
  GraphCluster control(FaultyConfig(FaultConfig{}));
  // Half of all responses are damaged, so 6 attempts occasionally run out
  // (0.5^6 per logical RPC); a deeper budget keeps every seed served.
  ClusterConfig faulty_cfg = FaultyConfig(fault);
  faulty_cfg.retry.max_attempts = 16;
  GraphCluster faulty(faulty_cfg);
  PopulateFanout(&control);
  PopulateFanout(&faulty);

  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 100; ++s) seeds.push_back(s);
  for (std::uint64_t round = 0; round < 10; ++round) {
    const NeighborBatch want = control.SampleNeighbors(seeds, 3, true, round);
    const NeighborBatch got = faulty.SampleNeighbors(seeds, 3, true, round);
    ASSERT_EQ(got.offsets, want.offsets);
    ASSERT_EQ(got.neighbors, want.neighbors);
  }
  // The damaged responses went through the real codec and were dropped
  // there, not waved through.
  EXPECT_GT(faulty.stats().corrupt_responses, 0u);
  EXPECT_GT(faulty.stats().retries, 0u);
  EXPECT_EQ(faulty.stats().degraded_seeds, 0u);
}

TEST(ClusterFaultTest, DeadlineDegradesSeedsWithoutThrowingOrHanging) {
  FaultConfig fault;
  fault.failure_prob = 1.0;  // shard is effectively unreachable
  ClusterConfig cfg = FaultyConfig(fault);
  cfg.retry.max_attempts = 100;     // attempts won't stop it...
  cfg.retry.deadline_us = 2'000;    // ...the deadline will
  GraphCluster cluster(cfg);
  const SampleReport report =
      cluster.SampleNeighborsChecked({1, 2, 3, 4, 5}, 4, true, 7);
  ASSERT_EQ(report.batch.NumSeeds(), 5u);
  ASSERT_EQ(report.seed_status.size(), 5u);
  EXPECT_EQ(report.degraded_seeds, 5u);
  EXPECT_FALSE(report.complete());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(report.seed_status[i], SeedStatus::kDegraded);
    EXPECT_EQ(report.batch.offsets[i + 1], report.batch.offsets[i])
        << "degraded seeds must come back as the empty marker";
  }
  EXPECT_GT(cluster.stats().deadline_hits, 0u);
  EXPECT_EQ(cluster.stats().degraded_seeds, 5u);
}

TEST(ClusterFaultTest, ApplyBatchReportsLostUpdatesPastBudget) {
  FaultConfig fault;
  fault.failure_prob = 1.0;
  ClusterConfig cfg = FaultyConfig(fault);
  cfg.retry.max_attempts = 3;
  GraphCluster cluster(cfg);
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 20; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 100, 1.0, 0}});
  }
  const Status s = cluster.ApplyBatch(batch);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cluster.stats().lost_updates, 20u);
  EXPECT_EQ(cluster.NumEdges(), 0u);  // nothing half-applied
}

TEST(ClusterFaultTest, ApplyBatchSurvivesTransientFaults) {
  GraphCluster control(FaultyConfig(FaultConfig{}));
  GraphCluster faulty(FaultyConfig(NoisyConfig()));
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 500; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 1000, 1.0, 0}});
  }
  ASSERT_TRUE(control.ApplyBatch(batch).ok());
  ASSERT_TRUE(faulty.ApplyBatch(batch).ok());
  // Exactly-once: retries never double-applied an update.
  EXPECT_EQ(faulty.NumEdges(), control.NumEdges());
  for (VertexId s = 1; s <= 500; ++s) {
    ASSERT_EQ(faulty.Degree(s), 1u) << s;
  }
  EXPECT_EQ(faulty.stats().lost_updates, 0u);
}

TEST(ClusterFaultTest, CrashedShardDegradesOnlyItsOwnSeeds) {
  GraphCluster cluster(FaultyConfig(FaultConfig{}));
  PopulateFanout(&cluster);

  const std::size_t victim = cluster.partitioner().ShardOf(1);
  cluster.CrashShard(victim);
  EXPECT_EQ(cluster.fault_injector().NumCrashed(), 1u);

  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 100; ++s) seeds.push_back(s);
  const SampleReport report = cluster.SampleNeighborsChecked(seeds, 3, true, 9);
  ASSERT_EQ(report.batch.NumSeeds(), seeds.size());
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const bool on_victim = cluster.partitioner().ShardOf(seeds[i]) == victim;
    if (on_victim) {
      ++degraded;
      EXPECT_EQ(report.seed_status[i], SeedStatus::kDegraded);
      EXPECT_EQ(report.batch.offsets[i + 1], report.batch.offsets[i]);
    } else {
      EXPECT_EQ(report.seed_status[i], SeedStatus::kOk);
      // Live shards keep serving full fanout, unperturbed by the crash.
      EXPECT_EQ(report.batch.offsets[i + 1] - report.batch.offsets[i], 3u);
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(report.degraded_seeds, degraded);
  EXPECT_GT(cluster.stats().crash_rejections, 0u);
}

// --- RemoteSubgraphSampler resilience --------------------------------------

TEST(RemoteSamplerFaultTest, RetryDeterminismAcrossFaultConfigs) {
  // Satellite (d): a fixed seed yields the identical subgraph with faults
  // off and with faults + retries on.
  GraphCluster control(FaultyConfig(FaultConfig{}));
  GraphCluster faulty(FaultyConfig(NoisyConfig()));
  // Two-hop chain structure: s -> s*10+k -> (s*10+k)*10+k.
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 30; ++s) {
    for (VertexId k = 0; k < 4; ++k) {
      const VertexId mid = s * 10 + k;
      batch.push_back({UpdateKind::kInsert, Edge{s, mid, 1.0, 0}});
      batch.push_back({UpdateKind::kInsert, Edge{mid, mid * 10 + k, 1.0, 0}});
    }
  }
  ASSERT_TRUE(control.ApplyBatch(batch).ok());
  ASSERT_TRUE(faulty.ApplyBatch(batch).ok());

  RemoteSubgraphSampler a(&control);
  RemoteSubgraphSampler b(&faulty);
  const std::vector<SubgraphSampler::Hop> hops = {{.fanout = 3},
                                                  {.fanout = 2}};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RemoteSampleReport want =
        a.SampleWithReport({1, 7, 13, 28}, hops, seed);
    const RemoteSampleReport got =
        b.SampleWithReport({1, 7, 13, 28}, hops, seed);
    ASSERT_EQ(got.subgraph.layers, want.subgraph.layers) << "seed " << seed;
    ASSERT_EQ(got.subgraph.parents, want.subgraph.parents) << "seed " << seed;
    ASSERT_TRUE(got.complete());
    ASSERT_TRUE(want.complete());
  }
  EXPECT_GT(faulty.stats().retries, 0u);
  EXPECT_GT(faulty.stats().transient_faults, 0u);
}

TEST(RemoteSamplerFaultTest, UnreachableShardStopsExpansionGracefully) {
  GraphCluster cluster(FaultyConfig(FaultConfig{}));
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 50; ++s) {
    for (VertexId k = 0; k < 3; ++k) {
      batch.push_back({UpdateKind::kInsert, Edge{s, s * 10 + k, 1.0, 0}});
    }
  }
  ASSERT_TRUE(cluster.ApplyBatch(batch).ok());
  cluster.CrashShard(cluster.partitioner().ShardOf(1));

  RemoteSubgraphSampler sampler(&cluster);
  const RemoteSampleReport report = sampler.SampleWithReport(
      {1, 2, 3, 4, 5}, {{.fanout = 2}, {.fanout = 2}}, 3);
  // Seeds always form layer 0 — degradation only prunes expansions.
  ASSERT_EQ(report.subgraph.layers.size(), 3u);
  EXPECT_EQ(report.subgraph.layers[0],
            (std::vector<VertexId>{1, 2, 3, 4, 5}));
  EXPECT_FALSE(report.complete());
  EXPECT_GT(report.degraded_total, 0u);
  ASSERT_EQ(report.degraded_frontier.size(), 2u);
  EXPECT_GT(report.degraded_frontier[0], 0u);
}

// --- Checkpoint + WAL recovery ---------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pd2g_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(RecoveryTest, CheckpointTruncatesCoveredWalPrefix) {
  GraphShard shard;
  for (VertexId s = 1; s <= 50; ++s) {
    shard.Apply({UpdateKind::kInsert, Edge{s, s + 1, 1.0, 0}});
  }
  EXPECT_EQ(shard.wal().size(), 50u);
  ASSERT_TRUE(shard.Checkpoint((dir_ / "s.ckpt").string()).ok());
  EXPECT_TRUE(shard.wal().empty()) << "checkpoint covers the whole log";
  EXPECT_EQ(shard.checkpoint_seq(), 50u);
  shard.Apply({UpdateKind::kInsert, Edge{99, 100, 1.0, 0}});
  EXPECT_EQ(shard.wal().size(), 1u) << "only the post-checkpoint suffix";
  EXPECT_EQ(shard.wal_seq(), 51u);
}

TEST_F(RecoveryTest, CheckpointRefusedWhileCrashed) {
  GraphShard shard;
  shard.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});
  shard.Crash();
  const Status s = shard.Checkpoint((dir_ / "s.ckpt").string());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST_F(RecoveryTest, RecoveryWithoutCheckpointReplaysFullWal) {
  GraphShard shard;
  for (VertexId s = 1; s <= 30; ++s) {
    shard.Apply({UpdateKind::kInsert, Edge{s, s + 1, 2.0, 0}});
  }
  shard.Crash();
  EXPECT_EQ(shard.store().NumEdges(), 0u) << "volatile store wiped";
  std::size_t replayed = 0;
  ASSERT_TRUE(shard.Recover(&replayed).ok());
  EXPECT_EQ(replayed, 30u);
  EXPECT_FALSE(shard.crashed());
  EXPECT_EQ(shard.store().NumEdges(), 30u);
  EXPECT_NEAR(*shard.store().EdgeWeight(7, 8), 2.0, 1e-12);
}

TEST_F(RecoveryTest, KillAndRecoverMatchesNeverCrashedControl) {
  // The acceptance test: a cluster that checkpoints, crashes a shard
  // mid-update-stream, keeps taking writes (WAL handoff) and recovers
  // must end up EXACTLY where a never-crashed control cluster is.
  ClusterConfig cfg;
  cfg.num_shards = 4;
  GraphCluster control(cfg);
  GraphCluster victim(cfg);

  auto apply_both = [&](const std::vector<EdgeUpdate>& batch) {
    ASSERT_TRUE(control.ApplyBatch(batch).ok());
    ASSERT_TRUE(victim.ApplyBatch(batch).ok());
  };

  // Phase 1: base graph, then checkpoint the victim.
  std::vector<EdgeUpdate> phase1;
  for (VertexId s = 1; s <= 200; ++s) {
    phase1.push_back({UpdateKind::kInsert, Edge{s, s + 1000, 1.0, 0}});
    phase1.push_back({UpdateKind::kInsert, Edge{s, s + 2000, 2.0, 0}});
  }
  apply_both(phase1);
  ASSERT_TRUE(victim.CheckpointAll(dir_.string()).ok());

  // Phase 2: post-checkpoint mutations of every kind (these live only in
  // the WALs).
  std::vector<EdgeUpdate> phase2;
  for (VertexId s = 1; s <= 100; ++s) {
    phase2.push_back({UpdateKind::kInsert, Edge{s, s + 3000, 3.0, 0}});
    phase2.push_back({UpdateKind::kInPlaceUpdate, Edge{s, s + 1000, 9.0, 0}});
  }
  for (VertexId s = 101; s <= 150; ++s) {
    phase2.push_back({UpdateKind::kDelete, Edge{s, s + 2000, 0.0, 0}});
  }
  apply_both(phase2);

  // Crash a shard, then keep the update stream flowing: the victim's
  // updates for the dead shard go to its WAL via hinted handoff.
  const std::size_t dead = victim.partitioner().ShardOf(1);
  victim.CrashShard(dead);
  std::vector<EdgeUpdate> phase3;
  for (VertexId s = 1; s <= 200; ++s) {
    phase3.push_back({UpdateKind::kInsert, Edge{s, s + 4000, 4.0, 0}});
  }
  apply_both(phase3);
  EXPECT_GT(victim.stats().wal_handoffs, 0u);
  EXPECT_EQ(victim.stats().lost_updates, 0u);

  // While down, sampling degrades instead of failing.
  const SampleReport down =
      victim.SampleNeighborsChecked({1, 2, 3, 4}, 3, true, 5);
  EXPECT_GT(down.degraded_seeds, 0u);

  // Recover: checkpoint + WAL replay rebuild the exact state.
  ASSERT_TRUE(victim.RecoverShard(dead).ok());
  EXPECT_EQ(victim.stats().recoveries, 1u);
  EXPECT_GT(victim.stats().replayed_updates, 0u);
  EXPECT_EQ(victim.fault_injector().NumCrashed(), 0u);

  ASSERT_EQ(victim.NumEdges(), control.NumEdges());
  for (VertexId s = 1; s <= 200; ++s) {
    ASSERT_EQ(victim.Degree(s), control.Degree(s)) << "vertex " << s;
  }
  // Weight-sensitive check: the in-place updates survived recovery...
  const std::size_t owner1 = victim.partitioner().ShardOf(1);
  EXPECT_NEAR(*victim.shard(owner1).store().EdgeWeight(1, 1001), 9.0, 1e-12);
  // ...and sampling (weighted, so weight-state-sensitive) is bit-identical.
  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 200; ++s) seeds.push_back(s);
  for (std::uint64_t round = 0; round < 5; ++round) {
    const SampleReport want =
        control.SampleNeighborsChecked(seeds, 4, true, round);
    const SampleReport got =
        victim.SampleNeighborsChecked(seeds, 4, true, round);
    ASSERT_EQ(got.batch.offsets, want.batch.offsets) << "round " << round;
    ASSERT_EQ(got.batch.neighbors, want.batch.neighbors) << "round " << round;
    ASSERT_TRUE(got.complete());
  }
}

TEST_F(RecoveryTest, SingleUpdateApplyUsesWalHandoffWhileDown) {
  ClusterConfig cfg;
  cfg.num_shards = 2;
  GraphCluster cluster(cfg);
  const std::size_t dead = cluster.partitioner().ShardOf(42);
  cluster.CrashShard(dead);
  // Apply() to a crashed shard is still OK: durably logged, not lost.
  ASSERT_TRUE(cluster.Apply({UpdateKind::kInsert, Edge{42, 43, 1.0, 0}}).ok());
  EXPECT_EQ(cluster.stats().wal_handoffs, 1u);
  EXPECT_EQ(cluster.stats().lost_updates, 0u);
  EXPECT_EQ(cluster.Degree(42), 0u) << "not applied while down";
  ASSERT_TRUE(cluster.RecoverShard(dead).ok());
  EXPECT_EQ(cluster.Degree(42), 1u) << "replayed on recovery";
}

}  // namespace
}  // namespace platod2gl
