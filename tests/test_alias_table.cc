// AliasTable unit tests (AliGraph baseline sampling index).
#include "index/alias_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(AliasTableTest, EmptyTable) {
  AliasTable t;
  EXPECT_TRUE(t.empty());
}

TEST(AliasTableTest, SingleEntryAlwaysSampled) {
  AliasTable t({3.0});
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTableTest, UniformWeightsSampleAllIndices) {
  AliasTable t({1.0, 1.0, 1.0, 1.0});
  Xoshiro256 rng(2);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 40000; ++i) ++hits[t.Sample(rng)];
  for (int h : hits) {
    EXPECT_NEAR(h, 10000, 500);
  }
}

TEST(AliasTableTest, SkewedWeightsMatchProbabilities) {
  const std::vector<Weight> w = {8.0, 1.0, 1.0};
  AliasTable t(w);
  Xoshiro256 rng(3);
  std::vector<int> hits(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[t.Sample(rng)];
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.8, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.1, 0.01);
}

TEST(AliasTableTest, ZeroWeightEntryNeverSampled) {
  AliasTable t({1.0, 0.0, 1.0});
  Xoshiro256 rng(4);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(t.Sample(rng), 1u);
}

TEST(AliasTableTest, MemoryIsTwoArrays) {
  AliasTable t(std::vector<Weight>(100, 1.0));
  // prob (double) + alias (uint32) per entry, modulo capacity slack.
  EXPECT_GE(t.MemoryUsage(), 100 * (sizeof(double) + sizeof(std::uint32_t)));
}

class AliasRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AliasRandomized, EmpiricalDistributionTracksWeights) {
  Xoshiro256 rng(GetParam());
  std::vector<Weight> w;
  const std::size_t n = 2 + rng.NextUint64(60);
  Weight total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w.push_back(0.05 + rng.NextDouble());
    total += w.back();
  }
  AliasTable t(w);
  std::vector<int> hits(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++hits[t.Sample(rng)];
  for (std::size_t i = 0; i < n; ++i) {
    const double expect = w[i] / total;
    const double got = hits[i] / static_cast<double>(draws);
    EXPECT_NEAR(got, expect, 0.015) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasRandomized,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace platod2gl
