// GraphSAGE model + trainer tests: the model must learn a graph-structured
// toy task where the label is only recoverable through neighbour
// aggregation — proving the sampler -> gather -> aggregate path works.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "gnn/model.h"
#include "gnn/gcn_model.h"
#include "gnn/trainer.h"
#include "sampling/node_sampler.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

// Community graph: vertices split into k communities; edges stay within a
// community; features are noisy one-hot community indicators on *neighbours
// only* (seeds get pure noise), labels are the community. The model can
// only classify by aggregating neighbour features.
struct CommunityGraph {
  GraphStore graph;
  std::vector<VertexId> train_seeds;
  std::vector<VertexId> test_seeds;
};

std::unique_ptr<CommunityGraph> MakeCommunityGraph(std::size_t communities,
                                                   std::size_t size,
                                                   std::size_t dim,
                                                   std::uint64_t seed) {
  auto cg_ptr = std::make_unique<CommunityGraph>();
  CommunityGraph& cg = *cg_ptr;
  Xoshiro256 rng(seed);
  const std::size_t n = communities * size;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t comm = v / size;
    // ~8 random intra-community neighbours.
    for (int k = 0; k < 8; ++k) {
      const VertexId u = comm * size + rng.NextUint64(size);
      if (u != v) cg.graph.AddEdge({v, u, 1.0, 0});
    }
    std::vector<float> f(dim, 0.0f);
    for (std::size_t d = 0; d < dim; ++d) {
      f[d] = static_cast<float>(rng.NextDouble() * 0.4 - 0.2);
    }
    f[comm % dim] += 1.0f;  // community signal
    cg.graph.attributes().SetFeatures(v, std::move(f));
    cg.graph.attributes().SetLabel(v, static_cast<std::int64_t>(comm));
    (v % 5 == 0 ? cg.test_seeds : cg.train_seeds).push_back(v);
  }
  return cg_ptr;
}

TEST(GraphSageModelTest, ForwardShapes) {
  GraphSageConfig cfg{.in_dim = 4, .hidden_dim = 6, .num_classes = 3};
  GraphSageModel model(cfg);

  SampledSubgraph sg;
  sg.layers = {{1, 2}, {3, 4, 5}, {6, 7, 8, 9}};
  sg.parents = {{0, 0, 1}, {0, 1, 2, 2}};
  GraphSageModel::Inputs in;
  in.sg = &sg;
  in.features = {Tensor(2, 4, 0.1f), Tensor(3, 4, 0.2f), Tensor(4, 4, 0.3f)};

  const Tensor logits = model.Forward(in, nullptr);
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(GraphSageModelTest, TrainStepReducesLossOnFixedBatch) {
  GraphSageConfig cfg{.in_dim = 4, .hidden_dim = 8, .num_classes = 2};
  GraphSageModel model(cfg, /*seed=*/7);

  SampledSubgraph sg;
  sg.layers = {{1, 2}, {3, 4}, {5, 6, 7, 8}};
  sg.parents = {{0, 1}, {0, 0, 1, 1}};
  GraphSageModel::Inputs in;
  in.sg = &sg;
  Xoshiro256 rng(9);
  in.features = {Tensor::Glorot(2, 4, rng), Tensor::Glorot(2, 4, rng),
                 Tensor::Glorot(4, 4, rng)};
  const std::vector<std::int64_t> labels = {0, 1};

  const double first = model.Evaluate(in, labels).loss;
  double last = first;
  for (int step = 0; step < 100; ++step) {
    last = model.TrainStep(in, labels, 0.02f).loss;
  }
  EXPECT_LT(last, first * 0.5) << "must overfit a single fixed batch";
}

TEST(TrainerTest, EndToEndLearnsCommunityTask) {
  auto cg_ptr = MakeCommunityGraph(/*communities=*/4, /*size=*/100,
                                         /*dim=*/8, /*seed=*/42);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 16, .num_classes = 4};
  GraphSageModel model(cfg, 11);
  Trainer trainer(&cg.graph, &model,
                  TrainerConfig{.batch_size = 64,
                                .fanout_hop1 = 8,
                                .fanout_hop2 = 8,
                                .learning_rate = 0.01f});
  Xoshiro256 rng(13);

  const auto before = trainer.Evaluate(cg.test_seeds, rng);
  for (int epoch = 0; epoch < 60; ++epoch) {
    trainer.TrainStepSampled(rng);
  }
  const auto after = trainer.Evaluate(cg.test_seeds, rng);

  EXPECT_LT(after.loss, before.loss);
  EXPECT_GT(after.accuracy, 0.85)
      << "4 separable communities must be nearly solved (started at ~"
      << before.accuracy << ")";
}

TEST(TrainerTest, TrainingContinuesThroughDynamicUpdates) {
  // The dynamic-graph property (Figure 1): topology changes between
  // steps must not break training.
  auto cg_ptr = MakeCommunityGraph(2, 80, 8, 21);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 8, .num_classes = 2};
  GraphSageModel model(cfg, 3);
  Trainer trainer(&cg.graph, &model, TrainerConfig{.batch_size = 32,
                                                   .learning_rate = 0.01f});
  Xoshiro256 rng(4);
  for (int step = 0; step < 30; ++step) {
    const auto r = trainer.TrainStepSampled(rng);
    EXPECT_TRUE(std::isfinite(r.loss));
    // Interleave topology mutations (new intra-community edges).
    const VertexId v = rng.NextUint64(160);
    const VertexId u = (v / 80) * 80 + rng.NextUint64(80);
    cg.graph.AddEdge({v, u, 1.0, 0});
    if (step % 10 == 0) trainer.RefreshNodeSampler();
  }
}

TEST(TrainerTest, EvaluateDoesNotTrain) {
  auto cg_ptr = MakeCommunityGraph(2, 50, 8, 33);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 8, .num_classes = 2};
  GraphSageModel model(cfg, 5);
  Trainer trainer(&cg.graph, &model, TrainerConfig{});
  Xoshiro256 rng_a(6), rng_b(6);
  const auto r1 = trainer.Evaluate(cg.test_seeds, rng_a);
  const auto r2 = trainer.Evaluate(cg.test_seeds, rng_b);
  EXPECT_DOUBLE_EQ(r1.loss, r2.loss) << "evaluation must be side-effect-free";
}


TEST(GcnModelTest, ForwardShapes) {
  GraphSageConfig cfg{.in_dim = 4, .hidden_dim = 6, .num_classes = 3};
  GcnModel model(cfg);
  SampledSubgraph sg;
  sg.layers = {{1, 2}, {3, 4, 5}, {6, 7, 8, 9}};
  sg.parents = {{0, 0, 1}, {0, 1, 2, 2}};
  GraphSageModel::Inputs in;
  in.sg = &sg;
  in.features = {Tensor(2, 4, 0.1f), Tensor(3, 4, 0.2f), Tensor(4, 4, 0.3f)};
  const Tensor logits = model.Forward(in);
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(GcnModelTest, OverfitsFixedBatch) {
  GraphSageConfig cfg{.in_dim = 4, .hidden_dim = 8, .num_classes = 2};
  GcnModel model(cfg, /*seed=*/7);
  SampledSubgraph sg;
  sg.layers = {{1, 2}, {3, 4}, {5, 6, 7, 8}};
  sg.parents = {{0, 1}, {0, 0, 1, 1}};
  GraphSageModel::Inputs in;
  in.sg = &sg;
  Xoshiro256 rng(9);
  in.features = {Tensor::Glorot(2, 4, rng), Tensor::Glorot(2, 4, rng),
                 Tensor::Glorot(4, 4, rng)};
  const std::vector<std::int64_t> labels = {0, 1};
  const double first = model.Evaluate(in, labels).loss;
  double last = first;
  for (int step = 0; step < 150; ++step) {
    last = model.TrainStep(in, labels, 0.02f).loss;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(GcnModelTest, LearnsCommunityTaskLikeSage) {
  auto cg_ptr = MakeCommunityGraph(4, 100, 8, 77);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 16, .num_classes = 4};
  GcnModel model(cfg, 11);

  SubgraphSampler sampler(&cg.graph);
  Xoshiro256 rng(13);
  auto prepare = [&](const std::vector<VertexId>& seeds,
                     SampledSubgraph* sg, GraphSageModel::Inputs* in,
                     std::vector<std::int64_t>* labels) {
    *sg = sampler.Sample(seeds, {{.fanout = 8}, {.fanout = 8}}, rng);
    in->sg = sg;
    in->features.clear();
    std::vector<float> buf;
    for (const auto& layer : sg->layers) {
      cg.graph.attributes().GatherFeatures(layer, 8, &buf);
      Tensor t(layer.size(), 8);
      std::copy(buf.begin(), buf.end(), t.data());
      in->features.push_back(std::move(t));
    }
    labels->clear();
    for (VertexId v : seeds) {
      labels->push_back(cg.graph.attributes().GetLabel(v).value_or(-1));
    }
  };

  NodeSampler nodes(&cg.graph.topology(0));
  for (int epoch = 0; epoch < 60; ++epoch) {
    const auto seeds = nodes.SampleUniform(64, rng);
    SampledSubgraph sg;
    GraphSageModel::Inputs in;
    std::vector<std::int64_t> labels;
    prepare(seeds, &sg, &in, &labels);
    model.TrainStep(in, labels, 0.01f);
  }

  SampledSubgraph sg;
  GraphSageModel::Inputs in;
  std::vector<std::int64_t> labels;
  prepare(cg.test_seeds, &sg, &in, &labels);
  const auto eval = model.Evaluate(in, labels);
  EXPECT_GT(eval.accuracy, 0.85);
}


TEST(TrainerTest, FitRecordsHistoryAndImproves) {
  auto cg_ptr = MakeCommunityGraph(4, 80, 8, 55);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 16, .num_classes = 4};
  GraphSageModel model(cfg, 2);
  Trainer trainer(&cg.graph, &model,
                  TrainerConfig{.batch_size = 64, .learning_rate = 0.01f});
  Xoshiro256 rng(3);
  const auto history = trainer.Fit(
      cg.test_seeds, {.steps = 50, .eval_every = 10}, rng);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history.front().step, 10);
  EXPECT_EQ(history.back().step, 50);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(history.back().accuracy, history.front().accuracy);
}

TEST(TrainerTest, FitEarlyStopsOnPlateau) {
  // patience 1 on a trivially-converged task: must stop well before the
  // epoch budget once the loss stops improving.
  auto cg_ptr = MakeCommunityGraph(2, 40, 8, 66);
  CommunityGraph& cg = *cg_ptr;
  GraphSageConfig cfg{.in_dim = 8, .hidden_dim = 8, .num_classes = 2};
  GraphSageModel model(cfg, 4);
  Trainer trainer(&cg.graph, &model, TrainerConfig{.batch_size = 32,
                                                   .learning_rate = 0.02f});
  Xoshiro256 rng(5);
  const auto history = trainer.Fit(
      cg.test_seeds, {.steps = 1000, .eval_every = 5, .patience = 2, .min_delta = 0.02},
      rng);
  ASSERT_FALSE(history.empty());
  EXPECT_LT(history.back().step, 1000) << "early stopping never fired";
}

}  // namespace
}  // namespace platod2gl
