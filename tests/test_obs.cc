// MetricRegistry / exporter / profiling tests (DESIGN.md §15,
// docs/observability.md): idempotent registration with normalized labels,
// race-free sorted snapshots, StatsBinding as the one shared fill loop,
// cross-registry MergeFrom, the Prometheus/JSON exporters, the
// compile-away profiling sites, and the end-to-end contract that every
// subsystem's legacy Stats() struct mirrors its registry series exactly.
// Labels: obs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "dist/cluster.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/micro_batcher.h"
#include "pipeline/update_ingestor.h"
#include "serve/server.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Label;
using obs::Labels;
using obs::MetricKind;
using obs::MetricPoint;
using obs::MetricRegistry;
using obs::RegistrySnapshot;
using obs::StatsBinding;

// ---------------------------------------------------------------------------
// Registration semantics.
// ---------------------------------------------------------------------------

TEST(RegistryTest, RegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter* a = reg.RegisterCounter("pd2gl_test_total");
  Counter* b = reg.RegisterCounter("pd2gl_test_total");
  EXPECT_EQ(a, b) << "same (name, labels) must return the same instance";
  EXPECT_EQ(reg.NumSeries(), 1u);

  Counter* labelled =
      reg.RegisterCounter("pd2gl_test_total", {{"shard", "0"}});
  EXPECT_NE(labelled, a) << "labels discriminate series";
  EXPECT_EQ(reg.NumSeries(), 2u);

  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(labelled->Value(), 0u);
}

TEST(RegistryTest, LabelOrderIsNormalized) {
  MetricRegistry reg;
  Counter* x =
      reg.RegisterCounter("pd2gl_test_x", {{"b", "2"}, {"a", "1"}});
  Counter* y =
      reg.RegisterCounter("pd2gl_test_x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(x, y);
  EXPECT_EQ(reg.NumSeries(), 1u);

  // Snapshot lookups are order-independent too.
  x->Add(7);
  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("pd2gl_test_x", {{"b", "2"}, {"a", "1"}}), 7u);
  EXPECT_EQ(snap.Value("pd2gl_test_x", {{"a", "1"}, {"b", "2"}}), 7u);
}

// ---------------------------------------------------------------------------
// Snapshots: sorted, queryable, race-free copies.
// ---------------------------------------------------------------------------

TEST(RegistryTest, SnapshotIsSortedAndQueryable) {
  MetricRegistry reg;
  reg.RegisterCounter("pd2gl_b_total")->Add(2);
  reg.RegisterCounter("pd2gl_a_total")->Add(1);
  reg.RegisterGauge("pd2gl_depth")->Set(9);
  reg.RegisterCounter("pd2gl_a_total", {{"shard", "1"}})->Add(4);

  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.points.size(), 4u);
  for (std::size_t i = 1; i < snap.points.size(); ++i) {
    EXPECT_LE(snap.points[i - 1].name, snap.points[i].name)
        << "snapshot must sort by name";
  }
  EXPECT_EQ(snap.Value("pd2gl_a_total"), 1u);
  EXPECT_EQ(snap.Value("pd2gl_a_total", {{"shard", "1"}}), 4u);
  EXPECT_EQ(snap.Value("pd2gl_depth"), 9u);
  EXPECT_EQ(snap.Value("pd2gl_missing"), 0u) << "absent series reads as 0";
  EXPECT_EQ(snap.Find("pd2gl_missing"), nullptr);

  // The snapshot is a copy: later increments don't retro-edit it.
  reg.RegisterCounter("pd2gl_a_total")->Add(100);
  EXPECT_EQ(snap.Value("pd2gl_a_total"), 1u);
  EXPECT_EQ(reg.Snapshot().Value("pd2gl_a_total"), 101u);
}

TEST(RegistryTest, SumAcrossLabelsFoldsPerShardSeries) {
  MetricRegistry reg;
  for (int s = 0; s < 3; ++s) {
    reg.RegisterCounter("pd2gl_shard_work", {{"shard", std::to_string(s)}})
        ->Add(static_cast<std::uint64_t>(s + 1));
  }
  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.SumAcrossLabels("pd2gl_shard_work"), 6u);
  EXPECT_EQ(snap.SumAcrossLabels("pd2gl_absent"), 0u);
}

TEST(RegistryTest, ExternalSeriesRideTheSameExportPath) {
  // Borrowed series: the metric objects live in the subsystem (the
  // SampleCache pattern), the registry only exports them.
  Counter hits;
  LatencyHistogram lat;
  MetricRegistry reg;
  reg.RegisterExternalCounter("pd2gl_ext_hits", {}, &hits);
  reg.RegisterExternalHistogram("pd2gl_ext_nanos", {}, &lat);

  hits.Add(5);
  lat.Record(1000);
  lat.Record(2000);

  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("pd2gl_ext_hits"), 5u);
  EXPECT_EQ(snap.Hist("pd2gl_ext_nanos").Count(), 2u);
}

TEST(RegistryTest, StatsBindingIsTheOneFillLoop) {
  struct LocalStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  MetricRegistry reg;
  StatsBinding<LocalStats> binding;
  Counter* reads =
      reg.BindCounter(&binding, &LocalStats::reads, "pd2gl_local_reads");
  Counter* writes =
      reg.BindCounter(&binding, &LocalStats::writes, "pd2gl_local_writes");
  reads->Add(11);
  writes->Add(22);
  const LocalStats s = binding.Read();
  EXPECT_EQ(s.reads, 11u);
  EXPECT_EQ(s.writes, 22u);
}

// ---------------------------------------------------------------------------
// MergeFrom: exporting several subsystem registries as one page.
// ---------------------------------------------------------------------------

TEST(RegistryTest, MergeFromSumsMatchesAndAppendsRest) {
  MetricRegistry a, b;
  a.RegisterCounter("pd2gl_shared_total")->Add(2);
  b.RegisterCounter("pd2gl_shared_total")->Add(3);
  a.RegisterHistogram("pd2gl_shared_nanos")->Record(100);
  b.RegisterHistogram("pd2gl_shared_nanos")->Record(200);
  a.RegisterGauge("pd2gl_depth")->Set(1);
  b.RegisterGauge("pd2gl_depth")->Set(8);
  b.RegisterCounter("pd2gl_only_b_total")->Add(7);

  RegistrySnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.Value("pd2gl_shared_total"), 5u) << "counters sum";
  EXPECT_EQ(merged.Hist("pd2gl_shared_nanos").Count(), 2u)
      << "histogram buckets merge";
  EXPECT_EQ(merged.Value("pd2gl_depth"), 8u) << "gauges take the other side";
  EXPECT_EQ(merged.Value("pd2gl_only_b_total"), 7u) << "unmatched appended";
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusTextRendersFamiliesLabelsAndBuckets) {
  MetricRegistry reg;
  reg.RegisterCounter("pd2gl_reqs_total", {{"tenant", "3"}})->Add(9);
  reg.RegisterGauge("pd2gl_queue_depth")->Set(4);
  reg.RegisterHistogram("pd2gl_lat_nanos")->Record(1500);

  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE pd2gl_reqs_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pd2gl_reqs_total{tenant=\"3\"} 9"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE pd2gl_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("pd2gl_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pd2gl_lat_nanos histogram"), std::string::npos);
  EXPECT_NE(text.find("pd2gl_lat_nanos_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("pd2gl_lat_nanos_count 1"), std::string::npos);
}

TEST(ExportTest, JsonCarriesEverySeries) {
  MetricRegistry reg;
  reg.RegisterCounter("pd2gl_reqs_total", {{"tenant", "3"}})->Add(9);
  reg.RegisterHistogram("pd2gl_lat_nanos")->Record(1500);

  const std::string json = obs::ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"pd2gl_reqs_total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenant\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
  EXPECT_NE(json.find("\"pd2gl_lat_nanos\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiling sites: present in every build, recording only when enabled.
// ---------------------------------------------------------------------------

TEST(ProfileTest, SitesAreNamedAndSnapshotExports) {
  const RegistrySnapshot before = obs::ProfileSnapshot();
  ASSERT_EQ(before.points.size(),
            static_cast<std::size_t>(obs::ProfileSite::kNumSites));
  for (const MetricPoint& p : before.points) {
    EXPECT_EQ(p.name.rfind("pd2gl_profile_", 0), 0u) << p.name;
    EXPECT_EQ(p.kind, MetricKind::kHistogram);
    if (!obs::ProfilingEnabled()) {
      // Default build: the macro compiles away; nothing in this process
      // (including the hot paths other tests exercised) may have
      // recorded into the site histograms.
      EXPECT_EQ(p.hist.Count(), 0u) << p.name;
    }
  }
  for (std::uint8_t s = 0;
       s < static_cast<std::uint8_t>(obs::ProfileSite::kNumSites); ++s) {
    EXPECT_NE(obs::ProfileSiteName(static_cast<obs::ProfileSite>(s)),
              nullptr);
  }

  // The histograms themselves are always live (the macro is what
  // compiles away), so a direct Record shows up in the next snapshot.
  obs::ProfileHistogram(obs::ProfileSite::kSamtreeDescent).Record(500);
  const RegistrySnapshot after = obs::ProfileSnapshot();
  bool saw = false;
  for (const MetricPoint& p : after.points) {
    if (p.hist.Count() > 0) saw = true;
  }
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Subsystem contract: legacy Stats() structs mirror the registry.
// ---------------------------------------------------------------------------

TEST(SubsystemRegistryTest, ServerStatsMirrorItsRegistry) {
  ClusterConfig ccfg;
  ccfg.num_shards = 2;
  GraphCluster cluster(ccfg);
  for (VertexId v = 0; v < 50; ++v) {
    cluster.Apply({UpdateKind::kInsert, Edge{v, (v + 1) % 50, 1.0, 0}});
  }
  EpochCoordinator epochs;
  serve::ServeConfig cfg;
  cfg.batcher.max_batch = 2;
  serve::GraphServer server(&cluster, &epochs, cfg);

  for (std::uint64_t i = 0; i < 4; ++i) {
    serve::QueryRequest req;
    req.tenant = i % 2;
    req.request_id = i;
    req.rng_seed = 100 + i;
    req.seeds = {i, i + 1};
    req.plan.Sample(2);
    ASSERT_TRUE(server.Submit(req, 0).ok());
  }
  server.Drain(0);

  const serve::ServeStats s = server.Stats();
  const RegistrySnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.Value("pd2gl_serve_submitted"), s.submitted);
  EXPECT_EQ(snap.Value("pd2gl_serve_completed"), s.completed);
  EXPECT_EQ(snap.Value("pd2gl_serve_batches"), s.batches);
  EXPECT_EQ(snap.Value("pd2gl_serve_rpc_rounds"), s.rpc_rounds);
  // The admission and batcher series live in the SAME registry — one
  // page tells the whole serving story.
  EXPECT_EQ(snap.Value("pd2gl_admission_admitted"), s.admission.admitted);
  EXPECT_EQ(snap.Value("pd2gl_batcher_enqueued"), s.batcher.enqueued);
  EXPECT_EQ(snap.Value("pd2gl_batcher_dispatched"), s.batcher.dispatched);
  // The latency histograms are registered too (global + per-tenant).
  EXPECT_EQ(snap.Hist("pd2gl_serve_latency_nanos").Count(),
            server.latency().Count());
  EXPECT_EQ(
      snap.Hist("pd2gl_serve_tenant_latency_nanos", {{"tenant", "0"}})
          .Count(),
      server.tenant_latency(0)->Count());
}

TEST(SubsystemRegistryTest, ClusterPerShardSeriesAccumulate) {
  ClusterConfig ccfg;
  ccfg.num_shards = 4;
  GraphCluster cluster(ccfg);
  for (VertexId v = 0; v < 100; ++v) {
    for (std::uint64_t k = 1; k <= 4; ++k) {
      cluster.Apply(
          {UpdateKind::kInsert, Edge{v, (v * 3 + k) % 100, 1.0, 0}});
    }
  }
  std::vector<VertexId> seeds(32);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i * 3;
  cluster.SampleNeighbors(seeds, /*fanout=*/4, /*weighted=*/true,
                          /*rng_seed=*/7);

  const ClusterStats s = cluster.stats();
  const RegistrySnapshot snap = cluster.metrics().Snapshot();
  EXPECT_EQ(snap.Value("pd2gl_cluster_rpcs"), s.rpcs);
  EXPECT_EQ(snap.SumAcrossLabels("pd2gl_shard_sample_seeds"), seeds.size())
      << "per-shard seed counts fold back to the request total";
  // Every shard that received seeds has its own labelled series.
  std::size_t shards_hit = 0;
  for (const MetricPoint& p : snap.points) {
    if (p.name == "pd2gl_shard_sample_seeds" && p.value > 0) ++shards_hit;
  }
  EXPECT_GT(shards_hit, 1u) << "32 seeds over 4 shards hit several shards";
}

TEST(SubsystemRegistryTest, PipelineSharesOneRegistry) {
  // Ingestor and micro-batcher registered into ONE registry: the whole
  // ingest pipeline exports as a single page.
  MetricRegistry reg;
  GraphStore graph;
  ThreadPool pool(2);
  EpochCoordinator epochs;
  UpdateIngestor ingestor(IngestorConfig{}, &reg);
  MicroBatcher batcher(&graph, &pool, &ingestor, &epochs, /*log=*/nullptr,
                       MicroBatcherConfig{}, &reg);

  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        ingestor.OfferInsert(i + 1, Edge{i, i + 1, 1.0, 0}).ok());
  }
  batcher.Flush();

  const IngestorStats is = ingestor.Stats();
  const MicroBatcherStats bs = batcher.Stats();
  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(is.accepted, 10u);
  EXPECT_EQ(snap.Value("pd2gl_ingest_accepted"), is.accepted);
  EXPECT_EQ(snap.Value("pd2gl_micro_batcher_updates_ingested"),
            bs.updates_ingested);
  EXPECT_EQ(snap.Value("pd2gl_micro_batcher_updates_applied"),
            bs.updates_applied);
  EXPECT_EQ(snap.Value("pd2gl_micro_batcher_batches_applied"),
            bs.batches_applied);
  EXPECT_GT(snap.Value("pd2gl_micro_batcher_updates_applied"), 0u);
}

}  // namespace
}  // namespace platod2gl
