// Checkpoint save/load tests, including failure injection (missing,
// corrupted and truncated files).
#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "common/random.h"
#include "gen/generators.h"
#include "gnn/model.h"

namespace platod2gl {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("pd2g_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

std::map<VertexId, std::map<VertexId, Weight>> TopoSnapshot(
    const GraphStore& g, EdgeType type) {
  std::map<VertexId, std::map<VertexId, Weight>> snap;
  g.topology(type).ForEachSource([&](VertexId s, const Samtree& t) {
    for (const auto& [d, w] : t.Neighbors()) snap[s][d] = w;
  });
  return snap;
}

TEST_F(CheckpointTest, RoundTripTopologyAndAttributes) {
  GraphStore original(GraphStoreConfig{.num_relations = 2});
  UniformParams p;
  p.num_vertices = 500;
  p.num_edges = 5000;
  auto edges = GenerateUniform(p);
  DedupEdges(&edges);
  for (const Edge& e : edges) original.AddEdge(e);
  original.AddEdge({7, 8, 0.25, 1});  // second relation

  original.attributes().SetFeatures(1, {1.0f, 2.0f, 3.0f});
  original.attributes().SetLabel(1, 42);
  original.attributes().SetLabel(2, -3);  // label without features

  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  GraphStore restored(GraphStoreConfig{.num_relations = 2});
  ASSERT_TRUE(LoadGraph(path_.string(), &restored).ok());

  EXPECT_EQ(restored.NumEdges(), original.NumEdges());
  for (EdgeType t : {0u, 1u}) {
    const auto a = TopoSnapshot(original, t);
    const auto b = TopoSnapshot(restored, t);
    ASSERT_EQ(a.size(), b.size()) << "relation " << t;
    for (const auto& [s, nbrs] : a) {
      ASSERT_TRUE(b.count(s));
      ASSERT_EQ(nbrs.size(), b.at(s).size());
      for (const auto& [d, w] : nbrs) {
        ASSERT_NEAR(b.at(s).at(d), w, 1e-9) << s << "->" << d;
      }
    }
  }
  ASSERT_NE(restored.attributes().GetFeatures(1), nullptr);
  EXPECT_EQ(*restored.attributes().GetFeatures(1),
            (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(restored.attributes().GetLabel(1), std::optional<int64_t>(42));
  EXPECT_EQ(restored.attributes().GetLabel(2), std::optional<int64_t>(-3));
}

TEST_F(CheckpointTest, EmptyGraphRoundTrip) {
  GraphStore original;
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());
  GraphStore restored;
  ASSERT_TRUE(LoadGraph(path_.string(), &restored).ok());
  EXPECT_EQ(restored.NumEdges(), 0u);
}

TEST_F(CheckpointTest, RestoredStoreIsFullyFunctional) {
  GraphStore original;
  for (VertexId d = 0; d < 600; ++d) original.AddEdge({1, d + 10, 1.0, 0});
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  GraphStore restored;
  ASSERT_TRUE(LoadGraph(path_.string(), &restored).ok());
  // Samtree invariants hold after a bulk restore.
  std::string err;
  ASSERT_TRUE(restored.topology(0).FindTree(1)->CheckInvariants(&err)) << err;
  // And it keeps accepting dynamic updates.
  restored.AddEdge({1, 5000, 2.0, 0});
  restored.topology(0).RemoveEdge(1, 10);
  EXPECT_EQ(restored.Degree(1), 600u);
  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  EXPECT_TRUE(restored.SampleNeighbors(1, 5, true, rng, &out));
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  GraphStore g;
  const Status s = LoadGraph("/nonexistent/dir/nope.ckpt", &g);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, GarbageFileIsRejected) {
  std::ofstream(path_) << "this is not a checkpoint at all";
  GraphStore g;
  const Status s = LoadGraph(path_.string(), &g);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST_F(CheckpointTest, TruncatedFileIsRejected) {
  GraphStore original;
  for (VertexId d = 0; d < 100; ++d) original.AddEdge({1, d + 10, 1.0, 0});
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  // Chop the file roughly in half: the CRC-32 footer pre-pass rejects it
  // before a single record is applied.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full / 2);

  GraphStore g;
  const Status s = LoadGraph(path_.string(), &g);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  EXPECT_EQ(g.NumEdges(), 0u) << "no records may be applied from a bad file";
}

TEST_F(CheckpointTest, BitRotIsRejectedByCrcFooter) {
  GraphStore original;
  for (VertexId d = 0; d < 100; ++d) original.AddEdge({1, d + 10, 1.0, 0});
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  // Flip one bit deep inside the edge payload — v1 would have built a
  // silently wrong store from this; v2 must refuse.
  std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  const std::streamoff target = size / 2;
  file.seekg(target);
  char byte;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(target);
  file.write(&byte, 1);
  file.close();

  GraphStore g;
  const Status s = LoadGraph(path_.string(), &g);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST_F(CheckpointTest, LoadsLegacyV1FilesWithoutFooter) {
  // Hand-write a v1 checkpoint (magic, version 1, no CRC footer):
  // 1 relation with 2 edges of source 7, and no attributes.
  std::ofstream file(path_, std::ios::binary);
  auto put = [&](const void* p, std::size_t n) {
    file.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put("PD2G", 4);
  const std::uint32_t version = 1, relations = 1;
  put(&version, 4);
  put(&relations, 4);
  const std::uint64_t edges = 2;
  put(&edges, 8);
  const VertexId src = 7;
  for (VertexId dst : {11, 12}) {
    const Weight w = 2.5;
    put(&src, 8);
    put(&dst, 8);
    put(&w, 8);
  }
  const std::uint64_t attrs = 0;
  put(&attrs, 8);
  file.close();

  GraphStore g;
  ASSERT_TRUE(LoadGraph(path_.string(), &g).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(7, 11));
  EXPECT_NEAR(*g.EdgeWeight(7, 12), 2.5, 1e-12);
}

TEST_F(CheckpointTest, RefusesNonEmptyTarget) {
  GraphStore original;
  original.AddEdge({1, 2, 1.0, 0});
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  GraphStore busy;
  busy.AddEdge({9, 9, 1.0, 0});
  EXPECT_EQ(LoadGraph(path_.string(), &busy).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, RefusesRelationMismatch) {
  GraphStore original(GraphStoreConfig{.num_relations = 3});
  original.AddEdge({1, 2, 1.0, 2});
  ASSERT_TRUE(SaveGraph(original, path_.string()).ok());

  GraphStore narrow(GraphStoreConfig{.num_relations = 1});
  EXPECT_EQ(LoadGraph(path_.string(), &narrow).code(),
            StatusCode::kInvalidArgument);
}


TEST_F(CheckpointTest, ModelRoundTripPreservesOutputs) {
  GraphSageConfig cfg{.in_dim = 6, .hidden_dim = 10, .num_classes = 3};
  GraphSageModel original(cfg, /*seed=*/5);

  // A fixed forward problem to compare outputs on.
  SampledSubgraph sg;
  sg.layers = {{1, 2}, {3, 4, 5}, {6, 7, 8, 9}};
  sg.parents = {{0, 0, 1}, {0, 1, 2, 2}};
  GraphSageModel::Inputs in;
  in.sg = &sg;
  Xoshiro256 rng(6);
  in.features = {Tensor::Glorot(2, 6, rng), Tensor::Glorot(3, 6, rng),
                 Tensor::Glorot(4, 6, rng)};

  // Perturb the weights away from their init by training a bit.
  original.TrainStep(in, {0, 2}, 0.05f);
  original.TrainStep(in, {0, 2}, 0.05f);
  const Tensor expect = original.Forward(in, nullptr);

  ASSERT_TRUE(SaveModel(original, path_.string()).ok());

  GraphSageModel restored(cfg, /*seed=*/999);  // different init
  ASSERT_TRUE(LoadModel(path_.string(), &restored).ok());
  const Tensor got = restored.Forward(in, nullptr);
  ASSERT_EQ(got.rows(), expect.rows());
  ASSERT_EQ(got.cols(), expect.cols());
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      ASSERT_FLOAT_EQ(got(r, c), expect(r, c)) << r << "," << c;
    }
  }
}

TEST_F(CheckpointTest, ModelArchitectureMismatchRejected) {
  GraphSageModel original(
      GraphSageConfig{.in_dim = 6, .hidden_dim = 10, .num_classes = 3}, 1);
  ASSERT_TRUE(SaveModel(original, path_.string()).ok());

  GraphSageModel narrow(
      GraphSageConfig{.in_dim = 6, .hidden_dim = 8, .num_classes = 3}, 1);
  EXPECT_EQ(LoadModel(path_.string(), &narrow).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, ModelGarbageRejected) {
  std::ofstream(path_) << "PD2G";  // graph magic, not model magic
  GraphSageModel model(GraphSageConfig{}, 1);
  EXPECT_EQ(LoadModel(path_.string(), &model).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace platod2gl
